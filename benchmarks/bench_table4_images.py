"""Table 4: raw image sizes of the streaming benchmark."""

import pytest

from repro.bench.runner import run_table4

#: Paper Table 4 (MB).
PAPER = {"HD": 2.76, "FullHD": 6.22, "2K": 11.6, "4K": 24.88, "8K": 99.53}


def test_table4_image_sizes(once):
    rows = once(run_table4)
    sizes = {row["resolution"]: row["size_mb"] for row in rows}
    for resolution, paper_mb in PAPER.items():
        assert sizes[resolution] == pytest.approx(paper_mb, rel=0.01)
