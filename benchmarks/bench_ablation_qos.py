"""Ablation A4: the QoS mapping matrix (paper §5.2).

Exercises every (policy x host capability) combination end to end —
including the RDMA and XDP datapaths the paper describes but had not yet
integrated — and checks the default mapping strategy's choices and the
resulting latency ordering: RDMA < DPDK < XDP < kernel UDP.
"""

from repro.bench.ablations import run_ablation_qos


def test_ablation_qos_matrix(once):
    rows = once(run_ablation_qos, rounds=120)
    by = {(r["host"], r["policy"]): r for r in rows}

    # mapping choices (paper's default strategy)
    assert by[("all datapaths", "accelerated")]["datapath"] == "rdma"
    assert by[("all datapaths", "accelerated, constrained")]["datapath"] == "rdma"
    assert by[("no RDMA NIC", "accelerated")]["datapath"] == "dpdk"
    assert by[("no RDMA NIC", "accelerated, constrained")]["datapath"] == "xdp"
    for host in ("all datapaths", "no RDMA NIC", "kernel only"):
        assert by[(host, "no acceleration")]["datapath"] == "udp"

    # fallback with warning when nothing accelerated exists
    assert by[("kernel only", "accelerated")]["fallback"]
    assert not by[("no RDMA NIC", "accelerated")]["fallback"]

    # measured latency ordering across technologies
    rdma = by[("all datapaths", "accelerated")]["rtt_us"]
    dpdk = by[("no RDMA NIC", "accelerated")]["rtt_us"]
    xdp = by[("no RDMA NIC", "accelerated, constrained")]["rtt_us"]
    udp = by[("kernel only", "no acceleration")]["rtt_us"]
    assert rdma < dpdk < xdp < udp
