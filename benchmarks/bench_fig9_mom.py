"""Fig. 9: LUNAR MoM vs Cyclone-DDS-like vs ZeroMQ-like (local testbed).

Shape asserted (paper §7.1): LUNAR fast has the lowest latency, LUNAR adds
only ns-scale overhead to raw INSANE, Cyclone sits ~45 % above LUNAR slow
with higher variability, ZeroMQ adds another ~20 us; in throughput LUNAR
fast dominates while Cyclone and LUNAR slow behave similarly (ZeroMQ is
excluded, as in the paper).
"""

import pytest

from repro.bench.harness import run_pingpong
from repro.bench.runner import run_fig9a, run_fig9b

ROUNDS = 400
MESSAGES = 8000


def test_fig9a_latency(once):
    results = once(run_fig9a, rounds=ROUNDS)
    for size in (64, 256, 1024):
        lunar_fast = results[("lunar_fast", size)].mean
        lunar_slow = results[("lunar_slow", size)].mean
        cyclone = results[("cyclone_dds", size)].mean
        zeromq = results[("zeromq", size)].mean
        assert lunar_fast < lunar_slow < cyclone < zeromq
        # ZeroMQ adds ~20 us over Cyclone
        assert 10_000 < zeromq - cyclone < 35_000
    # Cyclone ~ +45 % over LUNAR slow at 64 B
    ratio = results[("cyclone_dds", 64)].mean / results[("lunar_slow", 64)].mean
    assert 1.25 < ratio < 1.70
    # Cyclone shows higher variability than LUNAR
    assert (
        results[("cyclone_dds", 64)].stddev > results[("lunar_fast", 64)].stddev
    )


def test_fig9a_lunar_overhead_is_ns_scale(once):
    """LUNAR adds ns-scale latency over raw INSANE (paper §7.1)."""

    def measure():
        from repro.bench.mom import mom_pingpong

        lunar = mom_pingpong("lunar_fast", rounds=ROUNDS, size=64)
        insane = run_pingpong("insane_fast", rounds=ROUNDS, size=64)
        return lunar.mean, insane.mean

    lunar_mean, insane_mean = once(measure)
    overhead = lunar_mean - insane_mean
    assert 0 < overhead < 1000, "LUNAR overhead %.0f ns is not ns-scale" % overhead


def test_fig9b_throughput(once):
    results = once(run_fig9b, messages=MESSAGES)
    for size in (64, 256, 1024):
        fast = results[("lunar_fast", size)]
        slow = results[("lunar_slow", size)]
        cyclone = results[("cyclone_dds", size)]
        # DPDK lets LUNAR fast significantly increase bandwidth utilization
        assert fast > 3 * slow
        # Cyclone and LUNAR slow have similar behaviour
        assert abs(cyclone - slow) / max(cyclone, slow) < 0.25
    # paper anchor: LUNAR fast 22.82 Gbps at 1 KB (we allow 15 %)
    assert results[("lunar_fast", 1024)] == pytest.approx(22.82, rel=0.15)
