"""Ablation A2: polling-thread mapping (paper §5.3 / §8).

One polling thread per datapath plugin (the evaluation setup) versus one
shared thread for all plugins (the minimum-resource setup).  Under mixed
fast+slow load, the shared thread serializes the expensive kernel sends in
front of the DPDK fast path, inflating fast-path latency dramatically.
"""

from repro.bench.ablations import run_ablation_threads


def test_ablation_thread_mapping(once):
    results = once(run_ablation_threads, rounds=200)
    dedicated = results["per-datapath"]
    shared = results["shared"]
    # the dedicated mapping preserves the calibrated fast-path latency
    assert dedicated.mean < 6000
    # the shared mapping pays for multiplexing (paper: "at the cost of a
    # lower performance")
    assert shared.mean > 2 * dedicated.mean
