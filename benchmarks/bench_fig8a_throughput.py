"""Fig. 8a: goodput for increasing payload size (local testbed).

Shape asserted (paper §6.2): raw DPDK saturates the NIC at large payloads;
INSANE fast is second best, peaking near 90 Gbps at 8 KB thanks to
opportunistic batching; Catnip is significantly lower (one packet at a
time); kernel-based paths (UDP, Catnap, INSANE slow) sit far below, with
Catnap and INSANE slow behaving like each other.
"""

import pytest

from repro.bench.runner import run_fig8a

MESSAGES = 8000


def test_fig8a_throughput(once):
    results = once(run_fig8a, messages=MESSAGES)

    # raw DPDK approaches line rate at 8 KB (~99 Gbps goodput)
    assert results[("raw_dpdk", 8192)] > 95
    # INSANE fast peaks near the paper's 90 Gbps
    assert results[("insane_fast", 8192)] == pytest.approx(90, rel=0.08)
    # Catnip is significantly lower than INSANE fast at every size >= 1 KB
    for size in (1024, 4096, 8192):
        assert results[("catnip", size)] < 0.6 * results[("insane_fast", size)]
    # kernel paths sit far below the accelerated ones
    for size in (1024, 4096, 8192):
        assert results[("udp_nonblocking", size)] < 0.5 * results[("insane_fast", size)]
    # Demikernel and INSANE "perform in the same way" without batching
    for size in (256, 1024, 8192):
        catnap = results[("catnap", size)]
        slow = results[("insane_slow", size)]
        assert abs(catnap - slow) / max(catnap, slow) < 0.15
    # INSANE fast hits the paper's 1 KB anchor (25.98 Gbps)
    assert results[("insane_fast", 1024)] == pytest.approx(25.98, rel=0.10)
    # goodput grows with payload size for every system
    for system in ("udp_nonblocking", "catnap", "insane_slow", "catnip", "insane_fast", "raw_dpdk"):
        series = [results[(system, size)] for size in (64, 1024, 8192)]
        assert series[0] < series[1] < series[2]
