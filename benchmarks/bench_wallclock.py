"""Wall-clock perf bench: events/sec of the simulation kernel.

Not a paper figure — this measures the *harness itself* (see Becker et al.
on unmeasured emulation overhead corrupting reproduction claims).  It runs
the fig5 ping-pong, fig8a streaming, and fig8b 8-sink workloads on both the
fast and the legacy engine, prints a comparison table, and appends the
record to ``BENCH_wallclock.json`` so the perf trajectory is tracked across
PRs.

Run directly (not collected by the tier-1 suite)::

    PYTHONPATH=src python benchmarks/bench_wallclock.py           # smoke
    PYTHONPATH=src python benchmarks/bench_wallclock.py --full    # paper-scale
"""

import argparse
import sys

from repro.bench.perfbench import (
    check_ratchet,
    check_trajectory,
    run_suite,
    summary_lines,
    write_report,
)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Measure simulation-kernel events/sec on the paper workloads."
    )
    parser.add_argument("--full", action="store_true",
                        help="paper-scale message counts (slower)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", metavar="PATH", default="BENCH_wallclock.json",
                        help="perf-trajectory report to append to")
    parser.add_argument("--no-legacy", action="store_true",
                        help="skip the legacy-engine comparison runs")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="exit non-zero if the fig8a events/sec speedup "
                             "over the legacy engine falls below this")
    parser.add_argument("--min-churn-speedup", type=float, default=None,
                        help="exit non-zero if the engine-churn events/sec "
                             "speedup falls below this")
    parser.add_argument("--reps", type=int, default=3,
                        help="repetitions per measurement (best wall kept)")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="shard the (workload, engine) measurements "
                             "across N worker processes; keep N at or below "
                             "the free core count so wall clocks stay clean")
    parser.add_argument("--trajectory", action="store_true",
                        help="no-op-hook check only: rerun fig8a tracing-off "
                             "and compare against the committed report")
    parser.add_argument("--wall-factor", type=float, default=3.0,
                        help="allowed wall-clock factor for --trajectory")
    parser.add_argument("--ratchet", action="store_true",
                        help="perf-ratchet check only: rerun engine_churn on "
                             "the fast engine and fail if events/sec falls "
                             "below the floor derived from the committed "
                             "report (INSANE_PERF_RATCHET_SKIP=1 skips)")
    args = parser.parse_args(argv)

    if args.trajectory:
        ok, lines = check_trajectory(path=args.json, reps=args.reps,
                                     wall_factor=args.wall_factor)
        for line in lines:
            print(line)
        return 0 if ok else 1

    if args.ratchet:
        ok, lines = check_ratchet(path=args.json, reps=args.reps)
        for line in lines:
            print(line)
        return 0 if ok else 1

    record = run_suite(full=args.full, seed=args.seed,
                       compare_legacy=not args.no_legacy, reps=args.reps,
                       workers=args.workers)
    for line in summary_lines(record):
        print(line)
    write_report(record, path=args.json)
    print("perf record appended to %s" % args.json)

    if not args.no_legacy:
        mismatched = [
            name for name, entry in record["suite"].items()
            if "results_close" in entry and not entry["results_close"]
        ]
        if mismatched:
            print("ERROR: stacks disagree on simulated results: %s" % mismatched)
            return 1
        churn = record["suite"]["engine_churn"]
        if not churn["identical_stream"]:
            print("ERROR: engines diverged on the churn event stream")
            return 1
        if args.min_speedup is not None:
            speedup = record["suite"]["fig8a_streaming"]["speedup_events_per_sec"]
            if speedup < args.min_speedup:
                print("ERROR: fig8a events/sec speedup %.2fx < required %.2fx"
                      % (speedup, args.min_speedup))
                return 1
        if args.min_churn_speedup is not None:
            speedup = churn["speedup_events_per_sec"]
            if speedup < args.min_churn_speedup:
                print("ERROR: engine-churn events/sec speedup %.2fx < "
                      "required %.2fx" % (speedup, args.min_churn_speedup))
                return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
