"""Ablation A5: multiple polling threads per datapath (paper §8).

The paper identifies the receive pipeline as CPU-bound ("a single sender
easily overflows a single-core sink") and proposes mapping datapath
plugins to multiple polling threads.  INSANE's configuration supports it
(§5.3); this ablation quantifies the effect the paper deferred to future
work.
"""

from repro.bench.ablations import run_ablation_rx_threads


def test_ablation_rx_threads(once):
    results = once(run_ablation_rx_threads, messages=6000)
    # a second polling thread substantially relieves the receive bottleneck
    assert results[(2, 1)] > 1.5 * results[(1, 1)]
    # and lifts the heavily contended 8-sink configuration as well
    assert results[(2, 8)] > 1.5 * results[(1, 8)]
