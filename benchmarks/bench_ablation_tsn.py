"""Ablation A1: FIFO vs 802.1Qbv TSN scheduling under bulk contention.

The paper offers the time-sensitivity QoS exactly for this situation
(§5.2): a latency-critical flow sharing the sender's datapath with bulk
traffic.  TSN must cut both the mean and the tail of the time-sensitive
flow's latency.
"""

from repro.bench.ablations import run_ablation_tsn


def test_ablation_tsn(once):
    results = once(run_ablation_tsn, messages=150)
    fifo, tsn = results["fifo"], results["tsn"]
    assert tsn.count > 0 and fifo.count > 0
    # TSN delivers everything; FIFO may lose time-sensitive packets
    assert tsn.delivered_fraction >= fifo.delivered_fraction
    # TSN cuts mean and p99 latency substantially
    assert tsn.mean < 0.7 * fifo.mean
    assert tsn.percentile(99) < 0.8 * fifo.percentile(99)
