"""Table 1: the end-host networking technology comparison matrix."""

from repro.bench.runner import run_table1


def test_table1_capabilities(once):
    rows = once(run_table1)
    by_name = {row[0]: row for row in rows}
    assert set(by_name) == {"udp", "xdp", "dpdk", "rdma"}
    # kernel integration column
    assert by_name["udp"][1] == "in-kernel"
    assert by_name["xdp"][1] == "in-kernel"
    assert by_name["dpdk"][1] == "kernel-bypassing"
    assert by_name["rdma"][1] == "kernel-bypassing"
    # zero-copy: everything but the kernel stack
    assert by_name["udp"][3] == "no"
    for tech in ("xdp", "dpdk", "rdma"):
        assert by_name[tech][3] == "yes"
    # only RDMA needs dedicated hardware
    assert by_name["rdma"][5] == "yes"
    assert all(by_name[t][5] == "no" for t in ("udp", "xdp", "dpdk"))
