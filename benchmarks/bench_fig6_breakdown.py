"""Fig. 6: INSANE fast latency breakdown (64 B) on both testbeds.

Shape asserted (paper §6.2): cloud totals ~2x local (paper: 10.43 vs
4.95 us); the cloud increase comes from the network (the switch) AND from
visibly larger send/receive components (the slower EPYC processor hits the
runtime's IPC-heavy path hardest).
"""

from repro.bench.runner import run_fig6


def test_fig6_breakdown(once):
    results = once(run_fig6, rounds=300)
    local, cloud = results["local"], results["cloud"]
    local_total = sum(local.values())
    cloud_total = sum(cloud.values())
    # totals match Fig. 7's INSANE fast averages (4.95 / 10.43 us) within 10 %
    assert abs(local_total - 4.95) / 4.95 < 0.10
    assert abs(cloud_total - 10.43) / 10.43 < 0.10
    # the switch inflates the network component
    assert cloud["network"] > 2 * local["network"]
    # the slower processor inflates send and receive, not just the network
    assert cloud["send"] > 1.4 * local["send"]
    assert cloud["receive"] > 1.3 * local["receive"]
