"""Table 3: LoC of the benchmarking application per interface.

Paper: INSANE 189, UDP socket 227 (+20 %), DPDK 384 (+103 %).  We assert
the *relative* shape on our runnable Python implementations: UDP costs
roughly a fifth more code than INSANE, DPDK roughly twice as much.
"""

from repro.bench.runner import run_table3


def test_table3_loc(once):
    rows = once(run_table3)
    loc = {row["interface"]: row["loc"] for row in rows}
    assert loc["insane"] < loc["udp"] < loc["dpdk"]
    udp_increase = (loc["udp"] - loc["insane"]) / loc["insane"]
    dpdk_increase = (loc["dpdk"] - loc["insane"]) / loc["insane"]
    assert 0.10 <= udp_increase <= 0.35      # paper: +20 %
    assert 0.80 <= dpdk_increase <= 1.30     # paper: +103 %
