"""Ablation A3: opportunistic batching (paper §6.2).

The paper attributes INSANE fast's Fig. 8a advantage over Catnip to
sender-side opportunistic batching: "messages ready for send are sent as a
batch, but never waiting for a fixed-size batch to fill up".  Disabling it
must cost a large fraction of throughput while leaving latency intact.
"""

import pytest

from repro.bench.ablations import run_ablation_batching
from repro.bench.harness import run_pingpong
from repro.core.config import RuntimeConfig


def test_ablation_batching_throughput(once):
    results = once(run_ablation_batching, messages=6000)
    assert results["no-batching"] < 0.6 * results["batching"]


def test_batching_does_not_harm_latency(once):
    """Opportunistic: a lone packet is never held back for a batch."""

    def measure():
        batched = run_pingpong("insane_fast", rounds=300, size=64)
        unbatched = run_pingpong(
            "insane_fast",
            rounds=300,
            size=64,
            config=RuntimeConfig(opportunistic_batching=False, tx_burst=1),
        )
        return batched.mean, unbatched.mean

    batched_mean, unbatched_mean = once(measure)
    assert batched_mean == pytest.approx(unbatched_mean, rel=0.05)
