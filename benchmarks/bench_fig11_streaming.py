"""Fig. 11: LUNAR Streaming vs sendfile (FPS and per-frame latency).

Shape asserted (paper §7.2): LUNAR fast consistently beats sendfile; FPS
above 1000 for low-quality images and above 100 up to 4K; latency below
10 ms up to 4K; FPS decreases and latency increases monotonically with
resolution for every system.
"""

from repro.bench.runner import run_fig11


def test_fig11_streaming(once):
    results = once(run_fig11, quick=True)
    resolutions = ("HD", "FullHD", "2K", "4K", "8K")
    # LUNAR fast consistently performs better than the sendfile version
    for resolution in resolutions:
        fast_fps, fast_ms = results[("lunar_fast", resolution)]
        sendfile_fps, sendfile_ms = results[("sendfile", resolution)]
        slow_fps, _slow_ms = results[("lunar_slow", resolution)]
        assert fast_fps > 2 * sendfile_fps
        assert fast_ms < sendfile_ms
        assert fast_fps > slow_fps
    # >1000 FPS for low-quality images, >100 FPS up to 4K
    assert results[("lunar_fast", "HD")][0] > 1000
    for resolution in ("FullHD", "2K", "4K"):
        assert results[("lunar_fast", resolution)][0] > 100
    # latency never exceeds 10 ms up to 4K
    for resolution in ("HD", "FullHD", "2K", "4K"):
        assert results[("lunar_fast", resolution)][1] < 10.0
    # monotone in resolution
    for system in ("lunar_fast", "lunar_slow", "sendfile"):
        fps_series = [results[(system, r)][0] for r in resolutions]
        ms_series = [results[(system, r)][1] for r in resolutions]
        assert fps_series == sorted(fps_series, reverse=True)
        assert ms_series == sorted(ms_series)
