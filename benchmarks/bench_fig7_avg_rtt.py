"""Fig. 7: average 64 B RTT of seven systems on both testbeds.

This is the paper's headline latency experiment; our calibration targets
its absolute values, so the assertions here are quantitative (±8 %) where
the paper states a number, plus the orderings the paper discusses.
"""

import pytest

from repro.bench.runner import PAPER_FIG7, run_fig7

ROUNDS = 500


def check_profile(results, profile):
    for system, paper_us in PAPER_FIG7[profile].items():
        if paper_us is None:
            continue
        measured_us = results[system].mean / 1000.0
        assert measured_us == pytest.approx(paper_us, rel=0.08), (
            "%s/%s: measured %.2f us, paper %.2f us" % (profile, system, measured_us, paper_us)
        )
    # orderings the paper calls out explicitly
    mean = {name: tally.mean for name, tally in results.items()}
    assert mean["raw_dpdk"] < mean["catnip"] < mean["insane_fast"]
    assert mean["udp_nonblocking"] < mean["catnap"] < mean["insane_slow"]
    assert mean["udp_blocking"] > 1.5 * mean["udp_nonblocking"]


def test_fig7a_local(once):
    results = once(run_fig7, profile="local", rounds=ROUNDS)
    check_profile(results, "local")


def test_fig7b_cloud(once):
    results = once(run_fig7, profile="cloud", rounds=ROUNDS)
    check_profile(results, "cloud")
