"""Shared configuration for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper and asserts
its qualitative shape (orderings, gaps, crossovers).  Results print to
stdout; run with ``pytest benchmarks/ --benchmark-only -s`` to see the
tables.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    Simulated experiments are deterministic: repeating them only re-measures
    host CPU speed, so a single round is the right cost/benefit.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
