"""Fig. 8b: INSANE fast per-sink goodput vs number of sinks (1 KB).

Shape asserted (paper §6.2): "for up to 6 concurrent sinks, the average
received throughput drops only by 8 % compared to the single-sink
solution. A significant degradation starts to emerge with 8 sinks
(-39 %)."
"""

import pytest

from repro.bench.runner import run_fig8b

MESSAGES = 8000


def test_fig8b_multisink(once):
    results = once(run_fig8b, messages=MESSAGES)
    single = results[1]
    # paper anchor: 25.98 Gbps single sink
    assert single == pytest.approx(25.98, rel=0.10)
    # gentle degradation up to 6 sinks (paper: -8 %)
    for sinks in (2, 4, 6):
        drop = (single - results[sinks]) / single
        assert drop < 0.15, "%d sinks dropped %.0f%%" % (sinks, 100 * drop)
    # the cliff at 8 sinks (paper: -39 %)
    drop_8 = (single - results[8]) / single
    assert 0.25 < drop_8 < 0.55, "8 sinks dropped %.0f%%" % (100 * drop_8)
    # monotone non-increasing across the sweep
    ordered = [results[s] for s in (1, 2, 4, 6, 8)]
    assert all(a >= b - 0.5 for a, b in zip(ordered, ordered[1:]))
