"""Fig. 5: RTT for increasing payload sizes, local and cloud testbeds.

Shape asserted (paper §6.2): raw DPDK < INSANE fast << kernel UDP < INSANE
slow on both testbeds; INSANE adds ~1 us RTT over its native technology;
payload size barely matters; the cloud testbed is uniformly slower.
"""

import pytest

from repro.bench.runner import FIG5_SIZES, run_fig5

ROUNDS = 400


@pytest.fixture(scope="module")
def local_results():
    return run_fig5(profile="local", rounds=ROUNDS)


def test_fig5a_local(once, local_results=None):
    results = once(run_fig5, profile="local", rounds=ROUNDS)
    for size in FIG5_SIZES:
        raw = results[("raw_dpdk", size)].median
        fast = results[("insane_fast", size)].median
        udp = results[("udp_nonblocking", size)].median
        slow = results[("insane_slow", size)].median
        assert raw < fast < udp < slow
        # INSANE adds around 1 us RTT to each native technology
        assert 500 < fast - raw < 2500
        assert 500 < slow - udp < 2500
    # flat across payload sizes
    fast_64 = results[("insane_fast", 64)].median
    fast_1k = results[("insane_fast", 1024)].median
    assert (fast_1k - fast_64) / fast_64 < 0.2


def test_fig5b_cloud(once):
    results = once(run_fig5, profile="cloud", rounds=ROUNDS)
    for size in FIG5_SIZES:
        assert (
            results[("raw_dpdk", size)].median
            < results[("insane_fast", size)].median
            < results[("udp_nonblocking", size)].median
            < results[("insane_slow", size)].median
        )


def test_fig5_cloud_slower_than_local(once):
    def both():
        return (
            run_fig5(profile="local", rounds=ROUNDS),
            run_fig5(profile="cloud", rounds=ROUNDS),
        )

    local, cloud = once(both)
    for key, local_tally in local.items():
        assert cloud[key].median > local_tally.median
