"""XDP and RDMA datapath tests (the technologies the paper describes in §3
but had not yet integrated in its prototype)."""

import pytest

from repro.datapaths import RdmaDatapath, XdpDatapath
from repro.hw import LOCAL_TESTBED, Testbed
from repro.netstack import Packet
from tests.datapaths.conftest import mean, run_dpdk_pingpong, run_udp_pingpong


def rdma_testbed(seed=0):
    return Testbed(LOCAL_TESTBED.replace(rdma_nic=True), seed=seed)


class TestXdp:
    def test_round_trip_delivery(self):
        bed = Testbed.local(seed=1)
        sim = bed.sim
        a, b = bed.hosts
        dp_a, dp_b = XdpDatapath(a), XdpDatapath(b)
        dp_a.open_port(7700)
        queue_b = dp_b.open_port(7700)
        got = []

        def tx():
            yield from dp_a.send(Packet(a.ip, b.ip, 7700, 7700, payload=b"xdp!"))

        def rx():
            batch = yield from dp_b.recv_burst(queue_b)
            got.extend(p.payload_bytes() for p in batch)

        sim.process(tx())
        sim.process(rx())
        sim.run()
        assert got == [b"xdp!"]

    def test_availability_follows_profile(self):
        assert XdpDatapath.available(LOCAL_TESTBED)
        assert not XdpDatapath.available(LOCAL_TESTBED.replace(xdp_capable=False))

    def test_xdp_latency_between_udp_and_dpdk(self):
        bed = Testbed.local(seed=2)
        sim = bed.sim
        a, b = bed.hosts
        dp_a, dp_b = XdpDatapath(a), XdpDatapath(b)
        queue_a = dp_a.open_port(7701)
        queue_b = dp_b.open_port(7701)
        rtts = []

        def client():
            for _ in range(200):
                start = sim.now
                yield from dp_a.send(Packet(a.ip, b.ip, 7701, 7701, payload_len=64))
                yield from dp_a.recv_burst(queue_a)
                rtts.append(sim.now - start)

        def server():
            while True:
                batch = yield from dp_b.recv_burst(queue_b)
                for packet in batch:
                    yield from dp_b.send(Packet(b.ip, a.ip, 7701, 7701, payload_len=packet.payload_len))

        sim.process(server())
        sim.process(client())
        sim.run()
        xdp_rtt = mean(rtts)
        dpdk_rtt = mean(run_dpdk_pingpong(Testbed.local(seed=3), 200, 64))
        udp_rtt = mean(run_udp_pingpong(Testbed.local(seed=4), 200, 64))
        assert dpdk_rtt < xdp_rtt < udp_rtt


class TestRdma:
    def test_requires_rdma_nic(self):
        assert not RdmaDatapath.available(LOCAL_TESTBED)
        assert RdmaDatapath.available(LOCAL_TESTBED.replace(rdma_nic=True))

    def test_two_sided_send_recv(self):
        bed = rdma_testbed(seed=5)
        sim = bed.sim
        a, b = bed.hosts
        qp_a = RdmaDatapath(a).create_qp(7800)
        qp_b = RdmaDatapath(b).create_qp(7800)
        got = []

        def tx():
            yield from qp_a.post_send(Packet(a.ip, b.ip, 7800, 7800, payload=b"verbs"))

        def rx():
            batch = yield from qp_b.poll_recv()
            got.extend(p.payload_bytes() for p in batch)

        sim.process(tx())
        sim.process(rx())
        sim.run()
        assert got == [b"verbs"]
        assert qp_a.posted_sends.value == 1
        assert qp_b.completions.value == 1

    def test_duplicate_qp_rejected(self):
        bed = rdma_testbed(seed=6)
        dp = RdmaDatapath(bed.hosts[0])
        dp.create_qp(7900)
        with pytest.raises(ValueError):
            dp.create_qp(7900)

    def test_recv_depth_bounds_unconsumed_messages(self):
        """Without pre-posted receives, extra messages drop (RNR)."""
        bed = rdma_testbed(seed=7)
        sim = bed.sim
        a, b = bed.hosts
        qp_a = RdmaDatapath(a).create_qp(8000)
        RdmaDatapath(b).create_qp(8000, recv_depth=4)

        def tx():
            for _ in range(10):
                yield from qp_a.post_send(Packet(a.ip, b.ip, 8000, 8000, payload_len=64))

        sim.process(tx())
        sim.run()
        assert b.nic.rx_dropped.value == 6

    def test_rdma_is_fastest_technology(self):
        bed = rdma_testbed(seed=8)
        sim = bed.sim
        a, b = bed.hosts
        qp_a = RdmaDatapath(a).create_qp(8100)
        qp_b = RdmaDatapath(b).create_qp(8100)
        rtts = []

        def client():
            for _ in range(200):
                start = sim.now
                yield from qp_a.post_send(Packet(a.ip, b.ip, 8100, 8100, payload_len=64))
                yield from qp_a.poll_recv()
                rtts.append(sim.now - start)

        def server():
            while True:
                batch = yield from qp_b.poll_recv()
                for packet in batch:
                    yield from qp_b.post_send(Packet(b.ip, a.ip, 8100, 8100, payload_len=64))

        sim.process(server())
        sim.process(client())
        sim.run()
        rdma_rtt = mean(rtts)
        dpdk_rtt = mean(run_dpdk_pingpong(Testbed.local(seed=9), 200, 64))
        assert rdma_rtt < dpdk_rtt
        # the paper quotes sub-microsecond one-way latency for RDMA
        assert rdma_rtt / 2 < 1_500
