"""ARP-over-the-wire tests for the DPDK datapath's control path."""

import pytest

from repro.datapaths import DpdkDatapath
from repro.hw import Testbed
from repro.netstack import MacAddress
from repro.netstack.arp import ArpTimeout


def make_pair(seed=0):
    bed = Testbed.local(seed=seed)
    dp_a = DpdkDatapath(bed.hosts[0])
    dp_b = DpdkDatapath(bed.hosts[1])
    dp_a.enable_arp()
    dp_b.enable_arp()
    return bed, dp_a, dp_b


def test_resolution_over_the_wire():
    bed, dp_a, dp_b = make_pair()
    results = []

    def worker():
        mac = yield from dp_a.resolve("10.0.0.2")
        results.append(mac)

    bed.sim.process(worker())
    bed.sim.run()
    assert results == [MacAddress.from_index(2)]
    # exactly one request and one reply crossed the wire
    assert bed.hosts[0].nic.tx_frames.value == 1
    assert bed.hosts[1].nic.tx_frames.value == 1


def test_responder_learns_requester_binding():
    """Receiving a request teaches the responder the sender's MAC, so the
    reverse resolution needs no wire traffic."""
    bed, dp_a, dp_b = make_pair(seed=1)

    def forward():
        yield from dp_a.resolve("10.0.0.2")

    bed.sim.process(forward())
    bed.sim.run()
    assert dp_b.arp.lookup("10.0.0.1") == MacAddress.from_index(1)
    assert dp_b.arp.requests_sent == 0


def test_resolution_timeout_when_peer_unreachable():
    bed, dp_a, _dp_b = make_pair(seed=2)
    for link in bed.links:
        link.loss_rate = 1.0
    errors = []

    def worker():
        try:
            yield from dp_a.resolve("10.0.0.2")
        except ArpTimeout as exc:
            errors.append(exc)

    bed.sim.process(worker())
    bed.sim.run()
    assert len(errors) == 1
    assert dp_a.arp.requests_sent == dp_a.arp.max_retries


def test_resolve_requires_enable():
    bed = Testbed.local(seed=3)
    dp = DpdkDatapath(bed.hosts[0])
    with pytest.raises(RuntimeError):
        next(dp.resolve("10.0.0.2"))


def test_enable_arp_idempotent():
    bed = Testbed.local(seed=4)
    dp = DpdkDatapath(bed.hosts[0])
    assert dp.enable_arp() is dp.enable_arp()


def test_arp_traffic_does_not_disturb_data_queues():
    bed, dp_a, dp_b = make_pair(seed=5)
    data_queue = dp_b.open_port(7000)

    def worker():
        yield from dp_a.resolve("10.0.0.2")

    bed.sim.process(worker())
    bed.sim.run()
    assert len(data_queue) == 0
    assert len(bed.hosts[1].nic.rx_ring) == 0
