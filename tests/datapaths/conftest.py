"""Shared fixtures and ping-pong drivers for datapath tests."""

import pytest

from repro.datapaths import DpdkDatapath, KernelUdpDatapath
from repro.hw import Testbed
from repro.netstack import Packet


@pytest.fixture
def local_bed():
    return Testbed.local(seed=1)


def run_udp_pingpong(bed, rounds, size, blocking=False, port=7000):
    """Drive a UDP ping-pong; returns per-round RTTs in ns."""
    sim = bed.sim
    a, b = bed.hosts[0], bed.hosts[1]
    sock_a = KernelUdpDatapath.get(a).socket(port, blocking=blocking)
    sock_b = KernelUdpDatapath.get(b).socket(port, blocking=blocking)
    rtts = []

    def client():
        for _ in range(rounds):
            start = sim.now
            yield from sock_a.send(Packet(a.ip, b.ip, port, port, payload_len=size))
            yield from sock_a.recv()
            rtts.append(sim.now - start)

    def server():
        while True:
            packet = yield from sock_b.recv()
            yield from sock_b.send(
                Packet(b.ip, a.ip, port, port, payload_len=packet.payload_len)
            )

    sim.process(server(), name="server")
    sim.process(client(), name="client")
    sim.run()
    return rtts


def run_dpdk_pingpong(bed, rounds, size, port=7001):
    """Drive a raw-DPDK ping-pong; returns per-round RTTs in ns."""
    sim = bed.sim
    a, b = bed.hosts[0], bed.hosts[1]
    dp_a = DpdkDatapath(a)
    dp_b = DpdkDatapath(b)
    queue_a = dp_a.open_port(port)
    queue_b = dp_b.open_port(port)
    rtts = []

    def client():
        for _ in range(rounds):
            start = sim.now
            yield from dp_a.send(Packet(a.ip, b.ip, port, port, payload_len=size))
            packets = yield from dp_a.recv_burst(queue_a)
            for packet in packets:
                DpdkDatapath.release_rx(packet)
            rtts.append(sim.now - start)

    def server():
        while True:
            packets = yield from dp_b.recv_burst(queue_b)
            for packet in packets:
                DpdkDatapath.release_rx(packet)
                yield from dp_b.send(
                    Packet(b.ip, a.ip, port, port, payload_len=packet.payload_len)
                )

    sim.process(server(), name="server")
    sim.process(client(), name="client")
    sim.run()
    return rtts


def mean(values):
    return sum(values) / len(values)
