"""Kernel UDP datapath tests, including Fig. 7 latency calibration."""

import pytest

from repro.datapaths import KernelUdpDatapath
from repro.hw import Testbed
from repro.netstack import Packet
from tests.datapaths.conftest import mean, run_udp_pingpong


def test_datagram_delivery_end_to_end(local_bed):
    sim = local_bed.sim
    a, b = local_bed.hosts
    sock = KernelUdpDatapath.get(b).socket(9000)
    sender = KernelUdpDatapath.get(a).socket(9000)
    received = []

    def tx():
        yield from sender.send(Packet(a.ip, b.ip, 9000, 9000, payload=b"hello"))

    def rx():
        packet = yield from sock.recv()
        received.append(packet)

    sim.process(tx())
    sim.process(rx())
    sim.run()
    assert len(received) == 1
    assert received[0].payload_bytes() == b"hello"


def test_demux_by_destination_port(local_bed):
    sim = local_bed.sim
    a, b = local_bed.hosts
    dp_b = KernelUdpDatapath.get(b)
    sock_1 = dp_b.socket(9001)
    sock_2 = dp_b.socket(9002)
    sender = KernelUdpDatapath.get(a).socket(9009)

    def tx():
        yield from sender.send(Packet(a.ip, b.ip, 9009, 9001, payload=b"one"))
        yield from sender.send(Packet(a.ip, b.ip, 9009, 9002, payload=b"two"))

    sim.process(tx())
    sim.run()
    assert len(sock_1.buffer) == 1
    assert len(sock_2.buffer) == 1


def test_packet_to_unbound_port_dropped(local_bed):
    sim = local_bed.sim
    a, b = local_bed.hosts
    dp_b = KernelUdpDatapath.get(b)
    sender = KernelUdpDatapath.get(a).socket(9000)

    def tx():
        yield from sender.send(Packet(a.ip, b.ip, 9000, 4242, payload=b"lost"))

    sim.process(tx())
    sim.run()
    assert dp_b.no_socket_drops.value == 1


def test_double_bind_rejected(local_bed):
    dp = KernelUdpDatapath.get(local_bed.hosts[0])
    dp.socket(9100)
    with pytest.raises(ValueError):
        dp.socket(9100)


def test_closed_socket_rejects_io(local_bed):
    dp = KernelUdpDatapath.get(local_bed.hosts[0])
    sock = dp.socket(9200)
    sock.close()
    with pytest.raises(RuntimeError):
        next(sock.send(Packet("10.0.0.1", "10.0.0.2", 9200, 9200, payload=b"x")))
    # the port can be rebound after close
    dp.socket(9200)


def test_singleton_per_host(local_bed):
    a = local_bed.hosts[0]
    assert KernelUdpDatapath.get(a) is KernelUdpDatapath.get(a)


class TestLatencyCalibration:
    """RTT medians must land on the paper's Fig. 7 values (±5 %)."""

    def test_nonblocking_udp_local_rtt(self):
        rtts = run_udp_pingpong(Testbed.local(seed=2), rounds=300, size=64)
        assert mean(rtts) == pytest.approx(12_580, rel=0.05)

    def test_blocking_udp_local_rtt(self):
        rtts = run_udp_pingpong(Testbed.local(seed=3), rounds=300, size=64, blocking=True)
        assert mean(rtts) == pytest.approx(27_200, rel=0.05)

    def test_nonblocking_udp_cloud_rtt(self):
        rtts = run_udp_pingpong(Testbed.cloud(seed=4), rounds=300, size=64)
        assert mean(rtts) == pytest.approx(19_100, rel=0.05)

    def test_payload_size_changes_rtt_mildly(self):
        small = mean(run_udp_pingpong(Testbed.local(seed=5), rounds=200, size=64))
        large = mean(run_udp_pingpong(Testbed.local(seed=6), rounds=200, size=1024))
        assert large > small
        # paper Fig. 5: "no significant difference among payload sizes"
        assert (large - small) / small < 0.15
