"""DPDK datapath tests: steering, mempool lifecycle, burst amortization,
and Fig. 7 latency calibration."""

import pytest

from repro.datapaths import DpdkDatapath, KernelUdpDatapath
from repro.hw import Testbed
from repro.netstack import Packet
from tests.datapaths.conftest import mean, run_dpdk_pingpong


def test_steered_traffic_bypasses_kernel(local_bed):
    sim = local_bed.sim
    a, b = local_bed.hosts
    kernel_b = KernelUdpDatapath.get(b)
    dp_b = DpdkDatapath(b)
    queue = dp_b.open_port(7100)
    dp_a = DpdkDatapath(a)

    def tx():
        yield from dp_a.send(Packet(a.ip, b.ip, 7100, 7100, payload=b"fast"))

    sim.process(tx())
    sim.run()
    # the packet sits in the DPDK queue, untouched by the kernel
    assert len(queue) == 1
    assert kernel_b.rx_packets.value == 0
    assert len(b.nic.rx_ring) == 0


def test_payload_staged_into_mempool(local_bed):
    sim = local_bed.sim
    a, b = local_bed.hosts
    dp_b = DpdkDatapath(b)
    queue = dp_b.open_port(7200)
    dp_a = DpdkDatapath(a)
    received = []

    def tx():
        yield from dp_a.send(Packet(a.ip, b.ip, 7200, 7200, payload=b"zero-copy"))

    def rx():
        packets = yield from dp_b.recv_burst(queue)
        received.extend(packets)

    sim.process(tx())
    sim.process(rx())
    sim.run()
    (packet,) = received
    assert packet.payload_bytes() == b"zero-copy"
    assert dp_b.mempool.in_use == 1
    DpdkDatapath.release_rx(packet)
    assert dp_b.mempool.in_use == 0


def test_mempool_exhaustion_drops_packets():
    bed = Testbed.local(seed=9)
    sim = bed.sim
    a, b = bed.hosts
    from repro.core.memory import SlotPool

    tiny_pool = SlotPool(sim, slots=2, slot_bytes=2048, name="tiny")
    dp_b = DpdkDatapath(b, mempool=tiny_pool)
    queue = dp_b.open_port(7300)
    dp_a = DpdkDatapath(a)
    received = []

    def tx():
        for index in range(5):
            yield from dp_a.send(Packet(a.ip, b.ip, 7300, 7300, payload_len=64))

    def rx():
        while len(received) + dp_b.mempool_drops.value < 5:
            packets = yield from dp_b.recv_burst(queue)
            received.extend(packets)  # never released: pool starves

    sim.process(tx())
    sim.process(rx())
    sim.run()
    assert len(received) == 2
    assert dp_b.mempool_drops.value == 3


def test_duplicate_steering_rejected(local_bed):
    dp = DpdkDatapath(local_bed.hosts[0])
    dp.open_port(7400)
    with pytest.raises(ValueError):
        dp.open_port(7400)
    dp.close_port(7400)
    dp.open_port(7400)


def test_burst_amortizes_fixed_costs():
    """Sending 32 packets as one burst must be much cheaper per packet
    than 32 single sends."""
    bed = Testbed.local(seed=11)
    sim = bed.sim
    a, b = bed.hosts
    dp = DpdkDatapath(a)
    timings = {}

    def single():
        start = sim.now
        for _ in range(32):
            yield from dp.send(Packet(a.ip, b.ip, 7500, 7500, payload_len=64))
        timings["single"] = sim.now - start

    sim.process(single())
    sim.run()

    def burst():
        start = sim.now
        packets = [Packet(a.ip, b.ip, 7500, 7500, payload_len=64) for _ in range(32)]
        yield from dp.send_many(packets)
        timings["burst"] = sim.now - start

    sim.process(burst())
    sim.run()
    assert timings["burst"] < 0.55 * timings["single"]


class TestLatencyCalibration:
    """Raw DPDK RTT must land on the paper's Fig. 7 values (±5 %)."""

    def test_raw_dpdk_local_rtt(self):
        rtts = run_dpdk_pingpong(Testbed.local(seed=12), rounds=300, size=64)
        assert mean(rtts) == pytest.approx(3_440, rel=0.05)

    def test_raw_dpdk_cloud_rtt(self):
        rtts = run_dpdk_pingpong(Testbed.cloud(seed=13), rounds=300, size=64)
        assert mean(rtts) == pytest.approx(6_550, rel=0.05)

    def test_rtt_flat_across_payload_sizes(self):
        small = mean(run_dpdk_pingpong(Testbed.local(seed=14), rounds=200, size=64))
        large = mean(run_dpdk_pingpong(Testbed.local(seed=15), rounds=200, size=1024))
        assert (large - small) / small < 0.15
