"""Invariant checkers: clean runs pass, corrupted ledgers are caught.

The "teeth" tests matter as much as the clean sweeps: each checker is fed
a deliberately corrupted copy of a real run and must flag exactly the
planted defect — otherwise a green property suite proves nothing.
"""

import copy

import pytest

from repro.validate.properties import (
    check_conservation,
    check_exactly_once,
    check_fifo,
    check_outcome_totals,
    check_qos_mapping,
    check_run,
    check_time_monotone,
    property_report,
)
from repro.validate.workloads import random_spec, run_spec


@pytest.fixture(scope="module")
def clean_runs():
    """A few representative runs, shared across this module (read-only)."""
    return {seed: run_spec(random_spec(seed)) for seed in (0, 2, 5)}


def corrupted(result):
    """A deep, independently mutable copy of a run result."""
    return copy.deepcopy(result)


class TestCleanRuns:
    @pytest.mark.parametrize("seed", range(10))
    def test_every_invariant_holds(self, seed):
        result = run_spec(random_spec(seed))
        violations = check_run(result)
        assert violations == [], "\n".join(violations)

    def test_report_shape(self, clean_runs):
        report = property_report(clean_runs[0])
        assert report["ok"] is True
        assert report["violations"] == []
        assert report["events"] > 0
        assert report["emitted"] > 0

    def test_faulted_specs_also_clean(self):
        # seed 0 strands every datapath; seed 5 runs a real failover
        for seed in (0, 5):
            spec = random_spec(seed)
            assert spec.fault_plan, "fixture seeds must carry fault plans"
            violations = check_run(run_spec(spec))
            assert violations == [], "\n".join(violations)


class TestCheckerTeeth:
    def test_time_monotone_catches_backwards_clock(self, clean_runs):
        result = corrupted(clean_runs[0])
        result.trace.events.append(("charge", -5.0, "host0", 1.0, 1.0))
        problems = check_time_monotone(result)
        assert any("negative timestamp" in p for p in problems)
        assert any("went backwards" in p for p in problems)

    def test_outcome_totals_catch_phantom_outcome(self, clean_runs):
        result = corrupted(clean_runs[0])
        result.ledger["outcomes"]["sent"] = (
            result.ledger["outcomes"].get("sent", 0) + 1
        )
        problems = check_outcome_totals(result)
        assert any("outcome total" in p for p in problems)

    def test_conservation_catches_invented_delivery(self, clean_runs):
        result = corrupted(clean_runs[2])
        result.ledger["counters"]["consumed"] += 1
        problems = check_conservation(result)
        assert any("sink delivery attempts" in p for p in problems)

    def test_conservation_catches_lost_datapath_frame(self, clean_runs):
        result = corrupted(clean_runs[2])
        result.ledger["counters"]["tx_datapath"] += 1
        problems = check_conservation(result)
        assert problems, "a frame leak must break at least one identity"

    def test_fifo_catches_duplicate_delivery(self, clean_runs):
        result = corrupted(clean_runs[2])  # fault-free streaming run
        label, seqs = next(iter(sorted(result.ledger["deliveries"].items())))
        assert seqs, "fixture must deliver something"
        seqs.append(seqs[-1])
        problems = check_fifo(result)
        assert any("duplicate" in p for p in problems)

    def test_fifo_catches_reordering_on_fault_free_run(self, clean_runs):
        result = corrupted(clean_runs[2])
        label, seqs = next(iter(sorted(result.ledger["deliveries"].items())))
        assert len(seqs) >= 2
        seqs[0], seqs[1] = seqs[1], seqs[0]
        problems = check_fifo(result)
        assert any("out-of-order" in p for p in problems)

    def test_fifo_catches_never_emitted_seq(self, clean_runs):
        result = corrupted(clean_runs[2])
        label, seqs = next(iter(sorted(result.ledger["deliveries"].items())))
        seqs.append(10_000_000)
        problems = check_fifo(result)
        assert any("never-emitted" in p for p in problems)

    def test_qos_catches_policy_excluded_datapath(self, clean_runs):
        result = corrupted(clean_runs[0])  # seed 0 is a slow-policy spec
        record = result.ledger["streams"][0]
        assert not record["accelerated"]
        record["initial"] = "dpdk"
        problems = check_qos_mapping(result)
        assert any("slow policy" in p and "dpdk" in p for p in problems)

    def test_qos_catches_unwarned_fallback(self, clean_runs):
        result = corrupted(clean_runs[2])  # accelerated streaming run
        record = result.ledger["streams"][0]
        assert record["accelerated"]
        record["final"] = "udp"
        result.ledger["warnings"] = []
        problems = check_qos_mapping(result)
        assert any("no fallback warning" in p for p in problems)

    def test_exactly_once_catches_duplicate_event(self, clean_runs):
        result = corrupted(clean_runs[5])  # seed 5: one real failover
        events = result.ledger["failover_events"]
        assert len(events) == 1
        events.append(copy.deepcopy(events[0]))
        problems = check_exactly_once(result)
        assert any("duplicate failover event" in p for p in problems)

    def test_exactly_once_catches_missed_detection(self, clean_runs):
        result = corrupted(clean_runs[5])
        fires = [
            entry for entry in result.ledger["fault_events"]
            if entry[1] == "datapath_failure" and entry[2] == "fire"
        ]
        assert fires, "seed 5 must fire a datapath failure"
        result.ledger["failover_events"] = []
        problems = check_exactly_once(result)
        assert any("expected 1 failover event(s), saw 0" in p
                   for p in problems)
