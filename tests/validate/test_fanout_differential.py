"""Fluid-vs-DES fan-out differential: the hybrid engine's error bound."""

import json

from repro.fluid import calibrate_envelope
from repro.validate.cli import main
from repro.validate.fanout import (
    format_fanout_differential,
    run_fanout_differential,
)


class TestDifferential:
    def test_small_populations_agree(self):
        envelope = calibrate_envelope(profile="local", size=512, seed=7919)
        result = run_fanout_differential(
            subscribers=(64, 128), messages=12, size=512,
            hot_fraction=0.05, epsilon=0.15, envelope=envelope)
        assert result["ok"], result
        assert result["delivered_exact"]
        assert result["wire_conserved"]
        assert len(result["cells"]) == 4  # 2 populations x 2 hybrid splits
        table = format_fanout_differential(result)
        assert "p50" in table

    def test_cli_subcommand_reports_and_exits_zero(self, capsys, tmp_path):
        out = tmp_path / "fanout.json"
        assert main(["fanout", "--subscribers", "64", "--n", "8",
                     "--size", "512", "--json", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "fan-out differential" in captured.lower() or "64" in captured
        reports = json.loads(out.read_text())
        assert any(r["kind"] == "validate.fanout" for r in reports)
