"""The differential oracle: fast vs legacy engine, bit for bit."""

import pytest

from repro.validate.canonical import CanonicalTrace
from repro.validate.differential import (
    compare_spec,
    first_difference,
    perturbed_profile,
    run_differential,
)
from repro.validate.workloads import random_spec


class TestOracle:
    def test_engines_agree_bit_for_bit_on_random_workloads(self):
        checked, divergences = run_differential(seed=0, n=8)
        assert checked == 8
        assert divergences == [], divergences[0].report()

    def test_traces_not_trivially_empty(self):
        divergence, fast, legacy = compare_spec(random_spec(0))
        assert divergence is None
        assert len(fast.trace) > 50
        assert fast.trace.digest() == legacy.trace.digest()

    @pytest.mark.slow
    def test_fifty_workload_acceptance_sweep(self):
        checked, divergences = run_differential(seed=0, n=50)
        assert checked == 50
        assert divergences == [], divergences[0].report()


class TestPerturbationSelfTest:
    """Scaling one cost-model stage on one side MUST be caught."""

    def test_perturbed_stage_cost_diverges_with_named_event(self):
        checked, divergences = run_differential(
            seed=0, n=8, perturb="insane_ipc=1.01"
        )
        assert len(divergences) == 1
        assert checked == 1  # stops at the first divergence
        report = divergences[0].report()
        assert "first differing canonical event" in report
        assert "repro: insane-validate repro --seed 0" in report
        assert divergences[0].fast_line != divergences[0].legacy_line

    def test_tiny_per_byte_perturbation_still_caught(self):
        checked, divergences = run_differential(
            seed=0, n=8, perturb="dpdk_tx=1.001"
        )
        assert divergences, "a 0.1% datapath cost change must not pass"

    def test_unknown_stage_key_fails_loudly(self):
        with pytest.raises(KeyError):
            perturbed_profile("local", "no_such_stage=2.0")

    def test_identity_factor_does_not_diverge(self):
        _checked, divergences = run_differential(
            seed=0, n=3, perturb="insane_ipc=1.0"
        )
        assert divergences == []


class TestFirstDifference:
    def _trace(self, events, summary=None):
        return CanonicalTrace(events=list(events), summary=summary or {})

    def test_equal_traces_have_no_difference(self):
        a = self._trace([("emit", 1.0, "pub", 1, 0)])
        b = self._trace([("emit", 1.0, "pub", 1, 0)])
        assert first_difference(a, b) is None

    def test_first_differing_line_is_indexed(self):
        a = self._trace([("emit", 1.0, "x"), ("deliver", 2.0, "x")])
        b = self._trace([("emit", 1.0, "x"), ("deliver", 2.5, "x")])
        index, fast_line, legacy_line = first_difference(a, b)
        assert index == 1
        assert "2.0" in fast_line and "2.5" in legacy_line

    def test_length_mismatch_reports_end_of_trace(self):
        a = self._trace([("emit", 1.0, "x"), ("deliver", 2.0, "x")])
        b = self._trace([("emit", 1.0, "x")])
        index, fast_line, legacy_line = first_difference(a, b)
        assert legacy_line == "<end of trace>"
        assert "deliver" in fast_line
