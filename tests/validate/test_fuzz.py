"""The seeded fuzzer and its greedy shrinker."""

from dataclasses import replace

import pytest

from repro.validate.fuzz import FuzzFailure, check_spec, fuzz, shrink
from repro.validate.workloads import WorkloadSpec, random_spec


class TestFuzz:
    def test_smoke_run_is_clean(self):
        checked, failures = fuzz(seed=0, n=6)
        assert checked == 6
        assert failures == [], failures[0].report()

    def test_check_spec_matches_property_suite(self):
        assert check_spec(random_spec(3)) == []

    @pytest.mark.slow
    def test_soak_with_differential_cross_check(self):
        checked, failures = fuzz(seed=1000, n=40, differential=True)
        assert checked == 40
        assert failures == [], failures[0].report()


class TestShrink:
    def test_shrinks_to_a_compact_spec(self):
        # artificial invariant: specs with more than 10 messages "fail";
        # the shrinker must strip every irrelevant feature and land on the
        # smallest still-failing message count its moves can reach (11).
        fat = WorkloadSpec(
            seed=0, kind="pingpong", profile="cloud", messages=97,
            size=512, interval_ns=20_000.0, accelerated=True,
            constrained=True, time_sensitive=True, sinks=1,
            fault_plan=("random", 3, 4),
        )

        def check(spec):
            return ["too many messages"] if spec.messages > 10 else []

        shrunk, violations = shrink(fat, check=check, max_steps=200)
        assert violations == ["too many messages"]
        assert shrunk.messages == 11
        assert shrunk.kind == "stream"
        assert shrunk.profile == "local"
        assert shrunk.size == 32
        assert not shrunk.time_sensitive
        assert not shrunk.constrained
        assert shrunk.fault_plan == ()

    def test_passing_spec_is_returned_unchanged(self):
        spec = random_spec(3)
        shrunk, violations = shrink(spec, check=lambda s: [])
        assert shrunk == spec
        assert violations == []

    def test_crashing_candidate_counts_as_failing(self):
        # a shrink move must never "fix" a bug by crashing instead
        spec = replace(random_spec(3), messages=40)

        def check(s):
            if s.messages < 40:
                raise RuntimeError("boom")
            return ["original failure"]

        shrunk, violations = shrink(spec, check=check, max_steps=10)
        assert violations  # still failing, crash did not mask it
        assert any("crashed" in v or "original" in v for v in violations)

    def test_shrunk_spec_round_trips_as_repro_json(self):
        fat = replace(random_spec(7), messages=50)
        failure = FuzzFailure(
            spec=fat, violations=["x"], shrunk=fat, shrunk_violations=["x"],
        )
        report = failure.report()
        assert "repro JSON" in report
        start = report.index("{")
        end = report.index("}", start) + 1
        assert WorkloadSpec.from_json(report[start:end]) == fat
