"""Regression tests for bugs surfaced while building the validation
subsystem (ISSUE 3 satellite: divergence/fault bugs with pinned repros).

Two defects were found by running the property checkers over fuzzed
fault schedules:

1. ``DatapathFailure``/``DatapathStall`` aimed at a datapath the runtime
   never instantiated blew up *out of* ``sim.run()`` with a
   ``FaultInjectionError`` — a random fault schedule could kill an
   otherwise healthy run.  They now record a ``skip`` trace phase.
2. ``DatapathBinding.fail()`` silently discarded the count returned by
   ``_drop_scheduled()``, so packets stranded in the packet schedulers at
   failure time vanished from the accounting and broke packet
   conservation.  They are now counted in the ``sched_drops`` counter and
   surfaced through ``runtime.stats()``.
"""

from repro.core import QosPolicy, Session
from repro.core.runtime import InsaneDeployment
from repro.faults import FaultSchedule
from repro.hw import Testbed


def make_deployment():
    testbed = Testbed.local(seed=0)
    deployment = InsaneDeployment(testbed)
    return testbed, deployment, deployment.runtime(0)


class TestUninstantiatedBindingFaults:
    """Faults aimed at a binding that never existed must skip, not crash."""

    def test_datapath_failure_skips(self):
        testbed, deployment, _runtime = make_deployment()
        trace = FaultSchedule().datapath_failure(
            at=10_000.0, host=0, datapath="rdma"
        ).apply(testbed, deployment)
        testbed.sim.run()  # regression: raised FaultInjectionError here
        assert [
            (time_ns, kind, phase, target[:2])
            for time_ns, kind, phase, target in trace.events
        ] == [(10_000.0, "datapath_failure", "skip", ("host0", "rdma"))]

    def test_datapath_stall_skips(self):
        testbed, deployment, _runtime = make_deployment()
        trace = FaultSchedule().datapath_stall(
            at=10_000.0, for_ns=5_000.0, host=0, datapath="rdma"
        ).apply(testbed, deployment)
        testbed.sim.run()
        assert (10_000.0, "datapath_stall", "skip", ("host0", "rdma")) \
            in trace.events

    def test_instantiated_binding_still_fires(self):
        testbed, deployment, runtime = make_deployment()
        session = Session(runtime, "pub")
        stream = session.create_stream(QosPolicy.fast(), name="s")
        trace = FaultSchedule().datapath_failure(
            at=10_000.0, host=0, datapath=stream.datapath
        ).apply(testbed, deployment)
        testbed.sim.run()
        assert any(
            kind == "datapath_failure" and phase == "fire"
            for _, kind, phase, _ in trace.events
        )
        assert stream.failed or stream.datapath != "udp"


class _SchedulerPacket:
    """The minimal shape `_drop_scheduled` needs from a queued packet."""

    def __init__(self):
        self.tx_buffer = None


class TestSchedulerDropAccounting:
    def test_fail_counts_packets_stranded_in_scheduler(self):
        _testbed, _deployment, runtime = make_deployment()
        session = Session(runtime, "pub")
        stream = session.create_stream(QosPolicy.fast(), name="s")
        binding = runtime.bindings[stream.datapath]
        for _ in range(4):
            binding.fifo.push(_SchedulerPacket(), 0, now=0.0, flow=None)
        binding.fail("test: burst stranded mid-schedule")
        # regression: _drop_scheduled()'s return value was discarded
        assert binding.sched_drops.value == 4
        stats = runtime.stats()["bindings"][stream.datapath]
        assert stats["sched_drops"] == 4

    def test_sched_drops_zero_on_clean_binding(self):
        _testbed, _deployment, runtime = make_deployment()
        session = Session(runtime, "pub")
        stream = session.create_stream(QosPolicy.fast(), name="s")
        stats = runtime.stats()["bindings"][stream.datapath]
        assert stats["sched_drops"] == 0
