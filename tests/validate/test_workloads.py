"""Workload specs: generation, serialization, and the seeded driver."""

import json

from repro.validate.workloads import WorkloadSpec, random_spec, run_spec


class TestSpecs:
    def test_random_spec_is_deterministic(self):
        assert random_spec(17) == random_spec(17)
        assert random_spec(17) != random_spec(18)

    def test_json_round_trip_every_plan_shape(self):
        seen_plans = set()
        for seed in range(30):
            spec = random_spec(seed)
            again = WorkloadSpec.from_json(spec.to_json())
            assert again == spec
            seen_plans.add(spec.fault_plan[0] if spec.fault_plan else None)
        # the generator must exercise every fault-plan shape in 30 draws
        assert seen_plans >= {None, "failover", "strand", "random"}

    def test_to_json_is_plain_sorted_json(self):
        payload = json.loads(random_spec(0).to_json())
        assert payload["seed"] == 0
        assert sorted(payload) == list(payload)

    def test_bias_toward_fault_scenarios(self):
        plans = [random_spec(seed).fault_plan for seed in range(200)]
        faulted = [plan for plan in plans if plan]
        restores = [
            plan for plan in faulted
            if plan[0] == "failover" and plan[2] is not None
        ]
        assert len(faulted) >= 60          # ~half the corpus carries faults
        assert len(restores) >= 10         # restore-before-detect is covered
        assert any(plan[0] == "strand" for plan in faulted)


class TestDriver:
    def test_run_is_reproducible(self):
        spec = random_spec(4)
        first = run_spec(spec)
        second = run_spec(spec)
        assert first.trace.digest() == second.trace.digest()
        assert first.ledger["emitted"] == second.ledger["emitted"]

    def test_ledger_emit_bookkeeping_is_consistent(self):
        result = run_spec(random_spec(6))
        ledger = result.ledger
        assert ledger["emitted"] == sum(
            len(seqs) for seqs in ledger["emit_seqs"].values()
        )
        assert ledger["counters"]["consumed"] == sum(
            len(seqs) for seqs in ledger["deliveries"].values()
        )
        assert not ledger["failures"]

    def test_pingpong_alternates_both_directions(self):
        spec = random_spec(4)
        assert spec.kind == "pingpong"
        result = run_spec(spec)
        deliveries = result.ledger["deliveries"]
        assert deliveries.get("server") and deliveries.get("client")
