"""WireTap must capture frames lost to a link that goes down mid-flight.

The tap hook sits on the link's carry path *before* the drop decision, so
an outage window shows up as DROPPED records — exactly what a tcpdump on
a flapping cable would show.
"""

from repro.core import QosPolicy, Session
from repro.core.runtime import InsaneDeployment
from repro.faults import FaultSchedule
from repro.hw import Testbed
from repro.simnet import Timeout
from repro.trace import WireTap

DOWN_AT = 100_000.0
DOWN_FOR = 120_000.0


def run_capture():
    testbed = Testbed.local(seed=0)
    deployment = InsaneDeployment(testbed)
    pub = Session(deployment.runtime(0), "pub")
    sub = Session(deployment.runtime(1), "sub")
    stream = pub.create_stream(QosPolicy.slow(), name="s")
    sub.create_sink(sub.create_stream(QosPolicy.slow(), name="s"), channel=1)
    tap = WireTap().attach_all(testbed)

    def producer():
        source = pub.create_source(stream, channel=1)
        for index in range(40):
            buffer = pub.get_buffer(source, 64)
            buffer.write(index.to_bytes(8, "big"))
            yield from pub.emit_data(source, buffer, length=64)
            yield Timeout(10_000.0)

    testbed.sim.process(producer(), name="producer")
    FaultSchedule().link_down(at=DOWN_AT, for_ns=DOWN_FOR).apply(
        testbed, deployment
    )
    testbed.sim.run()
    return testbed, tap


class TestCaptureAcrossLinkOutage:
    def test_frames_in_the_window_are_captured_as_dropped(self):
        testbed, tap = run_capture()
        dropped = tap.filter(dropped=True)
        assert dropped, "the outage window must swallow some frames"
        for record in dropped:
            assert DOWN_AT <= record.ns <= DOWN_AT + DOWN_FOR

    def test_dropped_records_match_link_loss_counter(self):
        testbed, tap = run_capture()
        lost = sum(link.lost_frames.value for link in testbed.links)
        assert len(tap.filter(dropped=True)) == lost

    def test_traffic_flows_before_and_after_the_window(self):
        _testbed, tap = run_capture()
        passed = tap.filter(dropped=False)
        assert any(record.ns < DOWN_AT for record in passed)
        assert any(record.ns > DOWN_AT + DOWN_FOR for record in passed)
        assert tap.bytes_on_wire() == sum(
            record.wire_size for record in passed
        )

    def test_capture_text_flags_the_outage(self):
        _testbed, tap = run_capture()
        assert "DROPPED" in tap.to_text()
