"""Wire-tap capture tests."""

from repro.core import QosPolicy, Session
from repro.core.runtime import INSANE_PORTS, InsaneDeployment
from repro.hw import Testbed
from repro.netstack import Packet
from repro.trace import WireTap


def test_capture_records_frames_with_metadata():
    bed = Testbed.local(seed=0)
    tap = WireTap().attach_all(bed)
    a, b = bed.hosts
    a.nic.transmit(Packet(a.ip, b.ip, 1000, 2000, payload_len=64))
    bed.sim.run()
    assert len(tap) == 1
    record = tap.records[0]
    assert record.src_ip == a.ip
    assert record.dst_port == 2000
    assert record.payload_len == 64
    assert not record.dropped


def test_filtering_by_endpoint_and_port():
    bed = Testbed.local(seed=1)
    tap = WireTap().attach_all(bed)
    a, b = bed.hosts
    a.nic.transmit(Packet(a.ip, b.ip, 1000, 2000, payload_len=64))
    b.nic.transmit(Packet(b.ip, a.ip, 2000, 1000, payload_len=64))
    a.nic.transmit(Packet(a.ip, b.ip, 1000, 3000, payload_len=64))
    bed.sim.run()
    assert len(tap.filter(src_ip=a.ip)) == 2
    assert len(tap.filter(port=3000)) == 1
    assert len(tap.filter(dst_ip=a.ip)) == 1


def test_dropped_frames_flagged():
    bed = Testbed.local(seed=2)
    for link in bed.links:
        link.loss_rate = 1.0
    tap = WireTap().attach_all(bed)
    a, b = bed.hosts
    a.nic.transmit(Packet(a.ip, b.ip, 1000, 2000, payload_len=64))
    bed.sim.run()
    assert len(tap.filter(dropped=True)) == 1
    assert tap.bytes_on_wire() == 0


def test_capture_bounded_and_truncation_flagged():
    bed = Testbed.local(seed=3)
    tap = WireTap(max_records=5).attach_all(bed)
    a, b = bed.hosts
    for _ in range(10):
        a.nic.transmit(Packet(a.ip, b.ip, 1000, 2000, payload_len=64))
    bed.sim.run()
    assert len(tap) == 5
    assert tap.truncated
    assert "truncated" in tap.to_text()


def test_to_text_is_tcpdump_like():
    bed = Testbed.local(seed=4)
    tap = WireTap().attach_all(bed)
    a, b = bed.hosts
    a.nic.transmit(Packet(a.ip, b.ip, 1000, 2000, payload_len=64))
    bed.sim.run()
    text = tap.to_text()
    assert "10.0.0.1:1000 > 10.0.0.2:2000" in text
    assert "len=64" in text


def test_insane_traffic_visible_on_wire():
    """An INSANE fast flow shows up on the tap at the DPDK port, and the
    co-located path produces no frames at all."""
    bed = Testbed.local(seed=5)
    tap = WireTap().attach_all(bed)
    sim = bed.sim
    deployment = InsaneDeployment(bed)
    tx = Session(deployment.runtime(0), "tx")
    rx = Session(deployment.runtime(1), "rx")
    tx_stream = tx.create_stream(QosPolicy.fast(), name="tap")
    rx_stream = rx.create_stream(QosPolicy.fast(), name="tap")
    source = tx.create_source(tx_stream, channel=1)
    rx.create_sink(rx_stream, channel=1, callback=lambda d: None)
    local_sink = tx.create_sink(tx_stream, channel=1, callback=lambda d: None)

    def producer():
        for _ in range(5):
            buffer = yield from tx.get_buffer_wait(source, 64)
            yield from tx.emit_data(source, buffer, length=64)

    sim.process(producer())
    sim.run()
    on_wire = tap.filter(port=INSANE_PORTS["dpdk"])
    assert len(on_wire) == 5  # one frame per remote delivery, none local
