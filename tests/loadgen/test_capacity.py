"""Capacity sweeps: grid cells, the knee, the model, and the report."""

import pytest

from repro.loadgen.capacity import (
    capacity_cells,
    find_knee,
    fit_capacity_model,
    format_capacity,
    normalize_datapath,
    run_capacity,
)

TINY = dict(warmup_ns=100_000.0, window_ns=400_000.0, windows=3,
            cooldown_ns=50_000.0, epsilon=0.08, think_dist="fixed")


def synthetic_points():
    """A textbook sweep: linear ramp, knee, then queueing-delay wall."""
    rows = [
        (1, 40_000.0, 14_000.0),
        (2, 80_000.0, 14_500.0),
        (4, 150_000.0, 16_000.0),
        (8, 200_000.0, 30_000.0),
    ]
    return [
        {"clients": n, "throughput_rps": x, "mean_ns": r,
         "p50_ns": r, "p99_ns": 2 * r,
         "power_rps_per_s": x / (r / 1e9),
         "law_max_residual": 0.01, "accepted_windows": 3}
        for n, x, r in rows
    ]


class TestDatapathNames:
    def test_kernel_udp_alias_maps_to_registry_name(self):
        assert normalize_datapath("kernel_udp") == "udp"
        assert normalize_datapath("udp") == "udp"
        assert normalize_datapath("rdma") == "rdma"

    def test_unknown_datapath_rejected(self):
        with pytest.raises(ValueError):
            normalize_datapath("tcp")


class TestCells:
    def test_grid_is_sorted_and_deduplicated(self):
        cells = capacity_cells("kernel_udp", clients=(8, 2, 2, 4), seed=3)
        assert [c["params"]["clients"] for c in cells] == [2, 4, 8]
        assert all(c["kind"] == "loadgen.closed_loop" for c in cells)
        assert all(c["params"]["datapath"] == "udp" for c in cells)


class TestKneeAndModel:
    def test_knee_maximizes_power(self):
        knee = find_knee(synthetic_points())
        assert knee["clients"] == 4

    def test_knee_ties_break_to_fewer_clients(self):
        points = synthetic_points()
        points[3]["power_rps_per_s"] = points[2]["power_rps_per_s"]
        assert find_knee(points)["clients"] == 4

    def test_model_intersects_the_asymptotes(self):
        model = fit_capacity_model(synthetic_points(), think_ns=10_000.0)
        assert model["r0_ns"] == 14_000.0
        assert model["x_max_rps"] == 200_000.0
        # n_star = X_max * (R0 + Z) = 2e5/s * 24us
        assert model["n_star"] == pytest.approx(4.8)

    def test_empty_sweeps_rejected(self):
        with pytest.raises(ValueError):
            find_knee([])
        with pytest.raises(ValueError):
            fit_capacity_model([], think_ns=0.0)


class TestRunCapacity:
    def test_report_carries_points_knee_model_and_digest(self):
        report, sweep = run_capacity("kernel_udp", clients=(1, 2, 4),
                                     seed=9, **TINY)
        assert report.kind == "bench.capacity"
        data = report.data
        assert data["datapath"] == "udp"
        assert [p["clients"] for p in data["points"]] == [1, 2, 4]
        assert data["knee"]["clients"] in (1, 2, 4)
        assert data["model"]["n_star"] > 0
        assert data["merged_digest"] == sweep.merged_digest()
        assert all(p["law_max_residual"] <= 0.08 for p in data["points"])

    def test_same_seed_sweeps_are_report_identical(self):
        a, _ = run_capacity("kernel_udp", clients=(1, 2), seed=9, **TINY)
        b, _ = run_capacity("kernel_udp", clients=(1, 2), seed=9, **TINY)
        assert a.digest() == b.digest()

    def test_format_marks_the_knee(self):
        report, _ = run_capacity("kernel_udp", clients=(1, 2), seed=9,
                                 **TINY)
        rendered = format_capacity(report)
        assert "<-- knee" in rendered
        assert "model:" in rendered
