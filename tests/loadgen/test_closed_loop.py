"""The closed-loop client model end to end on the simulated stack."""

from hashlib import sha256

import pytest

from repro.loadgen.capacity import build_stack, run_closed_loop_cell
from repro.loadgen.client import run_closed_loop, think_sampler
from repro.loadgen.windows import WindowPlan
from repro.report import canonical_json

#: a small-but-stable plan: ~tens of cycles per window at 10us think.
TINY = dict(warmup_ns=100_000.0, window_ns=400_000.0, windows=3,
            cooldown_ns=50_000.0, epsilon=0.08)


def tiny_run(clients=4, datapath="udp", **overrides):
    params = dict(TINY, datapath=datapath, clients=clients,
                  think_dist="fixed", seed=11)
    params.update(overrides)
    return run_closed_loop_cell(**params)


class TestThinkSampler:
    def test_fixed_distribution_is_constant(self):
        sample = think_sampler("fixed", 500.0, seed=0, index=0)
        assert [sample() for _ in range(3)] == [500.0, 500.0, 500.0]

    def test_exponential_stream_is_per_client_deterministic(self):
        a = think_sampler("exponential", 500.0, seed=3, index=1)
        b = think_sampler("exponential", 500.0, seed=3, index=1)
        other = think_sampler("exponential", 500.0, seed=3, index=2)
        draws_a = [a() for _ in range(5)]
        assert draws_a == [b() for _ in range(5)]
        assert draws_a != [other() for _ in range(5)]

    def test_bad_distribution_rejected(self):
        with pytest.raises(ValueError):
            think_sampler("uniform", 500.0, seed=0, index=0)
        with pytest.raises(ValueError):
            think_sampler("fixed", -1.0, seed=0, index=0)


class TestClosedLoopRun:
    def test_run_produces_stable_metrics_and_law_block(self):
        metrics = tiny_run()
        assert metrics["kind"] == "closed_loop"
        assert metrics["clients"] == 4
        assert metrics["accepted_windows"]
        assert metrics["stable"]["responses"] > 0
        assert metrics["stable"]["latency"]["p99_ns"] >= \
            metrics["stable"]["latency"]["p50_ns"]
        assert metrics["law"]["ok"] is True
        assert metrics["law"]["max_residual"] <= 0.05

    @pytest.mark.parametrize("datapath", ("udp", "xdp", "dpdk", "rdma"))
    def test_datapath_pin_is_honored(self, datapath):
        metrics = tiny_run(clients=2, datapath=datapath)
        assert metrics["datapath"]["pinned"] == datapath
        assert metrics["datapath"]["initial"] == datapath
        assert metrics["datapath"]["final"] == datapath

    def test_outstanding_window_pipelines_requests(self):
        single = tiny_run(clients=2, outstanding=1)
        pipelined = tiny_run(clients=2, outstanding=4)
        # the law holds at cycle granularity for any window size
        assert pipelined["law"]["ok"] is True
        # a 4-deep window moves more requests per cycle
        assert pipelined["stable"]["responses"] > single["stable"]["responses"]

    def test_same_seed_runs_are_digest_identical(self):
        a = tiny_run(think_dist="exponential")
        b = tiny_run(think_dist="exponential")
        digests = [sha256(canonical_json(m).encode()).hexdigest()
                   for m in (a, b)]
        assert digests[0] == digests[1]

    def test_different_seeds_diverge(self):
        a = tiny_run(think_dist="exponential", seed=11)
        b = tiny_run(think_dist="exponential", seed=12)
        assert canonical_json(a) != canonical_json(b)

    def test_input_validation(self):
        testbed, deployment = build_stack("udp")
        with pytest.raises(ValueError):
            run_closed_loop(testbed, deployment, clients=0)
        testbed, deployment = build_stack("udp")
        with pytest.raises(ValueError):
            run_closed_loop(testbed, deployment, clients=1, outstanding=0)

    def test_plan_echoed_into_metrics(self):
        metrics = tiny_run()
        layout = {key: value for key, value in TINY.items()
                  if key != "epsilon"}
        assert metrics["plan"] == WindowPlan(**layout).to_dict()
