"""Windowed measurement: phase routing, stability gate, interactive law."""

import pytest

from repro.core.errors import InteractiveLawError, StabilityError
from repro.loadgen.windows import (
    WindowPlan,
    WindowedRecorder,
    accept_stable,
    check_interactive_law,
    law_residual,
)


def plan():
    return WindowPlan(warmup_ns=100.0, window_ns=1000.0, windows=3,
                      cooldown_ns=50.0)


class TestWindowPlan:
    def test_phase_arithmetic(self):
        p = plan()
        assert p.stable_ns == 3000.0
        assert p.total_ns == 3150.0
        assert p.start_ns(0) == 100.0
        assert p.start_ns(2) == 2100.0

    def test_index_routes_each_phase(self):
        p = plan()
        assert p.index(50.0) is None          # warmup
        assert p.index(100.0) == 0
        assert p.index(1099.0) == 0
        assert p.index(1100.0) == 1
        assert p.index(3099.0) == 2
        assert p.index(3100.0) is None        # cooldown

    @pytest.mark.parametrize("kwargs", (
        {"warmup_ns": -1.0}, {"cooldown_ns": -1.0},
        {"window_ns": 0.0}, {"windows": 0},
    ))
    def test_bad_plans_rejected(self, kwargs):
        with pytest.raises(ValueError):
            WindowPlan(**kwargs)

    def test_to_dict_round_trips_the_layout(self):
        assert plan().to_dict() == {"warmup_ns": 100.0, "window_ns": 1000.0,
                                    "windows": 3, "cooldown_ns": 50.0}


class TestRecorder:
    def test_warmup_and_cooldown_samples_discarded(self):
        recorder = WindowedRecorder(plan())
        recorder.record_response(50.0, 10.0)      # warmup
        recorder.record_response(3120.0, 10.0)    # cooldown
        recorder.record_cycle(50.0, 10.0, 5.0)
        recorder.record_response(200.0, 10.0)     # window 0
        assert recorder.discarded_responses == 2
        assert recorder.discarded_cycles == 1
        assert recorder.summaries()[0]["responses"] == 1
        assert recorder.summaries()[1]["responses"] == 0

    def test_summaries_carry_throughput_and_cycle_means(self):
        recorder = WindowedRecorder(plan())
        for now in (200.0, 400.0, 600.0, 800.0):
            recorder.record_response(now, 100.0)
            recorder.record_cycle(now, 100.0, 150.0)
        summary = recorder.summaries()[0]
        assert summary["responses"] == 4
        assert summary["throughput_rps"] == pytest.approx(4 / 1e-6)
        assert summary["mean_response_ns"] == pytest.approx(100.0)
        assert summary["mean_think_ns"] == pytest.approx(150.0)
        assert summary["latency"]["count"] == 4


def uniform_summaries(throughputs, latencies):
    """Hand-built window summaries for the acceptance/law tests."""
    out = []
    for index, (responses, latency) in enumerate(zip(throughputs, latencies)):
        out.append({
            "index": index,
            "start_ns": 0.0,
            "duration_ns": 1e6,
            "responses": responses,
            "throughput_rps": responses / 1e-3,
            "cycles": responses,
            "mean_response_ns": latency,
            "mean_think_ns": 0.0,
            "latency": {"count": responses, "mean_ns": latency,
                        "p50_ns": latency, "p99_ns": latency,
                        "max_ns": latency},
        })
    return out


class TestAcceptStable:
    def test_agreeing_windows_all_accepted(self):
        summaries = uniform_summaries((100, 102, 98), (50.0, 51.0, 49.0))
        assert accept_stable(summaries) == [0, 1, 2]

    def test_outlier_window_dropped_not_averaged(self):
        summaries = uniform_summaries((100, 101, 300), (50.0, 50.0, 50.0))
        assert accept_stable(summaries) == [0, 1]

    def test_all_disagreeing_windows_raise(self):
        summaries = uniform_summaries((10, 500, 4000), (5.0, 500.0, 9000.0))
        with pytest.raises(StabilityError):
            accept_stable(summaries, tol=0.1, min_windows=2)

    def test_empty_run_raises(self):
        summaries = uniform_summaries((0, 0), (0.0, 0.0))
        with pytest.raises(StabilityError):
            accept_stable(summaries)


class TestInteractiveLaw:
    def test_exact_identity_has_zero_residual(self):
        # 4 clients, each cycling every 40us in a 1ms window: X=1e5/s,
        # R+Z=40us, N = X*(R+Z) exactly
        summary = uniform_summaries((100,), (30_000.0,))[0]
        summary["mean_think_ns"] = 10_000.0
        assert law_residual(summary, 4) == pytest.approx(0.0)

    def test_residual_scales_with_the_mismatch(self):
        summary = uniform_summaries((100,), (30_000.0,))[0]
        summary["mean_think_ns"] = 10_000.0
        # claiming 5 clients when the cycles account for 4 -> 20% off
        assert law_residual(summary, 5) == pytest.approx(0.2)

    def test_cycleless_window_has_no_residual(self):
        summary = uniform_summaries((0,), (0.0,))[0]
        assert law_residual(summary, 4) is None

    def test_check_passes_and_reports_block(self):
        summaries = uniform_summaries((100, 100), (30_000.0, 30_000.0))
        for summary in summaries:
            summary["mean_think_ns"] = 10_000.0
        law = check_interactive_law(summaries, [0, 1], 4, epsilon=0.01)
        assert law["ok"] is True
        assert law["max_residual"] == pytest.approx(0.0)
        assert [r["index"] for r in law["residuals"]] == [0, 1]

    def test_violation_raises_naming_the_worst_window(self):
        summaries = uniform_summaries((100, 100), (30_000.0, 60_000.0))
        for summary in summaries:
            summary["mean_think_ns"] = 10_000.0
        with pytest.raises(InteractiveLawError) as excinfo:
            check_interactive_law(summaries, [0, 1], 4, epsilon=0.05)
        assert "window 1" in str(excinfo.value)

    def test_violation_reported_softly_when_asked(self):
        summaries = uniform_summaries((100,), (60_000.0,))
        summaries[0]["mean_think_ns"] = 10_000.0
        law = check_interactive_law(summaries, [0], 4, epsilon=0.05,
                                    raise_on_violation=False)
        assert law["ok"] is False
        assert law["max_residual"] > 0.05
