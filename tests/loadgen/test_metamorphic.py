"""Metamorphic properties of the closed-loop harness.

These tests assert *relations between runs* instead of absolute numbers,
so they hold on any calibration of the simulated stack:

* think-time dilation: doubling Z at fixed N cannot increase stable
  throughput (X = N / (R + Z), and R never shrinks when load drops
  below saturation's R floor);
* post-knee futility: client counts past the latency-throughput knee
  cannot improve p50 latency — extra customers past saturation buy
  queueing delay, not speed.
"""

import pytest

from repro.loadgen.capacity import find_knee, point_from_metrics, run_closed_loop_cell

TINY = dict(warmup_ns=100_000.0, window_ns=400_000.0, windows=3,
            cooldown_ns=50_000.0, epsilon=0.08, think_dist="fixed", seed=5)

#: relative slack for discrete-event sampling noise at window edges.
SLACK = 1.02


def run_point(clients, think_ns, datapath="udp"):
    return run_closed_loop_cell(datapath=datapath, clients=clients,
                                think_ns=think_ns, **TINY)


class TestThinkDilation:
    @pytest.mark.parametrize("clients", (2, 8))
    def test_doubling_think_never_increases_throughput(self, clients):
        base = run_point(clients, think_ns=10_000.0)
        dilated = run_point(clients, think_ns=20_000.0)
        assert dilated["stable"]["throughput_rps"] <= \
            base["stable"]["throughput_rps"] * SLACK

    def test_think_dilation_composes_across_a_4x_span(self):
        rates = [run_point(4, think_ns=z)["stable"]["throughput_rps"]
                 for z in (5_000.0, 10_000.0, 20_000.0)]
        assert rates[1] <= rates[0] * SLACK
        assert rates[2] <= rates[1] * SLACK


class TestPostKneeFutility:
    def test_clients_past_the_knee_do_not_improve_p50(self):
        points = [point_from_metrics(run_point(n, think_ns=10_000.0))
                  for n in (2, 8, 32)]
        knee = find_knee(points)
        beyond = [p for p in points if p["clients"] > knee["clients"]]
        assert beyond, "the grid must reach past the knee for this check"
        for point in beyond:
            assert point["p50_ns"] * SLACK >= knee["p50_ns"]

    def test_throughput_saturates_rather_than_collapses(self):
        # past the knee, throughput may flatten but a deep collapse
        # (<60% of the knee's rate) would mean the model is wrong
        points = [point_from_metrics(run_point(n, think_ns=10_000.0))
                  for n in (2, 8, 32)]
        knee = find_knee(points)
        worst = min(p["throughput_rps"] for p in points
                    if p["clients"] >= knee["clients"])
        assert worst >= 0.6 * knee["throughput_rps"]
