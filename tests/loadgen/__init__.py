"""Closed-loop load-generation and capacity-planning tests."""
