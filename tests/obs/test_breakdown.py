"""Per-datapath critical-path breakdown: stage ordering vs the cost model.

DESIGN.md's stage-cost tables order the datapaths by TX-stack cost
(kernel UDP > XDP > DPDK > RDMA) and RX cost (kernel UDP > DPDK > RDMA);
the traced breakdown must reproduce those orderings from actual spans.
"""

from repro.bench.breakdown import run_traced_breakdown
from repro.obs import breakdown_report, critical_path, format_breakdown
from tests.obs.helpers import run_traced_flow

import pytest


@pytest.fixture(scope="module")
def report():
    tracers = run_traced_breakdown(messages=40, seed=0)
    return breakdown_report(tracers)


class TestStageOrdering:
    def test_all_datapaths_present(self, report):
        assert set(report["datapaths"]) == {"udp", "xdp", "dpdk", "rdma"}
        for label, data in report["datapaths"].items():
            assert data["summary"]["states"] == {"delivered": 40}, label

    def test_tx_stack_ordering_matches_cost_tables(self, report):
        tx = {
            label: data["stages"]["tx_stack"]["mean_ns"]
            for label, data in report["datapaths"].items()
        }
        assert tx["udp"] > tx["xdp"] > tx["dpdk"] > tx["rdma"]

    def test_rx_ordering_matches_cost_tables(self, report):
        rx = {
            label: data["stages"]["rx_stack"]["mean_ns"]
            for label, data in report["datapaths"].items()
        }
        assert rx["udp"] > rx["dpdk"] > rx["rdma"]

    def test_network_stage_is_datapath_independent(self, report):
        network = [
            data["stages"]["network"]["mean_ns"]
            for data in report["datapaths"].values()
        ]
        assert max(network) - min(network) < 1.0, (
            "wire time must not depend on the datapath: %r" % network
        )

    def test_stage_order_is_the_pipeline_order(self, report):
        assert report["stage_order"] == [
            "runtime_tx", "scheduler", "tx_stack", "nic_queue",
            "network", "rx_stack", "delivery",
        ]


class TestCriticalPath:
    def test_stages_tile_the_pipeline(self):
        tracer, _dep, _bed, _delivered = run_traced_flow(messages=5)
        for root in tracer.delivered():
            path = critical_path(root)
            names = [name for name, _s, _e, _d in path]
            assert names[0] == "runtime_tx"
            assert names[-1] == "delivery"
            for (_n1, _s1, end1, _d1), (_n2, start2, _e2, _d2) in zip(path, path[1:]):
                assert start2 >= end1 - 1e-9, "stages must not overlap backwards"

    def test_durations_sum_close_to_e2e(self):
        tracer, _dep, _bed, _delivered = run_traced_flow(messages=5)
        for root in tracer.delivered():
            path = critical_path(root)
            total = sum(duration for _n, _s, _e, duration in path)
            e2e = root.end_ns - root["emit_ns"]
            # stage gaps (e.g. between sched dequeue and datapath tx) are
            # small but nonzero; the tiled stages must cover most of e2e
            assert total <= e2e + 1e-6
            assert total >= 0.9 * e2e


class TestFormatting:
    def test_format_breakdown_renders_all_stages(self, report):
        text = format_breakdown(report)
        for stage in ("runtime_tx", "tx_stack", "network", "delivery"):
            assert stage in text
        assert "total" in text
        for label in report["datapaths"]:
            assert label in text
