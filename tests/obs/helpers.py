"""Shared flow builders for the observability tests."""

from repro.core import QosPolicy, Session
from repro.core.config import RuntimeConfig
from repro.core.runtime import InsaneDeployment
from repro.hw import Testbed
from repro.obs import LifecycleTracer
from repro.simnet import Timeout


def run_traced_flow(messages=10, seed=0, datapath=None, gap_ns=20_000.0,
                    fault_schedule=None, observe_engine=False):
    """One paced two-host flow with a tracer attached.

    Returns ``(tracer, deployment, testbed, delivered)`` where
    ``delivered`` is the list of consume times.  ``datapath`` pins the
    QoS mapping; ``fault_schedule`` is applied before the run.
    """
    testbed = Testbed.local(seed=seed)
    sim = testbed.sim
    tracer = LifecycleTracer()
    if observe_engine:
        tracer.attach_engine(sim, label="test")
    config = RuntimeConfig(tracer=tracer)
    if datapath is not None:
        config.mapping_strategy = lambda policy, available, _d=datapath: _d
    deployment = InsaneDeployment(testbed, config=config)
    tx = Session(deployment.runtime(0), "obs-tx")
    rx = Session(deployment.runtime(1), "obs-rx")
    tx_stream = tx.create_stream(QosPolicy.fast(), name="obs")
    rx_stream = rx.create_stream(QosPolicy.fast(), name="obs")
    source = tx.create_source(tx_stream, channel=1)
    sink = rx.create_sink(rx_stream, channel=1)
    delivered = []

    def producer():
        for _ in range(messages):
            buffer = yield from tx.get_buffer_wait(source, 64)
            yield from tx.emit_data(source, buffer, length=64)
            yield Timeout(gap_ns)

    def consumer():
        while True:
            delivery = yield from rx.consume_data(sink)
            delivered.append(sim.now)
            rx.release_buffer(sink, delivery)

    sim.process(producer(), name="obs.producer")
    sim.process(consumer(), name="obs.consumer")
    if fault_schedule is not None:
        fault_schedule.apply(testbed, deployment)
    sim.run()
    return tracer, deployment, testbed, delivered
