"""Lifecycle-tracer integration: span ordering, nesting, failover, and
the canonical-trace span-id citation."""

from repro.faults import FaultSchedule
from repro.obs import spans_of
from repro.obs.spans import DELIVERED, FAILED
from tests.obs.helpers import run_traced_flow


class TestSpanStructure:
    def test_every_message_traced_and_delivered(self):
        tracer, _dep, _bed, delivered = run_traced_flow(messages=8)
        assert len(delivered) == 8
        summary = tracer.summary()
        assert summary["messages"] == 8
        assert summary["packets"] == 8
        assert summary["states"] == {DELIVERED: 8}

    def test_stamp_chain_is_time_ordered(self):
        tracer, _dep, _bed, _delivered = run_traced_flow(messages=5)
        for root in tracer.delivered():
            (child,) = root.children
            stamps = list(child.values())
            assert stamps == sorted(stamps), (
                "stamps out of order: %s" % list(child.items())
            )
            assert "emit_ns" in child and "nic_handoff" in child
            assert "nic_rx_arrival" in child and "runtime_rx" in child

    def test_parent_child_nesting(self):
        tracer, _dep, _bed, _delivered = run_traced_flow(messages=3)
        for root in tracer.delivered():
            spans = spans_of(root)
            root_span, child_span = spans[0], spans[1]
            assert root_span.parent_id is None
            assert child_span.parent_id == root_span.span_id
            stage_spans = spans[2:]
            assert stage_spans, "packet span must decompose into stages"
            for stage in stage_spans:
                assert stage.parent_id == child_span.span_id
                assert root_span.start_ns <= stage.start_ns
                assert stage.end_ns <= root_span.end_ns
            starts = [stage.start_ns for stage in stage_spans]
            assert starts == sorted(starts)

    def test_tracer_spans_cover_all_messages(self):
        tracer, _dep, _bed, _delivered = run_traced_flow(messages=4)
        spans = tracer.spans()
        ids = [span.span_id for span in spans]
        assert len(ids) == len(set(ids)), "span ids must be unique"
        roots = [span for span in spans if span.parent_id is None]
        assert len(roots) == 4


class TestFailoverBlackout:
    def _run(self):
        schedule = FaultSchedule().datapath_failure(
            at=250_000.0, host=0, datapath="dpdk", reason="driver crash"
        )
        # 2 us emit gap vs ~3 us delivery keeps messages in flight at the
        # failure instant, so the blackout actually catches open spans
        return run_traced_flow(
            messages=200, seed=3, gap_ns=2_000.0, fault_schedule=schedule
        )

    def test_dead_binding_spans_close_with_failover_annotation(self):
        tracer, deployment, _bed, _delivered = self._run()
        assert deployment.runtime(0).health.events, "failover must trigger"
        kinds = [kind for _ns, kind, _detail in tracer.events]
        assert "datapath_failed" in kinds
        assert "failover_remap" in kinds
        blackout = [
            root for root in tracer.roots
            if any(kind == "failover" for _ns, kind, _detail in root.annotations)
        ]
        assert blackout, "messages caught in the blackout must be annotated"
        for root in blackout:
            assert root.datapath == "dpdk"
            assert root.closed_ns is not None
            # closed as failed at detection; a migrated token that still
            # delivers flips the state back to delivered (stream continues)
            assert root.state in (FAILED, DELIVERED)

    def test_remapped_stream_continues_on_survivor(self):
        tracer, deployment, _bed, _delivered = self._run()
        event = deployment.runtime(0).health.events[0]
        survivor = event.remapped[0][3]
        assert survivor != "dpdk"
        after = [
            root for root in tracer.roots
            if root["emit_ns"] > event.detected_at
        ]
        assert after, "messages must keep flowing after the blackout"
        for root in after:
            assert root.datapath == survivor
            assert root.state == DELIVERED
            (child,) = root.children
            # the wire datapath may be the kernel fallback (cross-tech
            # routing to a receiver still bound to dpdk) — never the corpse
            assert child.datapath != "dpdk"

    def test_failover_ordering_in_timeline(self):
        tracer, _dep, _bed, _delivered = self._run()
        times = [ns for ns, _kind, _detail in tracer.events]
        assert times == sorted(times)
        failed_at = next(
            ns for ns, kind, _d in tracer.events if kind == "datapath_failed"
        )
        remapped_at = next(
            ns for ns, kind, _d in tracer.events if kind == "failover_remap"
        )
        assert failed_at <= remapped_at


class TestCanonicalSpanIds:
    def _run(self, traced):
        from repro.core import QosPolicy, Session
        from repro.core.config import RuntimeConfig
        from repro.core.runtime import InsaneDeployment
        from repro.hw import Testbed
        from repro.obs import LifecycleTracer
        from repro.validate import TraceProbe

        testbed = Testbed.local(seed=11)
        sim = testbed.sim
        config = RuntimeConfig(tracer=LifecycleTracer() if traced else None)
        deployment = InsaneDeployment(testbed, config=config)
        probe = TraceProbe(testbed)
        tx = Session(deployment.runtime(0), "tx")
        rx = Session(deployment.runtime(1), "rx")
        tx_stream = tx.create_stream(QosPolicy.fast(), name="m")
        rx_stream = rx.create_stream(QosPolicy.fast(), name="m")
        source = tx.create_source(tx_stream, channel=1)
        rx.create_sink(rx_stream, channel=1, callback=lambda d: None)

        def producer():
            for _ in range(5):
                buffer = yield from tx.get_buffer_wait(source, 64)
                yield from tx.emit_data(source, buffer, length=64)

        sim.process(producer())
        sim.run()
        return probe.finish()

    def test_traced_wire_lines_cite_span_ids(self):
        trace = self._run(traced=True)
        wire = [event for event in trace.events if event[0] == "wire"]
        assert wire
        assert all(str(event[-1]).startswith("msg=") for event in wire)

    def test_untraced_lines_keep_historical_shape(self):
        traced = self._run(traced=True)
        untraced = self._run(traced=False)
        plain = [e for e in untraced.events if e[0] == "wire"]
        assert all(len(event) == 10 for event in plain)
        # tracing must not perturb the run: stripping the citation gives
        # the exact untraced wire stream (digest-stability when absent)
        cited = [e[:-1] for e in traced.events if e[0] == "wire"]
        assert cited == plain
