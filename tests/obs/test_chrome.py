"""Chrome-trace export: JSON round-trip and per-track time ordering."""

import json

from repro.faults import FaultSchedule
from repro.obs import chrome_trace, write_chrome_trace
from tests.obs.helpers import run_traced_flow


def _round_trip(tracer):
    return json.loads(json.dumps(chrome_trace(tracer)))


def _tracks(events):
    """Group span/instant events by their viewer track, in file order.

    Counter (``C``) events form value tracks keyed by (pid, name) in the
    Trace Event Format; span (``X``) and instant (``i``) events share the
    (pid, tid) thread track.
    """
    tracks = {}
    for event in events:
        if event["ph"] in ("X", "i"):
            tracks.setdefault((event["pid"], event["tid"]), []).append(event)
        elif event["ph"] == "C":
            tracks.setdefault((event["pid"], event["name"]), []).append(event)
    return tracks


class TestRoundTrip:
    def test_loads_and_has_required_fields(self):
        tracer, _dep, _bed, _delivered = run_traced_flow(messages=6)
        document = _round_trip(tracer)
        assert document["displayTimeUnit"] == "ns"
        events = document["traceEvents"]
        assert events
        for event in events:
            assert "ph" in event and "pid" in event
            if event["ph"] == "X":
                assert event["dur"] >= 0
                assert "span_id" in event["args"]

    def test_ts_non_decreasing_per_track(self):
        tracer, _dep, _bed, _delivered = run_traced_flow(
            messages=10, observe_engine=True
        )
        events = _round_trip(tracer)["traceEvents"]
        tracks = _tracks(events)
        assert tracks
        for track, bucket in tracks.items():
            stamps = [event["ts"] for event in bucket]
            assert stamps == sorted(stamps), (
                "track %r has decreasing ts: %s" % (track, stamps)
            )

    def test_metadata_names_hosts_and_datapaths(self):
        tracer, _dep, _bed, _delivered = run_traced_flow(messages=3)
        events = _round_trip(tracer)["traceEvents"]
        processes = [
            event["args"]["name"] for event in events
            if event["ph"] == "M" and event["name"] == "process_name"
        ]
        threads = [
            event["args"]["name"] for event in events
            if event["ph"] == "M" and event["name"] == "thread_name"
        ]
        assert any("host0" in name for name in processes)
        assert any("dpdk" in name for name in threads)

    def test_write_round_trips_through_file(self, tmp_path):
        tracer, _dep, _bed, _delivered = run_traced_flow(messages=4)
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), tracer)
        with open(str(path), encoding="utf-8") as handle:
            document = json.load(handle)
        assert document["traceEvents"]


class TestFaultInstants:
    def test_failover_appears_as_instants(self):
        schedule = FaultSchedule().datapath_failure(
            at=100_000.0, host=0, datapath="dpdk"
        )
        tracer, _dep, _bed, _delivered = run_traced_flow(
            messages=60, seed=2, gap_ns=2_000.0, fault_schedule=schedule
        )
        events = _round_trip(tracer)["traceEvents"]
        instants = [event for event in events if event["ph"] == "i"]
        names = {event["name"] for event in instants}
        assert "datapath_failed" in names
        assert "failover_remap" in names


class TestMergedRuns:
    def test_merged_tracers_get_disjoint_pids(self):
        first, _dep, _bed, _delivered = run_traced_flow(messages=3, seed=0)
        second, _dep2, _bed2, _delivered2 = run_traced_flow(messages=3, seed=1)
        document = _round_trip({"a": first, "b": second})
        by_label = {"a": set(), "b": set()}
        for event in document["traceEvents"]:
            if event["ph"] == "M" and event["name"] == "process_name":
                label = event["args"]["name"].split(" ", 1)[0]
                by_label[label].add(event["pid"])
        assert by_label["a"] and by_label["b"]
        assert not (by_label["a"] & by_label["b"]), (
            "merged runs must not share pids: %r" % (by_label,)
        )
        # per-track ordering must survive the merge too
        tracks = _tracks(document["traceEvents"])
        for track, bucket in tracks.items():
            stamps = [event["ts"] for event in bucket]
            assert stamps == sorted(stamps)
