"""Prometheus histogram export: must parse with the exposition parser."""

from repro.core.metrics import export_deployment
from repro.obs import LogHistogram, histogram_lines, tracer_lines
from tests import promparse
from tests.obs.helpers import run_traced_flow


class TestHistogramLines:
    def _family(self, histogram, labels=None):
        lines = histogram_lines("stage_ns", histogram, labels=labels)
        return promparse.parse("\n".join(lines) + "\n")["insane_stage_ns"]

    def test_parses_and_satisfies_histogram_invariants(self):
        histogram = LogHistogram(lo=10, hi=10_000)
        for value in (5, 20, 200, 2000, 50_000):
            histogram.record(value)
        family = self._family(histogram)
        assert family["type"] == "histogram"
        promparse.check_histogram(family)

    def test_sum_and_count_match_recordings(self):
        histogram = LogHistogram()
        for value in (100, 300, 600):
            histogram.record(value)
        family = self._family(histogram, labels={"stage": "tx_stack"})
        samples = {name: value for name, labels, value in family["samples"]
                   if labels.get("stage") == "tx_stack" or "le" in labels}
        assert samples["insane_stage_ns_count"] == 3
        assert samples["insane_stage_ns_sum"] == 1000

    def test_empty_histogram_still_valid(self):
        family = self._family(LogHistogram())
        promparse.check_histogram(family)


class TestTracerLines:
    def test_tracer_family_parses_with_per_stage_labels(self):
        tracer, _dep, _bed, _delivered = run_traced_flow(messages=6)
        body = "\n".join(tracer_lines(tracer)) + "\n"
        families = promparse.parse(body)
        family = families["insane_stage_latency_ns"]
        assert family["type"] == "histogram"
        promparse.check_histogram(family)
        stages = {
            labels["stage"] for _name, labels, _value in family["samples"]
        }
        assert {"e2e", "nic_handoff", "runtime_rx"} <= stages

    def test_tracer_without_records_exports_nothing(self):
        from repro.obs import LifecycleTracer

        assert tracer_lines(LifecycleTracer()) == []


class TestDeploymentScrape:
    def test_scrape_with_tracer_parses_end_to_end(self):
        tracer, deployment, _bed, _delivered = run_traced_flow(messages=5)
        body = export_deployment(deployment, tracer=tracer)
        families = promparse.parse(body)
        assert "insane_stage_latency_ns" in families
        assert "insane_binding_tx_packets_total" in families
        promparse.check_histogram(families["insane_stage_latency_ns"])
