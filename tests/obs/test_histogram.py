"""LogHistogram unit tests."""

import math

import pytest

from repro.obs import LogHistogram


class TestRecording:
    def test_empty(self):
        histogram = LogHistogram()
        assert histogram.count == 0
        assert histogram.mean == 0.0
        assert histogram.percentile(50) == 0.0
        assert histogram.minimum is None

    def test_counts_and_extremes(self):
        histogram = LogHistogram(lo=10, hi=1000)
        for value in (5, 50, 500, 5000):
            histogram.record(value)
        assert histogram.count == 4
        assert histogram.total == 5555
        assert histogram.minimum == 5
        assert histogram.maximum == 5000
        # underflow and overflow are counted, never lost
        assert histogram.counts[0] >= 1
        assert histogram.counts[-1] >= 1

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            LogHistogram(lo=0, hi=10)
        with pytest.raises(ValueError):
            LogHistogram(lo=10, hi=10)
        with pytest.raises(ValueError):
            LogHistogram(buckets_per_decade=0)


class TestPercentiles:
    def test_clamped_to_observed_range(self):
        histogram = LogHistogram()
        for value in (100, 200, 400):
            histogram.record(value)
        assert histogram.percentile(0) == 100
        assert histogram.percentile(100) == 400
        assert 100 <= histogram.percentile(50) <= 400

    def test_monotone(self):
        histogram = LogHistogram()
        for value in range(1, 2000, 7):
            histogram.record(float(value))
        quantiles = [histogram.percentile(p) for p in (1, 25, 50, 75, 99)]
        assert quantiles == sorted(quantiles)

    def test_accuracy_within_bucket_width(self):
        histogram = LogHistogram(lo=10, hi=1e6, buckets_per_decade=8)
        samples = [float(v) for v in range(100, 10000, 13)]
        for value in samples:
            histogram.record(value)
        exact = sorted(samples)[len(samples) // 2]
        approx = histogram.percentile(50)
        # one bucket's relative width: 10^(1/8) ~ 1.33
        assert exact / 1.34 <= approx <= exact * 1.34


class TestMergeAndExport:
    def test_merge_matches_combined(self):
        a, b, combined = LogHistogram(), LogHistogram(), LogHistogram()
        for value in (15, 150, 1500):
            a.record(value)
            combined.record(value)
        for value in (30, 3000):
            b.record(value)
            combined.record(value)
        a.merge(b)
        assert a.counts == combined.counts
        assert a.count == combined.count
        assert a.total == combined.total
        assert a.minimum == combined.minimum
        assert a.maximum == combined.maximum

    def test_merge_rejects_different_layout(self):
        with pytest.raises(ValueError):
            LogHistogram(lo=10, hi=100).merge(LogHistogram(lo=10, hi=1000))

    def test_cumulative_buckets_end_at_inf_with_total(self):
        histogram = LogHistogram(lo=10, hi=1000)
        for value in (1, 20, 20000):
            histogram.record(value)
        pairs = histogram.cumulative_buckets()
        counts = [count for _edge, count in pairs]
        assert counts == sorted(counts), "cumulative counts must be monotone"
        assert pairs[-1] == (math.inf, 3)

    def test_to_dict_total_matches_count(self):
        histogram = LogHistogram()
        for value in (11, 22, 33):
            histogram.record(value)
        snapshot = histogram.to_dict()
        assert snapshot["count"] == 3
        assert sum(count for _edge, count in snapshot["buckets"]) == 3


class TestWindowEdgeCases:
    """The cases the windowed loadgen layer leans on: empty windows,
    single-sample windows, and cross-window merges."""

    def test_merging_an_empty_window_is_identity(self):
        empty, full = LogHistogram(), LogHistogram()
        for value in (100, 200, 400):
            full.record(value)
        before = (list(full.counts), full.count, full.total,
                  full.minimum, full.maximum)
        full.merge(empty)
        assert (list(full.counts), full.count, full.total,
                full.minimum, full.maximum) == before
        # and the empty side stays answerable, not crashy
        assert empty.percentile(99) == 0.0

    def test_single_sample_window_collapses_to_that_sample(self):
        histogram = LogHistogram()
        histogram.record(777.0)
        assert histogram.count == 1
        assert histogram.mean == 777.0
        assert histogram.percentile(0) == histogram.percentile(100) == 777.0
        assert histogram.minimum == histogram.maximum == 777.0

    def test_cross_window_merge_keeps_percentiles_monotone(self):
        low, high = LogHistogram(), LogHistogram()
        for value in range(10, 100, 3):
            low.record(float(value))
        for value in range(1000, 10000, 77):
            high.record(float(value))
        low.merge(high)
        quantiles = [low.percentile(p) for p in (1, 25, 50, 75, 99, 100)]
        assert quantiles == sorted(quantiles)
        assert low.minimum == 10.0
        assert low.percentile(100) == low.maximum

    def test_merged_classmethod_matches_sequential_merge(self):
        windows = []
        sequential = LogHistogram()
        for base in (10, 100, 1000):
            window = LogHistogram()
            for value in (base, base * 2, base * 5):
                window.record(float(value))
                sequential.record(float(value))
            windows.append(window)
        merged = LogHistogram.merged(iter(windows))
        assert merged.counts == sequential.counts
        assert merged.count == sequential.count
        assert merged.total == sequential.total
        assert merged.minimum == sequential.minimum
        assert merged.maximum == sequential.maximum
        # merging never mutates the inputs
        assert windows[0].count == 3

    def test_merged_rejects_empty_input_and_layout_mismatch(self):
        with pytest.raises(ValueError):
            LogHistogram.merged([])
        with pytest.raises(ValueError):
            LogHistogram.merged([LogHistogram(lo=10, hi=100),
                                 LogHistogram(lo=10, hi=1000)])


class TestCachedCumulativePercentile:
    """The bisect-over-cached-cumulative path must be bit-identical to
    the original linear scan, across every mutation that invalidates
    the cache (record, record_many, merge)."""

    PS = (0, 1, 10, 25, 50, 75, 90, 99, 99.9, 100)

    def assert_identical(self, histogram):
        for p in self.PS:
            assert histogram.percentile(p) == histogram._percentile_scan(p)

    def test_identical_after_record_sequences(self):
        histogram = LogHistogram(lo=10, hi=1_000_000)
        rng = [float(3 + (i * 7919) % 500_000) for i in range(4000)]
        for i, value in enumerate(rng):
            histogram.record(value)
            if i % 997 == 0:  # interleave queries with mutations
                self.assert_identical(histogram)
        self.assert_identical(histogram)

    def test_identical_after_record_many_and_merge(self):
        histogram = LogHistogram()
        histogram.record_many(1234.5, 100_000)
        self.assert_identical(histogram)
        other = LogHistogram()
        other.record_many(98_765.0, 250_000)
        other.record(12.0)
        histogram.merge(other)
        self.assert_identical(histogram)
        histogram.record(5.0)  # mutation after a cached query
        self.assert_identical(histogram)

    def test_record_many_weight_validation(self):
        histogram = LogHistogram()
        histogram.record_many(50.0, 0)  # zero weight is a no-op
        assert histogram.count == 0
        with pytest.raises(ValueError):
            histogram.record_many(50.0, -1)
        histogram.record_many(50.0, 3)
        assert histogram.count == 3
        assert histogram.total == 150.0
