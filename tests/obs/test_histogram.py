"""LogHistogram unit tests."""

import math

import pytest

from repro.obs import LogHistogram


class TestRecording:
    def test_empty(self):
        histogram = LogHistogram()
        assert histogram.count == 0
        assert histogram.mean == 0.0
        assert histogram.percentile(50) == 0.0
        assert histogram.minimum is None

    def test_counts_and_extremes(self):
        histogram = LogHistogram(lo=10, hi=1000)
        for value in (5, 50, 500, 5000):
            histogram.record(value)
        assert histogram.count == 4
        assert histogram.total == 5555
        assert histogram.minimum == 5
        assert histogram.maximum == 5000
        # underflow and overflow are counted, never lost
        assert histogram.counts[0] >= 1
        assert histogram.counts[-1] >= 1

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            LogHistogram(lo=0, hi=10)
        with pytest.raises(ValueError):
            LogHistogram(lo=10, hi=10)
        with pytest.raises(ValueError):
            LogHistogram(buckets_per_decade=0)


class TestPercentiles:
    def test_clamped_to_observed_range(self):
        histogram = LogHistogram()
        for value in (100, 200, 400):
            histogram.record(value)
        assert histogram.percentile(0) == 100
        assert histogram.percentile(100) == 400
        assert 100 <= histogram.percentile(50) <= 400

    def test_monotone(self):
        histogram = LogHistogram()
        for value in range(1, 2000, 7):
            histogram.record(float(value))
        quantiles = [histogram.percentile(p) for p in (1, 25, 50, 75, 99)]
        assert quantiles == sorted(quantiles)

    def test_accuracy_within_bucket_width(self):
        histogram = LogHistogram(lo=10, hi=1e6, buckets_per_decade=8)
        samples = [float(v) for v in range(100, 10000, 13)]
        for value in samples:
            histogram.record(value)
        exact = sorted(samples)[len(samples) // 2]
        approx = histogram.percentile(50)
        # one bucket's relative width: 10^(1/8) ~ 1.33
        assert exact / 1.34 <= approx <= exact * 1.34


class TestMergeAndExport:
    def test_merge_matches_combined(self):
        a, b, combined = LogHistogram(), LogHistogram(), LogHistogram()
        for value in (15, 150, 1500):
            a.record(value)
            combined.record(value)
        for value in (30, 3000):
            b.record(value)
            combined.record(value)
        a.merge(b)
        assert a.counts == combined.counts
        assert a.count == combined.count
        assert a.total == combined.total
        assert a.minimum == combined.minimum
        assert a.maximum == combined.maximum

    def test_merge_rejects_different_layout(self):
        with pytest.raises(ValueError):
            LogHistogram(lo=10, hi=100).merge(LogHistogram(lo=10, hi=1000))

    def test_cumulative_buckets_end_at_inf_with_total(self):
        histogram = LogHistogram(lo=10, hi=1000)
        for value in (1, 20, 20000):
            histogram.record(value)
        pairs = histogram.cumulative_buckets()
        counts = [count for _edge, count in pairs]
        assert counts == sorted(counts), "cumulative counts must be monotone"
        assert pairs[-1] == (math.inf, 3)

    def test_to_dict_total_matches_count(self):
        histogram = LogHistogram()
        for value in (11, 22, 33):
            histogram.record(value)
        snapshot = histogram.to_dict()
        assert snapshot["count"] == 3
        assert sum(count for _edge, count in snapshot["buckets"]) == 3
