"""The observed engine loop must be behaviourally identical to the fast one."""

from repro.obs import EngineObserver
from repro.simnet import Simulator, Timeout
from tests.obs.helpers import run_traced_flow


def _workload(sim, log):
    def ticker(name, period):
        for _ in range(20):
            yield Timeout(period)
            log.append((sim.now, name))

    sim.process(ticker("a", 70.0))
    sim.process(ticker("b", 130.0))


class TestEquivalence:
    def test_same_events_and_clock_as_unobserved_run(self):
        plain_log, observed_log = [], []
        plain = Simulator(seed=1)
        _workload(plain, plain_log)
        plain_executed = plain.run()

        observed = Simulator(seed=1)
        observed.observer = EngineObserver(bucket_ns=100.0)
        _workload(observed, observed_log)
        observed_executed = observed.run()

        assert observed_log == plain_log
        assert observed.now == plain.now
        assert observed_executed == plain_executed
        assert observed.observer.events == plain_executed

    def test_run_until_matches(self):
        plain_log, observed_log = [], []
        plain = Simulator(seed=1)
        _workload(plain, plain_log)
        plain.run(until=500.0)

        observed = Simulator(seed=1)
        observed.observer = EngineObserver(bucket_ns=100.0)
        _workload(observed, observed_log)
        observed.run(until=500.0)

        assert observed_log == plain_log
        assert observed.now == plain.now == 500.0

    def test_full_stack_run_is_unperturbed(self):
        _tracer, _dep, _bed, plain_delivered = run_traced_flow(
            messages=8, seed=5
        )
        _tracer2, _dep2, bed2, observed_delivered = run_traced_flow(
            messages=8, seed=5, observe_engine=True
        )
        assert observed_delivered == plain_delivered
        observer = _tracer2.engine_observers["test"]
        assert observer.events == bed2.sim.stats()["events_executed"]


class TestDensity:
    def test_density_buckets_cover_all_events(self):
        sim = Simulator(seed=0)
        observer = EngineObserver(bucket_ns=50.0)
        sim.observer = observer
        log = []
        _workload(sim, log)
        executed = sim.run()
        density = observer.density()
        assert sum(count for _start, count in density) == executed
        starts = [start for start, _count in density]
        assert starts == sorted(starts)
