"""JSON-native round trips: fault schedules and QoS policies."""

import pytest

from repro.core.errors import FaultInjectionError, QosValidationError
from repro.core.qos import (
    Acceleration,
    QosPolicy,
    ResourceBudget,
    TimeSensitivity,
)
from repro.faults.schedule import INJECTOR_KINDS, FaultSchedule


def full_schedule():
    return (FaultSchedule()
            .link_down(at=100_000, for_ns=50_000, link=0)
            .loss_burst(at=200_000, for_ns=80_000, rate=0.25, link=1)
            .nic_queue_squeeze(at=300_000, for_ns=60_000, capacity=4, host=1)
            .datapath_failure(at=400_000, datapath="dpdk", host=0)
            .datapath_stall(at=500_000, for_ns=90_000, datapath="dpdk")
            .cpu_slowdown(at=600_000, for_ns=70_000, factor=2.0, host=1))


class TestFaultScheduleRoundTrip:
    def test_every_kind_round_trips(self):
        original = full_schedule()
        assert {i.kind for i in original} == set(INJECTOR_KINDS)
        rebuilt = FaultSchedule.from_dict(original.to_dict())
        assert rebuilt.describe() == original.describe()

    def test_string_durations_equal_numeric(self):
        numeric = FaultSchedule.from_dict([
            {"kind": "loss_burst", "at": 250_000, "for": 100_000,
             "rate": 0.2},
            {"kind": "link_down", "at": 1_000_000, "for": 300_000},
        ])
        strings = FaultSchedule.from_dict([
            {"kind": "loss_burst", "at": "250us", "for": "100us",
             "rate": 0.2},
            {"kind": "link_down", "at": "1ms", "for": "300us"},
        ])
        assert strings.describe() == numeric.describe()

    def test_bare_list_and_wrapped_dict_equivalent(self):
        records = [{"kind": "link_down", "at": 0, "for": 10_000}]
        assert FaultSchedule.from_dict(records).describe() == \
            FaultSchedule.from_dict({"faults": records}).describe()

    def test_permanent_fault_round_trips_none_duration(self):
        schedule = FaultSchedule.from_dict(
            [{"kind": "loss_burst", "at": 0, "rate": 0.1}])
        assert schedule.injectors[0].for_ns is None
        rebuilt = FaultSchedule.from_dict(schedule.to_dict())
        assert rebuilt.injectors[0].for_ns is None

    def test_unknown_kind_names_the_record(self):
        with pytest.raises(FaultInjectionError) as err:
            FaultSchedule.from_dict([{"kind": "gremlins", "at": 0}])
        assert "faults[0]" in str(err.value)

    def test_unknown_field_names_the_record(self):
        with pytest.raises(FaultInjectionError) as err:
            FaultSchedule.from_dict(
                [{"kind": "link_down", "at": 0, "for": 1, "power": 9}])
        assert "power" in str(err.value)

    def test_missing_at_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultSchedule.from_dict([{"kind": "link_down", "for": 1000}])

    def test_bad_duration_string_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultSchedule.from_dict(
                [{"kind": "link_down", "at": "soon", "for": 1000}])


class TestQosPolicyRoundTrip:
    ALL_POLICIES = [
        QosPolicy(acceleration, resources, sensitivity)
        for acceleration in Acceleration
        for resources in ResourceBudget
        for sensitivity in TimeSensitivity
        # constrained only applies to accelerated streams
        if not (acceleration is Acceleration.NONE
                and resources is ResourceBudget.CONSTRAINED)
    ]

    @pytest.mark.parametrize("policy", ALL_POLICIES,
                             ids=lambda p: "-".join(
                                 (p.acceleration.name, p.resources.name,
                                  p.time_sensitivity.name)).lower())
    def test_to_dict_from_dict_identity(self, policy):
        assert QosPolicy.from_dict(policy.to_dict()) == policy

    def test_enum_names_accepted_any_case(self):
        assert QosPolicy.from_dict(
            {"acceleration": "ACCELERATED", "resources": "Constrained",
             "time_sensitivity": "TIME_SENSITIVE"}
        ) == QosPolicy.fast(constrained=True, time_sensitive=True)

    def test_hyphen_underscore_interchangeable(self):
        assert QosPolicy.from_dict(
            {"time_sensitivity": "best_effort"}) == QosPolicy.slow()

    def test_invalid_value_raises_typed(self):
        with pytest.raises(QosValidationError):
            QosPolicy.from_dict({"acceleration": "ludicrous"})

    def test_non_dict_rejected(self):
        with pytest.raises(QosValidationError):
            QosPolicy.from_dict("fast")
