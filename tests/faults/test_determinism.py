"""The determinism contract: same seed + same fault schedule => identical run."""

from repro.core import QosPolicy, Session
from repro.core.runtime import InsaneDeployment
from repro.faults import FaultSchedule
from repro.hw import Testbed
from repro.simnet import Timeout


def run_scenario(sim_seed, schedule_seed, messages=120):
    """One full run under a randomized fault schedule plus an injected
    datapath failure; returns (trace digest, delivery timestamps, outcomes)."""
    testbed = Testbed.local(seed=sim_seed)
    sim = testbed.sim
    deployment = InsaneDeployment(testbed)
    # instantiate every binding up front so randomized stalls always have
    # a target regardless of which datapath the schedule picks
    for index in range(2):
        runtime = deployment.runtime(index)
        for name in ("dpdk", "xdp"):
            runtime.ensure_binding(name)

    with Session(deployment.runtime(0), "pub") as pub, \
            Session(deployment.runtime(1), "sub") as sub:
        pub_stream = pub.create_stream(QosPolicy.fast(), name="d")
        sub_stream = sub.create_stream(QosPolicy.fast(), name="d")
        source = pub.create_source(pub_stream, channel=1)
        sink = sub.create_sink(sub_stream, channel=1)

        emit_ids = []
        deliveries = []

        def producer():
            for _ in range(messages):
                buffer = yield from pub.get_buffer_wait(source, 64)
                emit_id = yield from pub.emit_data(source, buffer, length=64)
                emit_ids.append(emit_id)
                yield Timeout(10_000.0)

        def consumer():
            while True:
                delivery = yield from sub.consume_data(sink)
                deliveries.append(sim.now)
                sub.release_buffer(sink, delivery)

        sim.process(producer(), name="pub")
        sim.process(consumer(), name="sub")

        schedule = FaultSchedule.random(schedule_seed, 900_000.0, faults=5)
        schedule.datapath_failure(at=400_000.0, host=0, datapath="dpdk")
        trace = schedule.apply(testbed, deployment)
        sim.run()

        outcomes = tuple(
            str(pub.check_emit_outcome(source, emit_id)) for emit_id in emit_ids
        )
        return trace.digest(), tuple(deliveries), outcomes


class TestDeterminism:
    def test_same_seed_same_schedule_is_bit_identical(self):
        a = run_scenario(sim_seed=3, schedule_seed=7)
        b = run_scenario(sim_seed=3, schedule_seed=7)
        assert a[0] == b[0]  # fault trace digest
        assert a[1] == b[1]  # every delivery timestamp
        assert a[2] == b[2]  # every emit outcome

    def test_different_sim_seed_changes_the_timeline(self):
        a = run_scenario(sim_seed=3, schedule_seed=7)
        b = run_scenario(sim_seed=4, schedule_seed=7)
        # the fault schedule fires at fixed simulated times (same digest),
        # but CPU jitter differs, so delivery timestamps must differ
        assert a[0] == b[0]
        assert a[1] != b[1]

    def test_different_schedule_seed_changes_the_faults(self):
        a = run_scenario(sim_seed=3, schedule_seed=7)
        b = run_scenario(sim_seed=3, schedule_seed=8)
        assert a[0] != b[0]

    def test_failover_fires_exactly_once_per_run(self):
        # the injected dpdk failure produces exactly one failover event on
        # host 0, run after run
        for _ in range(2):
            testbed = Testbed.local(seed=5)
            deployment = InsaneDeployment(testbed)
            runtime = deployment.runtime(0)
            with Session(runtime, "pub") as pub:
                stream = pub.create_stream(QosPolicy.fast(), name="once")
                pub.create_source(stream, channel=1)
                FaultSchedule().datapath_failure(
                    at=10_000.0, host=0, datapath="dpdk"
                ).apply(testbed, deployment)
                testbed.sim.run()
                assert len(runtime.health.events) == 1
                assert runtime.failovers.value == 1
                assert stream.datapath == "xdp"
