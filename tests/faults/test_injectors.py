"""Unit tests of the fault injectors and schedules (repro.faults)."""

import pytest

from repro.core import QosPolicy, Session
from repro.core.errors import FaultInjectionError
from repro.core.runtime import InsaneDeployment
from repro.faults import (
    CpuSlowdown,
    DatapathFailure,
    FaultSchedule,
    LinkDown,
    LossBurst,
    NicQueueSqueeze,
)
from repro.hw import Testbed
from repro.simnet import Timeout


def make_bed(seed=0):
    bed = Testbed.local(seed=seed)
    return bed, InsaneDeployment(bed)


class TestValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(FaultInjectionError):
            LinkDown(-1.0, 100.0)

    def test_zero_duration_rejected(self):
        with pytest.raises(FaultInjectionError):
            LinkDown(0.0, 0.0)

    def test_loss_rate_bounds(self):
        with pytest.raises(FaultInjectionError):
            LossBurst(0.0, 100.0, rate=0.0)
        with pytest.raises(FaultInjectionError):
            LossBurst(0.0, 100.0, rate=1.5)

    def test_slowdown_factor_positive(self):
        with pytest.raises(FaultInjectionError):
            CpuSlowdown(0.0, 100.0, factor=0.0)

    def test_error_carries_code(self):
        with pytest.raises(FaultInjectionError) as excinfo:
            LinkDown(-1.0, 100.0)
        assert excinfo.value.code == 42

    def test_unknown_link_raises_at_fire_time(self):
        bed, dep = make_bed()
        FaultSchedule().link_down(at=10.0, for_ns=10.0, link=7).apply(bed, dep)
        with pytest.raises(FaultInjectionError):
            bed.sim.run()

    def test_schedule_applies_exactly_once(self):
        bed, dep = make_bed()
        schedule = FaultSchedule().link_down(at=10.0, for_ns=10.0)
        schedule.apply(bed, dep)
        with pytest.raises(FaultInjectionError):
            schedule.apply(bed, dep)


class TestLinkFaults:
    def test_link_down_and_up(self):
        bed, dep = make_bed()
        link = bed.links[0]
        FaultSchedule().link_down(at=100.0, for_ns=200.0).apply(bed, dep)
        bed.sim.run()
        assert link.up  # restored after the flap
        # while down, frames are lost: drive the timeline manually
        bed2, dep2 = make_bed()
        link2 = bed2.links[0]
        trace = FaultSchedule().link_down(at=100.0, for_ns=200.0).apply(bed2, dep2)
        fired = []

        def probe():
            yield Timeout(150.0)
            fired.append(link2.up)

        bed2.sim.process(probe(), name="probe")
        bed2.sim.run()
        assert fired == [False]
        kinds = [(kind, phase) for _, kind, phase, _ in trace.events]
        assert kinds == [("link_down", "fire"), ("link_down", "clear")]

    def test_loss_burst_sets_and_clears_rate(self):
        bed, dep = make_bed()
        link = bed.links[0]
        FaultSchedule().loss_burst(at=50.0, for_ns=100.0, rate=0.25).apply(bed, dep)
        seen = []

        def probe():
            yield Timeout(100.0)
            seen.append(link.loss_rate)

        bed.sim.process(probe(), name="probe")
        bed.sim.run()
        assert seen == [0.25]
        assert link.loss_rate == 0.0


class TestHostFaults:
    def test_cpu_slowdown_scales_costs(self):
        bed, dep = make_bed()
        host = bed.hosts[0]
        FaultSchedule().cpu_slowdown(at=0.0, for_ns=1000.0, factor=3.0).apply(bed, dep)
        bed.sim.run()
        assert host._slowdown == 1.0  # restored
        host.slow_down(2.0)
        # jitter floor is 0.5x, so a 2x slowdown must at least reach 1.0x
        assert host.jitter(100.0) >= 100.0 * 2.0 * 0.5
        host.restore_speed()

    def test_nic_queue_squeeze_restores_capacity(self):
        bed, dep = make_bed()
        nic = bed.hosts[1].nic
        before = nic.rx_ring.capacity
        FaultSchedule().nic_queue_squeeze(
            at=10.0, for_ns=100.0, capacity=2, host=1
        ).apply(bed, dep)
        during = []

        def probe():
            yield Timeout(50.0)
            during.append(nic.rx_ring.capacity)

        bed.sim.process(probe(), name="probe")
        bed.sim.run()
        assert during == [2]
        assert nic.rx_ring.capacity == before


class TestDatapathFaults:
    def test_datapath_failure_and_restore(self):
        bed, dep = make_bed()
        runtime = dep.runtime(0)
        session = Session(runtime, "app")
        stream = session.create_stream(QosPolicy.fast(), name="s")
        assert stream.datapath == "dpdk"
        FaultSchedule().datapath_failure(
            at=100.0, for_ns=5_000_000.0, host=0, datapath="dpdk"
        ).apply(bed, dep)
        bed.sim.run()
        # restored at the end: available again for new streams
        assert "dpdk" in runtime.available_datapaths()
        assert not runtime.bindings["dpdk"].failed

    def test_datapath_stall_requires_duration(self):
        from repro.faults import DatapathStall

        with pytest.raises(FaultInjectionError):
            DatapathStall(0.0, None)

    def test_runtime_target_without_deployment(self):
        bed = Testbed.local(seed=0)
        FaultSchedule().datapath_failure(at=10.0, host=0).apply(bed, None)
        with pytest.raises(FaultInjectionError):
            bed.sim.run()


class TestRandomSchedules:
    def test_same_seed_same_schedule(self):
        a = FaultSchedule.random(11, 1_000_000.0, faults=6)
        b = FaultSchedule.random(11, 1_000_000.0, faults=6)
        assert a.describe() == b.describe()
        assert len(a) == 6

    def test_different_seed_differs(self):
        a = FaultSchedule.random(11, 1_000_000.0)
        b = FaultSchedule.random(12, 1_000_000.0)
        assert a.describe() != b.describe()

    def test_generation_does_not_touch_sim_rng(self):
        bed, dep = make_bed(seed=4)
        before = bed.sim.rng.random()
        bed2, dep2 = make_bed(seed=4)
        FaultSchedule.random(99, 1_000_000.0)
        after = bed2.sim.rng.random()
        assert before == after
