"""QoS-aware failover: detection, re-mapping, degradation, stranding."""

import pytest

from repro.core import EmitOutcome, QosPolicy, Session
from repro.core.errors import DatapathFailedError
from repro.core.runtime import InsaneDeployment
from repro.faults import FaultSchedule
from repro.hw import Testbed
from repro.simnet import Timeout

FAIL_AT = 500_000.0
INTERVAL = 25_000.0


def run_pubsub_with_failure(messages=30, fail_at=FAIL_AT, restore_at=None,
                            refail_at=None, seed=0):
    """Steady fast-path pub/sub traffic with an injected dpdk failure on the
    publisher host; returns everything the assertions need."""
    testbed = Testbed.local(seed=seed)
    sim = testbed.sim
    deployment = InsaneDeployment(testbed)
    runtime = deployment.runtime(0)

    pub = Session(runtime, "pub")
    sub = Session(deployment.runtime(1), "sub")
    pub_stream = pub.create_stream(QosPolicy.fast(), name="fo")
    sub_stream = sub.create_stream(QosPolicy.fast(), name="fo")
    source = pub.create_source(pub_stream, channel=1)
    sink = sub.create_sink(sub_stream, channel=1)

    emit_ids = []
    deliveries = []

    def producer():
        for _ in range(messages):
            buffer = yield from pub.get_buffer_wait(source, 64)
            emit_id = yield from pub.emit_data(source, buffer, length=64)
            emit_ids.append(emit_id)
            yield Timeout(INTERVAL)

    def consumer():
        while True:
            delivery = yield from sub.consume_data(sink)
            deliveries.append(sim.now)
            sub.release_buffer(sink, delivery)

    sim.process(producer(), name="pub")
    sim.process(consumer(), name="sub")
    sim.schedule(fail_at, lambda: runtime.fail_datapath("dpdk", "injected"))
    if restore_at is not None:
        sim.schedule(restore_at, lambda: runtime.restore_datapath("dpdk"))
    if refail_at is not None:
        sim.schedule(refail_at, lambda: runtime.fail_datapath("dpdk", "again"))
    sim.run()

    outcomes = [pub.check_emit_outcome(source, emit_id) for emit_id in emit_ids]
    return {
        "runtime": runtime,
        "pub": pub,
        "sub": sub,
        "stream": pub_stream,
        "sink": sink,
        "outcomes": outcomes,
        "deliveries": deliveries,
        "emitted": len(emit_ids),
    }


class TestFailover:
    def test_remaps_to_best_survivor(self):
        r = run_pubsub_with_failure()
        runtime, stream = r["runtime"], r["stream"]
        assert stream.datapath == "xdp"  # fast policy: dpdk -> xdp degradation
        assert stream.degraded
        assert not stream.failed
        assert runtime.failovers.value == 1
        assert len(runtime.health.events) == 1
        event = runtime.health.events[0]
        assert event.datapath == "dpdk"
        assert event.remapped == [("pub", "fo", "dpdk", "xdp")]
        assert event.stranded == []
        assert any("failed" in w for w in runtime.warnings)

    def test_detection_latency_matches_config(self):
        r = run_pubsub_with_failure()
        runtime = r["runtime"]
        event = runtime.health.events[0]
        assert event.failed_at == FAIL_AT
        assert event.detection_latency_ns == runtime.config.failover_detect_ns

    def test_traffic_survives_the_failure(self):
        r = run_pubsub_with_failure()
        # every message emitted is eventually delivered: parked tokens are
        # migrated off the dead binding's rings onto the fallback path
        assert len(r["deliveries"]) == r["emitted"]
        assert r["runtime"].health.events[0].migrated >= 1

    def test_outcomes_degrade_after_failover(self):
        r = run_pubsub_with_failure()
        outcomes = r["outcomes"]
        assert EmitOutcome.SENT in outcomes
        assert EmitOutcome.DEGRADED in outcomes
        # the enum still compares equal to the historical plain strings
        assert outcomes[0] == "sent"
        assert outcomes[-1] == "degraded"
        # sent before, degraded after — no interleaving
        first_degraded = outcomes.index(EmitOutcome.DEGRADED)
        assert all(o == EmitOutcome.SENT for o in outcomes[:first_degraded])
        assert all(o == EmitOutcome.DEGRADED for o in outcomes[first_degraded:])

    def test_restore_before_detection_is_noop(self):
        r = run_pubsub_with_failure(restore_at=FAIL_AT + 10_000.0)
        runtime, stream = r["runtime"], r["stream"]
        assert runtime.health.events == []
        assert runtime.failovers.value == 0
        assert stream.datapath == "dpdk"
        assert not stream.degraded
        assert len(r["deliveries"]) == r["emitted"]

    def test_refailure_is_a_new_epoch(self):
        r = run_pubsub_with_failure(
            restore_at=FAIL_AT + 100_000.0, refail_at=FAIL_AT + 200_000.0
        )
        runtime = r["runtime"]
        # first failure detected and remapped (pub stream -> xdp); the
        # restored-then-refailed dpdk binding fails again with no streams
        # left on it, producing a second (empty) failover event
        assert len(runtime.health.events) == 2
        assert runtime.failovers.value == 1
        assert r["stream"].datapath == "xdp"

    def test_failed_path_excluded_from_new_mappings(self):
        r = run_pubsub_with_failure()
        runtime = r["runtime"]
        assert "dpdk" not in runtime.available_datapaths()
        fresh = r["pub"].create_stream(QosPolicy.fast(), name="fresh")
        assert fresh.datapath == "xdp"

    def test_stats_expose_failure_state(self):
        r = run_pubsub_with_failure()
        stats = r["runtime"].stats()
        assert stats["failed_datapaths"] == ["dpdk"]
        assert stats["failovers"] == 1
        assert stats["failover_events"] == 1
        assert stats["bindings"]["dpdk"]["failed"] is True


class TestSinkRemap:
    def test_subscriber_side_failure_moves_subscription(self):
        testbed = Testbed.local(seed=0)
        sim = testbed.sim
        deployment = InsaneDeployment(testbed)
        sub_runtime = deployment.runtime(1)

        pub = Session(deployment.runtime(0), "pub")
        sub = Session(sub_runtime, "sub")
        pub_stream = pub.create_stream(QosPolicy.fast(), name="s")
        sub_stream = sub.create_stream(QosPolicy.fast(), name="s")
        source = pub.create_source(pub_stream, channel=1)
        sink = sub.create_sink(sub_stream, channel=1)
        assert sink.endpoint.datapath == "dpdk"

        deliveries = []

        def producer():
            for _ in range(20):
                buffer = yield from pub.get_buffer_wait(source, 64)
                yield from pub.emit_data(source, buffer, length=64)
                yield Timeout(INTERVAL)

        def consumer():
            while True:
                delivery = yield from sub.consume_data(sink)
                deliveries.append(sim.now)
                sub.release_buffer(sink, delivery)

        sim.process(producer(), name="pub")
        sim.process(consumer(), name="sub")
        sim.schedule(200_000.0, lambda: sub_runtime.fail_datapath("dpdk", "rx dead"))
        sim.run()

        # the subscription's advertised technology moved to the fallback;
        # the delivery ring itself is datapath-independent, so traffic
        # resumes once the publisher re-picks its egress per subscriber
        # tech.  In-flight frames during the detection window are lost —
        # a receiver-side driver crash drops its queues (best-effort).
        assert sink.endpoint.datapath == "xdp"
        detect_at = 200_000.0 + sub_runtime.config.failover_detect_ns
        after_remap = [t for t in deliveries if t > detect_at]
        assert len(after_remap) >= 10  # traffic flows again post-remap
        assert len(deliveries) >= 18   # at most the detection window is lost


class TestStranding:
    def test_stream_with_no_survivors_is_stranded(self):
        testbed = Testbed.local(seed=0)
        sim = testbed.sim
        deployment = InsaneDeployment(testbed)
        runtime = deployment.runtime(0)

        pub = Session(runtime, "pub")
        stream = pub.create_stream(QosPolicy.fast(), name="s")
        source = pub.create_source(stream, channel=1)
        # instantiate every binding so all of them can be failed
        for name in sorted(runtime.available_datapaths()):
            runtime.ensure_binding(name)

        errors = []

        def fail_everything():
            for name in sorted(runtime.bindings):
                if not runtime.bindings[name].failed:
                    runtime.fail_datapath(name, "total outage")

        def producer():
            buffer = yield from pub.get_buffer_wait(source, 64)
            yield from pub.emit_data(source, buffer, length=64)
            yield Timeout(200_000.0)  # past failure + detection
            try:
                buffer = yield from pub.get_buffer_wait(source, 64)
                yield from pub.emit_data(source, buffer, length=64)
            except DatapathFailedError as exc:
                errors.append(exc)

        sim.process(producer(), name="pub")
        sim.schedule(50_000.0, fail_everything)
        sim.run()

        assert stream.failed
        assert len(errors) == 1
        assert errors[0].code == 40
        events = {e.datapath: e for e in runtime.health.events}
        assert ("pub", "s") in events["dpdk"].stranded
        assert runtime.failovers.value == 0

    def test_injected_total_outage_via_schedule(self):
        testbed = Testbed.local(seed=0)
        deployment = InsaneDeployment(testbed)
        runtime = deployment.runtime(0)
        pub = Session(runtime, "pub")
        stream = pub.create_stream(QosPolicy.fast(), name="s")
        for name in sorted(runtime.available_datapaths()):
            runtime.ensure_binding(name)
        schedule = FaultSchedule()
        for name in sorted(runtime.bindings):
            schedule.datapath_failure(at=10_000.0, host=0, datapath=name)
        schedule.apply(testbed, deployment)
        testbed.sim.run()
        assert stream.failed
        with pytest.raises(DatapathFailedError):
            next(iter_emit(pub, pub.create_source(stream, channel=2)))


def iter_emit(session, source):
    """Drive one emit_data generator far enough to hit its validation."""
    buffer = session.get_buffer(source, 64)
    return session.emit_data(source, buffer, length=64)
