"""Result-cache semantics: hits skip execution, staleness forces misses.

The cache key is content-addressed over (cell spec, hardware-profile
content, package version, cache schema); these tests pin each component's
contribution and the executor-facing behaviours: a hit skips execution
entirely, ``cache=None`` (the ``--no-cache`` surface) always recomputes,
and a profile edit — even one that keeps the profile *name* — misses.
"""

import json
import os

import pytest

import repro
from repro.hw.profiles import PROFILES
from repro.parallel import (
    ResultCache,
    SweepExecutor,
    cache_key,
    make_cell,
    profile_digest,
    register_cell_kind,
)
from repro.simnet.cell import CELL_RUNNERS
from tests.parallel import helpers


@pytest.fixture(autouse=True)
def _test_kinds():
    saved = dict(CELL_RUNNERS)
    register_cell_kind("test.echo", "tests.parallel.helpers:echo_cell")
    helpers.EXECUTIONS.clear()
    yield
    CELL_RUNNERS.clear()
    CELL_RUNNERS.update(saved)


def echo_cells(n=3):
    return [make_cell("test.echo", value=v, seed=0) for v in range(n)]


class TestCacheKey:
    def test_key_depends_on_cell_params(self):
        a = make_cell("test.echo", value=1, seed=0)
        b = make_cell("test.echo", value=2, seed=0)
        assert cache_key(a) != cache_key(b)
        assert cache_key(a) == cache_key(make_cell("test.echo", value=1, seed=0))

    def test_key_goes_stale_on_profile_change(self):
        cell = make_cell("bench.throughput", system="insane_fast",
                         messages=100, size=256, seed=0)
        local = cache_key(cell, profile=PROFILES["local"])
        cloud = cache_key(cell, profile=PROFILES["cloud"])
        assert local != cloud
        # the profile param inside the cell picks the default profile
        cloudy = make_cell("bench.throughput", system="insane_fast",
                           profile="cloud", messages=100, size=256, seed=0)
        assert cache_key(cloudy) != cache_key(cell)

    def test_key_goes_stale_on_profile_content_edit(self):
        """Editing a stage cost misses even when the name stays 'local'."""
        base = PROFILES["local"]
        stage = base.stages["insane_ipc"]
        scaled = type(stage)(fixed=stage.fixed * 2, per_pkt=stage.per_pkt,
                             per_byte=stage.per_byte)
        stages = dict(base.stages)
        stages["insane_ipc"] = scaled
        edited = base.replace(stages=stages)
        assert profile_digest(edited) != profile_digest(base)
        cell = make_cell("test.echo", value=1, seed=0)
        assert cache_key(cell, profile=edited) != cache_key(cell, profile=base)

    def test_key_goes_stale_on_version_change(self):
        cell = make_cell("test.echo", value=1, seed=0)
        current = cache_key(cell)
        assert cache_key(cell, version=repro.__version__) == current
        assert cache_key(cell, version="0.0.0-other") != current


class TestGeneratedTopologyKey:
    """Cells carrying a ``topology`` param fold the *resolved* generator
    spec into their key, so editing a preset's content — with the preset
    name, and therefore the cell JSON, unchanged — still misses."""

    def city_cell(self, topology="smoke64"):
        return make_cell("bench.city", topology=topology, partitions=2,
                         datapath="udp", seed=0)

    def test_key_goes_stale_on_preset_content_edit(self, monkeypatch):
        from repro.hw.generate import CITY_PRESETS

        cell = self.city_cell()
        before = cache_key(cell)
        edited = dict(CITY_PRESETS["smoke64"])
        edited["messages"] = edited.get("messages", 8) + 1
        monkeypatch.setitem(CITY_PRESETS, "smoke64", edited)
        assert cache_key(cell) != before

    def test_key_separates_distinct_inline_specs(self):
        a = self.city_cell({"hosts": 16, "regions": 4})
        b = self.city_cell({"hosts": 16, "regions": 4, "messages": 4})
        assert cache_key(a) != cache_key(b)

    def test_preset_and_its_expansion_share_a_topology_digest(self):
        from repro.hw.generate import CITY_PRESETS, topology_digest

        assert topology_digest("smoke64") \
            == topology_digest(dict(CITY_PRESETS["smoke64"]))

    def test_key_uses_the_spec_profile_not_local(self):
        """bench.city cells carry no params['profile']; the key must hash
        the profile the city actually runs on (from the spec, default
        'cloud'), not the 'local' fallback."""
        cell = self.city_cell()
        assert cache_key(cell) == cache_key(cell, profile=PROFILES["cloud"])
        assert cache_key(cell) != cache_key(cell, profile=PROFILES["local"])


class TestCacheStore:
    def test_put_then_get_roundtrips(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        cell = make_cell("test.echo", value=1, seed=0)
        key = cache_key(cell)
        cache.put(key, cell, {"answer": 42})
        entry = cache.get(key)
        assert entry["payload"] == {"answer": 42}
        assert entry["cell"] == cell
        assert cache.stats()["stores"] == 1

    def test_missing_and_corrupt_entries_are_misses(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        cell = make_cell("test.echo", value=1, seed=0)
        key = cache_key(cell)
        assert cache.get(key) is None
        path = cache.path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as handle:
            handle.write("{truncated")
        assert cache.get(key) is None
        assert cache.stats()["hits"] == 0
        assert cache.stats()["misses"] == 2

    def test_entries_are_sharded_json_files(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        cell = make_cell("test.echo", value=1, seed=0)
        key = cache_key(cell)
        cache.put(key, cell, {"x": 1})
        path = cache.path(key)
        assert path.startswith(os.path.join(str(tmp_path), key[:2]))
        with open(path) as handle:
            assert json.load(handle)["key"] == key


class TestExecutorCaching:
    def test_hit_skips_execution_entirely(self, tmp_path):
        cells = echo_cells(3)
        first = SweepExecutor(workers=1, cache=ResultCache(str(tmp_path))).run(cells)
        assert first.executed == 3
        assert first.cache_hits == 0
        assert len(helpers.EXECUTIONS) == 3
        second = SweepExecutor(workers=1, cache=ResultCache(str(tmp_path))).run(cells)
        assert second.executed == 0
        assert second.cache_hits == 3
        assert second.hit_rate() == 1.0
        assert len(helpers.EXECUTIONS) == 3          # no re-execution
        assert first.merged_digest() == second.merged_digest()
        assert all(r.cached for r in second.results)

    def test_no_cache_forces_recompute(self, tmp_path):
        cells = echo_cells(2)
        SweepExecutor(workers=1, cache=ResultCache(str(tmp_path))).run(cells)
        assert len(helpers.EXECUTIONS) == 2
        # cache=None is the --no-cache surface: everything re-executes
        again = SweepExecutor(workers=1, cache=None).run(cells)
        assert again.executed == 2
        assert len(helpers.EXECUTIONS) == 4

    def test_partial_hits_merge_with_fresh_results(self, tmp_path):
        cache_root = str(tmp_path)
        SweepExecutor(workers=1, cache=ResultCache(cache_root)).run(echo_cells(2))
        mixed = SweepExecutor(workers=1, cache=ResultCache(cache_root)).run(
            echo_cells(4)
        )
        assert mixed.cache_hits == 2
        assert mixed.executed == 2
        flags = {r.cell["params"]["value"]: r.cached for r in mixed.results}
        assert flags == {0: True, 1: True, 2: False, 3: False}

    def test_cached_and_fresh_digests_agree_across_worker_counts(self, tmp_path):
        cells = echo_cells(3)
        fresh = SweepExecutor(workers=1).run(cells)
        warm = SweepExecutor(workers=2, cache=ResultCache(str(tmp_path))).run(cells)
        hot = SweepExecutor(workers=2, cache=ResultCache(str(tmp_path))).run(cells)
        assert fresh.merged_digest() == warm.merged_digest() == hot.merged_digest()
        assert hot.cache_hits == 3
