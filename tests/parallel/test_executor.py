"""The sweep executor's determinism contract, end to end.

The headline assertions: the same cell set produces identical payloads,
identical merge order, and identical merged digests at ``workers=1`` and
``workers=N`` — for a real fig8a throughput sub-grid and for a seeded
fuzz batch — and per-cell isolation holds (derived seeds, rng streams,
global counters) no matter which process runs a cell or in what order.
"""

import pytest

from repro.parallel import (
    SweepExecutor,
    cell_key,
    derive_seed,
    make_cell,
    register_cell_kind,
    run_cell,
    run_sweep,
)
from repro.simnet.cell import CELL_RUNNERS
from tests.parallel import helpers


@pytest.fixture(autouse=True)
def _test_kinds():
    """Register the helper kinds; restore the registry afterwards."""
    saved = dict(CELL_RUNNERS)
    register_cell_kind("test.echo", "tests.parallel.helpers:echo_cell")
    register_cell_kind("test.rng", "tests.parallel.helpers:rng_stream_cell")
    register_cell_kind("test.packets", "tests.parallel.helpers:packet_seq_cell")
    helpers.EXECUTIONS.clear()
    yield
    CELL_RUNNERS.clear()
    CELL_RUNNERS.update(saved)


def fig8a_subgrid(messages=300):
    return [
        make_cell("bench.throughput", system=system, messages=messages,
                  size=size, seed=0)
        for system in ("insane_fast", "udp_nonblocking")
        for size in (256, 1024)
    ]


class TestCellBasics:
    def test_cell_key_is_order_insensitive(self):
        a = {"kind": "test.echo", "params": {"value": 1, "seed": 2}}
        b = {"kind": "test.echo", "params": {"seed": 2, "value": 1}}
        assert cell_key(a) == cell_key(b)

    def test_derive_seed_is_deterministic_and_cell_specific(self):
        a = make_cell("test.echo", value=1)
        b = make_cell("test.echo", value=2)
        assert derive_seed(cell_key(a)) == derive_seed(cell_key(a))
        assert derive_seed(cell_key(a)) != derive_seed(cell_key(b))
        # 63-bit non-negative, spawn-safe as a random.Random seed
        assert 0 <= derive_seed(cell_key(a)) < 1 << 63

    def test_unknown_kind_raises_with_registered_list(self):
        with pytest.raises(KeyError, match="bench.throughput"):
            run_cell({"kind": "no.such.kind", "params": {}})

    def test_missing_seed_is_derived_from_cell_key(self):
        cell = {"kind": "test.echo", "params": {"value": 7}}
        payload = run_cell(cell)
        assert payload["seed"] == derive_seed(cell_key(cell))

    def test_pinned_seed_is_respected(self):
        payload = run_cell(make_cell("test.echo", value=7, seed=1234))
        assert payload["seed"] == 1234


class TestDeterministicMerge:
    def test_results_ordered_by_cell_key_not_submission_order(self):
        cells = [make_cell("test.echo", value=v, seed=0) for v in (3, 1, 2)]
        sweep = run_sweep(cells)
        assert [r.key for r in sweep.results] == sorted(r.key for r in sweep.results)

    def test_duplicate_cells_execute_once(self):
        cell = make_cell("test.echo", value=5, seed=0)
        sweep = run_sweep([cell, dict(cell), cell])
        assert len(sweep.results) == 1
        assert sweep.executed == 1
        assert len(helpers.EXECUTIONS) == 1

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            SweepExecutor(workers=0)


class TestSerialParallelEquivalence:
    def test_fig8a_subgrid_digest_equal_at_any_worker_count(self):
        cells = fig8a_subgrid()
        serial = SweepExecutor(workers=1).run(cells)
        parallel = SweepExecutor(workers=4).run(cells)
        assert serial.merged_digest() == parallel.merged_digest()
        assert [r.key for r in serial.results] == [r.key for r in parallel.results]
        assert serial.payloads() == parallel.payloads()
        # goodput values are real measurements, not placeholders
        assert all(p["gbps"] > 0 for p in serial.payloads())

    def test_fuzz_batch_corpus_digest_equal_serial_vs_parallel(self):
        from repro.validate.parallel import fuzz_cells

        cells = fuzz_cells(seed=0, n=4, do_shrink=False)
        serial = SweepExecutor(workers=1).run(cells)
        parallel = SweepExecutor(workers=2).run(cells)
        assert serial.merged_digest() == parallel.merged_digest()
        # every payload embeds the canonical trace digest: compare directly
        assert [p["digest"] for p in serial.payloads()] == [
            p["digest"] for p in parallel.payloads()
        ]

    def test_check_parallel_equivalence_reports_no_problems(self):
        from repro.validate.parallel import check_parallel_equivalence

        assert check_parallel_equivalence(seed=0, n=2, workers=2) == []

    def test_compare_sweeps_flags_divergent_payloads(self):
        from repro.validate.parallel import compare_sweeps

        cells = [make_cell("test.echo", value=v, seed=0) for v in (1, 2)]
        a = run_sweep(cells)
        b = run_sweep(cells)
        b.results[0].payload = {"tampered": True}
        problems = compare_sweeps(a, b)
        assert any("payload differs" in p for p in problems)
        assert any("digest differs" in p for p in problems)


class TestProcessIsolation:
    def test_rng_streams_are_pure_functions_of_the_cell(self):
        """Two workers with different cells never interleave rng streams."""
        cells = [make_cell("test.rng", seed=seed) for seed in (11, 22, 33, 44)]
        serial = SweepExecutor(workers=1).run(cells)
        parallel = SweepExecutor(workers=4).run(cells)
        for s, p in zip(serial.results, parallel.results):
            assert s.payload["draws"] == p.payload["draws"]
        # distinct seeds ⇒ distinct streams (no shared module-level rng)
        streams = [tuple(r.payload["draws"]) for r in serial.results]
        assert len(set(streams)) == len(streams)

    def test_rng_draws_independent_of_sibling_cells(self):
        alone = SweepExecutor(workers=1).run([make_cell("test.rng", seed=7)])
        crowded = SweepExecutor(workers=1).run(
            [make_cell("test.rng", seed=s) for s in (5, 6, 7, 8)]
        )
        by_seed = {r.payload["seed"]: r.payload["draws"] for r in crowded.results}
        assert by_seed[7] == alone.results[0].payload["draws"]

    def test_packet_counter_reset_per_cell(self):
        """A long-lived process running many cells matches fresh workers."""
        first = run_cell(make_cell("test.packets", count=3, seed=0))
        second = run_cell(make_cell("test.packets", count=5, seed=0))
        assert first["seqs"] == [1, 2, 3]
        assert second["seqs"] == [1, 2, 3, 4, 5]

    def test_runtime_registrations_reach_spawned_workers(self):
        """Kinds registered after import still run under workers>1."""
        cells = [make_cell("test.echo", value=v, seed=0) for v in (1, 2)]
        sweep = SweepExecutor(workers=2).run(cells)
        assert [r.payload["value"] for r in sweep.results] in ([1, 2], [2, 1])
