"""Worker-importable cell runners for the parallel-executor tests.

These live in a real module (not a test file) so spawn-started workers
can import them by the ``"tests.parallel.helpers:<fn>"`` registry target.
"""

import os
import random

#: in-process execution counter — only meaningful for workers=1 runs,
#: where cells execute in the parent interpreter.
EXECUTIONS = []


def echo_cell(value=0, seed=0, draws=4):
    """Deterministic payload from (value, seed); records each execution."""
    EXECUTIONS.append(("echo", value, seed))
    rng = random.Random(seed)
    return {
        "value": value,
        "seed": seed,
        "draws": [rng.randrange(1_000_000) for _ in range(draws)],
    }


def rng_stream_cell(seed=0, draws=8):
    """Expose the raw rng stream a cell observes, plus process identity.

    The regression this backs: two cells must never interleave or share
    rng state — each derives its own ``random.Random(seed)`` — so the
    draws are a pure function of the seed, not of the worker process,
    execution order, or sibling cells.
    """
    rng = random.Random(seed)
    return {
        "seed": seed,
        "pid": os.getpid(),
        "draws": [rng.randrange(1 << 30) for _ in range(draws)],
    }


def packet_seq_cell(count=3, seed=0):
    """Allocate packets and report their global sequence numbers.

    With per-cell global resets, the first packet of every cell is seq 1
    regardless of what ran before in the same process.
    """
    from repro.netstack.packet import Packet

    packets = [
        Packet("10.0.0.1", "10.0.0.2", 1000 + i, 2000, payload_len=64)
        for i in range(count)
    ]
    return {"seqs": [packet.seq for packet in packets]}
