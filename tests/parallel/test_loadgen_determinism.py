"""Closed-loop cells through the sweep executor: worker-count invariance.

The capacity harness inherits the executor's determinism contract only if
its cells are truly isolated — per-client rng derived from (seed, index),
no module-global state, fresh stacks per cell.  These tests pin that: a
capacity grid merged at 4 workers is digest-identical to the serial run,
and same-seed grids are bit-identical end to end.
"""

from repro.loadgen.capacity import capacity_cells, run_capacity
from repro.parallel import SweepExecutor

TINY = dict(warmup_ns=100_000.0, window_ns=400_000.0, windows=3,
            cooldown_ns=50_000.0, epsilon=0.08, think_dist="fixed")


def tiny_cells(seed=3):
    return capacity_cells("kernel_udp", clients=(1, 2, 4), seed=seed,
                          **TINY)


def test_merged_digest_is_worker_count_invariant():
    cells = tiny_cells()
    serial = SweepExecutor(workers=1, cache=None).run(cells)
    sharded = SweepExecutor(workers=4, cache=None).run(cells)
    assert serial.merged_digest() == sharded.merged_digest()
    assert serial.payloads() == sharded.payloads()


def test_same_seed_closed_loop_cells_are_bit_identical():
    executor = SweepExecutor(workers=1, cache=None)
    first = executor.run(tiny_cells(seed=7))
    second = SweepExecutor(workers=1, cache=None).run(tiny_cells(seed=7))
    assert first.merged_digest() == second.merged_digest()
    # and a different seed must actually move the digest
    other = SweepExecutor(workers=1, cache=None).run(tiny_cells(seed=8))
    assert other.merged_digest() != first.merged_digest()


def test_run_capacity_reports_equal_across_worker_counts():
    kwargs = dict(clients=(1, 2), seed=5, **TINY)
    serial, _ = run_capacity("kernel_udp", workers=1, **kwargs)
    sharded, _ = run_capacity("kernel_udp", workers=4, **kwargs)
    # meta (worker counts) differs; the digest-compared body must not
    assert serial.digest() == sharded.digest()
    assert serial.meta["workers"] != sharded.meta["workers"]
