"""The unified RunReport result object: digests, schema, persistence."""

import json

import pytest

from repro.report import (
    RUN_REPORT_SCHEMA,
    RunReport,
    canonical_json,
    write_reports,
)


class TestDigest:
    def test_meta_never_moves_the_digest(self):
        bare = RunReport(kind="t", data={"x": 1})
        decorated = RunReport(kind="t", data={"x": 1},
                              meta={"workers": 16, "host": "somewhere"})
        assert bare.digest() == decorated.digest()
        assert bare == decorated

    def test_data_moves_the_digest(self):
        assert RunReport(kind="t", data={"x": 1}).digest() != \
            RunReport(kind="t", data={"x": 2}).digest()

    def test_kind_moves_the_digest(self):
        assert RunReport(kind="a", data={}).digest() != \
            RunReport(kind="b", data={}).digest()

    def test_digest_input_is_key_order_independent(self):
        assert RunReport(kind="t", data={"a": 1, "b": 2}).digest() == \
            RunReport(kind="t", data={"b": 2, "a": 1}).digest()


class TestRoundTrip:
    def test_dict_and_json_round_trips(self):
        report = RunReport(kind="t", data={"x": [1, 2]}, meta={"w": 4})
        assert RunReport.from_dict(report.to_dict()) == report
        loaded = RunReport.from_json(report.to_json())
        assert loaded.digest() == report.digest()
        assert loaded.meta == {"w": 4}

    def test_newer_schema_rejected_loudly(self):
        document = RunReport(kind="t", data={}).to_dict()
        document["schema"] = RUN_REPORT_SCHEMA + 1
        with pytest.raises(ValueError) as err:
            RunReport.from_dict(document)
        assert "newer" in str(err.value)

    def test_missing_keys_rejected(self):
        with pytest.raises(ValueError):
            RunReport.from_dict({"kind": "t"})
        with pytest.raises(ValueError):
            RunReport.from_dict("not a dict")

    def test_canonical_json_rejects_nan(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})


class TestWriteReports:
    def test_successive_writes_accumulate(self, tmp_path):
        path = str(tmp_path / "reports.json")
        write_reports(path, [RunReport(kind="a", data={})])
        write_reports(path, [RunReport(kind="b", data={})])
        stored = json.load(open(path))
        assert [d["kind"] for d in stored] == ["a", "b"]

    def test_corrupt_file_replaced(self, tmp_path):
        path = tmp_path / "reports.json"
        path.write_text("{broken")
        write_reports(str(path), [RunReport(kind="a", data={})])
        assert len(json.load(open(str(path)))) == 1

    def test_plain_dicts_pass_through(self, tmp_path):
        path = str(tmp_path / "reports.json")
        write_reports(path, [{"legacy": True}])
        assert json.load(open(path)) == [{"legacy": True}]
