"""A minimal Prometheus text-exposition parser built on the stdlib.

Used by tests to validate that scrape bodies are actually parseable —
family headers present, ``# TYPE`` before samples, label syntax and
escaping correct, values numeric — rather than merely regex-shaped.
"""

import math
import re

_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_SAMPLE_RE = re.compile(r"^(?P<name>%s)(?:\{(?P<labels>.*)\})? (?P<value>\S+)$" % _NAME)
_LABEL_RE = re.compile(r'(?P<key>%s)="(?P<value>(?:[^"\\\n]|\\\\|\\"|\\n)*)"' % _NAME)

_VALID_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")
_SUFFIXES = ("_bucket", "_sum", "_count", "_total")


def _parse_value(text):
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)  # raises ValueError on garbage


def _unescape(text):
    out = []
    index = 0
    while index < len(text):
        char = text[index]
        if char == "\\" and index + 1 < len(text):
            following = text[index + 1]
            if following == "n":
                out.append("\n")
                index += 2
                continue
            if following in ('"', "\\"):
                out.append(following)
                index += 2
                continue
        out.append(char)
        index += 1
    return "".join(out)


def _parse_labels(text, lineno):
    labels = {}
    pos = 0
    while pos < len(text):
        match = _LABEL_RE.match(text, pos)
        if match is None:
            raise ValueError("line %d: malformed label at %r" % (lineno, text[pos:]))
        labels[match.group("key")] = _unescape(match.group("value"))
        pos = match.end()
        if pos < len(text):
            if text[pos] != ",":
                raise ValueError("line %d: expected ',' at %r" % (lineno, text[pos:]))
            pos += 1
    return labels


def parse(body):
    """Parse a scrape body into ``{family: info}`` dicts.

    ``info`` carries ``type``, ``help``, and ``samples`` — a list of
    ``(sample_name, labels_dict, value)``.  Raises ``ValueError`` on any
    spec violation this mini-parser understands.
    """
    families = {}
    for lineno, line in enumerate(body.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 3:
                raise ValueError("line %d: malformed HELP" % lineno)
            family = families.setdefault(
                parts[2], {"type": None, "help": None, "samples": []}
            )
            family["help"] = parts[3] if len(parts) > 3 else ""
        elif line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in _VALID_TYPES:
                raise ValueError("line %d: malformed TYPE: %r" % (lineno, line))
            family = families.setdefault(
                parts[2], {"type": None, "help": None, "samples": []}
            )
            if family["samples"]:
                raise ValueError(
                    "line %d: TYPE for %s after its samples" % (lineno, parts[2])
                )
            family["type"] = parts[3]
        elif line.startswith("#"):
            continue  # comment
        else:
            match = _SAMPLE_RE.match(line)
            if match is None:
                raise ValueError("line %d: malformed sample: %r" % (lineno, line))
            name = match.group("name")
            value = _parse_value(match.group("value"))
            labels = _parse_labels(match.group("labels") or "", lineno)
            base = name
            for suffix in _SUFFIXES:
                stripped = name[: -len(suffix)] if name.endswith(suffix) else None
                if stripped and stripped in families:
                    base = stripped
                    break
            family = families.setdefault(
                base, {"type": None, "help": None, "samples": []}
            )
            family["samples"].append((name, labels, value))
    return families


def check_histogram(family):
    """Assert histogram invariants: cumulative ``le`` buckets per label
    set ending at ``+Inf``, matching ``_count``."""
    buckets = {}
    counts = {}
    for name, labels, value in family["samples"]:
        key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
        if name.endswith("_bucket"):
            buckets.setdefault(key, []).append((labels["le"], value))
        elif name.endswith("_count"):
            counts[key] = value
    assert buckets, "histogram family has no buckets"
    for key, series in buckets.items():
        values = [value for _le, value in series]
        assert values == sorted(values), "buckets not cumulative: %r" % (series,)
        assert series[-1][0] == "+Inf", "bucket series must end at +Inf"
        assert series[-1][1] == counts.get(key), "+Inf bucket != _count"
