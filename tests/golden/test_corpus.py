"""Tier-1 guard: the pinned golden-trace corpus must hold.

``corpus.json`` pins sha256 digests of the paper workloads (fig5/fig8a/
fig8b), the failover bench, and four differential-validation workloads.
If a commit moves any digest, this test names the exact entry — re-pin
deliberately with ``insane-validate golden --regen --force``.
"""

import json
import os

import pytest

from repro.validate.golden import (
    check_corpus,
    corpus_path,
    load_corpus,
    regenerate_corpus,
)


class TestCorpusFile:
    def test_corpus_is_pinned_in_repo(self):
        path = corpus_path()
        assert os.path.exists(path), (
            "tests/golden/corpus.json missing — regenerate with "
            "insane-validate golden --regen"
        )
        corpus = load_corpus()
        assert corpus["version"] == 1
        for section in ("engine", "faults", "validate", "params"):
            assert section in corpus
        assert set(corpus["engine"]) == {
            "fig5_pingpong", "fig8a_streaming", "fig8b_8sink",
        }
        assert "failover" in corpus["faults"]
        assert len(corpus["validate"]) == len(
            corpus["params"]["validate_seeds"]
        )

    def test_digests_look_like_sha256(self):
        corpus = load_corpus()
        for section in ("engine", "faults", "validate"):
            for key, digest in corpus[section].items():
                assert isinstance(digest, str) and len(digest) == 64, (
                    "%s/%s is not a sha256 hex digest: %r"
                    % (section, key, digest)
                )


class TestCorpusHolds:
    def test_every_pinned_digest_matches_current_code(self):
        problems = check_corpus()
        assert problems == [], "\n".join(problems)


class TestRegeneration:
    def test_refuses_to_overwrite_without_force(self, tmp_path):
        path = tmp_path / "corpus.json"
        path.write_text("{}")
        with pytest.raises(FileExistsError):
            regenerate_corpus(path=str(path))
        assert path.read_text() == "{}"  # untouched

    def test_force_overwrites_and_result_checks_clean(self, tmp_path):
        path = tmp_path / "corpus.json"
        path.write_text("{}")
        regenerate_corpus(path=str(path), force=True)
        assert check_corpus(path=str(path)) == []

    def test_tampered_digest_is_named_in_the_report(self, tmp_path):
        corpus = load_corpus()
        corpus["engine"]["fig5_pingpong"] = "0" * 64
        path = tmp_path / "corpus.json"
        path.write_text(json.dumps(corpus))
        problems = check_corpus(path=str(path))
        assert len(problems) == 1
        assert "engine/fig5_pingpong" in problems[0]
        assert "golden digest moved" in problems[0]

    def test_unknown_pinned_entry_is_reported(self, tmp_path):
        corpus = load_corpus()
        corpus["validate"]["seed-99"] = "f" * 64
        path = tmp_path / "corpus.json"
        path.write_text(json.dumps(corpus))
        problems = check_corpus(path=str(path))
        assert any("unknown entry validate/seed-99" in p for p in problems)
