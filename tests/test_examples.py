"""Smoke tests: every example script must run to completion.

Examples are deliverables; these tests keep them working as the library
evolves.  Each runs in a subprocess with reduced workloads where the
script accepts parameters.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "examples")

CASES = [
    ("quickstart.py", []),
    ("pubsub_mom.py", ["--samples", "10"]),
    ("image_streaming.py", ["--frames", "4", "--width", "160", "--height", "90"]),
    ("qos_migration.py", []),
    ("time_sensitive.py", []),
    ("reliable_transfer.py", ["--chunks", "30", "--loss", "0.1"]),
    ("failover.py", ["--messages", "20"]),
    ("latency_breakdown.py", ["--messages", "20"]),
    ("edge_orchestration.py", []),
    ("utcp_file_transfer.py", ["--kb", "32", "--loss", "0.05"]),
    (os.path.join("loc_apps", "app_insane.py"), ["--rounds", "50", "--messages", "300"]),
    (os.path.join("loc_apps", "app_udp.py"), ["--rounds", "50", "--messages", "300"]),
    (os.path.join("loc_apps", "app_dpdk.py"), ["--rounds", "50", "--messages", "300"]),
]


@pytest.mark.parametrize("script,args", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, args):
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)] + args,
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, (
        "%s failed:\nstdout:\n%s\nstderr:\n%s" % (script, result.stdout, result.stderr)
    )
    assert result.stdout.strip(), "%s produced no output" % script
