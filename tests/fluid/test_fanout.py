"""Metamorphic + differential tests for the hybrid-fidelity fan-out.

The invariants the fluid tier is not allowed to break:

* delivered count is *exact* — ``messages x subscribers`` — at every
  ``hot_fraction``, including the pure-analytic (0.0) and pure-DES (1.0)
  endpoints and mid-run promotion/demotion churn;
* raising ``subscribers`` never lowers any sink's delivery ratio
  (fan-out is replication, not contention, at drop-free pacing);
* hybrid latency percentiles stay within the declared epsilon of the
  full-DES reference;
* wire accounting is conserved: DES tx frames == hybrid simulated +
  fluid-accounted tx frames.
"""

import pytest

from repro.fluid import calibrate_envelope, run_hybrid_fanout
from repro.validate.fanout import run_fanout_differential

EPSILON = 0.15


@pytest.fixture(scope="module")
def envelope():
    # one calibration probe shared by the whole module; seed matches the
    # seed=0 convention used by run_hybrid_fanout's auto-calibration
    return calibrate_envelope(profile="local", size=512, seed=7919)


def run(envelope, subscribers, hot_fraction, messages=12, **kwargs):
    kwargs.setdefault("interval_ns", envelope.safe_interval_ns(subscribers))
    return run_hybrid_fanout(subscribers, messages=messages, size=512,
                             hot_fraction=hot_fraction, envelope=envelope,
                             **kwargs)


class TestDeliveredCountInvariant:
    @pytest.mark.parametrize("hot_fraction", [0.0, 0.1, 1.0])
    def test_exact_at_every_fidelity_split(self, envelope, hot_fraction):
        metrics = run(envelope, 48, hot_fraction)
        assert metrics["delivered"] == metrics["expected"] == 48 * 12
        assert metrics["delivery_ratio"] == 1.0
        # hot + cold deliveries partition the total, no double counting
        assert (metrics["delivered_hot"] + metrics["delivered_cold"]
                == metrics["delivered"])

    def test_analytic_mode_at_zero_hot(self, envelope):
        metrics = run(envelope, 48, 0.0)
        assert metrics["hot"] == 0
        assert metrics["fluid"]["mode"] == "analytic"
        # nothing crossed the simulated wire; everything was accounted
        assert metrics["wire"]["tx_frames"] == 0
        assert metrics["wire"]["fluid_tx_frames"] == metrics["emitted"]

    def test_million_subscriber_analytic_is_exact_and_fast(self, envelope):
        metrics = run(envelope, 1_000_000, 0.0, messages=4)
        assert metrics["delivered"] == 4_000_000
        assert metrics["fluid"]["mode"] == "analytic"


class TestMonotoneSubscribers:
    def test_growing_population_never_lowers_delivery_ratio(self, envelope):
        ratios = []
        for count in (16, 64, 256):
            metrics = run(envelope, count, 0.1)
            ratios.append(metrics["delivery_ratio"])
            assert metrics["min_sink_goodput_gbps"] > 0.0
        assert ratios == sorted(ratios, reverse=True) or \
            all(r == 1.0 for r in ratios)


class TestDifferential:
    def test_hybrid_percentiles_within_epsilon_of_full_des(self, envelope):
        result = run_fanout_differential(
            subscribers=(64, 256), messages=16, size=512,
            hot_fraction=0.05, epsilon=EPSILON, envelope=envelope)
        assert result["ok"], result
        assert result["delivered_exact"]
        assert result["max_p50_rel_err"] <= EPSILON
        assert result["max_p99_rel_err"] <= EPSILON

    def test_wire_frames_conserved(self, envelope):
        result = run_fanout_differential(
            subscribers=(64,), messages=16, size=512,
            hot_fraction=0.05, epsilon=EPSILON, envelope=envelope)
        assert result["wire_conserved"]
        for cell in result["cells"]:
            assert cell["delivered_exact"]
            assert cell["wire_conserved"]


class TestPromotionDemotion:
    def test_controller_churn_keeps_delivered_exact(self, envelope):
        slow = envelope.safe_interval_ns(200) * 4
        # fast phase well above the 1 kHz threshold, slow phase well
        # below the 500 Hz demote line (EWMA needs strict undershoot)
        metrics = run_hybrid_fanout(
            200, messages=60, size=512, hot_fraction=0.0,
            promote_threshold_hz=1000.0, promote_batch=20,
            interval_ns=lambda i: 50_000.0 if i < 40 else max(slow, 4e6),
            envelope=envelope)
        fluid = metrics["fluid"]
        assert metrics["delivered"] == metrics["expected"] == 200 * 60
        assert fluid["promotions"] > 0
        assert fluid["demotions"] > 0

    def test_promote_threshold_forces_piggyback_signal(self, envelope):
        # analytic mode cannot observe arrival rate, so arming the
        # controller bumps at least one sink to packet-accurate
        metrics = run_hybrid_fanout(
            64, messages=8, size=512, hot_fraction=0.0,
            promote_threshold_hz=10_000.0, envelope=envelope,
            interval_ns=envelope.safe_interval_ns(64))
        assert metrics["hot"] >= 1
        assert metrics["fluid"]["mode"] == "piggyback"
        assert metrics["delivered"] == metrics["expected"]


class TestValidation:
    def test_rejects_bad_arguments(self, envelope):
        with pytest.raises(ValueError):
            run_hybrid_fanout(0, envelope=envelope)
        with pytest.raises(ValueError):
            run_hybrid_fanout(8, messages=0, envelope=envelope)
        with pytest.raises(ValueError):
            run_hybrid_fanout(8, hot_fraction=1.5, envelope=envelope)
