"""FidelityController hysteresis unit tests (fake aggregate, no sim)."""

import pytest

from repro.fluid import FidelityController


class FakeAggregate:
    def __init__(self, subscribers):
        self.subscribers = subscribers
        self.controller = None

    def set_subscribers(self, count):
        self.subscribers = count


def make(subscribers=100, threshold=1000.0, **kwargs):
    aggregate = FakeAggregate(subscribers)
    moves = {"promoted": 0, "demoted": 0}

    def on_promote(want):
        moves["promoted"] += want
        return want

    def on_demote(want):
        granted = min(want, moves["promoted"] - moves["demoted"])
        moves["demoted"] += granted
        return granted

    controller = FidelityController(aggregate, threshold, on_promote,
                                    on_demote, **kwargs)
    return controller, aggregate, moves


class TestHysteresis:
    def test_dwell_delays_promotion(self):
        controller, aggregate, moves = make(dwell_ticks=3, promote_batch=10)
        controller.on_tick(0.0, 5000.0)
        controller.on_tick(1.0, 5000.0)
        assert moves["promoted"] == 0
        controller.on_tick(2.0, 5000.0)
        assert moves["promoted"] == 10
        assert aggregate.subscribers == 90
        assert controller.promotions == 10

    def test_dead_band_resets_both_streaks(self):
        controller, aggregate, moves = make(dwell_ticks=2, promote_batch=10)
        controller.on_tick(0.0, 5000.0)
        controller.on_tick(1.0, 700.0)  # between demote (500) and promote
        controller.on_tick(2.0, 5000.0)
        assert moves["promoted"] == 0  # streak was reset by the dead band
        controller.on_tick(3.0, 5000.0)
        assert moves["promoted"] == 10

    def test_demotion_needs_strict_undershoot(self):
        controller, aggregate, moves = make(dwell_ticks=1, promote_batch=10)
        controller.on_tick(0.0, 5000.0)
        assert moves["promoted"] == 10
        # exactly at the demote line: rate < demote_hz is strict, no move
        controller.on_tick(1.0, 500.0)
        assert moves["demoted"] == 0
        controller.on_tick(2.0, 499.0)
        assert moves["demoted"] == 10
        assert aggregate.subscribers == 100
        assert controller.demotions == 10

    def test_min_cold_floor_blocks_full_promotion(self):
        controller, aggregate, moves = make(
            subscribers=5, dwell_ticks=1, promote_batch=100, min_cold=2)
        controller.on_tick(0.0, 5000.0)
        assert moves["promoted"] == 3  # 5 - min_cold
        assert aggregate.subscribers == 2
        controller.on_tick(1.0, 5000.0)
        assert moves["promoted"] == 3  # no room left

    def test_default_batch_is_one_percent(self):
        controller, _, _ = make(subscribers=5000)
        assert controller.batch == 50
        controller, _, _ = make(subscribers=10)
        assert controller.batch == 1  # never zero


class TestValidation:
    def test_rejects_bad_parameters(self):
        aggregate = FakeAggregate(10)
        noop = lambda want: 0
        with pytest.raises(ValueError):
            FidelityController(aggregate, 0, noop, noop)
        with pytest.raises(ValueError):
            FidelityController(aggregate, None, noop, noop)
        with pytest.raises(ValueError):
            FidelityController(aggregate, 100.0, noop, noop, demote_ratio=1.0)
        with pytest.raises(ValueError):
            FidelityController(aggregate, 100.0, noop, noop, dwell_ticks=0)
        with pytest.raises(ValueError):
            FidelityController(aggregate, 100.0, noop, noop, min_cold=0)

    def test_registers_itself_on_the_aggregate(self):
        controller, aggregate, _ = make()
        assert aggregate.controller is controller
        stats = controller.stats()
        assert stats["promote_threshold_hz"] == 1000.0
        assert stats["demote_threshold_hz"] == 500.0
