"""Envelope calibration tests: the fluid tier's analytic stand-in must
agree with the profile scalars and the Fig. 6 breakdown it is derived
from."""

import pytest

from repro.fluid import calibrate_envelope, envelope_from_breakdown
from repro.fluid.envelope import STAGES
from repro.hw.profiles import PROFILES


@pytest.fixture(scope="module")
def envelope():
    return calibrate_envelope(profile="local", size=512, seed=7919)


class TestCalibration:
    def test_stage_means_cover_the_fig6_decomposition(self, envelope):
        assert set(envelope.stage_ns) == set(STAGES)
        assert all(envelope.stage_ns[stage] > 0.0 for stage in STAGES)
        # one-way latency is at least the sum of its parts minus jitter;
        # sanity: within 2x either way
        total = sum(envelope.stage_ns.values())
        assert 0.5 * total <= envelope.one_way_ns <= 2.0 * total

    def test_scalars_come_from_the_profile(self, envelope):
        prof = PROFILES["local"]
        assert envelope.fanout_per_sink_ns == \
            prof.scalar("insane_fanout_per_sink_ns")
        assert envelope.l2_ring_budget == \
            prof.scalar("insane_l2_ring_budget")
        assert envelope.ipc_half_ns == \
            prof.stage("insane_ipc").cost(0, burst=1) / 2.0

    def test_deterministic_for_a_seed(self):
        first = calibrate_envelope(profile="local", size=512, seed=7919)
        second = calibrate_envelope(profile="local", size=512, seed=7919)
        assert first.to_dict() == second.to_dict()


class TestFanoutService:
    def test_zero_and_one_subscriber_cost_nothing_extra(self, envelope):
        assert envelope.fanout_service_ns(0) == 0.0
        # one sink: no per-sink replication, possibly no L2 pressure
        assert envelope.fanout_service_ns(1) <= envelope.fanout_service_ns(2)

    def test_l2_cliff_kicks_in_past_the_ring_budget(self, envelope):
        budget = envelope.l2_ring_budget
        inside = envelope.fanout_service_ns(budget)
        past = envelope.fanout_service_ns(budget + 10)
        linear = envelope.fanout_per_sink_ns * 10
        assert past - inside > linear  # super-linear beyond the budget

    def test_safe_interval_grows_with_population_and_floors(self, envelope):
        assert envelope.safe_interval_ns(1) >= 1000.0
        assert envelope.safe_interval_ns(100_000) > \
            envelope.safe_interval_ns(100)


class TestFromBreakdown:
    def test_halves_the_rtt_convention(self):
        components = {"send": 2.0, "network": 4.0, "receive": 6.0,
                      "data_processing": 8.0}  # us per RTT
        envelope = envelope_from_breakdown(components, profile="local")
        assert envelope.stage_ns["send"] == 1000.0
        assert envelope.stage_ns["data_processing"] == 4000.0
        assert envelope.one_way_ns == sum(envelope.stage_ns.values())

    def test_serialization_round_trip_keys(self):
        components = {stage: 1.0 for stage in STAGES}
        envelope = envelope_from_breakdown(components)
        data = envelope.to_dict()
        assert data["datapath"] == "dpdk"
        assert set(data["stage_ns"]) == set(STAGES)
