"""The ``insane`` umbrella CLI and its deprecated aliases."""

import json
import os

from repro.cli import bench_alias, main, validate_alias
from repro.scenario.runner import builtin_corpus_dir

PINGPONG = os.path.join(builtin_corpus_dir(), "pingpong-dpdk-rtt.yaml")


class TestUmbrella:
    def test_help_lists_every_subcommand(self, capsys):
        assert main(["--help"]) == 0
        out = capsys.readouterr().out
        for name in ("bench", "validate", "scenario", "profile"):
            assert name in out

    def test_no_args_is_an_error(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().err

    def test_unknown_command_rejected(self, capsys):
        assert main(["frobnicate"]) == 2
        assert "frobnicate" in capsys.readouterr().err


class TestAliases:
    def test_bench_alias_stdout_byte_identical(self, capsys):
        assert main(["bench", "table1"]) == 0
        umbrella = capsys.readouterr()
        assert bench_alias(["table1"]) == 0
        alias = capsys.readouterr()
        assert alias.out == umbrella.out
        assert "deprecated" in alias.err
        assert "deprecated" not in umbrella.err

    def test_validate_alias_stdout_byte_identical(self, capsys):
        argv = ["repro", "--seed", "3"]
        assert main(["validate"] + argv) == 0
        umbrella = capsys.readouterr()
        assert validate_alias(argv) == 0
        alias = capsys.readouterr()
        assert alias.out == umbrella.out
        assert "deprecated" in alias.err


class TestScenarioSubcommand:
    def test_run_reports_pass_and_digest(self, capsys):
        assert main(["scenario", "run", PINGPONG, "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "PASS pingpong-dpdk-rtt" in out
        assert "1/1 passed" in out
        assert "merged digest" in out

    def test_run_failure_sets_exit_code_and_prints_reason(self, tmp_path,
                                                          capsys):
        (tmp_path / "doomed.yaml").write_text(
            "scenario: doomed\nworkload: {kind: pingpong, rounds: 10}\n"
            "slo: {p99_latency_max: 1ns}\n"
        )
        assert main(["scenario", "run", str(tmp_path), "--no-cache"]) == 1
        out = capsys.readouterr().out
        assert "FAIL doomed" in out
        assert "exceeds" in out

    def test_run_writes_a_suite_run_report(self, tmp_path, capsys):
        from repro.report import RunReport

        report_path = str(tmp_path / "suite.json")
        assert main(["scenario", "run", PINGPONG, "--no-cache",
                     "--json", report_path]) == 0
        documents = json.load(open(report_path))
        report = RunReport.from_dict(documents[0])
        assert report.kind == "scenario.suite"
        assert report.data["ok"]

    def test_validate_rejects_bad_documents_with_exit_60(self, tmp_path,
                                                         capsys):
        (tmp_path / "bad.yaml").write_text(
            "scenario: bad\nworkload: {kind: warp}\nslo: {goodput_min: 1}\n"
        )
        assert main(["scenario", "validate", str(tmp_path)]) == 60
        err = capsys.readouterr().err
        assert "workload.kind" in err

    def test_list_shows_the_builtin_corpus(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        assert "pingpong-dpdk-rtt" in out
        assert "built-in corpus" in out
