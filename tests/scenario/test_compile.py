"""Compiled scenarios: determinism, pinning, fault wiring, single use."""

import pytest

from repro.core.errors import ScenarioError
from repro.scenario.compile import compile_scenario, run_scenario
from repro.scenario.runner import metrics_digest
from repro.scenario.schema import validate_scenario


def spec(**overrides):
    document = {
        "scenario": "compile-unit",
        "seed": 5,
        "workload": {"kind": "streaming", "messages": 40, "size": 256,
                     "interval": "1us"},
        "slo": {"delivery_ratio_min": 0.5},
    }
    document.update(overrides)
    return validate_scenario(document)


class TestDeterminism:
    def test_same_spec_same_metrics_digest(self):
        first = run_scenario(spec())
        second = run_scenario(spec())
        assert metrics_digest(first) == metrics_digest(second)

    def test_different_seed_different_digest(self):
        noisy = {"kind": "loss_burst", "at": 0, "for": "200us", "rate": 0.5}
        first = run_scenario(spec(faults=[noisy]))
        second = run_scenario(spec(seed=6, faults=[noisy]))
        assert metrics_digest(first) != metrics_digest(second)

    def test_compiled_scenario_is_single_use(self):
        compiled = compile_scenario(spec())
        compiled.run()
        with pytest.raises(ScenarioError):
            compiled.run()


class TestCompilation:
    def test_datapath_pin_respected(self):
        document = spec().copy()
        metrics = run_scenario(spec(
            workload={"kind": "streaming", "messages": 20, "size": 256,
                      "interval": "1us", "datapath": "xdp",
                      "qos": {"acceleration": "fast",
                              "resources": "constrained"}},
        ))
        assert metrics["datapath"]["initial"] == "xdp"
        assert document["workload"].get("datapath") is None

    def test_rdma_pin_provisions_rdma_nic(self):
        metrics = run_scenario(spec(
            workload={"kind": "streaming", "messages": 20, "size": 256,
                      "interval": "1us", "datapath": "rdma"},
        ))
        assert metrics["datapath"]["initial"] == "rdma"

    def test_fault_trace_recorded_in_metrics(self):
        metrics = run_scenario(spec(
            faults=[{"kind": "loss_burst", "at": 0, "for": "10us",
                     "rate": 0.2}],
        ))
        assert metrics["faults"]["events"] > 0
        assert metrics["faults"]["digest"]

    def test_clean_run_has_empty_fault_block(self):
        metrics = run_scenario(spec())
        assert metrics["faults"] == {"events": 0, "digest": None}

    def test_latency_samples_match_deliveries(self):
        metrics = run_scenario(spec())
        assert metrics["latency"]["count"] == metrics["delivered"] > 0


class TestWorkloadDrivers:
    def test_pingpong_reports_rtt_histogram(self):
        metrics = run_scenario(spec(
            workload={"kind": "pingpong", "rounds": 30, "size": 64},
            slo={"p99_latency_max": "1ms"},
        ))
        assert metrics["kind"] == "pingpong"
        assert metrics["latency"]["count"] == 30

    def test_bulk_reports_reliability_verdict(self):
        metrics = run_scenario(spec(
            workload={"kind": "bulk", "messages": 20, "size": 256,
                      "interval": "5us", "window": 8},
            slo={"completed": True},
        ))
        assert metrics["completed"] is True
        assert metrics["in_order"] is True
        assert metrics["retransmissions"] == 0

    def test_fanout_reports_per_sink_floor(self):
        metrics = run_scenario(spec(
            workload={"kind": "fanout", "messages": 30, "size": 512,
                      "sinks": 3},
            slo={"sink_goodput_min": 0.001},
        ))
        assert metrics["sinks"] == 3
        assert metrics["min_sink_goodput_gbps"] > 0

    def test_baseline_reports_speedup(self):
        metrics = run_scenario(spec(
            workload={"kind": "baseline", "system": "insane_fast",
                      "baseline": "udp_nonblocking", "rounds": 40,
                      "size": 64},
            slo={"baseline_speedup_min": 1.1},
        ))
        assert metrics["speedup_mean"] > 1.0
        assert metrics["slowdown_mean"] == pytest.approx(
            1.0 / metrics["speedup_mean"])
