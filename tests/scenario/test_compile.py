"""Compiled scenarios: determinism, pinning, fault wiring, single use."""

import pytest

from repro.core.errors import ScenarioError
from repro.scenario.compile import compile_scenario, run_scenario
from repro.scenario.runner import metrics_digest
from repro.scenario.slo import evaluate_slos
from repro.scenario.schema import validate_scenario


def spec(**overrides):
    document = {
        "scenario": "compile-unit",
        "seed": 5,
        "workload": {"kind": "streaming", "messages": 40, "size": 256,
                     "interval": "1us"},
        "slo": {"delivery_ratio_min": 0.5},
    }
    document.update(overrides)
    return validate_scenario(document)


class TestDeterminism:
    def test_same_spec_same_metrics_digest(self):
        first = run_scenario(spec())
        second = run_scenario(spec())
        assert metrics_digest(first) == metrics_digest(second)

    def test_different_seed_different_digest(self):
        noisy = {"kind": "loss_burst", "at": 0, "for": "200us", "rate": 0.5}
        first = run_scenario(spec(faults=[noisy]))
        second = run_scenario(spec(seed=6, faults=[noisy]))
        assert metrics_digest(first) != metrics_digest(second)

    def test_compiled_scenario_is_single_use(self):
        compiled = compile_scenario(spec())
        compiled.run()
        with pytest.raises(ScenarioError):
            compiled.run()


class TestCompilation:
    def test_datapath_pin_respected(self):
        document = spec().copy()
        metrics = run_scenario(spec(
            workload={"kind": "streaming", "messages": 20, "size": 256,
                      "interval": "1us", "datapath": "xdp",
                      "qos": {"acceleration": "fast",
                              "resources": "constrained"}},
        ))
        assert metrics["datapath"]["initial"] == "xdp"
        assert document["workload"].get("datapath") is None

    def test_rdma_pin_provisions_rdma_nic(self):
        metrics = run_scenario(spec(
            workload={"kind": "streaming", "messages": 20, "size": 256,
                      "interval": "1us", "datapath": "rdma"},
        ))
        assert metrics["datapath"]["initial"] == "rdma"

    def test_fault_trace_recorded_in_metrics(self):
        metrics = run_scenario(spec(
            faults=[{"kind": "loss_burst", "at": 0, "for": "10us",
                     "rate": 0.2}],
        ))
        assert metrics["faults"]["events"] > 0
        assert metrics["faults"]["digest"]

    def test_clean_run_has_empty_fault_block(self):
        metrics = run_scenario(spec())
        assert metrics["faults"] == {"events": 0, "digest": None}

    def test_latency_samples_match_deliveries(self):
        metrics = run_scenario(spec())
        assert metrics["latency"]["count"] == metrics["delivered"] > 0


class TestWorkloadDrivers:
    def test_pingpong_reports_rtt_histogram(self):
        metrics = run_scenario(spec(
            workload={"kind": "pingpong", "rounds": 30, "size": 64},
            slo={"p99_latency_max": "1ms"},
        ))
        assert metrics["kind"] == "pingpong"
        assert metrics["latency"]["count"] == 30

    def test_bulk_reports_reliability_verdict(self):
        metrics = run_scenario(spec(
            workload={"kind": "bulk", "messages": 20, "size": 256,
                      "interval": "5us", "window": 8},
            slo={"completed": True},
        ))
        assert metrics["completed"] is True
        assert metrics["in_order"] is True
        assert metrics["retransmissions"] == 0

    def test_fanout_reports_per_sink_floor(self):
        metrics = run_scenario(spec(
            workload={"kind": "fanout", "messages": 30, "size": 512,
                      "sinks": 3},
            slo={"sink_goodput_min": 0.001},
        ))
        assert metrics["sinks"] == 3
        assert metrics["min_sink_goodput_gbps"] > 0

    def test_baseline_reports_speedup(self):
        metrics = run_scenario(spec(
            workload={"kind": "baseline", "system": "insane_fast",
                      "baseline": "udp_nonblocking", "rounds": 40,
                      "size": 64},
            slo={"baseline_speedup_min": 1.1},
        ))
        assert metrics["speedup_mean"] > 1.0
        assert metrics["slowdown_mean"] == pytest.approx(
            1.0 / metrics["speedup_mean"])


class TestHybridFanout:
    """subscribers-mode fanout scenarios route to the fluid engine."""

    def test_hybrid_scenario_delivers_exactly(self):
        metrics = run_scenario(spec(
            workload={"kind": "fanout", "subscribers": 64, "messages": 8,
                      "fidelity": {"hot_fraction": 0.1}},
            slo={"delivery_ratio_min": 1.0},
        ))
        assert metrics["kind"] == "fanout"
        assert metrics["mode"] == "hybrid"
        assert metrics["delivered"] == metrics["expected"] == 512
        assert metrics["fluid"] is not None
        assert metrics["fluid"]["mode"] == "piggyback"
        # the compiler's fault bookkeeping rides along like any driver
        assert "faults" in metrics

    def test_promotions_min_slo_evaluates(self):
        document = spec(
            workload={"kind": "fanout", "subscribers": 100, "messages": 50,
                      "interval": "50us",  # 20 kHz >> the 1 kHz threshold
                      "fidelity": {"hot_fraction": 0.0,
                                   "promote_threshold": 1000}},
            slo={"promotions_min": 1, "delivery_ratio_min": 1.0},
        )
        metrics = run_scenario(document)
        assertions, ok = evaluate_slos(document["slo"], metrics)
        assert ok, assertions
        assert metrics["fluid"]["promotions"] >= 1
        assert metrics["delivered"] == metrics["expected"]

    def test_goodput_uses_delivery_window_not_absolute_time(self):
        metrics = run_scenario(spec(
            workload={"kind": "fanout", "messages": 30, "size": 512,
                      "sinks": 3},
            slo={"sink_goodput_min": 0.001},
        ))
        # the reported rate must be the identity over its own window —
        # dividing by absolute end time instead would break this whenever
        # the run has an idle prefix
        expected = metrics["delivered"] * 512 * 8.0 / metrics["duration_ns"]
        assert metrics["goodput_gbps"] == pytest.approx(expected)
        assert metrics["duration_ns"] > 0

    def test_compile_guards_cite_dotted_paths(self):
        # the schema floors these at 1 already; the driver's own guard is
        # defence in depth for hand-built specs
        from repro.scenario.compile import _drive_fanout

        document = spec(workload={"kind": "fanout", "messages": 5,
                                  "sinks": 2})
        compiled = compile_scenario(document)
        for field in ("messages", "sinks"):
            bad = {**document, "workload": {**document["workload"],
                                            field: 0}}
            with pytest.raises(ScenarioError) as excinfo:
                _drive_fanout(bad, compiled.testbed, compiled.deployment)
            assert excinfo.value.path == "workload.%s" % field
