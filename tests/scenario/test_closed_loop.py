"""The ``closed_loop`` scenario workload: schema, SLOs, and end-to-end."""

import pytest

from repro.core.errors import ScenarioError
from repro.scenario.compile import run_scenario
from repro.scenario.schema import validate_scenario
from repro.scenario.slo import evaluate_slos

#: small windows so the e2e runs stay fast; fixed think for tight law
#: residuals at this window length.
TINY_WORKLOAD = {
    "kind": "closed_loop",
    "clients": 4,
    "think_dist": "fixed",
    "warmup": "100us",
    "window": "400us",
    "windows": 3,
    "cooldown": "50us",
    "epsilon": 0.08,
}


def closed_loop(workload=None, slo=None, **overrides):
    document = {
        "scenario": "unit-closed-loop",
        "seed": 13,
        "workload": dict(TINY_WORKLOAD, **(workload or {})),
        "slo": slo or {"law_residual_max": 0.05},
    }
    document.update(overrides)
    return document


class TestSchema:
    def test_defaults_normalize(self):
        spec = validate_scenario(closed_loop())
        workload = spec["workload"]
        assert workload["clients"] == 4
        assert workload["think"] == 10_000.0
        assert workload["think_dist"] == "fixed"
        assert workload["size"] == 64
        assert workload["outstanding"] == 1
        assert workload["warmup"] == 100_000.0
        assert workload["window"] == 400_000.0
        assert workload["windows"] == 3
        assert workload["cooldown"] == 50_000.0
        assert workload["epsilon"] == 0.08
        assert workload["qos"]["acceleration"] == "fast"

    def test_epsilon_bounds_checked(self):
        for bad in (0, 1.0, -0.1, True, "5%"):
            with pytest.raises(ScenarioError):
                validate_scenario(closed_loop(workload={"epsilon": bad}))

    def test_normalized_spec_revalidates_unchanged(self):
        spec = validate_scenario(closed_loop())
        assert validate_scenario(spec) == spec

    def test_messages_rejected_with_dotted_path(self):
        # regression: a closed-loop run is time-bounded; a fixed message
        # count contradicts the window plan and must be named precisely
        with pytest.raises(ScenarioError) as excinfo:
            validate_scenario(closed_loop(workload={"messages": 400}))
        assert "workload.messages" in str(excinfo.value)
        assert "unknown field" not in str(excinfo.value)

    def test_clients_sweep_must_be_increasing_list(self):
        spec = validate_scenario(closed_loop(workload={"clients": [2, 4, 8]}))
        assert spec["workload"]["clients"] == [2, 4, 8]
        with pytest.raises(ScenarioError):
            validate_scenario(closed_loop(workload={"clients": [4]}))
        with pytest.raises(ScenarioError):
            validate_scenario(closed_loop(workload={"clients": [4, 4]}))
        with pytest.raises(ScenarioError):
            validate_scenario(closed_loop(workload={"clients": [8, 2]}))
        with pytest.raises(ScenarioError):
            validate_scenario(closed_loop(workload={"clients": 0}))

    def test_think_dist_validated(self):
        with pytest.raises(ScenarioError) as excinfo:
            validate_scenario(closed_loop(workload={"think_dist": "pareto"}))
        assert "workload.think_dist" in str(excinfo.value)

    def test_datapath_pin_allowed(self):
        spec = validate_scenario(closed_loop(workload={"datapath": "xdp"}))
        assert spec["workload"]["datapath"] == "xdp"


class TestSlos:
    def test_capacity_slos_normalize(self):
        slo = {"stable_p99_latency_max": "40us", "stable_throughput_min": 1000,
               "law_residual_max": 0.05}
        spec = validate_scenario(closed_loop(slo=slo))
        assert spec["slo"]["stable_p99_latency_max"] == 40_000.0
        assert spec["slo"]["stable_throughput_min"] == 1000.0

    def test_capacity_slos_rejected_on_other_kinds(self):
        document = closed_loop(slo={"stable_throughput_min": 1000})
        document["workload"] = {"kind": "pingpong", "rounds": 10}
        with pytest.raises(ScenarioError):
            validate_scenario(document)

    def test_knee_floor_needs_a_sweep(self):
        with pytest.raises(ScenarioError) as excinfo:
            validate_scenario(closed_loop(slo={"knee_clients_min": 2,
                                               "law_residual_max": 0.05}))
        assert "slo.knee_clients_min" in str(excinfo.value)

    def test_knee_floor_cannot_exceed_the_grid(self):
        with pytest.raises(ScenarioError):
            validate_scenario(closed_loop(
                workload={"clients": [2, 4]},
                slo={"knee_clients_min": 8},
            ))

    def test_throughput_floor_must_be_positive(self):
        with pytest.raises(ScenarioError):
            validate_scenario(closed_loop(slo={"stable_throughput_min": 0}))


class TestEndToEnd:
    def test_single_point_run_passes_its_slos(self):
        spec = validate_scenario(closed_loop(slo={
            "law_residual_max": 0.05,
            "stable_throughput_min": 1000,
        }))
        metrics = run_scenario(spec)
        assert metrics["kind"] == "closed_loop"
        assert metrics["law"]["ok"] is True
        assert "capacity" not in metrics
        assertions, ok = evaluate_slos(spec["slo"], metrics)
        assert ok, assertions

    def test_sweep_run_reports_knee_and_asserts_at_it(self):
        spec = validate_scenario(closed_loop(
            workload={"clients": [1, 2, 4]},
            slo={"knee_clients_min": 1, "law_residual_max": 0.05},
        ))
        metrics = run_scenario(spec)
        capacity = metrics["capacity"]
        assert [p["clients"] for p in capacity["points"]] == [1, 2, 4]
        assert capacity["knee_clients"] == capacity["knee"]["clients"]
        assert capacity["model"]["n_star"] > 0
        # headline blocks come from the knee point
        knee = capacity["knee"]
        assert metrics["stable"]["throughput_rps"] == knee["throughput_rps"]
        assertions, ok = evaluate_slos(spec["slo"], metrics)
        assert ok, assertions

    def test_faults_apply_to_closed_loop_stacks(self):
        # a uniform cpu slowdown across the whole run: it slows every
        # window alike (stability holds) and drops nothing (the law
        # identity survives), but the harness must feel it
        slowed_spec = validate_scenario(closed_loop(
            faults=[{"kind": "cpu_slowdown", "at": 0, "for": "2ms",
                     "factor": 2.0, "host": 1}],
            slo={"law_residual_max": 0.05},
        ))
        clean_spec = validate_scenario(closed_loop(
            slo={"law_residual_max": 0.05}))
        slowed = run_scenario(slowed_spec)
        clean = run_scenario(clean_spec)
        assert slowed["faults"]["events"] >= 1
        assert slowed["faults"]["digest"] is not None
        assert slowed["law"]["ok"] is True
        assert slowed["stable"]["latency"]["mean_ns"] > \
            clean["stable"]["latency"]["mean_ns"]
