"""The suite runner: corpus discovery, sweep integration, digests."""

import os

import pytest

from repro.core.errors import ScenarioError
from repro.scenario.runner import (
    builtin_corpus_dir,
    discover_scenarios,
    load_suite,
    run_suite,
    scenario_cells,
)

#: three cheap corpus scenarios — one per datapath tier — used as the
#: tier-1 smoke (the full 26-scenario corpus runs in the CI corpus job).
SMOKE = [
    os.path.join(builtin_corpus_dir(), name)
    for name in ("pingpong-dpdk-rtt.yaml", "streaming-udp-slow.yaml",
                 "bulk-lossy-arq.yaml")
]


class TestDiscovery:
    def test_builtin_corpus_is_present_and_broad(self):
        files = discover_scenarios(builtin_corpus_dir())
        assert len(files) >= 20

    def test_literal_corpus_falls_back_to_builtin(self, tmp_path,
                                                  monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert discover_scenarios("corpus") == \
            discover_scenarios(builtin_corpus_dir())

    def test_missing_path_raises(self):
        with pytest.raises(ScenarioError):
            discover_scenarios("/no/such/scenarios")

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(ScenarioError):
            discover_scenarios(str(tmp_path))

    def test_duplicate_names_rejected(self, tmp_path):
        text = ("scenario: twin\nworkload: {kind: pingpong, rounds: 5}\n"
                "slo: {p99_latency_max: 1ms}\n")
        (tmp_path / "a.yaml").write_text(text)
        (tmp_path / "b.yaml").write_text(text)
        with pytest.raises(ScenarioError) as err:
            load_suite(str(tmp_path))
        assert "duplicate" in str(err.value)


class TestSuiteExecution:
    def test_smoke_scenarios_pass_their_slos(self):
        report, sweep = run_suite(SMOKE)
        assert report.kind == "scenario.suite"
        assert report.data["ok"]
        assert report.data["total"] == 3
        assert report.data["failed"] == []
        assert sweep.merged_digest() == report.data["merged_digest"]

    def test_parallel_run_merges_bit_identically(self):
        serial, _ = run_suite(SMOKE[:2], workers=1)
        parallel, _ = run_suite(SMOKE[:2], workers=2)
        assert serial.data["merged_digest"] == parallel.data["merged_digest"]
        assert serial.digest() == parallel.digest()

    def test_seed_override_moves_the_digest(self):
        base, _ = run_suite(SMOKE[:1])
        overridden, _ = run_suite(SMOKE[:1], seed=999)
        assert base.data["merged_digest"] != \
            overridden.data["merged_digest"]
        assert overridden.data["scenarios"][0]["seed"] == 999

    def test_cells_pin_the_spec_seed(self):
        specs = load_suite(SMOKE[:1])
        cells = scenario_cells(specs)
        assert cells[0]["params"]["seed"] == specs[0]["seed"]

    def test_failing_slo_reported_not_raised(self, tmp_path):
        (tmp_path / "doomed.yaml").write_text(
            "scenario: doomed\nseed: 1\n"
            "workload: {kind: pingpong, rounds: 10}\n"
            "slo: {p99_latency_max: 1ns}\n"
        )
        report, _ = run_suite(str(tmp_path))
        assert not report.data["ok"]
        assert report.data["failed"] == ["doomed"]
        payload = report.data["scenarios"][0]
        assert not payload["slo"]["assertions"][0]["ok"]
