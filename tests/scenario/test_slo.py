"""SLO evaluation semantics: inclusive thresholds, loud failures."""

from repro.scenario.slo import evaluate_slos, format_assertions


def metrics(**overrides):
    base = {
        "kind": "streaming",
        "delivered": 10,
        "delivery_ratio": 0.9,
        "goodput_gbps": 2.0,
        "latency": {"count": 10, "mean_ns": 500.0, "p50_ns": 400.0,
                    "p99_ns": 900.0, "p999_ns": 950.0, "max_ns": 1000.0},
        "gaps": {"blackout_ns": 5000.0},
    }
    base.update(overrides)
    return base


def one(assertions, name):
    return next(a for a in assertions if a["name"] == name)


class TestThresholdSemantics:
    def test_exactly_at_ceiling_passes(self):
        assertions, ok = evaluate_slos({"p99_latency_max": 900.0}, metrics())
        assert ok
        assert one(assertions, "p99_latency_max")["ok"]

    def test_exactly_at_floor_passes(self):
        assertions, ok = evaluate_slos({"delivery_ratio_min": 0.9}, metrics())
        assert ok

    def test_one_over_the_ceiling_fails(self):
        assertions, ok = evaluate_slos(
            {"p99_latency_max": 899.999}, metrics())
        assert not ok
        record = one(assertions, "p99_latency_max")
        assert "exceeds" in record["reason"]

    def test_bool_assertion_mismatch_reports_both_sides(self):
        assertions, ok = evaluate_slos(
            {"completed": True},
            {"kind": "bulk", "completed": False,
             "latency": {"count": 1}},
        )
        assert not ok
        assert "False" in one(assertions, "completed")["reason"]

    def test_all_assertions_reported_in_name_order(self):
        assertions, _ok = evaluate_slos(
            {"goodput_min": 1.0, "delivery_ratio_min": 0.5,
             "p50_latency_max": 1e6}, metrics())
        assert [a["name"] for a in assertions] == sorted(
            ["goodput_min", "delivery_ratio_min", "p50_latency_max"])


class TestLoudFailures:
    def test_empty_histogram_fails_not_passes(self):
        empty = metrics(latency={"count": 0})
        assertions, ok = evaluate_slos({"p99_latency_max": 1e9}, empty)
        assert not ok
        record = one(assertions, "p99_latency_max")
        assert record["observed"] is None
        assert "no latency samples" in record["reason"]

    def test_missing_metric_fails_with_reason(self):
        assertions, ok = evaluate_slos(
            {"blackout_max": 1e9}, metrics(gaps={}))
        assert not ok
        assert "missing" in one(assertions, "blackout_max")["reason"]

    def test_passing_records_carry_no_reason(self):
        assertions, ok = evaluate_slos({"goodput_min": 1.0}, metrics())
        assert ok
        assert "reason" not in assertions[0]


class TestFormatting:
    def test_format_marks_pass_and_fail(self):
        assertions, _ok = evaluate_slos(
            {"goodput_min": 1.0, "p99_latency_max": 1.0}, metrics())
        text = format_assertions(assertions)
        assert "PASS" in text and "FAIL" in text
        assert "p99_latency_max" in text
