"""Scenario-document schema: normalization and loud, path-citing errors."""

import pytest

from repro.core.errors import ScenarioError
from repro.scenario.schema import (
    SCENARIO_SCHEMA,
    load_scenario,
    parse_scenario,
    parse_size,
    validate_scenario,
)


def minimal(**overrides):
    document = {
        "scenario": "unit-minimal",
        "seed": 3,
        "workload": {"kind": "streaming", "messages": 10, "size": "1KB",
                     "interval": "2us"},
        "slo": {"delivery_ratio_min": 0.5},
    }
    document.update(overrides)
    return document


class TestNormalization:
    def test_minimal_spec_normalizes(self):
        spec = validate_scenario(minimal())
        assert spec["schema"] == SCENARIO_SCHEMA
        assert spec["workload"]["size"] == 1024
        assert spec["workload"]["interval"] == 2000.0
        # qos defaults to the fast policy, stored as enum values
        assert spec["workload"]["qos"]["acceleration"] == "fast"
        assert spec["topology"] == {"profile": "local", "hosts": 2,
                                    "impairments": []}
        assert spec["faults"] == []

    def test_duration_slo_thresholds_normalized(self):
        spec = validate_scenario(minimal(slo={"p99_latency_max": "80us"}))
        assert spec["slo"]["p99_latency_max"] == 80_000.0

    def test_normalized_spec_is_stable(self):
        assert validate_scenario(minimal()) == validate_scenario(minimal())

    def test_size_strings(self):
        assert parse_size("64B", "p") == 64
        assert parse_size("4KiB", "p") == 4096
        assert parse_size(512, "p") == 512
        with pytest.raises(ScenarioError):
            parse_size("fast", "p")

    def test_profile_replay_expands_to_records(self):
        spec = validate_scenario(minimal(faults=[{"profile": "wifi_flaky"}]))
        assert len(spec["faults"]) == 3
        assert all("kind" in f and "at" in f for f in spec["faults"])
        # expanded records are normalized (string durations -> float ns)
        assert spec["faults"][0]["at"] == 150_000.0


class TestErrorsCitePaths:
    def test_bad_interval_cites_workload_interval(self):
        bad = minimal()
        bad["workload"]["interval"] = "sometimes"
        with pytest.raises(ScenarioError) as err:
            validate_scenario(bad)
        assert err.value.path == "workload.interval"
        assert "workload.interval" in str(err.value)

    def test_source_file_named_in_message(self, tmp_path):
        path = tmp_path / "broken.yaml"
        path.write_text("scenario: x-1\nworkload: {kind: nope}\n"
                        "slo: {goodput_min: 1}\n")
        with pytest.raises(ScenarioError) as err:
            load_scenario(str(path))
        assert str(path) in str(err.value)
        assert err.value.path == "workload.kind"

    def test_unknown_top_level_field(self):
        with pytest.raises(ScenarioError) as err:
            validate_scenario(minimal(telemetry=True))
        assert err.value.path == "telemetry"

    def test_unknown_fault_kind_cites_index(self):
        bad = minimal(faults=[{"kind": "meteor_strike", "at": 0}])
        with pytest.raises(ScenarioError) as err:
            validate_scenario(bad)
        assert err.value.path == "faults[0].kind"

    def test_unknown_impairment_profile(self):
        with pytest.raises(ScenarioError) as err:
            validate_scenario(minimal(faults=[{"profile": "lunar_storm"}]))
        assert err.value.path == "faults[0].profile"

    def test_invalid_yaml_cites_source(self, tmp_path):
        path = tmp_path / "bad.yaml"
        path.write_text("scenario: [unclosed\n")
        with pytest.raises(ScenarioError) as err:
            load_scenario(str(path))
        assert "YAML" in str(err.value)
        assert str(path) in str(err.value)

    def test_future_schema_rejected(self):
        with pytest.raises(ScenarioError) as err:
            validate_scenario(minimal(schema=SCENARIO_SCHEMA + 1))
        assert err.value.path == "schema"

    def test_bad_name_rejected(self):
        with pytest.raises(ScenarioError):
            validate_scenario(minimal(scenario="Not A Name"))


class TestSemanticConflicts:
    def test_rdma_pin_on_cloud_rejected(self):
        bad = minimal(topology={"profile": "cloud"})
        bad["workload"]["datapath"] = "rdma"
        with pytest.raises(ScenarioError) as err:
            validate_scenario(bad)
        assert err.value.path == "workload.datapath"

    def test_datapath_pin_on_bulk_rejected(self):
        bad = minimal()
        bad["workload"] = {"kind": "bulk", "datapath": "dpdk"}
        bad["slo"] = {"completed": True}
        with pytest.raises(ScenarioError):
            validate_scenario(bad)

    def test_unknown_slo_listed(self):
        with pytest.raises(ScenarioError) as err:
            validate_scenario(minimal(slo={"p98_latency_max": "1ms"}))
        assert "known assertions" in str(err.value)

    def test_slo_for_wrong_workload_kind(self):
        with pytest.raises(ScenarioError) as err:
            validate_scenario(minimal(slo={"retransmissions_max": 3}))
        assert "unfalsifiable" in str(err.value)

    def test_percentile_chain_must_be_monotone(self):
        with pytest.raises(ScenarioError) as err:
            validate_scenario(minimal(slo={"p50_latency_max": "90us",
                                           "p99_latency_max": "10us"}))
        assert "never beat" in str(err.value)

    def test_delivered_min_capped_by_workload(self):
        with pytest.raises(ScenarioError):
            validate_scenario(minimal(slo={"delivered_min": 11}))

    def test_failovers_need_a_datapath_failure(self):
        with pytest.raises(ScenarioError):
            validate_scenario(minimal(slo={"failovers_min": 1}))
        spec = validate_scenario(minimal(
            faults=[{"kind": "datapath_failure", "at": "100us",
                     "datapath": "dpdk"}],
            slo={"failovers_min": 1},
        ))
        assert spec["slo"]["failovers_min"] == 1

    def test_missing_slo_section_rejected(self):
        bad = minimal()
        del bad["slo"]
        with pytest.raises(ScenarioError) as err:
            validate_scenario(bad)
        assert err.value.path == "slo"


class TestParsing:
    def test_json_documents_accepted(self):
        spec = parse_scenario(
            '{"scenario": "j-1", "workload": {"kind": "pingpong"}, '
            '"slo": {"p99_latency_max": 99000}}'
        )
        assert spec["scenario"] == "j-1"
        assert spec["workload"]["rounds"] == 300

    def test_yaml_documents_accepted(self):
        spec = parse_scenario(
            "scenario: y-1\n"
            "workload: {kind: pingpong, size: 64B}\n"
            "slo: {p99_latency_max: 99us}\n"
        )
        assert spec["workload"]["size"] == 64
        assert spec["slo"]["p99_latency_max"] == 99_000.0


class TestHybridFanout:
    """The subscribers/fidelity hybrid mode of the fanout workload."""

    def workload(self, **fields):
        section = {"kind": "fanout"}
        section.update(fields)
        return minimal(workload=section)

    def test_subscribers_normalizes_with_defaults(self):
        spec = validate_scenario(self.workload(subscribers=1000))
        workload = spec["workload"]
        assert workload["subscribers"] == 1000
        assert workload["messages"] == 64  # hybrid default, not 300
        assert "sinks" not in workload

    def test_fidelity_block_normalizes(self):
        spec = validate_scenario(self.workload(
            subscribers=1000,
            fidelity={"hot_fraction": 0.05, "promote_threshold": 2000,
                      "drain_interval": "250us"}))
        fidelity = spec["workload"]["fidelity"]
        assert fidelity["hot_fraction"] == 0.05
        assert fidelity["promote_threshold"] == 2000.0
        assert fidelity["drain_interval"] == 250_000.0

    def test_subscribers_and_sinks_conflict(self):
        with pytest.raises(ScenarioError) as excinfo:
            validate_scenario(self.workload(subscribers=10, sinks=3))
        assert excinfo.value.path == "workload.subscribers"

    def test_fidelity_requires_subscribers(self):
        with pytest.raises(ScenarioError) as excinfo:
            validate_scenario(self.workload(
                sinks=3, fidelity={"hot_fraction": 0.5}))
        assert excinfo.value.path == "workload.fidelity"

    def test_interval_requires_subscribers(self):
        with pytest.raises(ScenarioError) as excinfo:
            validate_scenario(self.workload(sinks=3, interval="10us"))
        assert excinfo.value.path == "workload.interval"

    def test_hot_fraction_range_checked(self):
        for bad in (-0.1, 1.5, True):
            with pytest.raises(ScenarioError) as excinfo:
                validate_scenario(self.workload(
                    subscribers=10, fidelity={"hot_fraction": bad}))
            assert excinfo.value.path == "workload.fidelity.hot_fraction"

    def test_unknown_fidelity_field_rejected(self):
        with pytest.raises(ScenarioError) as excinfo:
            validate_scenario(self.workload(
                subscribers=10, fidelity={"hotness": 0.5}))
        assert "hotness" in str(excinfo.value)

    def test_time_sensitive_qos_needs_full_packet_accuracy(self):
        with pytest.raises(ScenarioError) as excinfo:
            validate_scenario(self.workload(
                subscribers=10,
                qos={"time_sensitivity": "time_sensitive"}))
        assert excinfo.value.path == "workload.qos.time_sensitivity"
        # hot_fraction == 1.0 restores per-packet guarantees: accepted
        validate_scenario(self.workload(
            subscribers=10, fidelity={"hot_fraction": 1.0},
            qos={"time_sensitivity": "time_sensitive"}))

    def test_promotions_min_needs_hybrid_and_threshold(self):
        with pytest.raises(ScenarioError) as excinfo:
            validate_scenario(minimal(
                workload={"kind": "fanout", "sinks": 3},
                slo={"promotions_min": 1}))
        assert excinfo.value.path == "slo.promotions_min"
        with pytest.raises(ScenarioError) as excinfo:
            validate_scenario(minimal(
                workload={"kind": "fanout", "subscribers": 10},
                slo={"promotions_min": 1}))
        assert "promote_threshold" in str(excinfo.value)
        validate_scenario(minimal(
            workload={"kind": "fanout", "subscribers": 10,
                      "fidelity": {"promote_threshold": 500}},
            slo={"promotions_min": 1}))
