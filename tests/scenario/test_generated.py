"""Generated (city) topologies in the scenario DSL: schema and end-to-end."""

import pytest

from repro.core.errors import ScenarioError
from repro.scenario.compile import run_scenario
from repro.scenario.schema import validate_scenario
from repro.scenario.slo import evaluate_slos

TINY_SPEC = {"hosts": 16, "regions": 4, "messages": 2}


def city(**overrides):
    document = {
        "scenario": "unit-city",
        "seed": 11,
        "topology": {"kind": "generated", "spec": dict(TINY_SPEC),
                     "partitions": 2},
        "workload": {"kind": "city"},
        "slo": {"delivery_ratio_min": 1.0},
    }
    document.update(overrides)
    return document


class TestSchema:
    def test_inline_spec_normalizes_resolved_and_seedless(self):
        spec = validate_scenario(city())
        topology = spec["topology"]
        assert topology["kind"] == "generated"
        assert topology["partitions"] == 2
        assert topology["spec"]["hosts"] == 16
        # defaults filled in by the generator...
        assert topology["spec"]["classes"] == 3
        # ...but the seed stays out: the scenario's top-level seed governs
        assert "seed" not in topology["spec"]

    def test_normalized_spec_revalidates_unchanged(self):
        spec = validate_scenario(city())
        assert validate_scenario(spec) == spec

    def test_preset_form_resolves(self):
        spec = validate_scenario(city(
            topology={"kind": "generated", "preset": "smoke64"}
        ))
        assert spec["topology"]["spec"]["hosts"] == 64
        assert spec["topology"]["partitions"] == 1

    def test_datapath_pin_accepted(self):
        spec = validate_scenario(city(
            workload={"kind": "city", "datapath": "dpdk"}
        ))
        assert spec["workload"]["datapath"] == "dpdk"

    @pytest.mark.parametrize("topology", [
        {"kind": "generated"},                                # neither
        {"kind": "generated", "preset": "smoke64",
         "spec": dict(TINY_SPEC)},                            # both
        {"kind": "layered", "preset": "smoke64"},             # unknown kind
        {"kind": "generated", "preset": "atlantis"},          # unknown preset
        {"kind": "generated",
         "spec": dict(TINY_SPEC, seed=3)},                    # spec seed
        {"kind": "generated", "spec": dict(TINY_SPEC),
         "partitions": 5},                                    # > regions
        {"kind": "generated", "spec": dict(TINY_SPEC),
         "partitions": 0},
        {"kind": "generated", "spec": dict(TINY_SPEC),
         "impairments": []},                                  # testbed field
    ])
    def test_bad_generated_topologies_raise(self, topology):
        with pytest.raises(ScenarioError):
            validate_scenario(city(topology=topology))

    def test_city_workload_requires_a_generated_topology(self):
        with pytest.raises(ScenarioError):
            validate_scenario(city(topology={"profile": "cloud", "hosts": 4}))

    def test_generated_topology_requires_a_city_workload(self):
        with pytest.raises(ScenarioError):
            validate_scenario(city(
                workload={"kind": "streaming", "messages": 10, "size": 64,
                          "interval": "2us"},
                slo={"delivery_ratio_min": 0.5},
            ))

    def test_faults_rejected_on_generated_topologies(self):
        with pytest.raises(ScenarioError) as err:
            validate_scenario(city(
                faults=[{"kind": "link_down", "at": "1ms", "for": "1ms"}]
            ))
        assert "generated" in str(err.value)

    def test_rdma_pin_rejected_on_the_default_cloud_profile(self):
        with pytest.raises(ScenarioError):
            validate_scenario(city(
                workload={"kind": "city", "datapath": "rdma"}
            ))
        # on the local profile the pin is honest
        spec = validate_scenario(city(
            topology={"kind": "generated",
                      "spec": dict(TINY_SPEC, profile="local")},
            workload={"kind": "city", "datapath": "rdma"},
        ))
        assert spec["workload"]["datapath"] == "rdma"


class TestEndToEnd:
    def test_partitioned_scenario_delivers_and_passes_slos(self):
        spec = validate_scenario(city(slo={
            "delivery_ratio_min": 1.0,
            "p99_latency_max": "500us",
        }))
        metrics = run_scenario(spec)
        assert metrics["delivery_ratio"] == 1.0
        assert metrics["partition"]["partitions"] == 2
        assert metrics["latency"]["count"] > 0
        assertions, ok = evaluate_slos(spec["slo"], metrics)
        assert ok, assertions

    def test_partitioned_metrics_equal_serial_metrics(self):
        serial_doc = city()
        serial_doc["topology"]["partitions"] = 1
        serial = run_scenario(validate_scenario(serial_doc))
        parted = run_scenario(validate_scenario(city()))
        assert parted["partition"]["digest"] == serial["partition"]["digest"]
        # digest equality is records equality; the derived metrics follow
        assert parted["latency"] == serial["latency"]
        assert parted["rpc_rtt"] == serial["rpc_rtt"]

    def test_scenario_seed_moves_the_digest(self):
        a = run_scenario(validate_scenario(city()))
        b = run_scenario(validate_scenario(city(seed=12)))
        assert a["partition"]["digest"] != b["partition"]["digest"]

    def test_runner_cell_revalidates_and_runs(self):
        from repro.scenario.runner import run_scenario_cell

        spec = validate_scenario(city())
        payload = run_scenario_cell(spec, seed=spec["seed"])
        assert payload["ok"]
        assert payload["metrics"]["delivery_ratio"] == 1.0
