"""Tests for Demikernel's asynchronous qtoken interface."""

from repro.baselines.demikernel import DemiQueue, demi_wait, demi_wait_any
from repro.hw import Testbed
from repro.netstack import Packet


def make_pair(flavor="catnap", port=7910, seed=0):
    bed = Testbed.local(seed=seed)
    q_a = DemiQueue(bed.hosts[0], flavor, port)
    q_b = DemiQueue(bed.hosts[1], flavor, port)
    return bed, q_a, q_b


def packet(bed, payload, port=7910):
    a, b = bed.hosts
    return Packet(a.ip, b.ip, port, port, payload=payload)


def test_push_and_pop_via_qtokens():
    bed, q_a, q_b = make_pair()
    results = []

    def app():
        push_qt = q_a.push_async(packet(bed, b"qtoken!"))
        pop_qt = q_b.pop_async()
        yield from demi_wait(push_qt)
        batch = yield from demi_wait(pop_qt)
        results.extend(p.payload_bytes() for p in batch)

    bed.sim.process(app())
    bed.sim.run()
    assert results == [b"qtoken!"]


def test_wait_any_returns_first_completion():
    bed, q_a, q_b = make_pair(seed=1)
    order = []

    def app():
        pop_qt = q_b.pop_async()          # completes only after data arrives
        push_qt = q_a.push_async(packet(bed, b"x"))
        index, _value = yield from demi_wait_any([pop_qt, push_qt])
        order.append(index)

    bed.sim.process(app())
    bed.sim.run()
    assert order == [1]  # the push completes before the pop


def test_multiple_outstanding_pushes():
    bed, q_a, q_b = make_pair(seed=2)
    received = []

    def sender():
        qtokens = [q_a.push_async(packet(bed, b"%d" % i)) for i in range(5)]
        for qtoken in qtokens:
            yield from demi_wait(qtoken)

    def receiver():
        while len(received) < 5:
            batch = yield from demi_wait(q_b.pop_async())
            received.extend(p.payload_bytes() for p in batch)

    bed.sim.process(receiver())
    bed.sim.process(sender())
    bed.sim.run()
    assert sorted(received) == [b"0", b"1", b"2", b"3", b"4"]


def test_qtoken_state_transitions():
    bed, q_a, _q_b = make_pair(seed=3)
    qtoken = q_a.push_async(packet(bed, b"state"))
    assert not qtoken.completed
    bed.sim.run()
    assert qtoken.completed
    assert qtoken.result is not None


def test_qtokens_work_on_catnip_too():
    bed, q_a, q_b = make_pair(flavor="catnip", port=7920, seed=4)
    results = []

    def app():
        q_a.push_async(packet(bed, b"dpdk-qtoken", port=7920))
        batch = yield from demi_wait(q_b.pop_async())
        results.extend(p.payload_bytes() for p in batch)

    bed.sim.process(app())
    bed.sim.run()
    assert results == [b"dpdk-qtoken"]
