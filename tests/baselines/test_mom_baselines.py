"""Cyclone-DDS-like and ZeroMQ-like MoM baseline tests."""

from repro.baselines.dds import CycloneDdsNode, DdsDomain
from repro.baselines.zeromq import ZmqContext, ZmqNode
from repro.hw import Testbed


class TestCycloneDds:
    def make(self, seed=0):
        bed = Testbed.local(seed=seed)
        domain = DdsDomain()
        node_a = CycloneDdsNode(bed.hosts[0], domain)
        node_b = CycloneDdsNode(bed.hosts[1], domain)
        return bed, node_a, node_b

    def test_publish_reaches_subscriber(self):
        bed, node_a, node_b = self.make()
        got = []
        node_b.subscribe("topic", lambda t, pkt: got.append(pkt.payload_bytes()))

        def pub():
            yield from node_a.publish("topic", size=None, data=b"sample-1")

        bed.sim.process(pub())
        bed.sim.run()
        assert got == [b"sample-1"]

    def test_no_delivery_without_subscription(self):
        bed, node_a, node_b = self.make(seed=1)
        got = []
        node_b.subscribe("other", lambda t, pkt: got.append(pkt))

        def pub():
            yield from node_a.publish("unsubscribed", 64)

        bed.sim.process(pub())
        bed.sim.run()
        assert got == []

    def test_publisher_excluded_from_own_subscribers(self):
        domain = DdsDomain()
        bed = Testbed.local(seed=2)
        node = CycloneDdsNode(bed.hosts[0], domain)
        node.subscribe("t", lambda t, pkt: None)
        assert domain.subscribers("t", exclude=node) == []

    def test_burst_publish_counts(self):
        bed, node_a, node_b = self.make(seed=3)
        got = []
        node_b.subscribe("bulk", lambda t, pkt: got.append(1))

        def pub():
            yield from node_a.publish_burst("bulk", 256, 40)

        bed.sim.process(pub())
        bed.sim.run()
        assert len(got) == 40

    def test_dds_latency_has_higher_variability_than_transport(self):
        """The event-loop jitter makes Cyclone's RTT spread wider."""
        bed, node_a, node_b = self.make(seed=4)
        sim = bed.sim
        from repro.simnet import Get, Store, Tally

        pings, pongs = Store(sim), Store(sim)
        node_b.subscribe("ping", lambda t, p: pings.try_put(1))
        node_a.subscribe("pong", lambda t, p: pongs.try_put(1))
        rtts = Tally("dds")

        def requester():
            for _ in range(150):
                start = sim.now
                yield from node_a.publish("ping", 64)
                yield Get(pongs)
                rtts.record(sim.now - start)

        def responder():
            while True:
                yield Get(pings)
                yield from node_b.publish("pong", 64)

        sim.process(responder())
        sim.process(requester())
        sim.run()
        assert rtts.stddev / rtts.mean > 0.01


class TestZeroMq:
    def make(self, seed=0):
        bed = Testbed.local(seed=seed)
        context = ZmqContext()
        node_a = ZmqNode(bed.hosts[0], context)
        node_b = ZmqNode(bed.hosts[1], context)
        return bed, node_a, node_b

    def test_radio_dish_delivery(self):
        bed, node_a, node_b = self.make()
        got = []
        node_b.dish_join("group1", lambda g, pkt: got.append(pkt.payload_bytes()))

        def send():
            yield from node_a.radio_send("group1", size=None, data=b"zmq-msg")

        bed.sim.process(send())
        bed.sim.run()
        assert got == [b"zmq-msg"]

    def test_group_isolation(self):
        bed, node_a, node_b = self.make(seed=1)
        got = []
        node_b.dish_join("red", lambda g, pkt: got.append(g))

        def send():
            yield from node_a.radio_send("blue", 64)
            yield from node_a.radio_send("red", 64)

        bed.sim.process(send())
        bed.sim.run()
        assert got == ["red"]

    def test_sender_does_not_receive_own_message(self):
        bed, node_a, _node_b = self.make(seed=2)
        got = []
        node_a.dish_join("self", lambda g, pkt: got.append(1))

        def send():
            yield from node_a.radio_send("self", 64)

        bed.sim.process(send())
        bed.sim.run()
        assert got == []
