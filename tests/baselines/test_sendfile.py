"""sendfile streaming baseline tests."""

from repro.baselines.sendfile import TCP_WINDOW_FRAGMENTS, SendfileStreamer
from repro.hw import Testbed


def test_streams_all_frames():
    streamer = SendfileStreamer(Testbed.local(seed=0))
    latencies, meter = streamer.stream_frames(frame_size=500_000, frames=5)
    assert len(latencies) == 5
    assert streamer.frames_sent.value == 5
    assert meter.messages == 5


def test_latency_grows_with_frame_size():
    small_streamer = SendfileStreamer(Testbed.local(seed=1))
    small, _ = small_streamer.stream_frames(frame_size=100_000, frames=3)
    big_streamer = SendfileStreamer(Testbed.local(seed=1))
    big, _ = big_streamer.stream_frames(frame_size=2_000_000, frames=3)
    assert sum(big) / len(big) > sum(small) / len(small)


def test_flow_control_prevents_socket_overflow():
    """The TCP-window model must keep large streams loss-free."""
    bed = Testbed.local(seed=2)
    streamer = SendfileStreamer(bed)
    # ~640 fragments: far more than the receive buffer could hold at once
    latencies, _ = streamer.stream_frames(frame_size=5_000_000, frames=3)
    assert len(latencies) == 3
    from repro.datapaths import KernelUdpDatapath

    kernel = KernelUdpDatapath.get(bed.hosts[1])
    assert kernel.socket_overflow_drops.value == 0


def test_window_bounds_in_flight_fragments():
    bed = Testbed.local(seed=3)
    streamer = SendfileStreamer(bed)
    streamer.stream_frames(frame_size=1_000_000, frames=2)
    # the receiver socket buffer never held more than the window
    assert TCP_WINDOW_FRAGMENTS <= 128
