"""Raw UDP / raw DPDK benchmark application tests."""

import pytest

from repro.baselines.raw_dpdk import DpdkBenchApp
from repro.baselines.raw_udp import UdpBenchApp
from repro.hw import Testbed


class TestUdpBenchApp:
    def test_pingpong_round_count(self):
        rtts = UdpBenchApp(Testbed.local(seed=0)).pingpong(100, 64)
        assert rtts.count == 100

    def test_blocking_slower_than_nonblocking(self):
        blocking = UdpBenchApp(Testbed.local(seed=1), blocking=True).pingpong(150, 64)
        nonblocking = UdpBenchApp(Testbed.local(seed=1), blocking=False).pingpong(150, 64)
        assert blocking.mean > 1.8 * nonblocking.mean

    def test_stream_counts_all_payload_bytes(self):
        meter = UdpBenchApp(Testbed.local(seed=2)).stream(400, 512)
        assert meter.messages == 400
        assert meter.bytes == 400 * 512

    def test_larger_payload_more_goodput(self):
        small = UdpBenchApp(Testbed.local(seed=3)).stream(600, 64).gbps()
        large = UdpBenchApp(Testbed.local(seed=4)).stream(600, 4096).gbps()
        assert large > small


class TestDpdkBenchApp:
    def test_pingpong_round_count(self):
        rtts = DpdkBenchApp(Testbed.local(seed=5)).pingpong(100, 64)
        assert rtts.count == 100

    def test_faster_than_udp_at_every_size(self):
        for size in (64, 1024):
            dpdk = DpdkBenchApp(Testbed.local(seed=6)).pingpong(100, size)
            udp = UdpBenchApp(Testbed.local(seed=6)).pingpong(100, size)
            assert dpdk.mean < udp.mean

    def test_stream_releases_all_mbufs(self):
        app = DpdkBenchApp(Testbed.local(seed=7))
        app.stream(500, 1024)
        assert app.server_dp.mempool.in_use == 0

    def test_stream_throughput_beats_udp(self):
        dpdk = DpdkBenchApp(Testbed.local(seed=8)).stream(800, 1024).gbps()
        udp = UdpBenchApp(Testbed.local(seed=8)).stream(800, 1024).gbps()
        assert dpdk > 3 * udp

    def test_jumbo_payload_single_frame(self):
        """An 8 KB payload rides one jumbo frame: one TX per message."""
        bed = Testbed.local(seed=9)
        app = DpdkBenchApp(bed)
        app.stream(100, 8192)
        assert bed.hosts[0].nic.tx_frames.value == 100
