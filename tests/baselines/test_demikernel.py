"""Demikernel (Catnap/Catnip) baseline tests."""

import pytest

from repro.baselines.demikernel import DemikernelApp, DemiQueue
from repro.hw import Testbed
from repro.netstack import Packet


class TestDemiQueue:
    def test_invalid_flavor_rejected(self):
        bed = Testbed.local()
        with pytest.raises(ValueError):
            DemiQueue(bed.hosts[0], "catfish", 7000)

    def test_catnap_push_pop_round_trip(self):
        bed = Testbed.local(seed=1)
        sim = bed.sim
        q_a = DemiQueue(bed.hosts[0], "catnap", 7100)
        q_b = DemiQueue(bed.hosts[1], "catnap", 7100)
        got = []

        def tx():
            yield from q_a.push(Packet("10.0.0.1", "10.0.0.2", 7100, 7100, payload=b"demi"))

        def rx():
            batch = yield from q_b.pop()
            got.extend(p.payload_bytes() for p in batch)

        sim.process(tx())
        sim.process(rx())
        sim.run()
        assert got == [b"demi"]

    def test_catnip_push_is_synchronous_with_wire(self):
        """Catnip returns from push only after the frame left the NIC."""
        bed = Testbed.local(seed=2)
        sim = bed.sim
        queue = DemiQueue(bed.hosts[0], "catnip", 7200)
        jumbo = Packet("10.0.0.1", "10.0.0.2", 7200, 7200, payload_len=8192)
        times = {}

        def tx():
            yield from queue.push(jumbo)
            times["returned"] = sim.now

        sim.process(tx())
        sim.run()
        serialization = jumbo.wire_size * 8.0 / 100.0
        assert times["returned"] >= serialization

    def test_catnip_pop_releases_mbufs(self):
        bed = Testbed.local(seed=3)
        sim = bed.sim
        q_a = DemiQueue(bed.hosts[0], "catnip", 7300)
        q_b = DemiQueue(bed.hosts[1], "catnip", 7300)

        def tx():
            yield from q_a.push(Packet("10.0.0.1", "10.0.0.2", 7300, 7300, payload=b"x"))

        def rx():
            yield from q_b.pop()

        sim.process(tx())
        sim.process(rx())
        sim.run()
        assert q_b.datapath.mempool.in_use == 0


class TestDemikernelApp:
    def test_catnap_slower_than_raw_sockets(self):
        """Catnap adds library overhead over the raw non-blocking socket."""
        from repro.baselines.raw_udp import UdpBenchApp

        catnap = DemikernelApp(Testbed.local(seed=4), "catnap").pingpong(200, 64)
        raw = UdpBenchApp(Testbed.local(seed=4), blocking=False).pingpong(200, 64)
        assert catnap.mean > raw.mean

    def test_catnip_slower_than_raw_dpdk(self):
        from repro.baselines.raw_dpdk import DpdkBenchApp

        catnip = DemikernelApp(Testbed.local(seed=5), "catnip").pingpong(200, 64)
        raw = DpdkBenchApp(Testbed.local(seed=5)).pingpong(200, 64)
        assert catnip.mean > raw.mean

    def test_catnip_latency_calibration(self):
        rtts = DemikernelApp(Testbed.local(seed=6), "catnip").pingpong(300, 64)
        assert rtts.mean == pytest.approx(4_260, rel=0.05)

    def test_catnap_latency_calibration(self):
        rtts = DemikernelApp(Testbed.local(seed=7), "catnap").pingpong(300, 64)
        assert rtts.mean == pytest.approx(13_340, rel=0.05)

    def test_stream_delivers_all_messages(self):
        meter = DemikernelApp(Testbed.local(seed=8), "catnap").stream(500, 256)
        assert meter.messages == 500
