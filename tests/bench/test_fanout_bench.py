"""`insane bench fanout` — report shape, CLI wiring, error bound."""

import json

import pytest

from repro.bench.cli import main
from repro.bench.fanout import format_fanout, run_fanout_bench


class TestRunFanoutBench:
    def test_report_carries_metrics_and_error_bound(self):
        report, metrics, diff = run_fanout_bench(
            subscribers=5000, messages=8, size=512, hot_fraction=0.001,
            diff_subscribers=(64,), diff_messages=8)
        assert report.kind == "bench.fanout"
        assert report.data["fanout"] is metrics
        assert metrics["delivered"] == metrics["expected"] == 5000 * 8
        assert diff["ok"], diff
        assert diff["delivered_exact"] and diff["wire_conserved"]
        assert report.meta["wall_s"] >= report.meta["fanout_wall_s"]
        # the whole report must be JSON-native (it is written to disk)
        json.dumps(report.data)

    def test_differential_can_be_skipped(self):
        report, metrics, diff = run_fanout_bench(
            subscribers=1000, messages=4, size=512, hot_fraction=0.0,
            differential=False)
        assert diff is None
        assert report.data["differential"] is None
        assert metrics["fluid"]["mode"] == "analytic"

    def test_format_mentions_the_bound(self):
        report, _, _ = run_fanout_bench(
            subscribers=1000, messages=4, size=512, hot_fraction=0.01,
            diff_subscribers=(64,), diff_messages=8)
        text = format_fanout(report)
        assert "error bound" in text
        assert "OK" in text


class TestCli:
    def test_bench_fanout_subcommand(self, capsys, tmp_path):
        out = tmp_path / "fanout.json"
        assert main(["fanout", "--subscribers", "2000", "--messages", "6",
                     "--hot-fraction", "0.002", "--no-differential",
                     "--report", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "2000 subscribers" in captured
        reports = json.loads(out.read_text())
        assert any(r["kind"] == "bench.fanout" for r in reports)

    def test_bench_fanout_rejects_bad_population(self):
        with pytest.raises(SystemExit):
            main(["fanout", "--subscribers", "0", "--no-differential"])
