"""Tests for the LoC counter, image-size table, and table formatting."""

import os
import tempfile

import pytest

from repro.bench.images import RESOLUTIONS, image_size_bytes, table4_rows
from repro.bench.loc import count_loc, default_examples_dir, table3_rows
from repro.bench.tables import format_comparison, format_table


class TestLocCounter:
    def count(self, source):
        with tempfile.NamedTemporaryFile("w", suffix=".py", delete=False) as handle:
            handle.write(source)
            path = handle.name
        try:
            return count_loc(path)
        finally:
            os.unlink(path)

    def test_counts_code_lines_only(self):
        assert self.count("x = 1\ny = 2\n") == 2

    def test_skips_blank_and_comment_lines(self):
        assert self.count("# comment\n\nx = 1\n   # indented comment\n") == 1

    def test_skips_docstrings(self):
        source = '"""Module docstring\nspanning lines."""\nx = 1\n'
        assert self.count(source) == 1

    def test_one_line_docstring(self):
        assert self.count('"""one-liner"""\nx = 1\n') == 1

    def test_examples_dir_resolves(self):
        assert os.path.isdir(default_examples_dir())

    def test_table3_shape(self):
        rows = table3_rows()
        loc = {row["interface"]: row["loc"] for row in rows}
        assert loc["insane"] < loc["udp"] < loc["dpdk"]
        assert rows[0]["increase"] == "-"
        assert rows[1]["paper_increase"] == "+20%"
        assert rows[2]["paper_increase"] == "+103%"


class TestImageTable:
    def test_sizes_match_paper_table4(self):
        expected = {"HD": 2.76, "FullHD": 6.22, "2K": 11.61, "4K": 24.88, "8K": 99.53}
        for name, mb in expected.items():
            assert image_size_bytes(name) / 1e6 == pytest.approx(mb, abs=0.01)

    def test_unknown_resolution_rejected(self):
        with pytest.raises(KeyError):
            image_size_bytes("16K")

    def test_rows_cover_all_resolutions(self):
        rows = table4_rows()
        assert [row["resolution"] for row in rows] == list(RESOLUTIONS)


class TestTableFormatting:
    def test_alignment_and_headers(self):
        table = format_table(["name", "value"], [["a", 1], ["longer", 2.5]])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert "2.50" in lines[-1]
        # all rows equally wide header separators
        assert set(lines[1]) <= {"-", " "}

    def test_title_prepended(self):
        table = format_table(["h"], [["x"]], title="My Table")
        assert table.splitlines()[0] == "My Table"

    def test_comparison_note(self):
        table = format_comparison("T", ["a"], [["1"]], paper_column="paper")
        assert "value reported in the paper" in table
