"""Benchmark harness tests: system registry and driver plumbing."""

import pytest

from repro.bench import (
    SYSTEMS,
    make_system,
    make_testbed,
    run_multisink,
    run_pingpong,
    run_throughput,
)


class TestRegistry:
    def test_all_seven_systems_instantiable(self):
        for name in SYSTEMS:
            testbed = make_testbed("local", seed=1)
            app = make_system(name, testbed)
            assert app is not None

    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError):
            make_system("carrier-pigeon", make_testbed())

    def test_profiles_by_name(self):
        assert make_testbed("local").profile.name == "local"
        assert make_testbed("cloud").profile.name == "cloud"
        with pytest.raises(KeyError):
            make_testbed("mars")


class TestPingPongDriver:
    def test_returns_requested_round_count(self):
        tally = run_pingpong("udp_nonblocking", rounds=50, size=64, seed=2)
        assert tally.count == 50

    def test_deterministic_given_seed(self):
        a = run_pingpong("insane_fast", rounds=50, size=64, seed=3)
        b = run_pingpong("insane_fast", rounds=50, size=64, seed=3)
        assert a.samples == b.samples

    def test_different_seeds_differ(self):
        a = run_pingpong("insane_fast", rounds=50, size=64, seed=4)
        b = run_pingpong("insane_fast", rounds=50, size=64, seed=5)
        assert a.samples != b.samples


class TestThroughputDriver:
    def test_throughput_positive_for_every_system(self):
        for name in ("udp_nonblocking", "catnip", "insane_fast"):
            gbps = run_throughput(name, messages=500, size=1024, seed=6)
            assert gbps > 0

    def test_multisink_returns_average(self):
        value = run_multisink(2, messages=500, size=1024, seed=7)
        assert value > 0

    def test_goodput_excludes_headers(self):
        """Goodput must count payload bytes only, so it can never exceed
        the 100 Gbps line rate scaled by payload fraction."""
        gbps = run_throughput("raw_dpdk", messages=2000, size=8192, seed=8)
        wire_fraction = 8192 / (8192 + 90.0)
        assert gbps <= 100.0 * wire_fraction + 0.5
