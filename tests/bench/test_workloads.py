"""Workload generator tests."""

import itertools
import random

import pytest

from repro.bench.workloads import ConstantRate, OnOffBurst, PoissonArrivals, drive_source
from repro.core import QosPolicy, Session
from repro.core.runtime import InsaneDeployment
from repro.hw import Testbed


class TestGenerators:
    def test_constant_rate_gaps(self):
        gaps = list(itertools.islice(ConstantRate(1000).gaps(random.Random(0)), 5))
        assert gaps == [1000] * 5

    def test_constant_rate_from_hz(self):
        assert ConstantRate.hz(1000).interval_ns == pytest.approx(1e6)

    def test_poisson_mean_converges(self):
        rng = random.Random(1)
        workload = PoissonArrivals(rate_per_s=1e6)  # mean gap 1 us
        gaps = list(itertools.islice(workload.gaps(rng), 5000))
        mean = sum(gaps) / len(gaps)
        assert mean == pytest.approx(1000, rel=0.1)

    def test_on_off_alternates(self):
        workload = OnOffBurst(on_ns=1000, off_ns=50_000, burst_interval_ns=200)
        gaps = list(itertools.islice(workload.gaps(random.Random(2)), 12))
        assert 50_000 in gaps
        assert gaps.count(200) >= 5

    @pytest.mark.parametrize("factory", [
        lambda: ConstantRate(0),
        lambda: PoissonArrivals(0),
        lambda: OnOffBurst(0, 1, 1),
    ])
    def test_invalid_parameters(self, factory):
        with pytest.raises(ValueError):
            factory()


class TestDriver:
    def test_drive_source_emits_count_messages(self):
        bed = Testbed.local(seed=9)
        sim = bed.sim
        deployment = InsaneDeployment(bed)
        tx = Session(deployment.runtime(0), "tx")
        rx = Session(deployment.runtime(1), "rx")
        tx_stream = tx.create_stream(QosPolicy.fast(), name="wl")
        rx_stream = rx.create_stream(QosPolicy.fast(), name="wl")
        source = tx.create_source(tx_stream, channel=1)
        sink = rx.create_sink(rx_stream, channel=1, callback=lambda d: None)
        emits = []
        sim.process(
            drive_source(tx, source, 128, ConstantRate(10_000), 25, on_emit=emits.append)
        )
        sim.run()
        assert len(emits) == 25
        assert sink.received.value == 25
        # paced: consecutive emits are at least the interval apart
        deltas = [b - a for a, b in zip(emits, emits[1:])]
        assert all(delta >= 10_000 for delta in deltas)
