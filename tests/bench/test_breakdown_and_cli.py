"""Tests for the Fig. 6 breakdown driver and the insane-bench CLI."""

import pytest

from repro.bench.breakdown import COMPONENTS, run_breakdown
from repro.bench.cli import EXPERIMENTS, main


class TestBreakdown:
    def test_components_sum_to_full_rtt(self):
        breakdown = run_breakdown("local", messages=100)
        total = sum(breakdown.values())
        # Fig. 7 local INSANE fast: 4.95 us
        assert total == pytest.approx(4.95, rel=0.10)

    def test_all_components_present_and_positive(self):
        breakdown = run_breakdown("local", messages=60)
        assert set(breakdown) == set(COMPONENTS)
        assert all(value > 0 for value in breakdown.values())

    def test_cloud_network_dominated_by_switch(self):
        breakdown = run_breakdown("cloud", messages=60)
        assert breakdown["network"] > max(
            breakdown["send"], breakdown["receive"], breakdown["data_processing"]
        )


class TestCli:
    def test_experiment_registry_covers_all_figures_and_tables(self):
        expected = {
            "table1", "table3", "table4", "fig5", "fig6", "fig7",
            "fig8a", "fig8b", "fig9a", "fig9b", "fig11",
            "ablation-tsn", "ablation-threads", "ablation-batching", "ablation-qos",
            "ablation-rx-threads", "faults", "validate", "breakdown",
            "profile", "capacity", "city", "fanout",
        }
        assert expected == set(EXPERIMENTS)

    def test_cli_runs_static_tables(self, capsys):
        assert main(["table1"]) == 0
        assert main(["table4"]) == 0
        output = capsys.readouterr().out
        assert "Table 1" in output
        assert "Table 4" in output

    def test_cli_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_cli_quick_flag_sets_small_counts(self, capsys):
        assert main(["table3", "--quick"]) == 0
        assert "Table 3" in capsys.readouterr().out
