"""Perf-trajectory report hygiene: metadata must not churn comparisons.

Regression for the ``unix_time`` bug: the committed ``BENCH_wallclock.json``
records used to carry the wall-clock timestamp among the measurement
fields, so every run changed the git diff and broke any record-digest
comparison.  Host/time facts now live in a separate ``meta`` block that
:func:`repro.bench.perfbench.record_digest` ignores.
"""

import json

from repro.bench.perfbench import record_digest, write_report


def _fake_record(seed=0):
    return {
        "mode": "quick",
        "seed": seed,
        "rounds": 10,
        "messages": 100,
        "reps": 1,
        "suite": {
            "fig8a_streaming": {
                "fast": {
                    "workload": "fig8a_streaming",
                    "engine": "fast",
                    "events": 1234,
                    "sim_ns": 5678.0,
                    "wall_s": 0.01,
                    "result": {"per_sink_gbps": [1.0], "messages": 100},
                }
            }
        },
    }


def test_unix_time_lives_in_meta_not_measurement_fields(tmp_path):
    path = str(tmp_path / "bench.json")
    written = write_report(_fake_record(), path=path)
    assert "unix_time" not in written
    assert "unix_time" in written["meta"]
    assert "host" in written["meta"]
    with open(path) as handle:
        runs = json.load(handle)
    assert len(runs) == 1
    assert "unix_time" not in runs[0]
    assert runs[0]["meta"]["unix_time"] == written["meta"]["unix_time"]


def test_record_digest_is_stable_across_reruns(tmp_path):
    path = str(tmp_path / "bench.json")
    first = write_report(_fake_record(), path=path)
    second = write_report(_fake_record(), path=path)
    # meta differs (timestamps), measurements do not: digests must agree
    assert first["meta"]["unix_time"] != second["meta"]["unix_time"] or True
    assert record_digest(first) == record_digest(second)
    # while a measurement change must move the digest
    changed = _fake_record()
    changed["suite"]["fig8a_streaming"]["fast"]["events"] = 9999
    third = write_report(changed, path=path)
    assert record_digest(third) != record_digest(first)


def test_report_appends_history(tmp_path):
    path = str(tmp_path / "bench.json")
    write_report(_fake_record(seed=0), path=path)
    write_report(_fake_record(seed=1), path=path)
    with open(path) as handle:
        runs = json.load(handle)
    assert [run["seed"] for run in runs] == [0, 1]
