"""Tests for terminal charts and JSON reporting."""

import json

import pytest

from repro.bench.charts import grouped_series_chart, hbar_chart, sparkline
from repro.bench.report import write_json_report
from repro.simnet import Tally


class TestHbarChart:
    def test_bars_scale_with_values(self):
        chart = hbar_chart("T", ["a", "b"], [10.0, 5.0], width=20)
        lines = chart.splitlines()
        assert lines[0] == "T"
        assert lines[1].count("#") == 20
        assert lines[2].count("#") == 10

    def test_reference_markers_rendered(self):
        chart = hbar_chart("T", ["a"], [10.0], reference={"a": 5.0}, width=20)
        assert "|" in chart
        assert "paper" in chart

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            hbar_chart("T", ["a"], [1.0, 2.0])

    def test_empty_chart(self):
        assert "(no data)" in hbar_chart("T", [], [])

    def test_units_shown(self):
        assert "3.00 Gbps" in hbar_chart("T", ["x"], [3.0], unit=" Gbps")


class TestGroupedSeries:
    def test_blocks_per_x_value(self):
        chart = grouped_series_chart(
            "T", ["64B", "1KB"], {"sys1": [1.0, 2.0], "sys2": [2.0, 4.0]}
        )
        assert chart.count("64B:") == 1
        assert chart.count("1KB:") == 1
        assert chart.count("sys1") == 2

    def test_misaligned_series_rejected(self):
        with pytest.raises(ValueError):
            grouped_series_chart("T", ["a"], {"s": [1.0, 2.0]})


class TestSparkline:
    def test_monotone_values_monotone_glyphs(self):
        line = sparkline([0, 2, 4, 8])
        assert len(line) == 4
        assert line[-1] == "@"

    def test_empty(self):
        assert sparkline([]) == ""


class TestJsonReport:
    def test_tallies_serialized_as_summaries(self, tmp_path):
        path = str(tmp_path / "report.json")
        tally = Tally("rtt")
        tally.record(5.0)
        write_json_report(path, {"fig7": {"raw_dpdk": tally}})
        data = json.load(open(path))
        experiments = data[0]["data"]["experiments"]
        assert experiments["fig7"]["raw_dpdk"]["mean"] == 5.0

    def test_tuple_keys_flattened(self, tmp_path):
        path = str(tmp_path / "report.json")
        write_json_report(path, {"fig8a": {("raw_dpdk", 64): 3.5}})
        data = json.load(open(path))
        assert data[0]["data"]["experiments"]["fig8a"]["raw_dpdk/64"] == 3.5

    def test_successive_runs_accumulate(self, tmp_path):
        path = str(tmp_path / "report.json")
        write_json_report(path, {"a": 1}, profile="local")
        write_json_report(path, {"b": 2}, profile="cloud")
        data = json.load(open(path))
        assert len(data) == 2
        assert data[1]["data"]["profile"] == "cloud"

    def test_records_are_run_report_documents(self, tmp_path):
        from repro.report import RunReport

        path = str(tmp_path / "report.json")
        written = write_json_report(path, {"a": 1}, seed=7,
                                    sim_stats={"events": 10})
        data = json.load(open(path))
        loaded = RunReport.from_dict(data[0])
        assert loaded.kind == "bench.run"
        assert loaded.digest() == written.digest()
        # diagnostics live in meta and never move the digest
        assert loaded.meta["sim_stats"] == {"events": 10}
        bare = write_json_report(str(tmp_path / "other.json"), {"a": 1},
                                 seed=7)
        assert bare.digest() == written.digest()

    def test_corrupt_file_recovered(self, tmp_path):
        path = tmp_path / "report.json"
        path.write_text("{not json")
        write_json_report(str(path), {"a": 1})
        data = json.load(open(str(path)))
        assert len(data) == 1
