"""Small-scale driver tests for the MoM and streaming benchmarks."""

import pytest

from repro.bench.mom import MOM_SYSTEMS, mom_pingpong, mom_throughput
from repro.bench.streaming import frames_for_resolution, streaming_run


class TestMomDrivers:
    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError):
            mom_pingpong("rabbitmq", rounds=1)

    @pytest.mark.parametrize("system", MOM_SYSTEMS)
    def test_pingpong_completes_all_rounds(self, system):
        tally = mom_pingpong(system, rounds=40, size=64, seed=3)
        assert tally.count == 40
        assert tally.mean > 0

    def test_latency_ordering_holds_at_small_scale(self):
        lunar = mom_pingpong("lunar_fast", rounds=60, size=64, seed=4)
        cyclone = mom_pingpong("cyclone_dds", rounds=60, size=64, seed=4)
        assert lunar.mean < cyclone.mean

    @pytest.mark.parametrize("system", ["lunar_fast", "lunar_slow", "cyclone_dds"])
    def test_throughput_positive(self, system):
        assert mom_throughput(system, messages=400, size=1024, seed=5) > 0


class TestStreamingDrivers:
    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError):
            streaming_run("netflix", "HD", frames=1)

    def test_unknown_resolution_rejected(self):
        with pytest.raises(KeyError):
            streaming_run("lunar_fast", "16K", frames=1)

    def test_fps_and_latency_consistency(self):
        fps, latencies = streaming_run("lunar_fast", "HD", frames=4, seed=6)
        assert fps > 0
        assert len(latencies) == 4
        assert all(latency > 0 for latency in latencies)

    def test_frames_for_resolution_bounded(self):
        for resolution in ("HD", "8K"):
            frames = frames_for_resolution(resolution, quick=True)
            assert 4 <= frames <= 60
        # bigger frames -> fewer of them
        assert frames_for_resolution("8K", quick=True) <= frames_for_resolution("HD", quick=True)

    def test_sendfile_driver_latencies(self):
        fps, latencies = streaming_run("sendfile", "HD", frames=3, seed=7)
        assert len(latencies) == 3
        assert fps > 0
