"""Fragmentation/reassembly tests, including property-based coverage."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.netstack import FramePolicy, Fragmenter, Reassembler
from repro.netstack.fragment import FRAGMENT_HEADER_LEN


def roundtrip(frame, max_fragment, shuffle=None):
    fragmenter = Fragmenter(max_fragment)
    reassembler = Reassembler()
    datagrams = [bytes(header) + bytes(data) for header, data in fragmenter.fragment(frame)]
    if shuffle:
        shuffle(datagrams)
    result = None
    for datagram in datagrams:
        out = reassembler.push(datagram)
        if out is not None:
            assert result is None, "frame delivered twice"
            result = out
    return result


def test_single_fragment_round_trip():
    assert roundtrip(b"abc", max_fragment=10) == b"abc"


def test_multi_fragment_round_trip():
    frame = bytes(range(256)) * 10
    assert roundtrip(frame, max_fragment=100) == frame


def test_out_of_order_reassembly():
    import random

    frame = b"0123456789" * 50
    rng = random.Random(7)
    assert roundtrip(frame, max_fragment=64, shuffle=rng.shuffle) == frame


def test_fragment_count():
    fragmenter = Fragmenter(100)
    assert fragmenter.fragment_count(0) == 1
    assert fragmenter.fragment_count(1) == 1
    assert fragmenter.fragment_count(100) == 1
    assert fragmenter.fragment_count(101) == 2
    assert fragmenter.fragment_count(1000) == 10


def test_interleaved_frames_reassemble_independently():
    fragmenter = Fragmenter(8)
    reassembler = Reassembler()
    frames = [b"A" * 20, b"B" * 20]
    datagram_sets = [
        [bytes(h) + bytes(d) for h, d in fragmenter.fragment(frame)] for frame in frames
    ]
    delivered = []
    # interleave fragment streams
    for pair in zip(*datagram_sets):
        for datagram in pair:
            out = reassembler.push(datagram)
            if out is not None:
                delivered.append(out)
    assert sorted(delivered) == sorted(frames)


def test_duplicate_fragment_is_idempotent():
    fragmenter = Fragmenter(8)
    reassembler = Reassembler()
    datagrams = [bytes(h) + bytes(d) for h, d in fragmenter.fragment(b"x" * 20)]
    assert reassembler.push(datagrams[0]) is None
    assert reassembler.push(datagrams[0]) is None  # duplicate
    assert reassembler.push(datagrams[1]) is None
    assert reassembler.push(datagrams[2]) == b"x" * 20


def test_pending_eviction_bounds_memory():
    fragmenter = Fragmenter(4)
    reassembler = Reassembler(max_pending_frames=2)
    # start three frames without completing any
    for frame in (b"a" * 8, b"b" * 8, b"c" * 8):
        datagrams = [bytes(h) + bytes(d) for h, d in fragmenter.fragment(frame)]
        reassembler.push(datagrams[0])
    assert reassembler.pending_frames <= 2


def test_push_rejects_short_datagram():
    with pytest.raises(ValueError):
        Reassembler().push(b"\x00" * (FRAGMENT_HEADER_LEN - 1))


def test_push_rejects_bad_index():
    import struct

    from repro.netstack.fragment import FRAGMENT_HEADER

    bogus = FRAGMENT_HEADER.pack(0, 5, 2, 10) + b"data"
    with pytest.raises(ValueError):
        Reassembler().push(bogus)


@settings(max_examples=60, deadline=None)
@given(
    frame=st.binary(min_size=1, max_size=4096),
    max_fragment=st.integers(min_value=1, max_value=512),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_property_roundtrip_any_frame_any_order(frame, max_fragment, seed):
    import random

    rng = random.Random(seed)
    assert roundtrip(frame, max_fragment, shuffle=rng.shuffle) == frame


class TestFramePolicy:
    def test_max_payload_jumbo(self):
        policy = FramePolicy(jumbo_enabled=True)
        assert policy.max_payload == 9000 - 28

    def test_max_payload_standard(self):
        policy = FramePolicy(jumbo_enabled=False)
        assert policy.max_payload == 1500 - 28

    def test_requires_jumbo_boundary(self):
        policy = FramePolicy()
        assert not policy.requires_jumbo(1472)
        assert policy.requires_jumbo(1473)

    def test_validate_raises_when_too_big(self):
        policy = FramePolicy(jumbo_enabled=True)
        with pytest.raises(ValueError):
            policy.validate(9001)

    def test_validate_raises_without_jumbo(self):
        policy = FramePolicy(jumbo_enabled=False)
        with pytest.raises(ValueError):
            policy.validate(2000)

    def test_jumbo_smaller_than_mtu_rejected(self):
        with pytest.raises(ValueError):
            FramePolicy(mtu=9000, jumbo_mtu=1500)
