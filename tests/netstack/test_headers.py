"""Codec round-trip and validation tests for the userspace network stack."""

import pytest

from repro.netstack import (
    EthernetHeader,
    Ipv4Header,
    MacAddress,
    UdpHeader,
    internet_checksum,
    int_to_ip,
    ip_to_int,
)
from repro.netstack.ethernet import ETHERTYPE_IPV4


def test_ip_conversion_round_trip():
    for address in ("0.0.0.0", "10.0.0.1", "192.168.1.254", "255.255.255.255"):
        assert int_to_ip(ip_to_int(address)) == address


@pytest.mark.parametrize("bad", ["10.0.0", "1.2.3.4.5", "256.0.0.1", "a.b.c.d"])
def test_ip_conversion_rejects_malformed(bad):
    with pytest.raises(ValueError):
        ip_to_int(bad)


def test_int_to_ip_rejects_out_of_range():
    with pytest.raises(ValueError):
        int_to_ip(-1)
    with pytest.raises(ValueError):
        int_to_ip(2**32)


def test_mac_round_trip_and_string():
    mac = MacAddress.from_index(7)
    again = MacAddress.from_bytes(mac.to_bytes())
    assert again == mac
    assert str(mac) == "02:00:00:00:00:07"


def test_mac_broadcast():
    assert MacAddress.broadcast().is_broadcast
    assert not MacAddress.from_index(1).is_broadcast


def test_ethernet_round_trip():
    header = EthernetHeader(MacAddress.from_index(2), MacAddress.from_index(1))
    data = header.to_bytes()
    assert len(data) == EthernetHeader.LENGTH
    parsed = EthernetHeader.from_bytes(data)
    assert parsed == header
    assert parsed.ethertype == ETHERTYPE_IPV4


def test_ethernet_rejects_truncated():
    with pytest.raises(ValueError):
        EthernetHeader.from_bytes(b"\x00" * 13)


def test_ipv4_round_trip_and_checksum():
    header = Ipv4Header("10.0.0.1", "10.0.0.2", total_length=1048, identification=99)
    data = header.to_bytes()
    assert len(data) == Ipv4Header.LENGTH
    # a freshly checksummed header validates to zero
    assert internet_checksum(data) == 0
    parsed = Ipv4Header.from_bytes(data)
    assert parsed.src == "10.0.0.1"
    assert parsed.dst == "10.0.0.2"
    assert parsed.total_length == 1048
    assert parsed.identification == 99


def test_ipv4_detects_corruption():
    data = bytearray(Ipv4Header("10.0.0.1", "10.0.0.2", 100).to_bytes())
    data[8] ^= 0xFF  # flip TTL bits
    with pytest.raises(ValueError):
        Ipv4Header.from_bytes(bytes(data))


def test_udp_round_trip():
    header = UdpHeader(7000, 7001, payload_length=512)
    parsed = UdpHeader.from_bytes(header.to_bytes())
    assert parsed.src_port == 7000
    assert parsed.dst_port == 7001
    assert parsed.payload_length == 512


def test_udp_rejects_bad_ports():
    with pytest.raises(ValueError):
        UdpHeader(-1, 80, 0)
    with pytest.raises(ValueError):
        UdpHeader(80, 70000, 0)


def test_internet_checksum_known_vector():
    # classic RFC 1071 example data
    data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
    total = internet_checksum(data)
    # verifying: sum of data plus checksum folds to 0xFFFF (then inverted -> 0)
    assert internet_checksum(data + bytes([total >> 8, total & 0xFF])) == 0


def test_internet_checksum_odd_length_padding():
    assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")
