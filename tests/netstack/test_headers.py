"""Codec round-trip and validation tests for the userspace network stack."""

import pytest

from repro.netstack import (
    EthernetHeader,
    Ipv4Header,
    MacAddress,
    UdpHeader,
    internet_checksum,
    int_to_ip,
    ip_to_int,
)
from repro.netstack.ethernet import ETHERTYPE_IPV4

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
except ImportError:   # hypothesis is an optional test extra
    st = None


def test_ip_conversion_round_trip():
    for address in ("0.0.0.0", "10.0.0.1", "192.168.1.254", "255.255.255.255"):
        assert int_to_ip(ip_to_int(address)) == address


@pytest.mark.parametrize("bad", ["10.0.0", "1.2.3.4.5", "256.0.0.1", "a.b.c.d"])
def test_ip_conversion_rejects_malformed(bad):
    with pytest.raises(ValueError):
        ip_to_int(bad)


def test_int_to_ip_rejects_out_of_range():
    with pytest.raises(ValueError):
        int_to_ip(-1)
    with pytest.raises(ValueError):
        int_to_ip(2**32)


def test_mac_round_trip_and_string():
    mac = MacAddress.from_index(7)
    again = MacAddress.from_bytes(mac.to_bytes())
    assert again == mac
    assert str(mac) == "02:00:00:00:00:07"


def test_mac_broadcast():
    assert MacAddress.broadcast().is_broadcast
    assert not MacAddress.from_index(1).is_broadcast


def test_ethernet_round_trip():
    header = EthernetHeader(MacAddress.from_index(2), MacAddress.from_index(1))
    data = header.to_bytes()
    assert len(data) == EthernetHeader.LENGTH
    parsed = EthernetHeader.from_bytes(data)
    assert parsed == header
    assert parsed.ethertype == ETHERTYPE_IPV4


def test_ethernet_rejects_truncated():
    with pytest.raises(ValueError):
        EthernetHeader.from_bytes(b"\x00" * 13)


def test_ipv4_round_trip_and_checksum():
    header = Ipv4Header("10.0.0.1", "10.0.0.2", total_length=1048, identification=99)
    data = header.to_bytes()
    assert len(data) == Ipv4Header.LENGTH
    # a freshly checksummed header validates to zero
    assert internet_checksum(data) == 0
    parsed = Ipv4Header.from_bytes(data)
    assert parsed.src == "10.0.0.1"
    assert parsed.dst == "10.0.0.2"
    assert parsed.total_length == 1048
    assert parsed.identification == 99


def test_ipv4_detects_corruption():
    data = bytearray(Ipv4Header("10.0.0.1", "10.0.0.2", 100).to_bytes())
    data[8] ^= 0xFF  # flip TTL bits
    with pytest.raises(ValueError):
        Ipv4Header.from_bytes(bytes(data))


def test_udp_round_trip():
    header = UdpHeader(7000, 7001, payload_length=512)
    parsed = UdpHeader.from_bytes(header.to_bytes())
    assert parsed.src_port == 7000
    assert parsed.dst_port == 7001
    assert parsed.payload_length == 512


def test_udp_rejects_bad_ports():
    with pytest.raises(ValueError):
        UdpHeader(-1, 80, 0)
    with pytest.raises(ValueError):
        UdpHeader(80, 70000, 0)


def test_internet_checksum_known_vector():
    # classic RFC 1071 example data
    data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
    total = internet_checksum(data)
    # verifying: sum of data plus checksum folds to 0xFFFF (then inverted -> 0)
    assert internet_checksum(data + bytes([total >> 8, total & 0xFF])) == 0


def test_internet_checksum_odd_length_padding():
    assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")


if st is not None:

    ip_ints = st.integers(min_value=0, max_value=2**32 - 1)
    ports = st.integers(min_value=0, max_value=65535)

    class TestCodecProperties:
        """Hypothesis round-trips over the full header value spaces."""

        @settings(max_examples=200, deadline=None)
        @given(ip_ints)
        def test_ip_conversion_round_trips_every_address(self, value):
            assert ip_to_int(int_to_ip(value)) == value

        @settings(max_examples=100, deadline=None)
        @given(st.integers(min_value=0, max_value=2**48 - 1))
        def test_mac_bytes_round_trip(self, value):
            raw = value.to_bytes(6, "big")
            assert MacAddress.from_bytes(raw).to_bytes() == raw

        @settings(max_examples=100, deadline=None)
        @given(
            st.integers(min_value=0, max_value=2**48 - 1),
            st.integers(min_value=0, max_value=2**48 - 1),
        )
        def test_ethernet_round_trip(self, dst, src):
            header = EthernetHeader(
                MacAddress.from_bytes(dst.to_bytes(6, "big")),
                MacAddress.from_bytes(src.to_bytes(6, "big")),
            )
            assert EthernetHeader.from_bytes(header.to_bytes()) == header

        @settings(max_examples=100, deadline=None)
        @given(
            src=ip_ints, dst=ip_ints,
            total_length=st.integers(min_value=28, max_value=65535),
            identification=st.integers(min_value=0, max_value=65535),
        )
        def test_ipv4_round_trip_and_checksum(
            self, src, dst, total_length, identification
        ):
            header = Ipv4Header(
                int_to_ip(src), int_to_ip(dst),
                total_length=total_length, identification=identification,
            )
            data = header.to_bytes()
            assert internet_checksum(data) == 0
            parsed = Ipv4Header.from_bytes(data)
            assert parsed.src == int_to_ip(src)
            assert parsed.dst == int_to_ip(dst)
            assert parsed.total_length == total_length
            assert parsed.identification == identification

        @settings(max_examples=100, deadline=None)
        @given(
            src=ports, dst=ports,
            payload=st.integers(min_value=0, max_value=65507),
        )
        def test_udp_round_trip(self, src, dst, payload):
            header = UdpHeader(src, dst, payload_length=payload)
            parsed = UdpHeader.from_bytes(header.to_bytes())
            assert (parsed.src_port, parsed.dst_port) == (src, dst)
            assert parsed.payload_length == payload

        @settings(max_examples=100, deadline=None)
        @given(st.binary(max_size=128))
        def test_checksum_padding_and_verification(self, data):
            # odd-length data checksums as if zero-padded ...
            assert internet_checksum(data) == internet_checksum(
                data if len(data) % 2 == 0 else data + b"\x00"
            )
            # ... and (on even alignment) appending the checksum folds to 0
            padded = data if len(data) % 2 == 0 else data + b"\x00"
            total = internet_checksum(padded)
            assert internet_checksum(
                padded + bytes([total >> 8, total & 0xFF])
            ) == 0
