"""Packet free-list pool and slotted-metadata shim behaviour."""

import pytest

from repro.netstack import PACKET_POOL, Packet, PacketPool
from repro.netstack.packet import reset_packet_counter


def acquire(pool, payload=b"x" * 8, **kwargs):
    return pool.acquire("10.0.0.1", "10.0.0.2", 7000, 7001,
                        payload=payload, **kwargs)


class TestPacketPool:
    def test_exhaustion_falls_back_to_fresh_allocation(self):
        """An empty free-list must allocate, never block or fail."""
        pool = PacketPool(capacity=4, preallocate=2)
        packets = [acquire(pool) for _ in range(10)]
        assert len(packets) == 10
        assert len({id(p) for p in packets}) == 10
        seqs = [p.seq for p in packets]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 10

    def test_acquire_mirrors_packet_init_validation(self):
        pool = PacketPool(capacity=4, preallocate=1)
        with pytest.raises(ValueError):
            pool.acquire("10.0.0.1", "10.0.0.2", 1, 2)  # no payload, no len

    def test_reused_record_is_fully_reset(self):
        """No stale metadata, trace, or payload may leak across reuse."""
        pool = PacketPool(capacity=4, preallocate=1)
        trace = {}
        packet = acquire(pool, trace=trace)
        packet.insane = (1, 2, 64)
        packet.flow = "camera"
        packet.tx_buffer = object()
        packet.rx_buffer = object()
        packet.meta["arp"] = True  # spill dict
        packet.stamp("runtime_tx", 42.0)
        pool.release(packet)
        reused = acquire(pool, payload=b"new")
        assert reused is packet  # actually recycled
        assert reused.insane is None
        assert reused.flow is None
        assert reused.tx_buffer is None
        assert reused.rx_buffer is None
        assert reused._extra is None
        assert reused.trace is None
        assert "arp" not in reused.meta
        assert reused.payload == b"new"
        assert reused.payload_len == 3

    def test_release_clears_references_even_when_parked(self):
        pool = PacketPool(capacity=4, preallocate=0)
        packet = acquire(pool, trace={"t": 1})
        packet.tx_buffer = object()
        pool.release(packet)
        assert packet.trace is None
        assert packet.tx_buffer is None
        assert packet.payload is None

    def test_full_pool_drops_released_records(self):
        pool = PacketPool(capacity=1, preallocate=0)
        first = acquire(pool)
        second = acquire(pool)
        pool.release(first)
        pool.release(second)  # over capacity: dropped, not parked
        assert len(pool._free) == 1

    def test_pooled_and_fresh_records_share_the_seq_stream(self):
        """acquire() bumps the same global counter Packet.__init__ does."""
        pool = PacketPool(capacity=4, preallocate=2)
        a = acquire(pool)
        b = Packet("10.0.0.1", "10.0.0.2", 1, 2, payload=b"y")
        c = acquire(pool)
        assert [a.seq, b.seq, c.seq] == [a.seq, a.seq + 1, a.seq + 2]

    def test_preallocation_does_not_consume_sequence_numbers(self):
        reset_packet_counter()
        PacketPool(capacity=64, preallocate=64)
        probe = Packet("10.0.0.1", "10.0.0.2", 1, 2, payload=b"z")
        assert probe.seq == 1
        reset_packet_counter()

    def test_reset_packet_counter_isolates_cells(self):
        """Parallel cells must see identical seqs and factory-fresh pools
        regardless of what ran in the process before them."""
        dirty = acquire(PACKET_POOL)
        dirty.flow = "stale"
        PACKET_POOL.release(dirty)
        reset_packet_counter()
        fresh = acquire(PACKET_POOL)
        assert fresh.seq == 1
        assert fresh.flow is None
        assert fresh is not dirty  # reset() re-blanked the free-list
        reset_packet_counter()


class TestPacketMetaShim:
    def make(self):
        return Packet("10.0.0.1", "10.0.0.2", 1, 2, payload=b"x")

    def test_hot_keys_map_to_slots(self):
        packet = self.make()
        packet.meta["flow"] = "camera"
        assert packet.flow == "camera"
        packet.insane = (1, 2, 3)
        assert packet.meta["insane"] == (1, 2, 3)
        assert packet.meta.get("insane") == (1, 2, 3)

    def test_absent_hot_key_behaves_like_missing_dict_key(self):
        packet = self.make()
        assert "tx_buffer" not in packet.meta
        assert packet.meta.get("tx_buffer") is None
        assert packet.meta.get("tx_buffer", "d") == "d"
        assert packet.meta.pop("tx_buffer", "d") == "d"
        with pytest.raises(KeyError):
            packet.meta["tx_buffer"]
        with pytest.raises(KeyError):
            del packet.meta["tx_buffer"]

    def test_pop_hot_key_clears_the_slot(self):
        packet = self.make()
        buffer = object()
        packet.tx_buffer = buffer
        assert packet.meta.pop("tx_buffer", None) is buffer
        assert packet.tx_buffer is None

    def test_cold_keys_spill_lazily(self):
        packet = self.make()
        assert packet._extra is None  # no dict until a cold key is written
        packet.meta["arp"] = True
        assert packet._extra == {"arp": True}
        assert packet.meta["arp"] is True
        assert "arp" in packet.meta
        del packet.meta["arp"]
        assert "arp" not in packet.meta

    def test_dict_protocol_views(self):
        packet = self.make()
        meta = packet.meta
        assert len(meta) == 0
        assert not meta
        meta["flow"] = "f"
        meta["dds_topic"] = "t"
        assert sorted(meta.keys()) == ["dds_topic", "flow"]
        assert sorted(meta.items()) == [("dds_topic", "t"), ("flow", "f")]
        assert sorted(meta.values()) == ["f", "t"]
        assert sorted(iter(meta)) == ["dds_topic", "flow"]
        assert len(meta) == 2
        assert meta

    def test_setdefault(self):
        packet = self.make()
        assert packet.meta.setdefault("flow", "default") == "default"
        assert packet.flow == "default"
        assert packet.meta.setdefault("flow", "other") == "default"
