"""ARP and ICMP control-path tests."""

import pytest

from repro.netstack.addresses import MacAddress
from repro.netstack.arp import (
    OP_REPLY,
    OP_REQUEST,
    ArpPacket,
    ArpResolver,
    ArpTimeout,
)
from repro.netstack.icmp import IcmpEcho, TYPE_ECHO_REPLY
from repro.simnet import Simulator


class TestArpCodec:
    def test_request_round_trip(self):
        request = ArpPacket.request(MacAddress.from_index(1), "10.0.0.1", "10.0.0.2")
        parsed = ArpPacket.from_bytes(request.to_bytes())
        assert parsed.op == OP_REQUEST
        assert parsed.sender_ip == "10.0.0.1"
        assert parsed.target_ip == "10.0.0.2"
        assert parsed.sender_mac == MacAddress.from_index(1)

    def test_reply_round_trip(self):
        reply = ArpPacket.reply(
            MacAddress.from_index(2), "10.0.0.2", MacAddress.from_index(1), "10.0.0.1"
        )
        parsed = ArpPacket.from_bytes(reply.to_bytes())
        assert parsed.op == OP_REPLY
        assert parsed.target_mac == MacAddress.from_index(1)

    def test_bad_op_rejected(self):
        with pytest.raises(ValueError):
            ArpPacket(3, MacAddress(0), "10.0.0.1", MacAddress(0), "10.0.0.2")

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            ArpPacket.from_bytes(b"\x00" * 10)


class TestArpResolver:
    def make(self, retry_ns=1000, max_retries=3):
        sim = Simulator()
        sent = []
        resolver = ArpResolver(
            sim,
            MacAddress.from_index(1),
            "10.0.0.1",
            send_request=sent.append,
            retry_ns=retry_ns,
            max_retries=max_retries,
        )
        return sim, resolver, sent

    def test_resolve_after_reply(self):
        sim, resolver, sent = self.make()
        results = []

        def worker():
            mac = yield from resolver.resolve("10.0.0.2")
            results.append(mac)

        sim.process(worker())
        # the peer answers the first request
        sim.schedule(500, lambda: resolver.on_reply(
            ArpPacket.reply(MacAddress.from_index(2), "10.0.0.2", resolver.own_mac, "10.0.0.1")
        ))
        sim.run()
        assert results == [MacAddress.from_index(2)]
        assert sent == ["10.0.0.2"]

    def test_cached_entry_skips_request(self):
        sim, resolver, sent = self.make()
        resolver.on_reply(
            ArpPacket.reply(MacAddress.from_index(2), "10.0.0.2", resolver.own_mac, "10.0.0.1")
        )
        results = []

        def worker():
            mac = yield from resolver.resolve("10.0.0.2")
            results.append(mac)

        sim.process(worker())
        sim.run()
        assert results == [MacAddress.from_index(2)]
        assert sent == []

    def test_retry_then_timeout(self):
        sim, resolver, sent = self.make(max_retries=3)
        errors = []

        def worker():
            try:
                yield from resolver.resolve("10.0.0.9")
            except ArpTimeout as exc:
                errors.append(exc)

        sim.process(worker())
        sim.run()
        assert len(sent) == 3
        assert len(errors) == 1
        assert resolver.failures == 1

    def test_concurrent_resolvers_share_one_request(self):
        sim, resolver, sent = self.make()
        results = []

        def worker():
            mac = yield from resolver.resolve("10.0.0.2")
            results.append(mac)

        sim.process(worker())
        sim.process(worker())
        sim.schedule(300, lambda: resolver.on_reply(
            ArpPacket.reply(MacAddress.from_index(2), "10.0.0.2", resolver.own_mac, "10.0.0.1")
        ))
        sim.run()
        assert len(results) == 2
        assert len(sent) == 1

    def test_entries_expire(self):
        sim, resolver, sent = self.make()
        resolver.ttl_ns = 1000
        resolver.on_reply(
            ArpPacket.reply(MacAddress.from_index(2), "10.0.0.2", resolver.own_mac, "10.0.0.1")
        )
        assert resolver.lookup("10.0.0.2") is not None
        sim.schedule(2000, lambda: None)
        sim.run()
        assert resolver.lookup("10.0.0.2") is None

    def test_responder_side_reply_generation(self):
        sim, resolver, _sent = self.make()
        request = ArpPacket.request(MacAddress.from_index(9), "10.0.0.9", "10.0.0.1")
        reply = resolver.make_reply_for(request)
        assert reply is not None
        assert reply.op == OP_REPLY
        assert reply.sender_mac == resolver.own_mac
        # requests for other hosts are ignored
        other = ArpPacket.request(MacAddress.from_index(9), "10.0.0.9", "10.0.0.3")
        assert resolver.make_reply_for(other) is None


class TestIcmp:
    def test_echo_round_trip(self):
        request = IcmpEcho.request(77, 3, payload=b"ping-payload")
        parsed = IcmpEcho.from_bytes(request.to_bytes())
        assert parsed.identifier == 77
        assert parsed.sequence == 3
        assert parsed.payload == b"ping-payload"

    def test_reply_echoes_payload(self):
        request = IcmpEcho.request(1, 1, payload=b"abc")
        reply = request.reply()
        assert reply.kind == TYPE_ECHO_REPLY
        assert reply.payload == b"abc"
        assert IcmpEcho.from_bytes(reply.to_bytes()).kind == TYPE_ECHO_REPLY

    def test_cannot_reply_to_a_reply(self):
        with pytest.raises(ValueError):
            IcmpEcho.request(1, 1).reply().reply()

    def test_corruption_detected(self):
        data = bytearray(IcmpEcho.request(5, 6, b"x").to_bytes())
        data[-1] ^= 0xFF
        with pytest.raises(ValueError):
            IcmpEcho.from_bytes(bytes(data))

    def test_field_validation(self):
        with pytest.raises(ValueError):
            IcmpEcho(13, 0, 0)
        with pytest.raises(ValueError):
            IcmpEcho.request(70000, 0)
