"""uTCP tests: handshake, byte-stream semantics, loss recovery, teardown."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datapaths import DpdkDatapath
from repro.hw import Testbed
from repro.netstack.utcp import (
    FLAG_ACK,
    FLAG_SYN,
    MSS,
    Segment,
    UtcpStack,
)

PORT = 8600


def make_pair(seed=0, loss=0.0, recv_buffer=64 * 1024):
    bed = Testbed.local(seed=seed)
    for link in bed.links:
        link.loss_rate = loss
    client = UtcpStack(DpdkDatapath(bed.hosts[0]), PORT, recv_buffer=recv_buffer)
    server = UtcpStack(DpdkDatapath(bed.hosts[1]), PORT, recv_buffer=recv_buffer).listen()
    return bed, client, server


def transfer(bed, client, server, blob, chunk=8 * 1024):
    """Client streams ``blob`` to the server; returns what arrived."""
    received = []

    def client_proc():
        connection = yield from client.connect(bed.hosts[1].ip)
        yield from connection.send(blob)
        yield from connection.close()

    def server_proc():
        connection = yield from server.accept()
        collected = bytearray()
        while True:
            data = yield from connection.recv(chunk)
            if not data:
                break
            collected.extend(data)
        received.append(bytes(collected))

    bed.sim.process(server_proc(), name="utcp.server")
    bed.sim.process(client_proc(), name="utcp.client")
    bed.sim.run()
    assert not bed.sim.failures, bed.sim.failures[:2]
    return received[0] if received else None


class TestSegmentCodec:
    def test_round_trip(self):
        segment = Segment(7, 9, 4096, FLAG_SYN | FLAG_ACK, b"payload")
        parsed = Segment.from_bytes(segment.to_bytes())
        assert (parsed.seq, parsed.ack, parsed.window) == (7, 9, 4096)
        assert parsed.flags == FLAG_SYN | FLAG_ACK
        assert parsed.payload == b"payload"

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            Segment.from_bytes(b"\x00" * 4)

    def test_describe(self):
        assert "SYN" in Segment(0, 0, 0, FLAG_SYN).describe()


class TestHandshakeAndTransfer:
    def test_small_transfer(self):
        bed, client, server = make_pair()
        assert transfer(bed, client, server, b"hello over uTCP") == b"hello over uTCP"

    def test_multi_segment_transfer(self):
        bed, client, server = make_pair(seed=1)
        blob = bytes(i % 251 for i in range(10 * MSS + 37))
        assert transfer(bed, client, server, blob) == blob

    def test_transfer_larger_than_receive_window(self):
        """Flow control: the blob exceeds the receiver's whole buffer."""
        bed, client, server = make_pair(seed=2, recv_buffer=8 * 1024)
        blob = bytes((i * 13) % 256 for i in range(64 * 1024))
        assert transfer(bed, client, server, blob) == blob

    def test_bidirectional_connections(self):
        bed, client, server = make_pair(seed=3)
        echoed = []

        def client_proc():
            connection = yield from client.connect(bed.hosts[1].ip)
            yield from connection.send(b"ping!")
            reply = yield from connection.recv_exactly(5)
            echoed.append(reply)

        def server_proc():
            connection = yield from server.accept()
            data = yield from connection.recv_exactly(5)
            yield from connection.send(data.upper())

        bed.sim.process(server_proc())
        bed.sim.process(client_proc())
        bed.sim.run()
        assert echoed == [b"PING!"]

    def test_double_connect_rejected(self):
        bed, client, server = make_pair(seed=4)

        def proc():
            yield from client.connect(bed.hosts[1].ip)
            with pytest.raises(RuntimeError):
                yield from client.connect(bed.hosts[1].ip)

        bed.sim.process(proc())
        bed.sim.run()


class TestLossRecovery:
    @pytest.mark.parametrize("loss", [0.05, 0.2])
    def test_lossy_transfer_is_byte_exact(self, loss):
        bed, client, server = make_pair(seed=5, loss=loss)
        blob = bytes((i * 7) % 256 for i in range(20 * MSS))
        assert transfer(bed, client, server, blob) == blob
        assert client.retransmits.value > 0

    def test_lost_syn_retransmitted(self):
        bed, client, server = make_pair(seed=6, loss=0.5)
        assert transfer(bed, client, server, b"eventually") == b"eventually"

    def test_out_of_order_segments_reassembled(self):
        """Inject a manually reordered segment stream at the server."""
        bed, client, server = make_pair(seed=7)

        def client_proc():
            connection = yield from client.connect(bed.hosts[1].ip)
            # send three MSS-sized chunks; loss-free ordered path, but the
            # server also gets a duplicate of an old segment afterwards
            yield from connection.send(b"A" * MSS + b"B" * MSS + b"C" * 10)
            yield from connection.close()

        received = []

        def server_proc():
            connection = yield from server.accept()
            collected = bytearray()
            while True:
                data = yield from connection.recv(4096)
                if not data:
                    break
                collected.extend(data)
            received.append(bytes(collected))

        bed.sim.process(server_proc())
        bed.sim.process(client_proc())
        bed.sim.run()
        assert received[0] == b"A" * MSS + b"B" * MSS + b"C" * 10


class TestTeardown:
    def test_close_delivers_eof(self):
        bed, client, server = make_pair(seed=8)
        states = {}

        def client_proc():
            connection = yield from client.connect(bed.hosts[1].ip)
            yield from connection.send(b"bye")
            yield from connection.close()
            states["client"] = connection.state

        def server_proc():
            connection = yield from server.accept()
            assert (yield from connection.recv_exactly(3)) == b"bye"
            assert (yield from connection.recv(10)) == b""  # EOF
            yield from connection.close()
            states["server"] = connection.state

        bed.sim.process(server_proc())
        bed.sim.process(client_proc())
        bed.sim.run()
        assert not bed.sim.failures
        assert states["server"] == "closed"

    def test_recv_exactly_raises_on_eof(self):
        bed, client, server = make_pair(seed=9)
        errors = []

        def client_proc():
            connection = yield from client.connect(bed.hosts[1].ip)
            yield from connection.send(b"xx")
            yield from connection.close()

        def server_proc():
            connection = yield from server.accept()
            try:
                yield from connection.recv_exactly(10)
            except ConnectionError as exc:
                errors.append(exc)

        bed.sim.process(server_proc())
        bed.sim.process(client_proc())
        bed.sim.run()
        assert len(errors) == 1


class TestConnectFailure:
    def test_unreachable_peer_aborts_with_utcp_error(self):
        """All frames lost: the SYN is retransmitted ``max_syn_retries``
        times, then connect() gives up with a typed error instead of
        retrying forever."""
        from repro.core.errors import UtcpError

        bed = Testbed.local(seed=11)
        for link in bed.links:
            link.loss_rate = 1.0
        client = UtcpStack(DpdkDatapath(bed.hosts[0]), PORT, max_syn_retries=2)
        errors = []

        def client_proc():
            try:
                yield from client.connect(bed.hosts[1].ip)
            except UtcpError as exc:
                errors.append(exc)

        bed.sim.process(client_proc())
        bed.sim.run()
        assert len(errors) == 1
        assert errors[0].code == 51
        assert isinstance(errors[0], ConnectionError)  # stdlib-compat
        assert "SYN" in str(errors[0])
        assert client.connections == {}  # aborted connection reaped

    def test_recv_exactly_eof_raises_utcp_error(self):
        from repro.core.errors import UtcpError

        bed, client, server = make_pair(seed=12)
        errors = []

        def client_proc():
            connection = yield from client.connect(bed.hosts[1].ip)
            yield from connection.send(b"x")
            yield from connection.close()

        def server_proc():
            connection = yield from server.accept()
            try:
                yield from connection.recv_exactly(10)
            except UtcpError as exc:
                errors.append(exc)

        bed.sim.process(server_proc())
        bed.sim.process(client_proc())
        bed.sim.run()
        assert len(errors) == 1


@settings(max_examples=12, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=3 * MSS), min_size=1, max_size=6),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_random_write_patterns(sizes, seed):
    """Any sequence of write sizes arrives as one intact byte stream."""
    bed, client, server = make_pair(seed=seed)
    blobs = [bytes((seed + i + j) % 256 for j in range(size)) for i, size in enumerate(sizes)]
    received = []

    def client_proc():
        connection = yield from client.connect(bed.hosts[1].ip)
        for blob in blobs:
            yield from connection.send(blob)
        yield from connection.close()

    def server_proc():
        connection = yield from server.accept()
        collected = bytearray()
        while True:
            data = yield from connection.recv(2048)
            if not data:
                break
            collected.extend(data)
        received.append(bytes(collected))

    bed.sim.process(server_proc())
    bed.sim.process(client_proc())
    bed.sim.run()
    assert received[0] == b"".join(blobs)
