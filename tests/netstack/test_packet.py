"""Tests for the hot-path packet model and full wire serialization."""

import pytest

from repro.netstack import Packet, WIRE_OVERHEAD, wire_bytes
from repro.netstack.packet import parse_wire_bytes


def make_packet(payload=b"hello world"):
    return Packet("10.0.0.1", "10.0.0.2", 7000, 7001, payload=payload)


def test_wire_size_includes_overhead():
    packet = make_packet(b"x" * 64)
    assert packet.wire_size == 64 + WIRE_OVERHEAD


def test_payload_len_without_payload_bytes():
    packet = Packet("10.0.0.1", "10.0.0.2", 1, 2, payload_len=4096)
    assert packet.payload is None
    assert packet.payload_len == 4096
    assert len(packet.payload_bytes()) == 4096


def test_packet_requires_payload_or_length():
    with pytest.raises(ValueError):
        Packet("10.0.0.1", "10.0.0.2", 1, 2)


def test_sequence_numbers_are_unique_and_increasing():
    first = make_packet()
    second = make_packet()
    assert second.seq > first.seq


def test_memoryview_payload_is_zero_copy():
    backing = bytearray(b"0123456789")
    packet = Packet("10.0.0.1", "10.0.0.2", 1, 2, payload=memoryview(backing)[2:6])
    backing[2:6] = b"ABCD"  # mutate after packet construction
    assert packet.payload_bytes() == b"ABCD"


def test_wire_round_trip_preserves_everything():
    packet = make_packet(b"payload-bytes-123")
    raw = wire_bytes(packet)
    parsed, eth = parse_wire_bytes(raw)
    assert parsed.src_ip == packet.src_ip
    assert parsed.dst_ip == packet.dst_ip
    assert parsed.src_port == packet.src_port
    assert parsed.dst_port == packet.dst_port
    assert parsed.payload_bytes() == b"payload-bytes-123"
    assert eth.ethertype == 0x0800


def test_wire_bytes_length_matches_headers():
    packet = make_packet(b"\x00" * 100)
    raw = wire_bytes(packet)
    # 14 eth + 20 ip + 8 udp + payload (preamble/IFG/CRC are not in the
    # byte string, only in the wire_size accounting)
    assert len(raw) == 14 + 20 + 8 + 100


def test_trace_stamping_only_when_enabled():
    silent = make_packet()
    silent.stamp("t0", 123)
    assert silent.trace is None
    traced = Packet("10.0.0.1", "10.0.0.2", 1, 2, payload=b"x", trace={})
    traced.stamp("t0", 123)
    assert traced.trace == {"t0": 123}
