"""Burst-chain semantics: inline execution must be unobservable.

A :class:`ChargeChain` may execute its steps inline (fast engine, empty
lane, no earlier heap event) or as normally-scheduled events (legacy
engine, contention, an installed observer).  These tests pin the
equivalence: both modes produce the same per-step timestamps, the same
rng draw order, the same executed-event totals, and the same failure
accounting.
"""

import pytest

from repro.simnet import ChargeChain, Simulator
from repro.simnet.legacy import LegacySimulator


class _Record:
    __slots__ = ("payload_len", "hits")

    def __init__(self, payload_len=64):
        self.payload_len = payload_len
        self.hits = 0


class _Host:
    """Stage costs with an rng draw per charge, like Host.stage_cost."""

    def __init__(self, sim, base=10.0):
        self.sim = sim
        self.base = base

    def stage_cost(self, key, size, burst=1, jitter=True):
        return self.base + self.sim.rng.random()


class _Dp:
    def __init__(self, sim):
        self.sim = sim
        self.host = _Host(sim)


class _TraceChain(ChargeChain):
    __slots__ = ("order",)

    stages = ("stage_a", "stage_b")

    def __init__(self, dp, batch, order):
        ChargeChain.__init__(self, dp, batch)
        self.order = order

    def _act(self, record):
        record.hits += 1
        self.order.append(round(self.sim.now, 9))


class _FailingChain(ChargeChain):
    __slots__ = ()

    stages = ()

    def _act(self, record):
        if record.payload_len == 999:
            raise RuntimeError("boom at record 3")
        record.hits += 1


class _Driver:
    """Plays the process role for a chain outside a generator."""

    def __init__(self, sim):
        self.sim = sim
        self.done = 0

    def resume(self, value=None, exc=None):
        if exc is not None:
            raise exc
        self.done += 1


def _run_chain(sim, n=16):
    dp = _Dp(sim)
    order = []
    batch = [_Record() for _ in range(n)]
    driver = _Driver(sim)
    chain = _TraceChain(dp, batch, order)
    sim.schedule(5.0, chain.apply, sim, driver)
    sim.run()
    assert driver.done == 1
    assert all(record.hits == 1 for record in batch)
    return order, sim.stats()["events_executed"], sim.rng.random()


def test_inline_matches_legacy_scheduled_execution():
    """Fast-engine inline steps == legacy-engine scheduled steps, exactly."""
    fast_order, fast_events, fast_draw = _run_chain(Simulator(seed=7))
    legacy_order, legacy_events, legacy_draw = _run_chain(
        LegacySimulator(seed=7))
    assert fast_order == legacy_order
    assert fast_events == legacy_events
    assert fast_draw == legacy_draw


def test_chain_charges_once_per_stage_per_packet():
    """Every (packet, stage) pair draws rng once, in batch order."""
    sim = Simulator(seed=3)
    order, _events, _draw = _run_chain(sim, n=4)
    # 4 packets x 2 stages, each completion strictly later than the last
    assert len(order) == 4
    assert order == sorted(order)
    assert len(set(order)) == 4


def test_chain_steps_count_as_engine_events():
    """Inline steps must appear in events_executed like scheduled ones."""
    sim = Simulator(seed=1)
    _order, events, _draw = _run_chain(sim, n=16)
    # the kickoff event + 16 per-packet steps, nothing else
    assert events == 17


def test_observer_sees_every_chain_step():
    """An installed observer disables inlining; on_event fires per step."""
    sim = Simulator(seed=7)
    seen = []

    class _Observer:
        def on_event(self, now):
            seen.append(now)

    sim.observer = _Observer()
    order, events, _draw = _run_chain(sim)
    assert len(seen) == events
    # observation must not change the execution itself
    bare_order, bare_events, _ = _run_chain(Simulator(seed=7))
    assert order == bare_order
    assert events == bare_events


def test_run_until_pauses_and_resumes_chain_mid_batch():
    """A chain must stop inlining at the run(until=) deadline and pick up
    where it left off, with identical overall execution."""
    reference_order, reference_events, reference_draw = _run_chain(
        Simulator(seed=11))
    sim = Simulator(seed=11)
    dp = _Dp(sim)
    order = []
    batch = [_Record() for _ in range(16)]
    driver = _Driver(sim)
    chain = _TraceChain(dp, batch, order)
    sim.schedule(5.0, chain.apply, sim, driver)
    deadline = 5.0
    while sim.peek() is not None:
        deadline += 40.0
        sim.run(until=deadline)
    assert driver.done == 1
    assert order == reference_order
    assert sim.stats()["events_executed"] == reference_events
    assert sim.rng.random() == reference_draw


def test_run_until_clock_never_overshoots_deadline():
    sim = Simulator(seed=11)
    dp = _Dp(sim)
    batch = [_Record() for _ in range(16)]
    chain = _TraceChain(dp, batch, [])
    sim.schedule(5.0, chain.apply, sim, _Driver(sim))
    sim.run(until=30.0)
    assert sim.now == 30.0  # mid-batch: inline must respect the bound


def test_chain_failure_lands_in_sim_failures():
    """_act exceptions route through the process into sim.failures, as if
    the per-packet loop had raised inside the generator."""
    sim = Simulator(seed=0)
    dp = _Dp(sim)
    batch = [_Record() for _ in range(8)]
    batch[2].payload_len = 999

    def proc():
        yield _FailingChain(dp, batch)

    sim.process(proc(), name="failing")
    sim.run()
    assert len(sim.failures) == 1
    assert "boom at record 3" in repr(sim.failures[0])


def test_chain_apply_failure_also_routed():
    """A failure drawing the first cost (empty batch) is routed the same way."""
    sim = Simulator(seed=0)
    dp = _Dp(sim)

    def proc():
        yield _TraceChain(dp, [], [])  # batch[0] raises IndexError

    sim.process(proc(), name="empty-batch")
    sim.run()
    assert len(sim.failures) == 1


def test_lane_contention_falls_back_to_scheduled_steps():
    """Zero-delay traffic on the lane must interleave with chain steps in
    global order, identically on both engines."""

    def run(sim):
        dp = _Dp(sim)
        order = []
        batch = [_Record() for _ in range(16)]
        driver = _Driver(sim)
        chain = _TraceChain(dp, batch, order)

        def zero(depth):
            order.append(("zero", depth, round(sim.now, 9)))
            if depth:
                sim.schedule(0, zero, depth - 1)

        def burst(_=None):
            order.append(("burst", round(sim.now, 9)))
            sim.schedule(0, zero, 2)

        sim.schedule(5.0, chain.apply, sim, driver)
        # timers landing between chain steps: each seeds a zero-delay
        # cascade, so the chain repeatedly meets a busy lane and an
        # earlier heap entry mid-batch
        for k in range(12):
            sim.schedule(5.0 + 13.0 * k, burst, None)
        sim.run()
        return order, sim.stats()["events_executed"]

    fast = run(Simulator(seed=5))
    legacy = run(LegacySimulator(seed=5))
    assert fast == legacy
