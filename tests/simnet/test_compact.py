"""Regression tests for lazy timer compaction and cancelled-counter truth.

The heap keeps cancelled timers until :meth:`Simulator._compact` (or an
execution-path purge) drops them.  These tests pin the two invariants the
compaction bugfix restored:

* a cancelled timer is purged by compaction *regardless of its payload* —
  the keep-predicate is keyed off the handle, not the payload slot;
* ``stats()["cancelled_pending"]`` counts exactly the cancelled handles
  whose entries still sit in the heap — cancelling an already-fired timer
  does not inflate it, and compaction accounts per purged entry instead of
  blanket-resetting the counter.
"""

from repro.simnet import Simulator
from repro.simnet.engine import _COMPACT_MIN


def _noop(*args):
    pass


def test_compact_purges_cancelled_payload_carrying_timer():
    # a timer that carries payload args through its handle must still be
    # purged once cancelled — the predicate must not key off the payload
    sim = Simulator()
    victim = sim.schedule_cancellable(1_000.0, _noop, "payload", 42)
    sim.schedule(2_000.0, _noop)          # a plain survivor
    victim.cancel()
    assert sim.stats()["cancelled_pending"] == 1
    sim._compact()
    stats = sim.stats()
    assert stats["heap_size"] == 1        # only the plain event survives
    assert stats["cancelled_pending"] == 0
    assert stats["cancelled_purged"] == 1
    assert not victim.pending
    # and the survivor still runs
    executed = sim.run()
    assert executed == 1


def test_cancelled_pending_stays_truthful_through_threshold_compaction():
    sim = Simulator()
    keep = 10
    handles = [
        sim.schedule_cancellable(1_000.0 + i, _noop, "payload", i)
        for i in range(_COMPACT_MIN + keep)
    ]
    for handle in handles[keep:]:
        handle.cancel()
    # the last cancel crossed the threshold and compacted in place
    stats = sim.stats()
    assert stats["heap_size"] == keep
    assert stats["cancelled_pending"] == 0
    assert stats["cancelled_purged"] == _COMPACT_MIN
    assert all(not h.pending for h in handles[keep:])
    assert all(h.pending for h in handles[:keep])


def test_cancel_after_fire_does_not_inflate_cancelled_pending():
    sim = Simulator()
    fired = []
    handle = sim.schedule_cancellable(10.0, fired.append, "x")
    sim.run()
    assert fired == ["x"]
    assert not handle.pending
    # cancelling a timer that already fired is a no-op for the accounting
    handle.cancel()
    assert sim.stats()["cancelled_pending"] == 0
    sim._compact()
    assert sim.stats()["cancelled_pending"] == 0


def test_cancel_after_fire_then_real_cancels_keep_exact_count():
    # a stale (post-fire) cancel must not offset the purge bookkeeping of
    # genuinely pending cancels: pending counter goes 2 -> 0 via compact
    sim = Simulator()
    fired = sim.schedule_cancellable(1.0, _noop, "early")
    sim.run()
    fired.cancel()                        # stale: entry already executed
    live = [sim.schedule_cancellable(100.0 + i, _noop, i) for i in range(2)]
    for handle in live:
        handle.cancel()
    assert sim.stats()["cancelled_pending"] == 2
    sim._compact()
    stats = sim.stats()
    assert stats["cancelled_pending"] == 0
    assert stats["heap_size"] == 0
    assert stats["cancelled_purged"] == 2


def test_run_purge_path_marks_handle_not_pending():
    # a cancelled entry reaped by the run loop (not compaction) must also
    # release its handle so a later stale cancel cannot double-count
    sim = Simulator()
    handle = sim.schedule_cancellable(5.0, _noop, "payload")
    sim.schedule(10.0, _noop)
    handle.cancel()
    assert sim.stats()["cancelled_pending"] == 1
    sim.run()
    stats = sim.stats()
    assert stats["cancelled_pending"] == 0
    assert stats["cancelled_purged"] == 1
    assert not handle.pending
