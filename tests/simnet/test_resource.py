"""Tests for the counted Resource primitive."""

import pytest

from repro.simnet import Resource, Simulator


def test_try_acquire_until_capacity():
    sim = Simulator()
    resource = Resource(sim, capacity=2)
    assert resource.try_acquire()
    assert resource.try_acquire()
    assert not resource.try_acquire()
    assert resource.available == 0


def test_release_wakes_fifo_waiter():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    order = []

    def worker(name):
        yield resource.acquire_effect()
        order.append(name)

    resource.try_acquire()
    sim.process(worker("first"))
    sim.process(worker("second"))
    sim.run()
    assert order == []  # both blocked
    resource.release()
    sim.run()
    assert order == ["first"]
    resource.release()
    sim.run()
    assert order == ["first", "second"]


def test_release_without_acquire_raises():
    resource = Resource(Simulator(), capacity=1)
    with pytest.raises(RuntimeError):
        resource.release()


def test_invalid_capacity():
    with pytest.raises(ValueError):
        Resource(Simulator(), capacity=0)


def test_handoff_keeps_in_use_constant():
    """Releasing straight to a waiter must not change the in-use count."""
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    resource.try_acquire()
    got = []

    def worker():
        yield resource.acquire_effect()
        got.append(sim.now)

    sim.process(worker())
    sim.run()
    resource.release()
    sim.run()
    assert got and resource.in_use == 1
