"""step(), run(), and run(until=) must drive identical executions.

The burst-chain inline path makes this non-obvious: a chain step executes
inline only when it is provably the next event, and ``run(until=)``
additionally publishes its deadline so chains refuse to inline past it.
Whatever mix of driving modes the caller uses, the observable execution —
event order, timestamps, rng stream, and the stats() counters including
cancelled-timer purge accounting — must come out the same.

The workload is a miniature of the perfbench churn mix: burst chains over
slotted records, zero-delay cascades (lane traffic), short timers (heap
churn), and immediately-cancelled decoy timers in sufficient volume to
trigger lazy heap compaction.
"""

from repro.simnet import ChargeChain, Simulator
from repro.simnet.engine import _COMPACT_MIN


class _Record:
    __slots__ = ("payload_len", "hits")

    def __init__(self):
        self.payload_len = 64
        self.hits = 0


class _Host:
    def __init__(self, sim):
        self.sim = sim

    def stage_cost(self, key, size, burst=1, jitter=True):
        return 1.0 + self.sim.rng.random()


class _Dp:
    def __init__(self, sim):
        self.sim = sim
        self.host = _Host(sim)


class _Chain(ChargeChain):
    __slots__ = ("order",)

    stages = ("stage",)

    def __init__(self, dp, batch, order):
        ChargeChain.__init__(self, dp, batch)
        self.order = order

    def _act(self, record):
        record.hits += 1
        self.order.append(("act", round(self.sim.now, 9)))


def _noop():
    pass


class _Driver:
    """Self-rescheduling chain source with decoy cancellations."""

    def __init__(self, sim, dp, order, budget):
        self.sim = sim
        self.dp = dp
        self.order = order
        self.budget = budget
        self.batch = [_Record() for _ in range(8)]

    def tick(self, _=None):
        sim = self.sim
        if self.budget[0] <= 0:
            return
        self.budget[0] -= 1
        self.order.append(("tick", round(sim.now, 9)))
        draw = sim.rng.random()
        if draw < 0.5:
            # decoy: cancelled immediately, purged later (compaction)
            sim.schedule_cancellable(1e6 + sim.rng.random(), _noop).cancel()
        if draw < 0.25:
            sim.schedule(0, self._zero, 2)
        _Chain(self.dp, self.batch, self.order).apply(sim, self)

    def _zero(self, depth):
        self.order.append(("zero", depth, round(self.sim.now, 9)))
        if depth:
            self.sim.schedule(0, self._zero, depth - 1)

    def resume(self, value=None, exc=None):
        if exc is not None:
            raise exc
        self.sim.schedule(1.0 + self.sim.rng.random() * 20.0, self.tick, None)


def _build(seed=0, drivers=4, ticks=220):
    sim = Simulator(seed=seed)
    dp = _Dp(sim)
    order = []
    budget = [ticks]
    for _ in range(drivers):
        _Driver(sim, dp, order, budget).tick()
    return sim, order


_FINAL_KEYS = ("events_executed", "cancelled_pending", "cancelled_purged",
               "heap_size", "lane_size")


def _final(sim):
    stats = sim.stats()
    return {key: stats[key] for key in _FINAL_KEYS}


def test_workload_exercises_compaction():
    """The churn mix must actually hit the lazy-compaction machinery,
    otherwise the equivalence below proves nothing about purge accounting."""
    sim, _order = _build()
    returned = sim.run()
    stats = sim.stats()
    assert stats["cancelled_purged"] >= _COMPACT_MIN
    assert stats["cancelled_pending"] == 0
    assert returned == stats["events_executed"]


def test_step_matches_run():
    run_sim, run_order = _build()
    run_sim.run()
    step_sim, step_order = _build()
    steps = 0
    while step_sim.step():
        steps += 1
    assert step_order == run_order
    assert _final(step_sim) == _final(run_sim)
    assert step_sim.now == run_sim.now
    assert step_sim.rng.random() == run_sim.rng.random()
    # a step() may coalesce inline chain sub-steps, so the call count is
    # at most — not exactly — the executed-event total
    assert steps <= step_sim.stats()["events_executed"]


def test_bounded_run_matches_run():
    run_sim, run_order = _build()
    run_sim.run()
    bounded_sim, bounded_order = _build()
    executed = 0
    deadline = 0.0
    while bounded_sim.peek() is not None:
        deadline += 17.0
        executed += bounded_sim.run(until=deadline)
    assert bounded_order == run_order
    assert _final(bounded_sim) == _final(run_sim)
    assert executed == bounded_sim.stats()["events_executed"]
    assert bounded_sim.rng.random() == run_sim.rng.random()


def test_mixed_driving_modes_match_run():
    """Alternating step / bounded-run / free-run segments mid-workload."""
    run_sim, run_order = _build()
    run_sim.run()
    mixed_sim, mixed_order = _build()
    for _ in range(50):
        mixed_sim.step()
    mixed_sim.run(until=mixed_sim.now + 23.0)
    for _ in range(50):
        mixed_sim.step()
    mixed_sim.run()
    assert mixed_order == run_order
    assert _final(mixed_sim) == _final(run_sim)
    assert mixed_sim.rng.random() == run_sim.rng.random()
