"""Tests for counters, tallies, and rate meters."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.simnet import Counter, DegenerateWindowError, RateMeter, Tally


class TestCounter:
    def test_increment(self):
        counter = Counter("c")
        counter.increment()
        counter.increment(5)
        assert counter.value == 6

    def test_repr(self):
        assert "c=0" in repr(Counter("c"))


class TestTally:
    def test_empty_tally_is_safe(self):
        tally = Tally("t")
        assert tally.count == 0
        assert tally.mean == 0.0
        assert tally.median == 0.0
        assert tally.stddev == 0.0
        assert tally.percentile(99) == 0.0

    def test_basic_statistics(self):
        tally = Tally("t")
        for value in (1, 2, 3, 4, 5):
            tally.record(value)
        assert tally.mean == 3
        assert tally.median == 3
        assert tally.minimum == 1
        assert tally.maximum == 5
        assert tally.total == 15

    def test_single_sample(self):
        tally = Tally("t")
        tally.record(42)
        assert tally.median == 42
        assert tally.percentile(99) == 42
        assert tally.stddev == 0.0

    def test_percentile_interpolation(self):
        tally = Tally("t")
        for value in (0, 10):
            tally.record(value)
        assert tally.percentile(50) == 5
        assert tally.percentile(25) == 2.5

    def test_summary_keys(self):
        tally = Tally("t")
        tally.record(1)
        summary = tally.summary()
        assert set(summary) == {"name", "count", "mean", "median", "p99", "min", "max", "stddev"}

    def test_sorted_view_cached_and_invalidated(self):
        """Regression for the quadratic-ish ``summary()``: percentile()
        must not re-sort per call, yet statistics stay identical after
        further records invalidate the cache."""
        tally = Tally("t")
        for value in (5, 1, 4, 2, 3):
            tally.record(value)
        assert tally.percentile(50) == 3
        first_view = tally._sorted
        assert first_view == [1, 2, 3, 4, 5]
        tally.percentile(99)
        assert tally._sorted is first_view  # reused, not re-sorted
        tally.record(0)  # must invalidate the cache
        assert tally._sorted is None
        assert tally.percentile(0) == 0
        assert tally._sorted == [0, 1, 2, 3, 4, 5]

    def test_cached_percentiles_match_fresh_tally(self):
        values = [7, 3, 9, 1, 5, 5, 2, 8]
        interleaved = Tally("a")
        for value in values:
            interleaved.record(value)
            interleaved.percentile(50)  # populate the cache mid-stream
        fresh = Tally("b")
        for value in values:
            fresh.record(value)
        assert interleaved.summary() == {**fresh.summary(), "name": "a"}

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=-1e9, max_value=1e9, allow_nan=False), min_size=1, max_size=200))
    def test_property_percentiles_bounded_and_monotone(self, samples):
        tally = Tally("t")
        for sample in samples:
            tally.record(sample)
        p10, p50, p90 = tally.percentile(10), tally.percentile(50), tally.percentile(90)
        epsilon = 1e-9 * max(1.0, abs(tally.maximum))
        assert tally.minimum <= p10 + epsilon
        assert p10 <= p50 + epsilon
        assert p50 <= p90 + epsilon
        assert p90 <= tally.maximum + epsilon
        assert tally.percentile(0) == tally.minimum
        assert tally.percentile(100) == tally.maximum


class TestRateMeter:
    def test_empty_meter(self):
        meter = RateMeter("m")
        assert meter.gbps() == 0.0
        assert meter.mpps() == 0.0

    def test_single_record_without_duration_raises(self):
        """Regression: a single-message window used to return 0.0,
        silently zeroing goodput for short benchmark windows."""
        meter = RateMeter("m")
        meter.record(100, 1024)
        with pytest.raises(DegenerateWindowError):
            meter.gbps()
        with pytest.raises(DegenerateWindowError):
            meter.mpps()

    def test_single_record_with_duration_counts_first_window(self):
        meter = RateMeter("m")
        # 1024 B serialized over 512 ns: the window opens at the start of
        # the first sample's serialization, so the rate is well defined
        meter.record(100, 1024, duration_ns=512)
        assert meter.elapsed_ns == 512
        assert meter.gbps() == pytest.approx(1024 * 8.0 / 512)
        assert meter.mpps() == pytest.approx(1000.0 / 512)

    def test_first_duration_extends_multi_sample_window(self):
        meter = RateMeter("m")
        meter.record(1000, 1000, duration_ns=500)
        meter.record(2000, 1000)
        # window: 500 (first serialization) + 1000 (inter-arrival)
        assert meter.elapsed_ns == 1500
        assert meter.gbps() == pytest.approx(2000 * 8.0 / 1500)

    def test_gbps_computation(self):
        meter = RateMeter("m")
        meter.record(0, 1000)
        meter.record(1000, 1000)  # 2000 B over 1000 ns
        assert meter.gbps() == pytest.approx(16.0)  # 16000 bits / 1000 ns

    def test_mpps_computation(self):
        meter = RateMeter("m")
        for t in range(11):
            meter.record(t * 100, 64)
        # 11 messages over 1000 ns -> 11 M msgs/s
        assert meter.mpps() == pytest.approx(11.0)
