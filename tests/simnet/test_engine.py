"""Unit tests for the DES event loop."""

import pytest

from repro.simnet import Simulator, SimulationError


def test_schedule_runs_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(30, order.append, "c")
    sim.schedule(10, order.append, "a")
    sim.schedule(20, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 30


def test_same_time_events_run_in_schedule_order():
    sim = Simulator()
    order = []
    for tag in ("first", "second", "third"):
        sim.schedule(5, order.append, tag)
    sim.run()
    assert order == ["first", "second", "third"]


def test_run_until_stops_clock_at_bound():
    sim = Simulator()
    fired = []
    sim.schedule(100, fired.append, True)
    sim.run(until=50)
    assert not fired
    assert sim.now == 50
    sim.run()
    assert fired == [True]
    assert sim.now == 100


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(10, fired.append, True)
    handle.cancel()
    sim.run()
    assert not fired


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)


def test_schedule_at_absolute_time():
    sim = Simulator()
    seen = []
    sim.schedule(10, lambda: sim.schedule_at(25, seen.append, sim.now))
    sim.run()
    # the callback records the time at scheduling (10); it fires at 25
    assert sim.now == 25
    assert seen == [10]


def test_nested_scheduling_from_callbacks():
    sim = Simulator()
    hits = []

    def outer():
        hits.append(("outer", sim.now))
        sim.schedule(5, inner)

    def inner():
        hits.append(("inner", sim.now))

    sim.schedule(10, outer)
    sim.run()
    assert hits == [("outer", 10), ("inner", 15)]


def test_step_executes_single_event():
    sim = Simulator()
    order = []
    sim.schedule(1, order.append, 1)
    sim.schedule(2, order.append, 2)
    assert sim.step()
    assert order == [1]
    assert sim.step()
    assert order == [1, 2]
    assert not sim.step()


def test_peek_skips_cancelled():
    sim = Simulator()
    h = sim.schedule(5, lambda: None)
    sim.schedule(9, lambda: None)
    h.cancel()
    assert sim.peek() == 9


def test_run_returns_executed_count():
    sim = Simulator()
    for _ in range(4):
        sim.schedule(1, lambda: None)
    assert sim.run() == 4


def test_rng_is_deterministic_per_seed():
    a = Simulator(seed=42).rng.random()
    b = Simulator(seed=42).rng.random()
    c = Simulator(seed=43).rng.random()
    assert a == b
    assert a != c
