"""Unit tests for the DES event loop (fast paths included)."""

import pytest

from repro.simnet import Simulator, SimulationError
from repro.simnet.legacy import LegacySimulator


def test_schedule_runs_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(30, order.append, "c")
    sim.schedule(10, order.append, "a")
    sim.schedule(20, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 30


def test_same_time_events_run_in_schedule_order():
    sim = Simulator()
    order = []
    for tag in ("first", "second", "third"):
        sim.schedule(5, order.append, tag)
    sim.run()
    assert order == ["first", "second", "third"]


def test_zero_delay_lane_preserves_global_order():
    # zero-delay events go through the FIFO lane, but must interleave with
    # same-timestamp heap events in scheduling (seq) order
    sim = Simulator()
    order = []

    def outer():
        order.append("outer")
        sim.schedule(0, order.append, "lane-1")
        sim.schedule(0, order.append, "lane-2")

    sim.schedule(10, outer)
    sim.schedule(10, order.append, "heap-peer")  # same time, earlier than lane
    sim.run()
    assert order == ["outer", "heap-peer", "lane-1", "lane-2"]
    assert sim.now == 10


def test_zero_delay_lane_runs_before_later_heap_events():
    sim = Simulator()
    order = []
    sim.schedule(5, order.append, "later")
    sim.schedule(0, order.append, "immediate")
    sim.run()
    assert order == ["immediate", "later"]


def test_run_until_stops_clock_at_bound():
    sim = Simulator()
    fired = []
    sim.schedule(100, fired.append, True)
    sim.run(until=50)
    assert not fired
    assert sim.now == 50
    sim.run()
    assert fired == [True]
    assert sim.now == 100


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule_cancellable(10, fired.append, True)
    handle.cancel()
    handle.cancel()  # idempotent
    sim.run()
    assert not fired


def test_plain_schedule_returns_no_handle():
    sim = Simulator()
    assert sim.schedule(10, lambda: None) is None
    assert sim.schedule(0, lambda: None) is None


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule_cancellable(-1, lambda: None)


def test_schedule_at_absolute_time():
    sim = Simulator()
    seen = []
    sim.schedule(10, lambda: sim.schedule_at(25, seen.append, sim.now))
    sim.run()
    # the callback records the time at scheduling (10); it fires at 25
    assert sim.now == 25
    assert seen == [10]


def test_schedule_at_clamps_float_dust():
    # now + a - a can land a hair before now; that is not "the past"
    sim = Simulator()
    fired = []
    sim.schedule(10, lambda: sim.schedule_at(sim.now - 1e-9, fired.append, True))
    sim.run()
    assert fired == [True]
    assert sim.now == 10


def test_schedule_at_still_rejects_genuinely_past_times():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(5, lambda: None)


def test_nested_scheduling_from_callbacks():
    sim = Simulator()
    hits = []

    def outer():
        hits.append(("outer", sim.now))
        sim.schedule(5, inner)

    def inner():
        hits.append(("inner", sim.now))

    sim.schedule(10, outer)
    sim.run()
    assert hits == [("outer", 10), ("inner", 15)]


def test_step_executes_single_event():
    sim = Simulator()
    order = []
    sim.schedule(1, order.append, 1)
    sim.schedule(2, order.append, 2)
    assert sim.step()
    assert order == [1]
    assert sim.step()
    assert order == [1, 2]
    assert not sim.step()


def test_step_honors_lane_and_heap_interleave():
    sim = Simulator()
    order = []

    def outer():
        order.append("outer")
        sim.schedule(0, order.append, "lane")

    sim.schedule(10, outer)
    sim.schedule(10, order.append, "heap-peer")
    assert sim.step() and sim.step() and sim.step()
    assert order == ["outer", "heap-peer", "lane"]
    assert not sim.step()


def test_peek_skips_cancelled():
    sim = Simulator()
    h = sim.schedule_cancellable(5, lambda: None)
    sim.schedule(9, lambda: None)
    h.cancel()
    assert sim.peek() == 9


def test_peek_sees_lane_at_current_instant():
    sim = Simulator()
    assert sim.peek() is None
    sim.schedule(0, lambda: None)
    assert sim.peek() == 0
    sim.run()
    assert sim.peek() is None


def test_run_returns_executed_count():
    sim = Simulator()
    for _ in range(4):
        sim.schedule(1, lambda: None)
    assert sim.run() == 4


def test_rng_is_deterministic_per_seed():
    a = Simulator(seed=42).rng.random()
    b = Simulator(seed=42).rng.random()
    c = Simulator(seed=43).rng.random()
    assert a == b
    assert a != c


def test_heap_compaction_bounds_cancelled_backlog():
    # schedule/cancel churn (a retransmit timer per packet) must not grow
    # the heap without bound: cancelled entries are purged lazily
    sim = Simulator()
    sim.schedule(20_000, lambda: None)  # keep the sim alive past the churn
    for i in range(10_000):
        handle = sim.schedule_cancellable(10_000 + i, lambda: None)
        handle.cancel()
    assert len(sim._heap) < 2_000
    stats = sim.stats()
    assert stats["cancelled_purged"] >= 9_000
    sim.run()
    assert sim.stats()["heap_size"] == 0


def test_stats_counts_events_and_peaks():
    sim = Simulator()
    for i in range(5):
        sim.schedule(i + 1, lambda: None)
    sim.schedule(0, lambda: None)
    sim.run()
    stats = sim.stats()
    assert stats["events_executed"] == 6
    assert stats["peak_heap"] == 5  # lane events never touch the heap
    assert stats["heap_size"] == 0
    assert stats["lane_size"] == 0
    assert stats["engine"] == "fast"


def test_legacy_engine_matches_fast_engine_on_microbenchmark():
    # the golden-trace reference must agree with the fast engine on a
    # mixed workload of timed, zero-delay, and cancelled events
    def workload(sim):
        order = []

        def tick(i):
            order.append((sim.now, i))
            if i < 40:
                sim.schedule(0, tick, i + 1) if i % 3 else sim.schedule(7, tick, i + 1)

        sim.schedule(5, tick, 0)
        sim.schedule(5, order.append, (None, "peer"))
        doomed = sim.schedule_cancellable(1_000, order.append, (None, "never"))
        doomed.cancel()
        executed = sim.run()
        return order, executed, sim.now

    fast = workload(Simulator(seed=7))
    legacy = workload(LegacySimulator(seed=7))
    assert fast == legacy
