"""Simulator.stats() must stay well-formed after a faulted run.

Fault injection exercises the cancellation paths (cleared injectors,
failover timers), so this is where stats bookkeeping historically skews.
"""

from repro.core import QosPolicy, Session
from repro.core.runtime import InsaneDeployment
from repro.faults import FaultSchedule
from repro.hw import Testbed
from repro.simnet import Timeout

EXPECTED_KEYS = {
    "engine", "events_executed", "heap_size", "lane_size", "peak_heap",
    "cancelled_pending", "cancelled_purged",
}


def run_faulted_workload():
    testbed = Testbed.local(seed=3)
    deployment = InsaneDeployment(testbed)
    pub = Session(deployment.runtime(0), "pub")
    sub = Session(deployment.runtime(1), "sub")
    stream = pub.create_stream(QosPolicy.fast(), name="s")
    sub.create_sink(sub.create_stream(QosPolicy.fast(), name="s"), channel=1)

    def producer():
        source = pub.create_source(stream, channel=1)
        for index in range(30):
            buffer = pub.get_buffer(source, 64)
            buffer.write(index.to_bytes(8, "big"))
            try:
                yield from pub.emit_data(source, buffer, length=64)
            except Exception:
                pub.release_buffer(source, buffer)
            yield Timeout(10_000.0)

    testbed.sim.process(producer(), name="producer")
    (FaultSchedule()
        .link_down(at=50_000.0, for_ns=40_000.0)
        .datapath_failure(at=120_000.0, host=0, datapath=stream.datapath)
        .apply(testbed, deployment))
    testbed.sim.run()
    return testbed.sim


class TestStatsAfterFaultedRun:
    def test_all_documented_keys_present_and_sane(self):
        sim = run_faulted_workload()
        stats = sim.stats()
        assert EXPECTED_KEYS <= set(stats)
        assert stats["events_executed"] > 0
        assert isinstance(stats["engine"], str) and stats["engine"]
        for key in EXPECTED_KEYS - {"engine"}:
            assert isinstance(stats[key], int), key
            assert stats[key] >= 0, key
        assert stats["peak_heap"] >= stats["heap_size"]

    def test_quiesced_heap_is_empty(self):
        sim = run_faulted_workload()
        stats = sim.stats()
        assert stats["heap_size"] == 0
        assert stats["lane_size"] == 0

    def test_stats_are_deterministic_across_runs(self):
        first = run_faulted_workload().stats()
        second = run_faulted_workload().stats()
        assert first == second
