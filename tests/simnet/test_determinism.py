"""Golden-trace determinism and heap-bound tests for the engine overhaul.

The overhauled :class:`repro.simnet.Simulator` claims bit-identical
behaviour to the pre-overhaul :class:`repro.simnet.legacy.LegacySimulator`
when both run the same (fast) application stack.  That claim is what lets
the perf harness present its speedup as a pure implementation change: same
seed, same simulated timestamps, same results — only the wall clock moves.
This module proves it on the paper workloads the harness measures.
"""

import pytest

from repro.bench.perfbench import results_close, run_churn, run_workload
from repro.simnet import Simulator

# reduced iteration counts: these tests assert identity, not throughput
ROUNDS = 60
MESSAGES = 300


def _strip_wall(record):
    """The comparable portion of a run record (everything simulated)."""
    return {
        "sim_ns": record["sim_ns"],
        "events": record["events"],
        "result": record["result"],
        "failures": record["failures"],
    }


@pytest.mark.parametrize("workload", ["fig5_pingpong", "fig8a_streaming"])
def test_same_seed_same_trace(workload):
    """Two runs with the same seed are indistinguishable."""
    first = run_workload(workload, rounds=ROUNDS, messages=MESSAGES, seed=7)
    second = run_workload(workload, rounds=ROUNDS, messages=MESSAGES, seed=7)
    assert _strip_wall(first) == _strip_wall(second)


@pytest.mark.parametrize(
    "workload", ["fig5_pingpong", "fig8a_streaming", "fig8b_8sink"]
)
def test_fast_engine_matches_legacy_engine(workload):
    """Golden trace: engine swap alone changes nothing simulated.

    Both configurations run the *fast* stack; only the event loop differs.
    Timestamps, event counts, and results must agree bit-for-bit — this is
    the strict guarantee the two-stack tolerance comparison rests on.
    """
    fast = run_workload(workload, engine="fast",
                        rounds=ROUNDS, messages=MESSAGES, seed=3)
    golden = run_workload(workload, engine="legacy", stack="fast",
                          rounds=ROUNDS, messages=MESSAGES, seed=3)
    assert _strip_wall(fast) == _strip_wall(golden)


def test_legacy_stack_results_within_tolerance():
    """The full pre-overhaul stack models the same system.

    Its event stream differs (per-stage charges add events and reorder rng
    draws), so the comparison is tolerance-based, as in the perf harness.
    """
    fast = run_workload("fig8a_streaming", rounds=ROUNDS,
                        messages=MESSAGES, seed=0)
    legacy = run_workload("fig8a_streaming", engine="legacy",
                          rounds=ROUNDS, messages=MESSAGES, seed=0)
    assert fast["failures"] == 0
    assert legacy["failures"] == 0
    # coalescing removed events — strictly fewer on the fast stack
    assert fast["events"] < legacy["events"]
    assert results_close(fast, legacy)


def test_churn_stream_identical_across_engines():
    """The engine microbenchmark drives both engines through one stream."""
    fast = run_churn("fast", events=20_000, seed=1)
    legacy = run_churn("legacy", events=20_000, seed=1)
    assert fast["events"] == legacy["events"]
    assert fast["sim_ns"] == legacy["sim_ns"]


def test_cancelled_timers_keep_heap_bounded():
    """10k schedule/cancel cycles must not accumulate dead heap entries.

    This is the retransmission-timer pattern: a timer armed per packet and
    cancelled on delivery.  Lazy compaction keeps the heap proportional to
    the *live* timer population, not the cancellation history.
    """
    sim = Simulator()
    fired = []
    for i in range(10_000):
        handle = sim.schedule_cancellable(1e9 + i, fired.append, i)
        handle.cancel()
        # one live timer per 100 cancelled ones survives
        if i % 100 == 0:
            sim.schedule(1.0 + i, fired.append, -i)
        assert len(sim._heap) < 512
    executed = sim.run()
    assert executed == 100
    assert fired == [0] + [-i for i in range(100, 10_000, 100)]
    stats = sim.stats()
    assert stats["cancelled_purged"] == 10_000
    assert stats["heap_size"] == 0


def test_cancel_after_fire_is_harmless():
    """Cancelling an already-fired handle neither raises nor corrupts."""
    sim = Simulator()
    fired = []
    handle = sim.schedule_cancellable(5.0, fired.append, "x")
    sim.run()
    assert fired == ["x"]
    handle.cancel()
    handle.cancel()
    sim.schedule(1.0, fired.append, "y")
    sim.run()
    assert fired == ["x", "y"]
