"""Absolute-instant scheduling: ``schedule_abs``, ``TimeoutAt``, and the
ready-``Get`` elision.

These are the primitives behind the fused hot-path hops (DESIGN.md §11):
two relative sleeps collapse into one wake-up only if the wake instant is
computed step-by-step — ``fl(fl(t + a) + b)`` — because float addition is
not associative.  The tests pin that exactness, the past-time contract,
the legacy-engine fallback, and the counter parity of elided events.
"""

import pytest

from repro.simnet import Get, Put, Simulator, Store, Timeout, TimeoutAt
from repro.simnet.errors import SimulationError
from repro.simnet.legacy import LegacySimulator


# -- schedule_abs ---------------------------------------------------------


def test_schedule_abs_fires_at_exact_instant():
    sim = Simulator()
    seen = []
    sim.schedule_abs(7.25, seen.append, "a")
    sim.schedule_abs(3.5, seen.append, "b")
    sim.run()
    assert seen == ["b", "a"]
    assert sim.now == 7.25


def test_schedule_abs_matches_chained_relative_instant():
    # the motivating case: fl(fl(t + a) + b) is NOT fl(t + (a + b))
    t, a, b = 1e9, 0.1, 0.2
    chained = (t + a) + b
    assert chained != t + (a + b)

    sim = Simulator()
    instants = []
    sim.schedule(t, lambda: sim.schedule_abs((sim.now + a) + b,
                                             lambda: instants.append(sim.now)))
    sim.run()
    assert instants == [chained]


def test_schedule_abs_rejects_past_instants():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_abs(5.0, lambda: None)


def test_schedule_abs_epsilon_clamps_to_now():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run()
    fired = []
    # a hair in the past (float round-off scale) clamps to now
    sim.schedule_abs(10.0 - 1e-7, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [10.0]


def test_schedule_abs_at_now_runs_after_lane_entries():
    # absolute entries always go to the heap; zero-delay lane entries
    # scheduled earlier (smaller seq) keep priority at the same instant
    sim = Simulator()
    order = []

    def kickoff():
        sim.schedule(0, order.append, "lane")
        sim.schedule_abs(sim.now, order.append, "abs")

    sim.schedule(1.0, kickoff)
    sim.run()
    assert order == ["lane", "abs"]


# -- TimeoutAt ------------------------------------------------------------


def _sleeper(sim, instants, trail):
    for at in instants:
        yield TimeoutAt(at)
        trail.append(sim.now)


@pytest.mark.parametrize("engine", [Simulator, LegacySimulator])
def test_timeout_at_wakes_on_exact_instant(engine):
    sim = engine()
    trail = []
    sim.process(_sleeper(sim, [2.5, 2.5, 9.0], trail))
    sim.run()
    # second TimeoutAt targets the current instant: allowed, zero-width
    assert trail == [2.5, 2.5, 9.0]
    assert sim.now == 9.0


@pytest.mark.parametrize("engine", [Simulator, LegacySimulator])
def test_timeout_at_past_instant_raises(engine):
    # same contract as Timeout with a negative delay: scheduling in the
    # past is a hard SimulationError out of run(), not a process failure
    sim = engine()

    def body():
        yield Timeout(10.0)
        yield TimeoutAt(2.0)

    sim.process(body(), name="past")
    with pytest.raises(SimulationError):
        sim.run()


def test_timeout_at_epsilon_clamps_to_now():
    # float round-off scale in the past clamps to now instead of raising
    sim = Simulator()
    trail = []

    def body():
        yield Timeout(10.0)
        yield TimeoutAt(sim.now - 1e-7)
        trail.append(sim.now)

    sim.process(body())
    sim.run()
    assert trail == [10.0]


def test_fused_sleep_is_bit_identical_to_two_timeouts():
    """One TimeoutAt at fl(fl(t+a)+b) == Timeout(a) then Timeout(b)."""
    t, a, b = 1e9, 0.1, 0.2

    def two_step(sim, out):
        yield Timeout(t)
        yield Timeout(a)
        yield Timeout(b)
        out.append(sim.now)

    def fused(sim, out):
        yield Timeout(t)
        target = sim.now + a  # the unfused first wake-up
        yield TimeoutAt(target + b)
        sim._executed += 1  # parity with the elided second event
        out.append(sim.now)

    sim_a, sim_b = Simulator(), Simulator()
    out_a, out_b = [], []
    sim_a.process(two_step(sim_a, out_a))
    sim_b.process(fused(sim_b, out_b))
    sim_a.run()
    sim_b.run()
    assert out_a == out_b
    assert sim_a.now == sim_b.now
    assert sim_a.stats()["events_executed"] == sim_b.stats()["events_executed"]


# -- ready-Get elision ----------------------------------------------------


def _producer(store, n):
    for i in range(n):
        yield Put(store, i)


def _consumer(sim, store, n, got):
    for _ in range(n):
        item = yield Get(store)
        got.append((item, sim.now))


def _run_store_workload(engine, n=200):
    sim = engine()
    store = Store(sim, capacity=8)
    got = []
    sim.process(_consumer(sim, store, n, got), name="consumer")
    sim.process(_producer(store, n), name="producer")
    sim.run()
    return got, sim.stats()["events_executed"], sim.now


def test_get_elision_matches_legacy_engine():
    fast = _run_store_workload(Simulator)
    legacy = _run_store_workload(LegacySimulator)
    assert fast == legacy


def test_ready_get_chain_does_not_recurse():
    """A long run of back-to-back ready Gets must not hit the Python
    recursion limit: the trampoline loops, it does not self-call."""
    n = 5000
    sim = Simulator()
    store = Store(sim)
    for i in range(n):
        store.put_nowait(i)
    got = []
    sim.process(_consumer(sim, store, n, got))
    sim.run()
    assert [item for item, _ in got] == list(range(n))


def test_get_elision_counts_the_elided_event():
    """events_executed parity: eliding the hand-off must not change the
    counter relative to the scheduled form (here: vs the legacy engine)."""
    _, fast_events, _ = _run_store_workload(Simulator, n=50)
    _, legacy_events, _ = _run_store_workload(LegacySimulator, n=50)
    assert fast_events == legacy_events


def test_get_elision_respects_queued_getters():
    """With another getter already queued, a fresh Get must line up
    behind it even when items are present (FIFO fairness)."""

    def greedy(sim, store, got, tag):
        item = yield Get(store)
        got.append((tag, item))

    for engine in (Simulator, LegacySimulator):
        sim = engine()
        store = Store(sim)
        got = []
        sim.process(greedy(sim, store, got, "first"))
        sim.process(greedy(sim, store, got, "second"))

        def feed():
            store.put_nowait("x")
            store.put_nowait("y")

        sim.schedule(1.0, feed)
        sim.run()
        assert got == [("first", "x"), ("second", "y")], engine.__name__
