"""Unit tests for generator-based processes and their effects."""

import pytest

from repro.simnet import AnyOf, Get, Join, Put, Signal, Simulator, Store, Timeout, Wait
from repro.simnet.errors import ProcessFailed
from repro.simnet.process import Interrupt


def test_timeout_advances_clock():
    sim = Simulator()
    times = []

    def body():
        yield Timeout(100)
        times.append(sim.now)
        yield Timeout(50)
        times.append(sim.now)

    sim.process(body())
    sim.run()
    assert times == [100, 150]


def test_process_return_value_via_join():
    sim = Simulator()
    results = []

    def child():
        yield Timeout(10)
        return 42

    def parent():
        value = yield Join(sim.process(child()))
        results.append(value)

    sim.process(parent())
    sim.run()
    assert results == [42]


def test_yielding_process_directly_joins_it():
    sim = Simulator()
    results = []

    def child():
        yield Timeout(5)
        return "done"

    def parent():
        value = yield sim.process(child())
        results.append((value, sim.now))

    sim.process(parent())
    sim.run()
    assert results == [("done", 5)]


def test_wait_receives_signal_value():
    sim = Simulator()
    sig = Signal(sim)
    got = []

    def waiter():
        value = yield Wait(sig)
        got.append((value, sim.now))

    sim.process(waiter())
    sim.schedule(30, sig.succeed, "hello")
    sim.run()
    assert got == [("hello", 30)]


def test_wait_on_already_fired_signal_resumes_immediately():
    sim = Simulator()
    sig = Signal(sim)
    sig.succeed(7)
    got = []

    def waiter():
        value = yield Wait(sig)
        got.append(value)

    sim.process(waiter())
    sim.run()
    assert got == [7]


def test_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        item = yield Get(store)
        got.append((item, sim.now))

    def producer():
        yield Timeout(20)
        yield Put(store, "msg")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == [("msg", 20)]


def test_put_blocks_when_store_full():
    sim = Simulator()
    store = Store(sim, capacity=1)
    events = []

    def producer():
        yield Put(store, 1)
        events.append(("put1", sim.now))
        yield Put(store, 2)
        events.append(("put2", sim.now))

    def consumer():
        yield Timeout(100)
        item = yield Get(store)
        events.append(("got", item, sim.now))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    # second put only completes once the consumer drained the store at t=100
    assert ("put2", 100) in events


def test_anyof_resumes_on_first_signal():
    sim = Simulator()
    a, b = Signal(sim), Signal(sim)
    got = []

    def waiter():
        index, value = yield AnyOf([a, b])
        got.append((index, value, sim.now))

    sim.process(waiter())
    sim.schedule(10, b.succeed, "b-wins")
    sim.schedule(20, a.succeed, "late")
    sim.run()
    assert got == [(1, "b-wins", 10)]


def test_process_failure_propagates_to_joiner():
    sim = Simulator()
    failures = []

    def bad():
        yield Timeout(1)
        raise ValueError("boom")

    def parent():
        try:
            yield Join(sim.process(bad(), name="bad"))
        except ProcessFailed as exc:
            failures.append(exc)

    sim.process(parent())
    sim.run()
    assert len(failures) == 1
    assert isinstance(failures[0].cause, ValueError)


def test_interrupt_throws_into_process():
    sim = Simulator()
    seen = []

    def sleeper():
        try:
            yield Timeout(10_000)
        except Interrupt:
            seen.append(sim.now)

    proc = sim.process(sleeper())
    sim.schedule(5, proc.interrupt)
    sim.run()
    assert seen == [5]


def test_fifo_ordering_through_store():
    sim = Simulator()
    store = Store(sim)
    out = []

    def consumer():
        for _ in range(3):
            item = yield Get(store)
            out.append(item)

    sim.process(consumer())
    for index in range(3):
        store.put_nowait(index)
    sim.run()
    assert out == [0, 1, 2]


def test_store_put_nowait_raises_when_full():
    from repro.simnet import StoreFullError

    sim = Simulator()
    store = Store(sim, capacity=2)
    store.put_nowait("a")
    store.put_nowait("b")
    with pytest.raises(StoreFullError):
        store.put_nowait("c")
