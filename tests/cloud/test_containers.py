"""Container and orchestrator tests (paper §8, Cloud integration)."""

import pytest

from repro.cloud import Container, ContainerSpec, ContainerState, EdgeOrchestrator, PlacementError
from repro.core import QosPolicy
from repro.core.errors import PoolExhaustedError
from repro.core.runtime import InsaneDeployment
from repro.hw import LOCAL_TESTBED, Testbed
from repro.simnet import Timeout


def idle_entrypoint(container, session, stream):
    def body():
        while True:
            yield Timeout(1_000_000)

    return body()


def make_deployment(profiles=None, seed=0):
    """A heterogeneous 3-node edge: node0/node1 accelerated, node2 not."""
    bed = Testbed(LOCAL_TESTBED, hosts=3, seed=seed)
    deployment = InsaneDeployment(bed)
    if profiles == "hetero":
        # strip acceleration from node2 by replacing its profile
        plain = LOCAL_TESTBED.replace(dpdk_capable=False, xdp_capable=False)
        bed.hosts[2].profile = plain
        deployment.runtimes["host2"].profile = plain
    return bed, deployment


class TestContainerLifecycle:
    def test_start_stop_cycle(self):
        bed, deployment = make_deployment()
        container = Container(ContainerSpec("svc", idle_entrypoint))
        container.start(deployment.runtime(0))
        assert container.state is ContainerState.RUNNING
        assert container.datapath == "dpdk"
        container.stop()
        bed.sim.run()
        assert container.state is ContainerState.STOPPED
        assert container.datapath is None

    def test_double_start_rejected(self):
        bed, deployment = make_deployment()
        container = Container(ContainerSpec("svc", idle_entrypoint))
        container.start(deployment.runtime(0))
        with pytest.raises(RuntimeError):
            container.start(deployment.runtime(1))

    def test_stop_reclaims_leaked_slots(self):
        bed, deployment = make_deployment()

        def leaky(container, session, stream):
            source = session.create_source(stream, channel=1)
            for _ in range(4):
                session.get_buffer(source, 64)
            return None

        container = Container(ContainerSpec("leaky", leaky))
        container.start(deployment.runtime(0))
        runtime = deployment.runtime(0)
        assert runtime.memory.pool.in_use == 4
        leaked = container.stop()
        assert leaked == 4
        assert runtime.memory.pool.in_use == 0

    def test_slot_quota_enforced(self):
        bed, deployment = make_deployment()

        def greedy(container, session, stream):
            source = session.create_source(stream, channel=1)
            container.grabbed = []
            try:
                for _ in range(10):
                    container.grabbed.append(session.get_buffer(source, 64))
            except PoolExhaustedError:
                container.quota_hit = True
            return None

        container = Container(ContainerSpec("greedy", greedy, slot_quota=3))
        container.start(deployment.runtime(0))
        assert getattr(container, "quota_hit", False)
        assert len(container.grabbed) == 3


class TestPlacement:
    def test_least_loaded_placement(self):
        bed, deployment = make_deployment()
        orchestrator = EdgeOrchestrator(deployment)
        placed = [
            orchestrator.deploy(Container(ContainerSpec("svc", idle_entrypoint)))
            for _ in range(6)
        ]
        names = sorted(node.host.name for node in placed)
        assert names == ["host0", "host0", "host1", "host1", "host2", "host2"]

    def test_acceleration_requirement_constrains_placement(self):
        bed, deployment = make_deployment(profiles="hetero")
        orchestrator = EdgeOrchestrator(deployment)
        spec = ContainerSpec("fastsvc", idle_entrypoint, requires_acceleration=True)
        for _ in range(4):
            node = orchestrator.deploy(Container(spec))
            assert node.host.name != "host2"

    def test_no_candidate_raises(self):
        bed, deployment = make_deployment(profiles="hetero")
        orchestrator = EdgeOrchestrator(deployment, capacity_per_node=1)
        spec = ContainerSpec("fastsvc", idle_entrypoint, requires_acceleration=True)
        orchestrator.deploy(Container(spec))
        orchestrator.deploy(Container(spec))
        with pytest.raises(PlacementError):
            orchestrator.deploy(Container(spec))

    def test_explicit_bad_placement_rejected(self):
        bed, deployment = make_deployment(profiles="hetero")
        orchestrator = EdgeOrchestrator(deployment)
        spec = ContainerSpec("fastsvc", idle_entrypoint, requires_acceleration=True)
        with pytest.raises(PlacementError):
            orchestrator.deploy(Container(spec), node=deployment.runtimes["host2"])

    def test_stats_reflect_placements(self):
        bed, deployment = make_deployment()
        orchestrator = EdgeOrchestrator(deployment)
        container = Container(ContainerSpec("svc", idle_entrypoint))
        orchestrator.deploy(container, node=deployment.runtime(1))
        stats = orchestrator.stats()
        assert container.container_id in stats["host1"]
        orchestrator.stop(container)
        assert orchestrator.stats()["host1"] == []


class TestMigration:
    def test_migration_rebinds_datapath(self):
        bed, deployment = make_deployment(profiles="hetero")
        orchestrator = EdgeOrchestrator(deployment)
        container = Container(ContainerSpec("svc", idle_entrypoint))
        orchestrator.deploy(container, node=deployment.runtime(0))
        assert container.datapath == "dpdk"
        orchestrator.migrate(container, deployment.runtimes["host2"])
        assert container.node.host.name == "host2"
        assert container.datapath == "udp"  # transparently re-bound
        assert container.incarnations == 2

    def test_migration_requirement_check(self):
        bed, deployment = make_deployment(profiles="hetero")
        orchestrator = EdgeOrchestrator(deployment)
        spec = ContainerSpec("fastsvc", idle_entrypoint, requires_acceleration=True)
        container = Container(spec)
        orchestrator.deploy(container, node=deployment.runtime(0))
        with pytest.raises(PlacementError):
            orchestrator.migrate(container, deployment.runtimes["host2"])
        assert container.node.host.name == "host0"

    def test_traffic_follows_migrated_consumer(self):
        """A producer keeps publishing while its consumer container
        migrates; delivery resumes at the new location."""
        bed, deployment = make_deployment()
        sim = bed.sim
        orchestrator = EdgeOrchestrator(deployment)
        received = []

        def consumer_entrypoint(container, session, stream):
            session.create_sink(
                stream, channel=5,
                callback=lambda d: received.append(container.node.host.name),
            )
            return None

        spec = ContainerSpec("consumer", consumer_entrypoint, stream_name="mig")
        consumer = Container(spec)
        orchestrator.deploy(consumer, node=deployment.runtime(1))

        from repro.core import Session

        producer = Session(deployment.runtime(0), "producer")
        stream = producer.create_stream(QosPolicy.fast(), name="mig")
        source = producer.create_source(stream, channel=5)

        def produce(count):
            for _ in range(count):
                buffer = yield from producer.get_buffer_wait(source, 16)
                yield from producer.emit_data(source, buffer, length=16)
                yield Timeout(10_000)

        def scenario():
            yield from produce(5)
            yield Timeout(100_000)
            orchestrator.migrate(consumer, deployment.runtimes["host2"])
            yield from produce(5)

        sim.process(scenario())
        sim.run()
        assert received.count("host1") == 5
        assert received.count("host2") == 5
