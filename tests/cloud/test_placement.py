"""RegionPlacer: deterministic least-loaded, acceleration-aware placement."""

import pytest

from repro.cloud import RegionPlacer
from repro.core.errors import TopologyError


def hosts(*names, accelerated=()):
    return [{"name": name, "accelerated": name in accelerated}
            for name in names]


class TestPlacement:
    def test_least_loaded_wins(self):
        placer = RegionPlacer()
        pool = hosts("a", "b", accelerated=("a", "b"))
        first = placer.place("svc-0", pool)
        second = placer.place("svc-1", pool)
        assert {first["name"], second["name"]} == {"a", "b"}

    def test_ties_break_by_name(self):
        placer = RegionPlacer()
        pool = hosts("zeta", "alpha")
        assert placer.place("svc", pool)["name"] == "alpha"

    def test_order_independent(self):
        pool = hosts("c", "a", "b")
        forward = RegionPlacer().place("svc", pool)
        backward = RegionPlacer().place("svc", list(reversed(pool)))
        assert forward["name"] == backward["name"]

    def test_acceleration_requirement_filters(self):
        placer = RegionPlacer()
        pool = hosts("a", "b", accelerated=("b",))
        chosen = placer.place("svc", pool, requires_acceleration=True)
        assert chosen["name"] == "b"

    def test_no_eligible_host_is_a_build_error(self):
        placer = RegionPlacer()
        with pytest.raises(TopologyError):
            placer.place("svc", hosts("a"), requires_acceleration=True)

    def test_capacity_bounds_placements(self):
        placer = RegionPlacer(capacity_per_host=1)
        pool = hosts("a")
        placer.place("svc-0", pool)
        with pytest.raises(TopologyError):
            placer.place("svc-1", pool)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            RegionPlacer(capacity_per_host=0)

    def test_placements_reports_load(self):
        placer = RegionPlacer()
        pool = hosts("a", "b")
        placer.place("svc-0", pool)
        placer.place("svc-1", pool)
        placer.place("svc-2", pool)
        assert sum(placer.placements().values()) == 3
        assert max(placer.placements().values()) == 2
