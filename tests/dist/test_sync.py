"""Conservative-sync partitioned execution: the bit-identical contract.

The headline assertion of :mod:`repro.dist`: running a generated city cut
across partitions — in-process or across real worker processes — produces
the *same* merged record digest as the serial run, bit for bit.  Everything
else here guards the mechanisms that make that possible: disjoint
packet-id spaces per partition, a provable simulation horizon, and a
merge that refuses to paper over overlapping counters.
"""

import pytest

from repro.dist import (
    check_partition_equivalence,
    merge_partition_records,
    run_city_cell,
    run_city_partitioned,
    run_city_serial,
)
from repro.dist.sync import city_end_of_time
from repro.hw.generate import resolve_topology
from repro.netstack.packet import PARTITION_SEQ_STRIDE, partition_seq_base

TINY = {"hosts": 16, "regions": 4, "messages": 2, "seed": 11}

#: the acceptance-scale city: >= 256 edge hosts across 8 regions,
#: trimmed to 2 messages per flow so the process-transport run stays
#: test-suite fast.
ACCEPTANCE = {"hosts": 256, "regions": 8, "messages": 2, "seed": 3}


def serial(spec):
    return run_city_serial(resolve_topology(spec))


class TestInlineEquivalence:
    def test_partitioned_digests_match_serial(self):
        reference = serial(TINY)
        assert reference["events"] > 0
        for partitions in (2, 3, 4):
            run = run_city_partitioned(resolve_topology(TINY), partitions,
                                       transport="inline")
            assert run["digest"] == reference["digest"], \
                "diverged at %d partitions" % partitions
            assert run["partitions"] == partitions

    def test_single_partition_request_is_the_serial_run(self):
        run = run_city_partitioned(resolve_topology(TINY), 1)
        assert run["transport"] == "serial"
        assert run["digest"] == serial(TINY)["digest"]

    def test_checker_reports_clean(self):
        problems, details = check_partition_equivalence(
            TINY, partitions=(2, 4), transport="inline"
        )
        assert problems == []
        assert details["serial"]["digest"]
        assert len(details["partitioned"]) == 2

    def test_different_seeds_give_different_digests(self):
        assert serial(TINY)["digest"] \
            != serial(dict(TINY, seed=12))["digest"]


class TestProcessTransportAcceptance:
    def test_256_hosts_across_4_worker_processes_match_serial(self):
        """The issue's acceptance bar: a >= 256-node generated city runs
        partitioned across >= 4 real worker processes and the merged
        digest equals the serial run's, bit for bit."""
        spec = resolve_topology(ACCEPTANCE)
        reference = run_city_serial(spec)
        run = run_city_partitioned(spec, 4, transport="process")
        assert run["transport"] == "process"
        assert len(run["per_partition"]) == 4
        assert all(meta["events"] > 0 for meta in run["per_partition"])
        assert run["digest"] == reference["digest"]
        assert run["events"] == reference["events"]


class TestSeqDisjointness:
    def test_partitions_mint_packet_ids_in_disjoint_ranges(self):
        """Satellite regression: every partition stamps packet ids from
        its own ``index << 48`` base, so merged records can never collide
        on sequence numbers minted by different partitions."""
        run = run_city_partitioned(resolve_topology(TINY), 4,
                                   transport="inline")
        metas = run["per_partition"]
        assert [meta["seq_base"] for meta in metas] \
            == [partition_seq_base(index) for index in range(4)]
        for meta in metas:
            assert meta["seq_base"] == meta["partition"] * PARTITION_SEQ_STRIDE
            assert meta["seq_base"] <= meta["seq_last"] \
                < meta["seq_base"] + PARTITION_SEQ_STRIDE

    def test_stride_leaves_headroom(self):
        assert PARTITION_SEQ_STRIDE == 1 << 48


class TestMerge:
    def test_overlapping_counters_refuse_to_merge(self):
        part = {"deliveries": [], "counters": {"tor0.forwarded": 1},
                "core_forwarded": 0}
        with pytest.raises(RuntimeError):
            merge_partition_records([part, dict(part)])

    def test_disjoint_counters_union_and_core_sums(self):
        a = {"deliveries": [[0, 0, 5.0]], "counters": {"tor0.forwarded": 2},
             "core_forwarded": 1}
        b = {"deliveries": [[1, 0, 3.0]], "counters": {"tor1.forwarded": 4},
             "core_forwarded": 2}
        merged = merge_partition_records([a, b])
        assert merged["counters"] == {"tor0.forwarded": 2,
                                      "tor1.forwarded": 4}
        assert merged["core_forwarded"] == 3
        assert merged["deliveries"] == [[0, 0, 5.0], [1, 0, 3.0]]


class TestHorizon:
    def test_end_of_time_bounds_the_last_event(self):
        spec = resolve_topology(TINY)
        assert serial(TINY)["now"] < city_end_of_time(spec)

    def test_horizon_scales_with_workload(self):
        short = resolve_topology(TINY)
        long = resolve_topology(dict(TINY, messages=64))
        assert city_end_of_time(long) > city_end_of_time(short)


class TestCityCell:
    def test_cell_payload_shape_and_full_delivery(self):
        payload = run_city_cell(topology=dict(TINY), partitions=2, seed=11)
        assert payload["topology"] == "custom"
        assert payload["transport"] == "inline"
        assert payload["delivered"] == payload["expected"]
        assert payload["delivery_ratio"] == 1.0
        assert payload["latency"]["count"] > 0
        assert payload["digest"] == serial(TINY)["digest"]

    def test_cell_seed_param_overrides_the_spec(self):
        a = run_city_cell(topology=dict(TINY), partitions=1, seed=11)
        b = run_city_cell(topology=dict(TINY), partitions=1, seed=99)
        assert a["digest"] != b["digest"]
