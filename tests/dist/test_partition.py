"""Region-to-partition assignment: contiguous, total, loudly validated."""

import pytest

from repro.core.errors import TopologyError
from repro.dist import partition_regions, region_owner


class TestPartitionRegions:
    def test_even_split_is_contiguous_blocks(self):
        assert partition_regions(8, 4) == [[0, 1], [2, 3], [4, 5], [6, 7]]

    def test_uneven_split_spreads_the_remainder(self):
        blocks = partition_regions(7, 3)
        assert [region for block in blocks for region in block] == list(range(7))
        sizes = [len(block) for block in blocks]
        assert max(sizes) - min(sizes) <= 1

    def test_one_partition_owns_everything(self):
        assert partition_regions(4, 1) == [[0, 1, 2, 3]]

    @pytest.mark.parametrize("regions,partitions", [
        (4, 5),    # more partitions than regions
        (4, 0),
        (0, 1),
        (4, -1),
    ])
    def test_bad_counts_raise(self, regions, partitions):
        with pytest.raises(TopologyError):
            partition_regions(regions, partitions)


class TestRegionOwner:
    def test_inverts_the_assignment(self):
        assignment = partition_regions(5, 2)
        owner = region_owner(assignment)
        assert sorted(owner) == [0, 1, 2, 3, 4]
        for index, block in enumerate(assignment):
            for region in block:
                assert owner[region] == index

    def test_overlapping_assignment_raises(self):
        with pytest.raises(TopologyError):
            region_owner([[0, 1], [1, 2]])
