"""Tests for the application-level reliable transport over INSANE."""

import pytest

from repro.apps.reliable import ReliableReceiver, ReliableSender
from repro.core import QosPolicy, Session
from repro.core.runtime import InsaneDeployment
from repro.hw import Testbed


def make_pair(loss_rate=0.0, seed=0, window=32, rto_ns=150_000, ack_every=1,
              **sender_kwargs):
    testbed = Testbed.local(seed=seed)
    for link in testbed.links:
        link.loss_rate = loss_rate
    deployment = InsaneDeployment(testbed)
    tx = Session(deployment.runtime(0), "rel-tx")
    rx = Session(deployment.runtime(1), "rel-rx")
    tx_stream = tx.create_stream(QosPolicy.fast(), name="rel")
    rx_stream = rx.create_stream(QosPolicy.fast(), name="rel")
    delivered = []
    sender = ReliableSender(tx, tx_stream, channel=10, window=window,
                            rto_ns=rto_ns, **sender_kwargs)
    receiver = ReliableReceiver(
        rx, rx_stream, channel=10,
        deliver=lambda payload: delivered.append(payload),
        ack_every=ack_every,
    )
    return testbed, sender, receiver, delivered


def run_transfer(testbed, sender, messages):
    sim = testbed.sim

    def producer():
        for index in range(messages):
            yield from sender.send(b"message-%05d" % index)
        yield from sender.drain()
        sender.close()

    sim.process(producer())
    sim.run()


def test_lossless_transfer_in_order():
    testbed, sender, receiver, delivered = make_pair()
    run_transfer(testbed, sender, 50)
    assert delivered == [b"message-%05d" % i for i in range(50)]
    assert sender.retransmissions.value == 0


@pytest.mark.parametrize("loss", [0.05, 0.2])
def test_lossy_transfer_is_exactly_once_in_order(loss):
    testbed, sender, receiver, delivered = make_pair(loss_rate=loss, seed=3)
    run_transfer(testbed, sender, 120)
    assert delivered == [b"message-%05d" % i for i in range(120)]
    assert sender.retransmissions.value > 0
    lost = sum(link.lost_frames.value for link in testbed.links)
    assert lost > 0


def test_heavy_loss_still_completes():
    testbed, sender, receiver, delivered = make_pair(loss_rate=0.4, seed=4, window=8)
    run_transfer(testbed, sender, 40)
    assert delivered == [b"message-%05d" % i for i in range(40)]


def test_window_blocks_sender():
    """With no receiver ACKs possible (100% loss), the sender must block
    after filling its window rather than flooding."""
    testbed, sender, receiver, delivered = make_pair(loss_rate=1.0, seed=5, window=4)
    sim = testbed.sim
    progress = []

    def producer():
        for index in range(10):
            yield from sender.send(b"x")
            progress.append(index)

    sim.process(producer())
    sim.run(until=5_000_000)
    assert progress == [0, 1, 2, 3]
    assert sender.in_flight == 4
    sender.close()

    def drainer():
        yield from sender.drain()

    # close() stops retransmission timers; the remaining events drain
    sim.run(until=10_000_000)


def test_duplicates_are_suppressed():
    """ACK loss causes retransmissions of received data: the receiver must
    count duplicates but deliver exactly once."""
    testbed, sender, receiver, delivered = make_pair(loss_rate=0.25, seed=6)
    run_transfer(testbed, sender, 80)
    assert delivered == [b"message-%05d" % i for i in range(80)]
    if sender.retransmissions.value > 0:
        assert receiver.duplicates.value >= 0  # duplicates possible, never delivered


def test_delayed_acks_reduce_ack_traffic():
    testbed_every, sender_every, _r, _d = make_pair(seed=7, ack_every=1)
    run_transfer(testbed_every, sender_every, 60)
    acks_every = testbed_every.hosts[1].nic.tx_frames.value

    testbed_delayed, sender_delayed, _r2, _d2 = make_pair(seed=7, ack_every=8)
    run_transfer(testbed_delayed, sender_delayed, 60)
    acks_delayed = testbed_delayed.hosts[1].nic.tx_frames.value
    assert acks_delayed < acks_every


def test_invalid_window_rejected():
    testbed = Testbed.local(seed=8)
    deployment = InsaneDeployment(testbed)
    session = Session(deployment.runtime(0), "w")
    stream = session.create_stream(QosPolicy.fast(), name="w")
    with pytest.raises(ValueError):
        ReliableSender(session, stream, channel=1, window=0)


def test_invalid_backoff_rejected():
    testbed = Testbed.local(seed=8)
    deployment = InsaneDeployment(testbed)
    session = Session(deployment.runtime(0), "b")
    stream = session.create_stream(QosPolicy.fast(), name="b")
    with pytest.raises(ValueError):
        ReliableSender(session, stream, channel=1, backoff=0.5)


def test_backoff_reduces_retry_pressure():
    """With a dead path, exponential backoff must retransmit far less than
    a fixed-RTO sender over the same horizon."""
    counts = {}
    for backoff in (1.0, 2.0):
        testbed, sender, _receiver, _delivered = make_pair(
            loss_rate=1.0, seed=12, window=4, rto_ns=100_000,
            backoff=backoff, max_rto_ns=1_600_000,
        )

        def producer(sender=sender):
            yield from sender.send(b"x")

        testbed.sim.process(producer())
        testbed.sim.run(until=5_000_000)
        counts[backoff] = sender.retransmissions.value
        sender.close()
    assert counts[2.0] < counts[1.0]


def test_backoff_caps_at_max_rto():
    testbed, sender, _receiver, _delivered = make_pair(
        loss_rate=1.0, seed=13, window=4, rto_ns=100_000,
        backoff=2.0, max_rto_ns=400_000,
    )

    def producer():
        yield from sender.send(b"x")

    testbed.sim.process(producer())
    testbed.sim.run(until=5_000_000)
    assert sender._current_rto_ns == 400_000
    sender.close()


def test_backoff_resets_on_ack_progress():
    """A lossy but working path: every timeout-driven backoff is undone by
    the next ACK, so the sender ends at its base RTO."""
    testbed, sender, _receiver, delivered = make_pair(
        loss_rate=0.2, seed=3, backoff=2.0,
    )
    run_transfer(testbed, sender, 80)
    assert delivered == [b"message-%05d" % i for i in range(80)]
    assert sender._current_rto_ns == sender.rto_ns
    assert sender._timeouts_in_a_row == 0


def test_max_retries_gives_up_with_transfer_error():
    from repro.core.errors import TransferError

    testbed, sender, _receiver, _delivered = make_pair(
        loss_rate=1.0, seed=11, window=4, rto_ns=50_000, max_retries=3,
    )
    sim = testbed.sim
    errors = []

    def producer():
        yield from sender.send(b"doomed")
        try:
            yield from sender.drain()
        except TransferError as exc:
            errors.append(exc)

    sim.process(producer())
    sim.run()
    assert sender.failed
    assert len(errors) == 1
    assert errors[0].code == 50

    # once failed, further sends raise immediately
    def second():
        try:
            yield from sender.send(b"more")
        except TransferError as exc:
            errors.append(exc)

    sim.process(second())
    sim.run()
    assert len(errors) == 2
