"""LUNAR Streaming tests: fragmentation, reassembly, and flow (paper §7.2)."""

import pytest

from repro.apps.lunar_streaming import LunarStreamClient, LunarStreamServer
from repro.core.runtime import InsaneDeployment
from repro.hw import Testbed


def make(mode="fast", synthetic=False, seed=0):
    testbed = Testbed.local(seed=seed)
    deployment = InsaneDeployment(testbed)
    server = LunarStreamServer(deployment.runtime(0), mode=mode)
    client = LunarStreamClient(deployment.runtime(1), mode=mode, synthetic=synthetic)
    return testbed, server, client


def stream_frames(testbed, server, client, frames):
    """Drive a full connect/stream/receive exchange; returns deliveries."""
    sim = testbed.sim
    delivered = []

    def server_proc():
        yield from server.wait_for_client()
        queue = list(frames)
        yield from server.loop(
            get_frame=lambda: queue.pop(0) if queue else None,
            wait_next=lambda: iter(()),
            frames=len(frames),
        )

    def client_proc():
        yield from client.connect()
        received = yield from client.receive_frames(len(frames))
        delivered.extend(received)

    sim.process(server_proc())
    sim.process(client_proc())
    sim.run()
    return delivered


class TestRealFrames:
    def test_single_small_frame_bit_exact(self):
        testbed, server, client = make()
        frame = bytes(range(256)) * 4
        delivered = stream_frames(testbed, server, client, [frame])
        assert [f for f, _t in delivered] == [frame]

    def test_multi_fragment_frame_bit_exact(self):
        testbed, server, client = make(seed=1)
        frame = bytes((i * 7) % 256 for i in range(100_000))  # ~12 fragments
        delivered = stream_frames(testbed, server, client, [frame])
        assert delivered[0][0] == frame

    def test_sequence_of_frames_in_order(self):
        testbed, server, client = make(seed=2)
        frames = [bytes([index]) * 5000 for index in range(8)]
        delivered = stream_frames(testbed, server, client, frames)
        assert [f for f, _t in delivered] == frames

    def test_frame_exactly_one_fragment_boundary(self):
        testbed, server, client = make(seed=3)
        frame = b"F" * server.max_fragment
        delivered = stream_frames(testbed, server, client, [frame])
        assert delivered[0][0] == frame
        assert server.frames_sent.value == 1

    def test_frame_one_byte_over_boundary(self):
        testbed, server, client = make(seed=4)
        frame = b"G" * (server.max_fragment + 1)
        delivered = stream_frames(testbed, server, client, [frame])
        assert delivered[0][0] == frame

    def test_empty_loop_when_get_frame_returns_none(self):
        testbed, server, client = make(seed=5)
        delivered = []

        def server_proc():
            yield from server.wait_for_client()
            yield from server.loop(lambda: None, lambda: iter(()), frames=5)

        def client_proc():
            yield from client.connect()

        testbed.sim.process(server_proc())
        testbed.sim.process(client_proc())
        testbed.sim.run()
        assert server.frames_sent.value == 0

    def test_no_slot_leaks_after_streaming(self):
        testbed, server, client = make(seed=6)
        frames = [b"x" * 30_000 for _ in range(4)]
        stream_frames(testbed, server, client, frames)
        assert server.runtime.memory.pool.in_use == 0
        assert client.runtime.memory.pool.in_use == 0


class TestSyntheticFrames:
    def test_synthetic_frame_sizes_verified(self):
        testbed, server, client = make(synthetic=True, seed=7)
        delivered = stream_frames(testbed, server, client, [500_000, 250_000])
        assert [f for f, _t in delivered] == [500_000, 250_000]

    def test_synthetic_and_real_take_same_fragment_count(self):
        testbed_a, server_a, client_a = make(seed=8)
        real = b"z" * 120_000
        stream_frames(testbed_a, server_a, client_a, [real])
        real_frags = testbed_a.hosts[0].nic.tx_frames.value

        testbed_b, server_b, client_b = make(synthetic=True, seed=8)
        stream_frames(testbed_b, server_b, client_b, [120_000])
        synthetic_frags = testbed_b.hosts[0].nic.tx_frames.value
        assert real_frags == synthetic_frags

    def test_server_frame_starts_align_with_frames(self):
        testbed, server, client = make(synthetic=True, seed=9)
        delivered = stream_frames(testbed, server, client, [100_000] * 3)
        assert len(server.frame_starts) == 3
        for (frame, done), start in zip(delivered, server.frame_starts):
            assert done > start


class TestModes:
    def test_slow_mode_streams_correctly(self):
        testbed, server, client = make(mode="slow", seed=10)
        frame = b"slowpath" * 4000
        delivered = stream_frames(testbed, server, client, [frame])
        assert delivered[0][0] == frame
        assert server.stream.datapath == "udp"

    def test_fast_mode_faster_than_slow(self):
        def run(mode):
            testbed, server, client = make(mode=mode, synthetic=True, seed=11)
            delivered = stream_frames(testbed, server, client, [2_000_000])
            return delivered[0][1] - server.frame_starts[0]

        assert run("fast") < run("slow")
