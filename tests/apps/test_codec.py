"""Codec tests: round trips, compression behaviour, streaming integration."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.codec import CODECS, DeltaCodec, IdentityCodec, RleCodec


class TestIdentity:
    def test_round_trip(self):
        codec = IdentityCodec()
        assert codec.decode(codec.encode(b"abc")) == b"abc"

    def test_no_expansion(self):
        codec = IdentityCodec()
        assert len(codec.encode(b"x" * 100)) == 100


class TestRle:
    def test_runs_compress(self):
        codec = RleCodec()
        flat = b"\x00" * 10_000
        encoded = codec.encode(flat)
        assert len(encoded) < len(flat) / 50
        assert codec.decode(encoded) == flat

    def test_literal_escape_byte(self):
        codec = RleCodec()
        data = bytes([RleCodec.ESCAPE, 1, RleCodec.ESCAPE, 2])
        assert codec.decode(codec.encode(data)) == data

    def test_short_runs_stay_literal(self):
        codec = RleCodec()
        data = b"aabbcc"
        assert codec.decode(codec.encode(data)) == data

    def test_empty(self):
        codec = RleCodec()
        assert codec.encode(b"") == b""
        assert codec.decode(b"") == b""

    def test_malformed_rejected(self):
        codec = RleCodec()
        with pytest.raises(ValueError):
            codec.decode(bytes([RleCodec.ESCAPE, 2, 0x41]))  # run of 2 invalid

    @settings(max_examples=80, deadline=None)
    @given(st.binary(max_size=2048))
    def test_property_round_trip(self, data):
        codec = RleCodec()
        assert codec.decode(codec.encode(data)) == data

    @settings(max_examples=40, deadline=None)
    @given(st.binary(max_size=1024))
    def test_property_bounded_expansion(self, data):
        codec = RleCodec()
        assert len(codec.encode(data)) <= 3 * len(data)


class TestDelta:
    def test_gradients_compress(self):
        codec = DeltaCodec()
        gradient = bytes(i % 256 for i in range(10_000))
        encoded = codec.encode(gradient)
        # constant delta of 1 -> runs of up to 255 -> ~3 B per 255 B
        assert len(encoded) < len(gradient) / 50
        assert codec.decode(encoded) == gradient

    @settings(max_examples=60, deadline=None)
    @given(st.binary(max_size=2048))
    def test_property_round_trip(self, data):
        codec = DeltaCodec()
        assert codec.decode(codec.encode(data)) == data


def test_registry_names():
    assert set(CODECS) == {"identity", "rle", "delta-rle"}


class TestStreamingIntegration:
    def run_stream(self, codec, frame, bandwidth_gbps=None):
        from repro.apps.lunar_streaming import LunarStreamClient, LunarStreamServer
        from repro.core.runtime import InsaneDeployment
        from repro.hw import LOCAL_TESTBED, Testbed

        profile = LOCAL_TESTBED
        if bandwidth_gbps is not None:
            profile = profile.replace(nic_bandwidth_gbps=bandwidth_gbps)
        bed = Testbed(profile, seed=31)
        deployment = InsaneDeployment(bed)
        server = LunarStreamServer(deployment.runtime(0), codec=codec)
        client = LunarStreamClient(deployment.runtime(1), codec=codec)
        sim = bed.sim
        delivered = []

        def server_proc():
            yield from server.wait_for_client()
            yield from server.loop(lambda: frame, lambda: iter(()), frames=1)

        def client_proc():
            yield from client.connect()
            received = yield from client.receive_frames(1)
            delivered.extend(received)

        sim.process(server_proc())
        sim.process(client_proc())
        sim.run()
        return bed, delivered

    def test_compressed_stream_bit_exact(self):
        frame = bytes(i % 7 for i in range(50_000))
        _bed, delivered = self.run_stream(RleCodec(), frame)
        assert delivered[0][0] == frame

    def test_compression_reduces_wire_traffic(self):
        frame = b"\x10" * 200_000  # a flat background: highly compressible
        bed_raw, delivered_raw = self.run_stream(None, frame)
        bed_rle, delivered_rle = self.run_stream(RleCodec(), frame)
        assert delivered_raw[0][0] == frame
        assert delivered_rle[0][0] == frame
        raw_frames = bed_raw.hosts[0].nic.tx_frames.value
        rle_frames = bed_rle.hosts[0].nic.tx_frames.value
        assert rle_frames < raw_frames / 10

    def test_compression_loses_on_a_fast_lan(self):
        """At 100 Gbps, encode+decode time exceeds the wire time saved —
        the honest trade-off behind the paper streaming raw frames."""
        frame = b"\x42" * 400_000
        _bed_raw, delivered_raw = self.run_stream(None, frame)
        _bed_rle, delivered_rle = self.run_stream(RleCodec(), frame)
        assert delivered_rle[0][1] > delivered_raw[0][1]

    def test_compression_wins_on_a_constrained_uplink(self):
        """On a 1 Gbps edge uplink the wire dominates: compression pays."""
        frame = b"\x42" * 400_000
        _bed_raw, delivered_raw = self.run_stream(None, frame, bandwidth_gbps=1.0)
        _bed_rle, delivered_rle = self.run_stream(RleCodec(), frame, bandwidth_gbps=1.0)
        assert delivered_rle[0][1] < delivered_raw[0][1] / 5
