"""LUNAR MoM tests: pub/sub semantics over INSANE (paper §7.1)."""

import pytest

from repro.apps.lunar_mom import LunarMom, topic_id
from repro.core.runtime import InsaneDeployment
from repro.hw import Testbed


def make(hosts=2, mode="fast", seed=0):
    testbed = Testbed.local(hosts=hosts, seed=seed)
    deployment = InsaneDeployment(testbed)
    nodes = [LunarMom(deployment.runtime(i), mode) for i in range(hosts)]
    return testbed, nodes


class TestTopicHashing:
    def test_topic_id_is_stable(self):
        assert topic_id("sensors/temp") == topic_id("sensors/temp")

    def test_distinct_topics_distinct_ids(self):
        assert topic_id("a") != topic_id("b")

    def test_topic_id_is_a_valid_channel(self):
        # 63-bit id space: collisions at ~1M topics are ~5e-8 probable,
        # where the old crc32/2^31 mapping made them statistically certain
        assert 0 <= topic_id("any/topic/name") < 2**63

    def test_crc32_colliding_topics_get_distinct_ids(self):
        # these two names collide in the old crc32 & 0x7FFFFFFF space
        # (both hash to 617102762) and used to share one channel
        import zlib

        a, b = "topic-3985819", "topic-4420602"
        assert (zlib.crc32(a.encode()) & 0x7FFFFFFF
                == zlib.crc32(b.encode()) & 0x7FFFFFFF)
        assert topic_id(a) != topic_id(b)


class TestPubSub:
    def test_publish_reaches_remote_subscriber(self):
        testbed, (pub, sub) = make()
        sim = testbed.sim
        got = []
        sub.subscribe("news", lambda topic, payload: got.append(bytes(payload)))

        def publisher():
            yield from pub.publish("news", data=b"hello subscribers")

        sim.process(publisher())
        sim.run()
        assert got == [b"hello subscribers"]

    def test_topic_isolation(self):
        testbed, (pub, sub) = make(seed=1)
        sim = testbed.sim
        weather, sports = [], []
        sub.subscribe("weather", lambda t, p: weather.append(bytes(p)))
        sub.subscribe("sports", lambda t, p: sports.append(bytes(p)))

        def publisher():
            yield from pub.publish("weather", data=b"rain")
            yield from pub.publish("sports", data=b"2-1")

        sim.process(publisher())
        sim.run()
        assert weather == [b"rain"]
        assert sports == [b"2-1"]

    def test_fanout_to_many_hosts(self):
        testbed, nodes = make(hosts=4, seed=2)
        sim = testbed.sim
        publisher, subscribers = nodes[0], nodes[1:]
        hits = []
        for index, node in enumerate(subscribers):
            node.subscribe("broadcast", lambda t, p, i=index: hits.append(i))

        def publish():
            yield from publisher.publish("broadcast", size=128)

        sim.process(publish())
        sim.run()
        assert sorted(hits) == [0, 1, 2]

    def test_publish_with_fill_callback(self):
        testbed, (pub, sub) = make(seed=3)
        sim = testbed.sim
        got = []
        sub.subscribe("filled", lambda t, p: got.append(bytes(p)))

        def publisher():
            yield from pub.publish(
                "filled", size=4, fill=lambda buffer: buffer.write(b"ABCD")
            )

        sim.process(publisher())
        sim.run()
        assert got == [b"ABCD"]

    def test_publish_requires_data_or_size(self):
        testbed, (pub, _sub) = make(seed=4)
        with pytest.raises(ValueError):
            next(pub.publish("bad"))

    def test_local_subscriber_on_same_host(self):
        testbed, (node, _other) = make(seed=5)
        sim = testbed.sim
        got = []
        node.subscribe("loop", lambda t, p: got.append(bytes(p)))

        def publisher():
            yield from node.publish("loop", data=b"local")

        sim.process(publisher())
        sim.run()
        assert got == [b"local"]
        # shared-memory delivery: nothing on the wire
        assert testbed.hosts[0].nic.tx_frames.value == 0

    def test_counters_track_activity(self):
        testbed, (pub, sub) = make(seed=6)
        sim = testbed.sim
        sub.subscribe("counted", lambda t, p: None)

        def publisher():
            for _ in range(5):
                yield from pub.publish("counted", size=16)

        sim.process(publisher())
        sim.run()
        assert pub.published.value == 5
        assert sub.delivered.value == 5

    def test_no_leaks_after_burst(self):
        testbed, (pub, sub) = make(seed=7)
        sim = testbed.sim
        sub.subscribe("leakcheck", lambda t, p: None)

        def publisher():
            for _ in range(50):
                yield from pub.publish("leakcheck", size=256)

        sim.process(publisher())
        sim.run()
        assert pub.runtime.memory.pool.in_use == 0
        assert sub.runtime.memory.pool.in_use == 0

    def test_slow_mode_uses_udp(self):
        testbed, (pub, _sub) = make(mode="slow", seed=8)
        assert pub.stream.datapath == "udp"

    def test_invalid_mode_rejected(self):
        testbed = Testbed.local(seed=9)
        deployment = InsaneDeployment(testbed)
        with pytest.raises(ValueError):
            LunarMom(deployment.runtime(0), "warp")


class TestCollisionRegression:
    """The crc32 cross-delivery bug: two distinct topics sharing one
    channel id silently delivered each other's messages."""

    # known crc32 & 0x7FFFFFFF collision pair (both -> 617102762)
    COLLIDING = ("topic-3985819", "topic-4420602")

    def test_colliding_topics_no_longer_cross_deliver(self):
        testbed, (pub, sub) = make(seed=11)
        sim = testbed.sim
        a, b = self.COLLIDING
        got_a, got_b = [], []
        sub.subscribe(a, lambda t, p: got_a.append(bytes(p)))
        sub.subscribe(b, lambda t, p: got_b.append(bytes(p)))

        def publisher():
            yield from pub.publish(a, data=b"for-a")
            yield from pub.publish(b, data=b"for-b")

        sim.process(publisher())
        sim.run()
        assert got_a == [b"for-a"]
        assert got_b == [b"for-b"]

    def test_residual_collision_detected_and_raised(self, monkeypatch):
        # force a hash collision to prove the guard still catches the
        # (astronomically unlikely) residual 63-bit case loudly
        import repro.apps.lunar_mom as mom

        monkeypatch.setattr(mom, "topic_id", lambda topic: 42)
        testbed, (_pub, sub) = make(seed=12)
        sub.subscribe("first", lambda t, p: None)
        with pytest.raises(mom.TopicCollisionError):
            sub.subscribe("second", lambda t, p: None)
