"""LUNAR MoM tests: pub/sub semantics over INSANE (paper §7.1)."""

import pytest

from repro.apps.lunar_mom import LunarMom, topic_id
from repro.core.runtime import InsaneDeployment
from repro.hw import Testbed


def make(hosts=2, mode="fast", seed=0):
    testbed = Testbed.local(hosts=hosts, seed=seed)
    deployment = InsaneDeployment(testbed)
    nodes = [LunarMom(deployment.runtime(i), mode) for i in range(hosts)]
    return testbed, nodes


class TestTopicHashing:
    def test_topic_id_is_stable(self):
        assert topic_id("sensors/temp") == topic_id("sensors/temp")

    def test_distinct_topics_distinct_ids(self):
        assert topic_id("a") != topic_id("b")

    def test_topic_id_is_a_valid_channel(self):
        assert 0 <= topic_id("any/topic/name") < 2**31


class TestPubSub:
    def test_publish_reaches_remote_subscriber(self):
        testbed, (pub, sub) = make()
        sim = testbed.sim
        got = []
        sub.subscribe("news", lambda topic, payload: got.append(bytes(payload)))

        def publisher():
            yield from pub.publish("news", data=b"hello subscribers")

        sim.process(publisher())
        sim.run()
        assert got == [b"hello subscribers"]

    def test_topic_isolation(self):
        testbed, (pub, sub) = make(seed=1)
        sim = testbed.sim
        weather, sports = [], []
        sub.subscribe("weather", lambda t, p: weather.append(bytes(p)))
        sub.subscribe("sports", lambda t, p: sports.append(bytes(p)))

        def publisher():
            yield from pub.publish("weather", data=b"rain")
            yield from pub.publish("sports", data=b"2-1")

        sim.process(publisher())
        sim.run()
        assert weather == [b"rain"]
        assert sports == [b"2-1"]

    def test_fanout_to_many_hosts(self):
        testbed, nodes = make(hosts=4, seed=2)
        sim = testbed.sim
        publisher, subscribers = nodes[0], nodes[1:]
        hits = []
        for index, node in enumerate(subscribers):
            node.subscribe("broadcast", lambda t, p, i=index: hits.append(i))

        def publish():
            yield from publisher.publish("broadcast", size=128)

        sim.process(publish())
        sim.run()
        assert sorted(hits) == [0, 1, 2]

    def test_publish_with_fill_callback(self):
        testbed, (pub, sub) = make(seed=3)
        sim = testbed.sim
        got = []
        sub.subscribe("filled", lambda t, p: got.append(bytes(p)))

        def publisher():
            yield from pub.publish(
                "filled", size=4, fill=lambda buffer: buffer.write(b"ABCD")
            )

        sim.process(publisher())
        sim.run()
        assert got == [b"ABCD"]

    def test_publish_requires_data_or_size(self):
        testbed, (pub, _sub) = make(seed=4)
        with pytest.raises(ValueError):
            next(pub.publish("bad"))

    def test_local_subscriber_on_same_host(self):
        testbed, (node, _other) = make(seed=5)
        sim = testbed.sim
        got = []
        node.subscribe("loop", lambda t, p: got.append(bytes(p)))

        def publisher():
            yield from node.publish("loop", data=b"local")

        sim.process(publisher())
        sim.run()
        assert got == [b"local"]
        # shared-memory delivery: nothing on the wire
        assert testbed.hosts[0].nic.tx_frames.value == 0

    def test_counters_track_activity(self):
        testbed, (pub, sub) = make(seed=6)
        sim = testbed.sim
        sub.subscribe("counted", lambda t, p: None)

        def publisher():
            for _ in range(5):
                yield from pub.publish("counted", size=16)

        sim.process(publisher())
        sim.run()
        assert pub.published.value == 5
        assert sub.delivered.value == 5

    def test_no_leaks_after_burst(self):
        testbed, (pub, sub) = make(seed=7)
        sim = testbed.sim
        sub.subscribe("leakcheck", lambda t, p: None)

        def publisher():
            for _ in range(50):
                yield from pub.publish("leakcheck", size=256)

        sim.process(publisher())
        sim.run()
        assert pub.runtime.memory.pool.in_use == 0
        assert sub.runtime.memory.pool.in_use == 0

    def test_slow_mode_uses_udp(self):
        testbed, (pub, _sub) = make(mode="slow", seed=8)
        assert pub.stream.datapath == "udp"

    def test_invalid_mode_rejected(self):
        testbed = Testbed.local(seed=9)
        deployment = InsaneDeployment(testbed)
        with pytest.raises(ValueError):
            LunarMom(deployment.runtime(0), "warp")
