"""Fast-engine hop fusion must be bit-identical to the unfused paths.

Three hops were fused for the batched hot-path kernel (DESIGN.md §11):

* ``Session.consume_data(extra_ns=...)`` — IPC charge + app-touch sleep
  collapse into one :class:`TimeoutAt` wake-up;
* ``Link.carry`` — propagation + rx-DMA collapse into one ``schedule_abs``
  that places the frame straight into the NIC ring;
* ready-``Get`` hand-offs — elided entirely when nothing else is runnable
  at the instant.

The legacy *engine* takes none of these shortcuts (no lane, no
``schedule_abs`` attr on the fused paths' guards), so running the same
paper workloads on both engines and comparing final time, event counts,
and results proves the fusions preserve the observable execution exactly.
"""

import pytest

from repro.bench.harness import InsaneBenchApp
from repro.hw import Testbed
from repro.hw.profiles import PROFILES
from repro.simnet import Simulator
from repro.simnet.legacy import LegacySimulator


class TestFusedHopsMatchLegacyEngine:
    @pytest.mark.parametrize("sinks", [1, 3])
    def test_stream_workload_is_engine_invariant(self, sinks):
        results = {}
        for name, engine_cls in (("fast", Simulator), ("legacy", LegacySimulator)):
            sim = engine_cls(seed=0)
            testbed = Testbed(PROFILES["local"], hosts=2, seed=0, sim=sim)
            app = InsaneBenchApp(testbed, "fast")
            meters = app.stream(60, 1024, sinks=sinks)
            results[name] = (
                sim.now,
                sim.stats()["events_executed"],
                [round(m.gbps(), 12) for m in meters],
                sim.failures,
            )
        assert results["fast"] == results["legacy"]

    def test_pingpong_workload_is_engine_invariant(self):
        results = {}
        for name, engine_cls in (("fast", Simulator), ("legacy", LegacySimulator)):
            sim = engine_cls(seed=0)
            testbed = Testbed(PROFILES["local"], hosts=2, seed=0, sim=sim)
            app = InsaneBenchApp(testbed, "fast")
            rtts = app.pingpong(40, 64)
            results[name] = (
                sim.now,
                sim.stats()["events_executed"],
                rtts.count,
                round(rtts.mean, 9),
                sim.failures,
            )
        assert results["fast"] == results["legacy"]
