"""EmitOutcome's string-compatibility contract.

The enum replaced plain string returns; every historical call pattern —
``== "sent"``, membership in string sets, JSON serialization — must keep
working bit-for-bit.
"""

import json

import pytest

from repro.core.outcomes import EmitOutcome

ALL_OUTCOMES = list(EmitOutcome)


class TestStringEquality:
    @pytest.mark.parametrize("outcome", ALL_OUTCOMES)
    def test_compares_equal_to_its_plain_string(self, outcome):
        assert outcome == outcome.value
        assert outcome.value == outcome
        assert not (outcome != outcome.value)

    def test_distinct_outcomes_stay_distinct(self):
        assert EmitOutcome.SENT != "failed"
        assert EmitOutcome.SENT != EmitOutcome.FAILED

    @pytest.mark.parametrize("outcome", ALL_OUTCOMES)
    def test_str_is_the_plain_value(self, outcome):
        assert str(outcome) == outcome.value
        assert "%s" % outcome == outcome.value


class TestSetMembership:
    def test_enum_found_in_string_sets(self):
        # historical call sites: `if outcome in {"sent", "degraded"}`
        assert EmitOutcome.SENT in {"sent", "degraded"}
        assert EmitOutcome.PENDING not in {"sent", "degraded"}

    def test_string_found_in_enum_sets(self):
        delivered = {EmitOutcome.SENT, EmitOutcome.DEGRADED}
        assert "sent" in delivered
        assert "failed" not in delivered

    def test_usable_as_dict_key_interchangeably(self):
        tally = {EmitOutcome.SENT: 3}
        tally["sent"] = tally.get("sent", 0) + 1
        assert tally == {EmitOutcome.SENT: 4}


class TestJsonRoundTrip:
    def test_serializes_as_its_plain_string(self):
        payload = json.dumps({"outcome": EmitOutcome.DEGRADED})
        assert payload == '{"outcome": "degraded"}'

    @pytest.mark.parametrize("outcome", ALL_OUTCOMES)
    def test_round_trips_through_json(self, outcome):
        loaded = json.loads(json.dumps({"o": outcome}))["o"]
        assert loaded == outcome
        assert EmitOutcome(loaded) is outcome


class TestIntCodes:
    def test_codes_are_stable_and_exhaustive(self):
        codes = {outcome: outcome.as_int() for outcome in ALL_OUTCOMES}
        assert codes[EmitOutcome.PENDING] == -1
        assert codes[EmitOutcome.SENT] == 0
        assert len(set(codes.values())) == len(ALL_OUTCOMES)
