"""Process failures must surface, never pass silently."""

import pytest

from repro.core import QosPolicy, Session
from repro.core.runtime import InsaneDeployment
from repro.hw import Testbed


def test_callback_exception_recorded_in_sim_failures():
    bed = Testbed.local(seed=60)
    sim = bed.sim
    deployment = InsaneDeployment(bed)
    tx = Session(deployment.runtime(0), "tx")
    rx = Session(deployment.runtime(1), "rx")
    tx_stream = tx.create_stream(QosPolicy.fast(), name="boom")
    rx_stream = rx.create_stream(QosPolicy.fast(), name="boom")
    source = tx.create_source(tx_stream, channel=1)

    def bad_callback(delivery):
        raise ValueError("application bug")

    rx.create_sink(rx_stream, channel=1, callback=bad_callback)

    def producer():
        buffer = tx.get_buffer(source, 4)
        yield from tx.emit_data(source, buffer, length=4)

    sim.process(producer())
    sim.run()
    assert any(isinstance(exc.cause if hasattr(exc, "cause") else exc, ValueError)
               for _name, exc in sim.failures) or any(
        "application bug" in repr(exc) for _name, exc in sim.failures
    )


def test_healthy_run_records_no_failures():
    bed = Testbed.local(seed=61)
    sim = bed.sim
    deployment = InsaneDeployment(bed)
    tx = Session(deployment.runtime(0), "tx")
    rx = Session(deployment.runtime(1), "rx")
    tx_stream = tx.create_stream(QosPolicy.fast(), name="fine")
    rx_stream = rx.create_stream(QosPolicy.fast(), name="fine")
    source = tx.create_source(tx_stream, channel=1)
    rx.create_sink(rx_stream, channel=1, callback=lambda d: None)

    def producer():
        buffer = tx.get_buffer(source, 4)
        yield from tx.emit_data(source, buffer, length=4)

    sim.process(producer())
    sim.run()
    assert sim.failures == []


def test_polling_threads_survive_application_failures():
    """A crashing app process must not take the runtime down: traffic from
    other applications keeps flowing."""
    bed = Testbed.local(seed=62)
    sim = bed.sim
    deployment = InsaneDeployment(bed)
    good_tx = Session(deployment.runtime(0), "good")
    bad_tx = Session(deployment.runtime(0), "bad")
    rx = Session(deployment.runtime(1), "rx")
    good_stream = good_tx.create_stream(QosPolicy.fast(), name="good")
    bad_stream = bad_tx.create_stream(QosPolicy.fast(), name="good")
    rx_stream = rx.create_stream(QosPolicy.fast(), name="good")
    good_source = good_tx.create_source(good_stream, channel=1)
    bad_source = bad_tx.create_source(bad_stream, channel=1)
    sink = rx.create_sink(rx_stream, channel=1)

    def crasher():
        buffer = bad_tx.get_buffer(bad_source, 4)
        yield from bad_tx.emit_data(bad_source, buffer, length=4)
        raise RuntimeError("segfault simulation")

    def good_producer():
        from repro.simnet import Timeout

        yield Timeout(50_000)  # after the crash
        for _ in range(3):
            buffer = good_tx.get_buffer(good_source, 4)
            yield from good_tx.emit_data(good_source, buffer, length=4)

    sim.process(crasher())
    sim.process(good_producer())
    sim.run()
    assert len(sink.ring) == 4  # the crasher's emit plus three good ones
    assert len(sim.failures) == 1
