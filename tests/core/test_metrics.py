"""Prometheus export tests."""

import re

from repro.core import QosPolicy, Session
from repro.core.metrics import export_deployment, export_runtime
from repro.core.runtime import InsaneDeployment
from repro.hw import Testbed
from tests import promparse

_METRIC_RE = re.compile(r'^insane_[a-z_]+\{[^}]*\} -?\d+(\.\d+)?$')


def run_small_flow(seed=0):
    bed = Testbed.local(seed=seed)
    sim = bed.sim
    deployment = InsaneDeployment(bed)
    tx = Session(deployment.runtime(0), "tx")
    rx = Session(deployment.runtime(1), "rx")
    tx_stream = tx.create_stream(QosPolicy.fast(), name="m")
    rx_stream = rx.create_stream(QosPolicy.fast(), name="m")
    source = tx.create_source(tx_stream, channel=1)
    rx.create_sink(rx_stream, channel=1, callback=lambda d: None)

    def producer():
        for _ in range(7):
            buffer = yield from tx.get_buffer_wait(source, 64)
            yield from tx.emit_data(source, buffer, length=64)

    sim.process(producer())
    sim.run()
    return deployment


def test_every_line_is_well_formed():
    deployment = run_small_flow()
    body = export_deployment(deployment)
    for line in body.strip().splitlines():
        if line.startswith("#"):
            continue
        assert _METRIC_RE.match(line), "malformed metric line: %r" % line


def test_scrape_body_parses_with_exposition_parser():
    """The body must be compliant exposition format: a # HELP/# TYPE
    header per family, TYPE before samples, parseable labels/values."""
    deployment = run_small_flow(seed=4)
    body = export_deployment(deployment)
    families = promparse.parse(body)
    assert "insane_binding_tx_packets_total" in families
    for name, family in families.items():
        assert family["type"] is not None, "family %s missing # TYPE" % name
        assert family["help"] is not None, "family %s missing # HELP" % name
        assert family["samples"], "family %s has no samples" % name
        expected = "counter" if name.endswith("_total") else "gauge"
        assert family["type"] == expected


def test_counter_families_declared_before_samples():
    deployment = run_small_flow(seed=5)
    body = export_deployment(deployment)
    seen_sample = set()
    for line in body.splitlines():
        if line.startswith("# TYPE "):
            name = line.split(" ")[2]
            assert name not in seen_sample, "TYPE after samples for %s" % name
        elif line and not line.startswith("#"):
            seen_sample.add(line.split("{", 1)[0])


def test_counters_reflect_traffic():
    deployment = run_small_flow(seed=1)
    lines = export_runtime(deployment.runtime(0))
    tx_line = next(
        line for line in lines
        if line.startswith("insane_binding_tx_packets_total") and 'datapath="dpdk"' in line
    )
    assert tx_line.endswith(" 7")


def test_per_app_ring_metrics_present():
    deployment = run_small_flow(seed=2)
    lines = export_runtime(deployment.runtime(0))
    assert any('app="tx"' in line and "tx_ring_enqueued_total" in line for line in lines)


def test_deployment_export_covers_all_hosts():
    deployment = run_small_flow(seed=3)
    body = export_deployment(deployment)
    assert 'host="host0"' in body
    assert 'host="host1"' in body


def test_label_escaping():
    from repro.core.metrics import _line

    line = _line("x", {"weird": 'va"lue\\'}, 1)
    assert '\\"' in line and "\\\\" in line


def test_label_newline_escaping_round_trips():
    from repro.core.metrics import _line

    line = _line("x", {"weird": 'multi\nline"v\\al'}, 1)
    assert "\n" not in line  # the raw newline must not split the sample
    families = promparse.parse("# TYPE insane_x gauge\n" + line + "\n")
    ((_name, labels, value),) = families["insane_x"]["samples"]
    assert labels["weird"] == 'multi\nline"v\\al'
    assert value == 1.0
