"""Session-level outstanding-request windows: exact bound, FIFO hand-off."""

import pytest

from repro.core import OutstandingWindow, Session
from repro.core.errors import SessionError
from repro.core.runtime import InsaneDeployment
from repro.hw import Testbed
from repro.simnet import Timeout


def make_session(seed=5):
    testbed = Testbed.local(seed=seed)
    deployment = InsaneDeployment(testbed)
    return testbed.sim, Session(deployment.runtime(0), "win-test")


class TestLimitValidation:
    @pytest.mark.parametrize("limit", (0, -1, True, 1.5, "4", None))
    def test_bad_limits_rejected(self, limit):
        _sim, session = make_session()
        with pytest.raises(SessionError):
            session.outstanding_window(limit)

    def test_session_hook_returns_window(self):
        _sim, session = make_session()
        window = session.outstanding_window(3)
        assert isinstance(window, OutstandingWindow)
        assert window.limit == 3
        assert window.available == 3
        assert len(window) == 0


class TestAcquireRelease:
    def test_uncontended_acquires_never_block(self):
        sim, session = make_session()
        window = session.outstanding_window(2)

        def proc():
            yield from window.acquire()
            yield from window.acquire()
            yield Timeout(1)
            window.release()
            window.release()

        sim.process(proc())
        sim.run()
        assert window.in_flight == 0
        assert window.peak == 2
        assert window.acquired_total == 2
        assert window.blocked_total == 0

    def test_blocked_acquires_wake_fifo_with_slot_handoff(self):
        sim, session = make_session()
        window = session.outstanding_window(2)
        order = []

        def holder():
            yield from window.acquire()
            yield from window.acquire()
            yield Timeout(100)
            window.release()
            yield Timeout(100)
            window.release()

        def waiter(name, delay):
            yield Timeout(delay)
            yield from window.acquire()
            # the hand-off must never let in_flight exceed the limit
            assert window.in_flight <= window.limit
            order.append((name, sim.now))
            window.release()

        sim.process(holder())
        sim.process(waiter("first", 10))
        sim.process(waiter("second", 20))
        sim.run()
        assert [name for name, _ in order] == ["first", "second"]
        # both wake at the first release: first by hand-off from the
        # holder, second by hand-off from first's immediate release
        assert [now for _, now in order] == [100.0, 100.0]
        assert window.in_flight == 0
        assert window.peak == 2
        assert window.blocked_total == 2
        assert window.acquired_total == 4

    def test_over_release_raises(self):
        _sim, session = make_session()
        window = session.outstanding_window(1)
        with pytest.raises(SessionError):
            window.release()
