"""Runtime dispatch edge cases: drops, backpressure, fan-out accounting."""

import pytest

from repro.core import QosPolicy, Session
from repro.core.channel import ChannelKey
from repro.core.config import RuntimeConfig
from repro.core.runtime import INSANE_PORTS, InsaneDeployment
from repro.hw import Testbed
from repro.netstack import Packet


def make(config=None, seed=0, hosts=2):
    testbed = Testbed.local(seed=seed, hosts=hosts)
    return testbed, InsaneDeployment(testbed, config=config)


class TestDropPaths:
    def test_packet_without_insane_header_counted_unknown(self):
        testbed, deployment = make()
        sim = testbed.sim
        rx_runtime = deployment.runtime(1)
        session = Session(rx_runtime, "rx")
        stream = session.create_stream(QosPolicy.fast(), name="x")
        session.create_sink(stream, channel=1)
        # a foreign packet lands on INSANE's DPDK port
        alien = Packet("10.0.0.1", "10.0.0.2", INSANE_PORTS["dpdk"], INSANE_PORTS["dpdk"], payload_len=64)
        testbed.hosts[0].nic.transmit(alien)
        sim.run()
        assert rx_runtime.bindings["dpdk"].unknown_drops.value == 1

    def test_no_local_sink_drop(self):
        testbed, deployment = make()
        sim = testbed.sim
        tx = Session(deployment.runtime(0), "tx")
        rx = Session(deployment.runtime(1), "rx")
        tx_stream = tx.create_stream(QosPolicy.fast(), name="y")
        rx_stream = rx.create_stream(QosPolicy.fast(), name="y")
        source = tx.create_source(tx_stream, channel=1)
        sink = rx.create_sink(rx_stream, channel=1)

        def producer():
            buffer = tx.get_buffer(source, 4)
            yield from tx.emit_data(source, buffer, length=4)

        # close the sink while the packet is in flight
        def closer():
            from repro.simnet import Timeout

            yield Timeout(1_500)
            sink.close()

        sim.process(producer())
        sim.process(closer())
        sim.run()
        assert deployment.runtime(1).bindings["dpdk"].no_sink_drops.value == 1

    def test_receiver_pool_exhaustion_drops(self):
        testbed, deployment = make(config=RuntimeConfig(pool_slots=8), seed=3)
        sim = testbed.sim
        tx = Session(deployment.runtime(0), "tx")
        rx = Session(deployment.runtime(1), "rx")
        tx_stream = tx.create_stream(QosPolicy.fast(), name="z")
        rx_stream = rx.create_stream(QosPolicy.fast(), name="z")
        source = tx.create_source(tx_stream, channel=1)
        sink = rx.create_sink(rx_stream, channel=1)  # nobody consumes

        def producer():
            for _ in range(20):
                buffer = yield from tx.get_buffer_wait(source, 4)
                yield from tx.emit_data(source, buffer, length=4)

        sim.process(producer())
        sim.run()
        binding = deployment.runtime(1).bindings["dpdk"]
        delivered = len(sink.ring)
        assert binding.pool_drops.value > 0
        assert delivered + binding.pool_drops.value == 20

    def test_sink_ring_overflow_drops_and_releases(self):
        testbed, deployment = make(config=RuntimeConfig(ipc_ring_slots=4, pool_slots=256), seed=4)
        sim = testbed.sim
        tx = Session(deployment.runtime(0), "tx")
        rx = Session(deployment.runtime(1), "rx")
        tx_stream = tx.create_stream(QosPolicy.fast(), name="w")
        rx_stream = rx.create_stream(QosPolicy.fast(), name="w")
        source = tx.create_source(tx_stream, channel=1)
        sink = rx.create_sink(rx_stream, channel=1)  # never consumes

        def producer():
            for _ in range(20):
                buffer = yield from tx.get_buffer_wait(source, 4)
                yield from tx.emit_data(source, buffer, length=4)

        sim.process(producer())
        sim.run()
        rx_runtime = deployment.runtime(1)
        assert sink.endpoint.dropped.value > 0
        # dropped tokens released their slots: only ring-resident ones held
        assert rx_runtime.memory.pool.in_use == len(sink.ring)


class TestFanoutAccounting:
    def test_l2_penalty_applies_beyond_ring_budget(self):
        testbed, deployment = make()
        runtime = deployment.runtime(0)
        session = Session(runtime, "app")
        stream = session.create_stream(QosPolicy.fast(), name="f")
        binding = runtime.bindings["dpdk"]
        base = binding._fanout_cost(1)
        # register sinks beyond the L2 budget
        sinks = [session.create_sink(stream, channel=100 + i) for i in range(8)]
        loaded = binding._fanout_cost(1)
        assert loaded > base
        excess = runtime.sink_ring_count - binding.l2_budget
        assert loaded - base == pytest.approx(excess * binding.l2_penalty_ns)
        for sink in sinks:
            sink.close()
        assert binding._fanout_cost(1) == pytest.approx(base)

    def test_fanout_cost_grows_with_sink_count(self):
        testbed, deployment = make()
        runtime = deployment.runtime(0)
        Session(runtime, "app").create_stream(QosPolicy.fast(), name="g")
        binding = runtime.bindings["dpdk"]
        assert binding._fanout_cost(0) == 0.0
        assert binding._fanout_cost(3) > binding._fanout_cost(1)


class TestControlPlane:
    def test_runtime_registration_conflicts(self):
        testbed, deployment = make()
        from repro.core.runtime import InsaneRuntime

        with pytest.raises(ValueError):
            InsaneRuntime(testbed.hosts[0], deployment.control)

    def test_subscriptions_follow_sink_lifecycle(self):
        testbed, deployment = make()
        rx = Session(deployment.runtime(1), "rx")
        stream = rx.create_stream(QosPolicy.slow(), name="subs")
        key = ChannelKey("subs", 9)
        assert deployment.control.remote_subscribers(key, "10.0.0.1") == []
        sink = rx.create_sink(stream, channel=9)
        assert deployment.control.remote_subscribers(key, "10.0.0.1") == [
            ("10.0.0.2", frozenset({"udp"}))
        ]
        # a local query excludes the subscriber's own host
        assert deployment.control.remote_subscribers(key, "10.0.0.2") == []
        sink.close()
        assert deployment.control.remote_subscribers(key, "10.0.0.1") == []

    def test_shutdown_unregisters_everything(self):
        testbed, deployment = make()
        rx = Session(deployment.runtime(1), "rx")
        stream = rx.create_stream(QosPolicy.slow(), name="down")
        rx.create_sink(stream, channel=1)
        deployment.runtime(1).shutdown()
        testbed.sim.run()
        assert deployment.control.runtime_at("10.0.0.2") is None


class TestEmitOutcomeIds:
    def test_outcomes_are_per_source_unique(self):
        testbed, deployment = make()
        sim = testbed.sim
        tx = Session(deployment.runtime(0), "tx")
        stream = tx.create_stream(QosPolicy.fast(), name="ids")
        source_a = tx.create_source(stream, channel=1)
        source_b = tx.create_source(stream, channel=2)
        ids = []

        def producer():
            for source in (source_a, source_b):
                buffer = tx.get_buffer(source, 4)
                emit_id = yield from tx.emit_data(source, buffer, length=4)
                ids.append(emit_id)

        sim.process(producer())
        sim.run()
        assert len(set(ids)) == 2
