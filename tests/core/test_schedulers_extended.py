"""Tests for the strict-priority and deficit-round-robin schedulers, and
their integration as the runtime's best-effort strategy."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.scheduler import (
    CLASS_BEST_EFFORT,
    CLASS_TIME_SENSITIVE,
    DrrScheduler,
    PriorityScheduler,
    scheduler_for,
)


class _Item:
    def __init__(self, name, size):
        self.name = name
        self.payload_len = size

    def __repr__(self):
        return self.name


class TestPriorityScheduler:
    def test_high_class_preempts(self):
        scheduler = PriorityScheduler()
        scheduler.push("be1", CLASS_BEST_EFFORT)
        scheduler.push("ts1", CLASS_TIME_SENSITIVE)
        scheduler.push("be2", CLASS_BEST_EFFORT)
        assert scheduler.pop_ready(0, 10) == ["ts1", "be1", "be2"]

    def test_fifo_within_class(self):
        scheduler = PriorityScheduler()
        for name in ("a", "b", "c"):
            scheduler.push(name, CLASS_BEST_EFFORT)
        assert scheduler.pop_ready(0, 2) == ["a", "b"]

    def test_next_ready(self):
        scheduler = PriorityScheduler()
        assert scheduler.next_ready_at(5) is None
        scheduler.push("x")
        assert scheduler.next_ready_at(5) == 5


class TestDrrScheduler:
    def test_fair_share_between_flows(self):
        scheduler = DrrScheduler(quantum=1000)
        for index in range(10):
            scheduler.push(_Item("big%d" % index, 1000), flow="hog")
        for index in range(10):
            scheduler.push(_Item("small%d" % index, 1000), flow="paced")
        batch = scheduler.pop_ready(0, 10)
        names = [item.name for item in batch]
        hog = sum(1 for name in names if name.startswith("big"))
        paced = sum(1 for name in names if name.startswith("small"))
        assert abs(hog - paced) <= 1  # equal byte rates

    def test_byte_fairness_with_unequal_sizes(self):
        """A flow of 4x-larger packets gets ~1/4 the packet rate."""
        scheduler = DrrScheduler(quantum=1000)
        for index in range(40):
            scheduler.push(_Item("fat%d" % index, 4000), flow="fat")
            scheduler.push(_Item("thin%d" % index, 1000), flow="thin")
        batch = scheduler.pop_ready(0, 25)
        fat = sum(1 for item in batch if item.name.startswith("fat"))
        thin = sum(1 for item in batch if item.name.startswith("thin"))
        assert thin >= 3 * fat

    def test_single_flow_drains_in_order(self):
        scheduler = DrrScheduler(quantum=100)
        for index in range(5):
            scheduler.push(_Item("m%d" % index, 50), flow="only")
        batch = scheduler.pop_ready(0, 10)
        assert [item.name for item in batch] == ["m0", "m1", "m2", "m3", "m4"]

    def test_oversized_item_accumulates_deficit(self):
        scheduler = DrrScheduler(quantum=100)
        scheduler.push(_Item("huge", 250), flow="f")
        assert scheduler.pop_ready(0, 10) == []  # needs more rounds
        batch = scheduler.pop_ready(0, 10)
        # the deficit kept accruing: eventually the item clears
        remaining = scheduler.pop_ready(0, 10)
        assert len(batch) + len(remaining) == 1

    def test_empty_flow_resets_deficit(self):
        scheduler = DrrScheduler(quantum=100)
        scheduler.push(_Item("a", 100), flow="f")
        scheduler.pop_ready(0, 10)
        assert scheduler._deficits["f"] == 0
        assert len(scheduler) == 0

    def test_invalid_quantum(self):
        with pytest.raises(ValueError):
            DrrScheduler(quantum=0)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.sampled_from(["a", "b", "c"]), st.integers(64, 4096)),
            min_size=1,
            max_size=60,
        )
    )
    def test_property_work_conserving(self, pushes):
        """Everything pushed is eventually popped, exactly once."""
        scheduler = DrrScheduler(quantum=1500)
        items = []
        for flow, size in pushes:
            item = _Item("%s-%d" % (flow, len(items)), size)
            items.append(item)
            scheduler.push(item, flow=flow)
        popped = []
        for _ in range(200):
            batch = scheduler.pop_ready(0, 8)
            if not batch and len(scheduler) == 0:
                break
            popped.extend(batch)
        assert sorted(i.name for i in popped) == sorted(i.name for i in items)


class TestFactory:
    def test_factory_variants(self):
        from repro.core.scheduler import FifoScheduler, TsnScheduler

        assert isinstance(scheduler_for(True), TsnScheduler)
        assert isinstance(scheduler_for(False), FifoScheduler)
        assert isinstance(scheduler_for(False, best_effort="drr"), DrrScheduler)
        assert isinstance(scheduler_for(False, best_effort="priority"), PriorityScheduler)
        with pytest.raises(ValueError):
            scheduler_for(False, best_effort="lifo")


class TestRuntimeIntegration:
    def test_drr_protects_paced_tenant_from_flooding_tenant(self):
        """Two applications share the DPDK binding; with DRR the paced
        tenant's latency stays low despite the flood."""
        import struct

        from repro.core import QosPolicy, Session
        from repro.core.config import RuntimeConfig
        from repro.core.runtime import InsaneDeployment
        from repro.hw import Testbed
        from repro.simnet import Tally, Timeout

        def run(scheduler):
            testbed = Testbed.local(hosts=3, seed=7)
            sim = testbed.sim
            deployment = InsaneDeployment(
                testbed, config=RuntimeConfig(best_effort_scheduler=scheduler)
            )
            paced = Session(deployment.runtime(0), "paced")
            hog = Session(deployment.runtime(0), "hog")
            rx_paced = Session(deployment.runtime(1), "rx-paced")
            rx_hog = Session(deployment.runtime(2), "rx-hog")
            fast = QosPolicy.fast()
            paced_stream = paced.create_stream(fast, name="paced")
            rx_paced_stream = rx_paced.create_stream(fast, name="paced")
            hog_stream = hog.create_stream(fast, name="hog")
            rx_hog_stream = rx_hog.create_stream(fast, name="hog")
            paced_source = paced.create_source(paced_stream, channel=1)
            paced_sink = rx_paced.create_sink(rx_paced_stream, channel=1)
            hog_source = hog.create_source(hog_stream, channel=2)
            rx_hog.create_sink(rx_hog_stream, channel=2, callback=lambda d: None)
            latencies = Tally(scheduler)

            def flood():
                while True:
                    buffer = yield from hog.get_buffer_wait(hog_source, 8192)
                    yield from hog.emit_data(hog_source, buffer, length=8192)

            def paced_sender():
                for _ in range(80):
                    buffer = yield from paced.get_buffer_wait(paced_source, 64)
                    buffer.write(struct.pack("!Q", int(sim.now)))
                    yield from paced.emit_data(paced_source, buffer, length=64)
                    yield Timeout(20_000)

            def paced_receiver():
                while True:
                    delivery = yield from rx_paced.consume_data(paced_sink)
                    (sent,) = struct.unpack("!Q", bytes(delivery.buffer.view[:8]))
                    latencies.record(sim.now - sent)
                    rx_paced.release_buffer(paced_sink, delivery)

            sim.process(flood())
            sim.process(paced_receiver())
            sim.process(paced_sender())
            sim.run(until=6_000_000)
            return latencies

        fifo = run("fifo")
        drr = run("drr")
        assert drr.count > 0
        assert drr.mean < fifo.mean