"""Stateful property tests of the slot pool (hypothesis state machines).

The memory manager is the middleware's highest-risk surface: every message
crosses it, and multi-sink delivery shares slots by refcount.  The machine
below drives random interleavings of alloc / write / addref / release and
checks, at every step, the invariants the rest of the system relies on:

* conservation: free + live == total slots;
* isolation: a slot's bytes never change unless written through its
  own buffer;
* no resurrection: released slots cannot be used again through stale
  handles.
"""

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule
import hypothesis.strategies as st

from repro.core.errors import BufferLifecycleError
from repro.core.memory import SlotPool
from repro.simnet import Simulator

SLOTS = 6
SLOT_BYTES = 16


class SlotPoolMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.pool = SlotPool(Simulator(), slots=SLOTS, slot_bytes=SLOT_BYTES, name="sm")
        self.live = {}      # buffer -> (expected_bytes, refcount)
        self.counter = 0

    # -- rules ---------------------------------------------------------------

    @rule()
    def alloc(self):
        buffer = self.pool.try_alloc()
        if buffer is None:
            assert self.pool.free_slots == 0
            return
        self.counter += 1
        pattern = bytes([self.counter % 256]) * 8
        buffer.write(pattern)
        self.live[buffer] = [pattern, 1]

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def addref(self, data):
        buffer = data.draw(st.sampled_from(sorted(self.live, key=lambda b: b.slot_id)))
        self.pool.addref(buffer)
        self.live[buffer][1] += 1

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def release(self, data):
        buffer = data.draw(st.sampled_from(sorted(self.live, key=lambda b: b.slot_id)))
        self.pool.release(buffer)
        self.live[buffer][1] -= 1
        if self.live[buffer][1] == 0:
            del self.live[buffer]

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def rewrite(self, data):
        buffer = data.draw(st.sampled_from(sorted(self.live, key=lambda b: b.slot_id)))
        if buffer.frozen:
            return
        self.counter += 1
        pattern = bytes([self.counter % 256]) * 8
        buffer.write(pattern)
        self.live[buffer][0] = pattern

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def freeze_then_write_fails(self, data):
        buffer = data.draw(st.sampled_from(sorted(self.live, key=lambda b: b.slot_id)))
        buffer.freeze()
        try:
            buffer.write(b"nope")
            raise AssertionError("write after freeze must fail")
        except BufferLifecycleError:
            pass

    # -- invariants ---------------------------------------------------------------

    @invariant()
    def conservation(self):
        assert self.pool.free_slots + self.pool.in_use == SLOTS
        assert self.pool.in_use == len(self.live)

    @invariant()
    def isolation(self):
        for buffer, (expected, _refs) in self.live.items():
            assert bytes(buffer.view[: len(expected)]) == expected

    @invariant()
    def lookup_consistency(self):
        for buffer in self.live:
            assert self.pool.lookup(buffer.slot_id) is buffer


TestSlotPoolStateful = SlotPoolMachine.TestCase
TestSlotPoolStateful.settings = settings(max_examples=40, stateful_step_count=40, deadline=None)
