"""Tests for the Fig. 2 functional API wrappers."""

from repro.core import api
from repro.core.qos import QosPolicy
from repro.core.runtime import InsaneDeployment
from repro.hw import Testbed


def test_full_fig2_vocabulary_round_trip():
    """Exercise every Fig. 2 primitive by name, end to end."""
    testbed = Testbed.local(seed=21)
    sim = testbed.sim
    deployment = InsaneDeployment(testbed)

    tx_session = api.init_session(deployment.runtime(0), "fig2-tx")
    rx_session = api.init_session(deployment.runtime(1), "fig2-rx")
    tx_stream = api.create_stream(tx_session, QosPolicy.fast(), name="fig2")
    rx_stream = api.create_stream(rx_session, QosPolicy.fast(), name="fig2")
    source = api.create_source(tx_session, tx_stream, channel=4)
    sink = api.create_sink(rx_session, rx_stream, channel=4)
    outcome = {}
    received = []

    def producer():
        buffer = api.get_buffer(tx_session, source, 16)
        buffer.write(b"fig2 round trip!")
        emit_id = yield from api.emit_data(tx_session, source, buffer)
        from repro.simnet import Timeout

        yield Timeout(20_000)
        outcome["status"] = api.check_emit_outcome(tx_session, source, emit_id)

    def consumer():
        delivery = yield from api.consume_data(rx_session, sink)
        received.append(bytes(delivery.payload()))
        assert not api.data_available(rx_session, sink)
        api.release_buffer(rx_session, sink, delivery)

    sim.process(producer())
    sim.process(consumer())
    sim.run()

    assert received == [b"fig2 round trip!"]
    assert outcome["status"] == "sent"

    api.close_source(tx_session, source)
    api.close_sink(rx_session, sink)
    api.close_stream(tx_session, tx_stream)
    api.close_stream(rx_session, rx_stream)
    assert api.close_session(tx_session) == 0
    assert api.close_session(rx_session) == 0


def test_callback_sink_via_api():
    testbed = Testbed.local(seed=22)
    sim = testbed.sim
    deployment = InsaneDeployment(testbed)
    tx_session = api.init_session(deployment.runtime(0))
    rx_session = api.init_session(deployment.runtime(1))
    tx_stream = api.create_stream(tx_session, QosPolicy.slow(), name="cbapi")
    rx_stream = api.create_stream(rx_session, QosPolicy.slow(), name="cbapi")
    source = api.create_source(tx_session, tx_stream, channel=1)
    got = []
    api.create_sink(rx_session, rx_stream, channel=1, data_cb=lambda d: got.append(d.length))

    def producer():
        buffer = api.get_buffer(tx_session, source, 32)
        yield from api.emit_data(tx_session, source, buffer, length=32)

    sim.process(producer())
    sim.run()
    assert got == [32]


def test_nonblocking_consume_returns_none():
    testbed = Testbed.local(seed=23)
    sim = testbed.sim
    deployment = InsaneDeployment(testbed)
    session = api.init_session(deployment.runtime(0))
    stream = api.create_stream(session, QosPolicy.slow(), name="nb")
    sink = api.create_sink(session, stream, channel=1)
    results = []

    def poller():
        value = yield from api.consume_data(session, sink, blocking=False)
        results.append(value)

    sim.process(poller())
    sim.run()
    assert results == [None]
