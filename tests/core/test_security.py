"""Access-control tests (paper §8, Security)."""

import pytest

from repro.core import QosPolicy, Session
from repro.core.config import RuntimeConfig
from repro.core.runtime import InsaneDeployment
from repro.core.security import (
    RIGHT_PUBLISH,
    RIGHT_SUBSCRIBE,
    AccessController,
    Credential,
    SecurityError,
)
from repro.hw import Testbed
from repro.simnet import Simulator

SECRET = b"provider-secret"


class TestAccessController:
    def make(self):
        sim = Simulator()
        return sim, AccessController(SECRET, sim=sim)

    def test_issue_and_verify(self):
        sim, controller = self.make()
        credential = controller.issue("app", "telemetry", {RIGHT_PUBLISH})
        assert controller.check(credential, "app", "telemetry", RIGHT_PUBLISH)

    def test_right_not_granted(self):
        sim, controller = self.make()
        credential = controller.issue("app", "telemetry", {RIGHT_PUBLISH})
        assert not controller.check(credential, "app", "telemetry", RIGHT_SUBSCRIBE)

    def test_wrong_app_or_stream(self):
        sim, controller = self.make()
        credential = controller.issue("app", "telemetry", {RIGHT_PUBLISH})
        assert not controller.check(credential, "other", "telemetry", RIGHT_PUBLISH)
        assert not controller.check(credential, "app", "control", RIGHT_PUBLISH)

    def test_tampered_signature_rejected(self):
        sim, controller = self.make()
        good = controller.issue("app", "telemetry", {RIGHT_PUBLISH, RIGHT_SUBSCRIBE})
        forged = Credential(
            good.app_id, good.stream, frozenset({RIGHT_PUBLISH}), None, good.signature
        )
        assert not controller.check(forged, "app", "telemetry", RIGHT_PUBLISH)

    def test_foreign_secret_rejected(self):
        sim, controller = self.make()
        foreign = AccessController(b"other-secret", sim=sim)
        credential = foreign.issue("app", "telemetry", {RIGHT_PUBLISH})
        assert not controller.check(credential, "app", "telemetry", RIGHT_PUBLISH)

    def test_expiry(self):
        sim, controller = self.make()
        credential = controller.issue("app", "t", {RIGHT_PUBLISH}, ttl_ns=1000)
        assert controller.check(credential, "app", "t", RIGHT_PUBLISH)
        sim.schedule(2000, lambda: None)
        sim.run()
        assert not controller.check(credential, "app", "t", RIGHT_PUBLISH)

    def test_missing_credential_denied_and_audited(self):
        sim, controller = self.make()
        with pytest.raises(SecurityError):
            controller.enforce(None, "app", "t", RIGHT_PUBLISH)
        assert controller.denials == 1
        assert controller.audit[-1][4] is False

    def test_invalid_rights_rejected_at_issue(self):
        sim, controller = self.make()
        with pytest.raises(ValueError):
            controller.issue("app", "t", {"fly"})
        with pytest.raises(ValueError):
            controller.issue("app", "t", set())

    def test_empty_secret_rejected(self):
        with pytest.raises(ValueError):
            AccessController(b"")


class TestRuntimeEnforcement:
    def make_deployment(self):
        bed = Testbed.local(seed=50)
        controller = AccessController(SECRET, sim=bed.sim)
        deployment = InsaneDeployment(
            bed, config=RuntimeConfig(access_controller=controller)
        )
        return bed, deployment, controller

    def test_authorized_flow_works_end_to_end(self):
        bed, deployment, controller = self.make_deployment()
        sim = bed.sim
        tx = Session(deployment.runtime(0), "tx")
        rx = Session(deployment.runtime(1), "rx")
        tx.present(controller.issue("tx", "secured", {RIGHT_PUBLISH}))
        rx.present(controller.issue("rx", "secured", {RIGHT_SUBSCRIBE}))
        tx_stream = tx.create_stream(QosPolicy.fast(), name="secured")
        rx_stream = rx.create_stream(QosPolicy.fast(), name="secured")
        source = tx.create_source(tx_stream, channel=1)
        got = []
        rx.create_sink(rx_stream, channel=1, callback=lambda d: got.append(d.length))

        def producer():
            buffer = tx.get_buffer(source, 8)
            yield from tx.emit_data(source, buffer, length=8)

        sim.process(producer())
        sim.run()
        assert got == [8]

    def test_unauthorized_publish_rejected(self):
        bed, deployment, controller = self.make_deployment()
        session = Session(deployment.runtime(0), "intruder")
        stream = session.create_stream(QosPolicy.fast(), name="secured")
        with pytest.raises(SecurityError):
            session.create_source(stream, channel=1)

    def test_subscribe_only_credential_cannot_publish(self):
        bed, deployment, controller = self.make_deployment()
        session = Session(deployment.runtime(0), "reader")
        session.present(controller.issue("reader", "secured", {RIGHT_SUBSCRIBE}))
        stream = session.create_stream(QosPolicy.fast(), name="secured")
        session.create_sink(stream, channel=1)  # allowed
        with pytest.raises(SecurityError):
            session.create_source(stream, channel=1)

    def test_open_runtime_stays_open(self):
        """Without a controller configured, INSANE behaves as the paper's
        prototype: no built-in access control."""
        bed = Testbed.local(seed=51)
        deployment = InsaneDeployment(bed)
        session = Session(deployment.runtime(0), "anyone")
        stream = session.create_stream(QosPolicy.fast(), name="open")
        session.create_source(stream, channel=1)
        session.create_sink(stream, channel=2)
