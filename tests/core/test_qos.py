"""QoS policy and mapping-strategy tests (paper §5.2)."""

import pytest

from repro.core.errors import NoDatapathError
from repro.core.qos import (
    Acceleration,
    MappingDecision,
    QosPolicy,
    ResourceBudget,
    TimeSensitivity,
    default_strategy,
    resolve_mapping,
)

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
except ImportError:   # hypothesis is an optional test extra
    st = None

ALL = frozenset({"udp", "xdp", "dpdk", "rdma"})
NO_HW = frozenset({"udp", "xdp", "dpdk"})   # typical cloud: no RDMA NIC
KERNEL_ONLY = frozenset({"udp"})


class TestDefaultStrategy:
    def test_no_acceleration_always_udp(self):
        for available in (ALL, NO_HW, KERNEL_ONLY):
            decision = default_strategy(QosPolicy.slow(), available)
            assert decision.datapath == "udp"
            assert not decision.fallback

    def test_rdma_preferred_when_present(self):
        decision = default_strategy(QosPolicy.fast(), ALL)
        assert decision.datapath == "rdma"

    def test_dpdk_when_no_rdma_and_unconstrained(self):
        decision = default_strategy(QosPolicy.fast(), NO_HW)
        assert decision.datapath == "dpdk"

    def test_xdp_when_resources_constrained(self):
        decision = default_strategy(QosPolicy.fast(constrained=True), NO_HW)
        assert decision.datapath == "xdp"

    def test_constrained_falls_to_dpdk_if_no_xdp(self):
        decision = default_strategy(QosPolicy.fast(constrained=True), frozenset({"udp", "dpdk"}))
        assert decision.datapath == "dpdk"

    def test_fallback_to_udp_with_warning(self):
        decision = default_strategy(QosPolicy.fast(), KERNEL_ONLY)
        assert decision.datapath == "udp"
        assert decision.fallback
        assert "falling back" in decision.warning

    def test_rdma_chosen_even_when_constrained(self):
        # RDMA offloads to hardware: best performance for low resource usage
        decision = default_strategy(QosPolicy.fast(constrained=True), ALL)
        assert decision.datapath == "rdma"


class TestResolveMapping:
    def test_custom_strategy_returning_name(self):
        decision = resolve_mapping(QosPolicy.fast(), ALL, strategy=lambda p, a: "xdp")
        assert decision.datapath == "xdp"

    def test_custom_strategy_returning_decision(self):
        custom = MappingDecision("dpdk", fallback=False)
        decision = resolve_mapping(QosPolicy.fast(), ALL, strategy=lambda p, a: custom)
        assert decision is custom

    def test_unavailable_choice_raises(self):
        with pytest.raises(NoDatapathError):
            resolve_mapping(QosPolicy.fast(), KERNEL_ONLY, strategy=lambda p, a: "rdma")

    def test_default_strategy_used_when_none(self):
        assert resolve_mapping(QosPolicy.slow(), ALL).datapath == "udp"


class TestQosPolicy:
    def test_slow_factory(self):
        policy = QosPolicy.slow()
        assert policy.acceleration is Acceleration.NONE
        assert policy.time_sensitivity is TimeSensitivity.BEST_EFFORT

    def test_fast_factory_variants(self):
        assert QosPolicy.fast().resources is ResourceBudget.UNCONSTRAINED
        assert QosPolicy.fast(constrained=True).resources is ResourceBudget.CONSTRAINED
        assert (
            QosPolicy.fast(time_sensitive=True).time_sensitivity
            is TimeSensitivity.TIME_SENSITIVE
        )

    def test_policy_is_hashable_and_frozen(self):
        policy = QosPolicy.fast()
        assert hash(policy) == hash(QosPolicy.fast())
        with pytest.raises(Exception):
            policy.acceleration = Acceleration.NONE


if st is not None:

    def _any_policy(accelerated, constrained, time_sensitive):
        if not accelerated:
            return QosPolicy.slow()
        return QosPolicy.fast(
            constrained=constrained, time_sensitive=time_sensitive
        )

    policies = st.builds(
        _any_policy, st.booleans(), st.booleans(), st.booleans()
    )
    # every availability set a testbed can produce: kernel UDP always exists
    availability = st.sets(st.sampled_from(sorted(ALL - KERNEL_ONLY))).map(
        lambda extras: frozenset(extras) | KERNEL_ONLY
    )

    class TestMappingProperties:
        """Property versions of the mapping contract (paper §5.2)."""

        @settings(max_examples=100, deadline=None)
        @given(policy=policies, available=availability)
        def test_decision_respects_policy_and_availability(
            self, policy, available
        ):
            decision = default_strategy(policy, available)
            assert decision.datapath in available
            if policy.acceleration is Acceleration.NONE:
                # a slow policy never lands on an accelerated datapath
                assert decision.datapath == "udp"
                assert not decision.fallback
            else:
                # an accelerated policy hits the kernel path only as an
                # explicit, warned fallback
                assert decision.fallback == (decision.datapath == "udp")
                if decision.fallback:
                    assert "falling back" in decision.warning

        @settings(max_examples=100, deadline=None)
        @given(policy=policies, available=availability)
        def test_adding_datapaths_never_forces_a_fallback(
            self, policy, available
        ):
            smaller = default_strategy(policy, available)
            fuller = default_strategy(policy, ALL)
            if not smaller.fallback:
                assert not fuller.fallback

        @settings(max_examples=50, deadline=None)
        @given(policy=policies, available=availability)
        def test_strategy_is_deterministic(self, policy, available):
            first = default_strategy(policy, available)
            second = default_strategy(policy, available)
            assert first.datapath == second.datapath
            assert first.fallback == second.fallback

        @settings(max_examples=50, deadline=None)
        @given(policy=policies, available=availability)
        def test_resolve_mapping_agrees_with_default_strategy(
            self, policy, available
        ):
            assert (
                resolve_mapping(policy, available).datapath
                == default_strategy(policy, available).datapath
            )
