"""The redesigned API surface: context managers, typed QoS construction,
the error-code space, and the EmitOutcome enum."""

import pytest

from repro.core import (
    ERROR_CODES,
    BufferLifecycleError,
    DatapathFailedError,
    EmitOutcome,
    FaultInjectionError,
    InsaneError,
    NoDatapathError,
    PoolExhaustedError,
    QosPolicy,
    QosValidationError,
    Session,
    SessionError,
    TransferError,
    UtcpError,
    api,
)
from repro.core.qos import Acceleration, ResourceBudget, TimeSensitivity
from repro.core.runtime import InsaneDeployment, InsaneRuntime
from repro.hw import Testbed


def make_runtime(seed=0):
    testbed = Testbed.local(seed=seed)
    return testbed, InsaneDeployment(testbed).runtime(0)


class TestContextManagers:
    def test_session_with_block_closes(self):
        _, runtime = make_runtime()
        with Session(runtime, "app") as session:
            stream = session.create_stream(QosPolicy.fast(), name="s")
            session.create_source(stream, channel=1)
            assert not session.closed
        assert session.closed
        assert stream.closed

    def test_session_close_is_idempotent(self):
        _, runtime = make_runtime()
        session = Session(runtime, "app")
        session.close()
        assert session.close() == 0  # second close: no-op, nothing reclaimed

    def test_endpoint_with_blocks(self):
        _, runtime = make_runtime()
        with Session(runtime, "app") as session:
            with session.create_stream(QosPolicy.fast(), name="s") as stream:
                with session.create_source(stream, channel=1) as source, \
                        session.create_sink(stream, channel=2) as sink:
                    assert not source.closed and not sink.closed
                assert source.closed and sink.closed
                assert stream.sources == [] and stream.sinks == []
            assert stream.closed
        # closing everything twice is harmless
        stream.close()
        source.close()
        sink.close()

    def test_runtime_and_deployment_with_blocks(self):
        testbed = Testbed.local(seed=0)
        with InsaneDeployment(testbed) as deployment:
            runtime = deployment.runtime(0)
            with Session(runtime, "app") as session:
                session.create_stream(QosPolicy.fast(), name="s")
        # deployment exit shut every runtime down, idempotently
        deployment.shutdown()
        testbed2 = Testbed.local(seed=1)
        with InsaneRuntime(testbed2.hosts[0]) as runtime2:
            pass
        runtime2.shutdown()  # second shutdown: no-op

    def test_closed_session_rejects_use(self):
        _, runtime = make_runtime()
        session = Session(runtime, "app")
        session.close()
        with pytest.raises(SessionError):
            session.create_stream(QosPolicy.fast(), name="s")


class TestQosConstruction:
    def test_from_kwargs_matches_presets(self):
        assert QosPolicy.from_kwargs(acceleration="fast") == QosPolicy.fast()
        assert QosPolicy.from_kwargs(acceleration="slow") == QosPolicy.slow()
        assert (
            QosPolicy.from_kwargs(acceleration="fast", constrained=True)
            == QosPolicy.fast(constrained=True)
        )

    def test_from_kwargs_accepts_enums(self):
        policy = QosPolicy.from_kwargs(
            acceleration=Acceleration.ACCELERATED,
            resources=ResourceBudget.UNCONSTRAINED,
            time_sensitivity=TimeSensitivity.TIME_SENSITIVE,
        )
        assert policy.acceleration is Acceleration.ACCELERATED
        assert policy.time_sensitivity is TimeSensitivity.TIME_SENSITIVE

    def test_unknown_option_raises_typed(self):
        with pytest.raises(QosValidationError) as excinfo:
            QosPolicy.from_kwargs(speed="ludicrous")
        assert "speed" in str(excinfo.value)
        assert isinstance(excinfo.value, ValueError)  # generic handlers work

    def test_invalid_value_raises_typed(self):
        with pytest.raises(QosValidationError):
            QosPolicy.from_kwargs(acceleration="warp")

    def test_builder_fluent_chain(self):
        policy = QosPolicy.build().accelerated().constrained().time_sensitive().done()
        assert policy.acceleration is Acceleration.ACCELERATED
        assert policy.resources is ResourceBudget.CONSTRAINED
        assert policy.time_sensitivity is TimeSensitivity.TIME_SENSITIVE

    def test_builder_contradiction_raises_at_the_call(self):
        builder = QosPolicy.build().accelerated()
        with pytest.raises(QosValidationError):
            builder.kernel()

    def test_api_make_options(self):
        assert api.make_options(acceleration="fast") == QosPolicy.fast()
        with pytest.raises(QosValidationError):
            api.make_options(nope=1)


class TestErrorSurface:
    def test_every_error_is_an_insane_error_with_a_code(self):
        classes = [
            SessionError, PoolExhaustedError, BufferLifecycleError,
            NoDatapathError, QosValidationError, DatapathFailedError,
            FaultInjectionError, TransferError, UtcpError,
        ]
        for cls in classes:
            assert issubclass(cls, InsaneError)
            assert isinstance(cls.code, int) and cls.code > 0
            assert ERROR_CODES[cls.__name__] == cls.code

    def test_codes_are_unique(self):
        codes = list(ERROR_CODES.values())
        assert len(codes) == len(set(codes))
        assert ERROR_CODES["INSANE_OK"] == 0

    def test_stdlib_compat_inheritance(self):
        # generic handlers written against stdlib exceptions keep working
        assert issubclass(QosValidationError, ValueError)
        assert issubclass(UtcpError, ConnectionError)
        assert issubclass(InsaneError, RuntimeError)

    def test_instance_code_override(self):
        err = InsaneError("specific", code=99)
        assert err.code == 99
        assert InsaneError("generic").code == 1


class TestEmitOutcome:
    def test_compares_equal_to_plain_strings(self):
        assert EmitOutcome.SENT == "sent"
        assert EmitOutcome.PENDING == "pending"
        assert EmitOutcome.DEGRADED == "degraded"
        assert str(EmitOutcome.NO_SUBSCRIBERS) == "no_subscribers"

    def test_as_int_is_a_c_style_code_space(self):
        assert EmitOutcome.SENT.as_int() == 0
        assert EmitOutcome.PENDING.as_int() == -1
        codes = [outcome.as_int() for outcome in EmitOutcome]
        assert len(codes) == len(set(codes))

    def test_check_emit_outcome_returns_the_enum(self):
        testbed, runtime = make_runtime()
        with Session(runtime, "app") as session:
            stream = session.create_stream(QosPolicy.fast(), name="s")
            source = session.create_source(stream, channel=1)
            emitted = []

            def producer():
                buffer = yield from session.get_buffer_wait(source, 64)
                emit_id = yield from session.emit_data(source, buffer, length=64)
                emitted.append(emit_id)

            testbed.sim.process(producer())
            testbed.sim.run()
            outcome = session.check_emit_outcome(source, emitted[0])
            assert isinstance(outcome, EmitOutcome)
            assert outcome is EmitOutcome.NO_SUBSCRIBERS
