"""Failure injection and dynamic re-deployment (migration) tests.

INSANE is explicitly best-effort (paper §5.2: no built-in fault-tolerance
semantics) and explicitly built for components that "migrate seamlessly at
runtime" (§1).  These tests verify both properties hold in the
implementation: loss degrades gracefully without leaking resources, and an
application can detach from one runtime and reattach at another while its
peers keep working, unchanged.
"""

import pytest

from repro.core import QosPolicy, Session
from repro.core.runtime import InsaneDeployment
from repro.hw import Testbed
from repro.simnet import Timeout


class TestLinkLoss:
    def run_lossy_flow(self, loss_rate, messages=200, seed=0):
        testbed = Testbed.local(seed=seed)
        for link in testbed.links:
            link.loss_rate = loss_rate
        sim = testbed.sim
        deployment = InsaneDeployment(testbed)
        tx = Session(deployment.runtime(0), "tx")
        rx = Session(deployment.runtime(1), "rx")
        tx_stream = tx.create_stream(QosPolicy.fast(), name="lossy")
        rx_stream = rx.create_stream(QosPolicy.fast(), name="lossy")
        source = tx.create_source(tx_stream, channel=1)
        sink = rx.create_sink(rx_stream, channel=1)

        def producer():
            for _ in range(messages):
                buffer = yield from tx.get_buffer_wait(source, 64)
                yield from tx.emit_data(source, buffer, length=64)

        sim.process(producer())
        sim.run()
        return testbed, deployment, sink, messages

    def test_loss_free_link_delivers_everything(self):
        testbed, _deployment, sink, messages = self.run_lossy_flow(0.0)
        assert len(sink.ring) == messages

    def test_lossy_link_degrades_gracefully(self):
        testbed, _deployment, sink, messages = self.run_lossy_flow(0.2, seed=1)
        lost = sum(link.lost_frames.value for link in testbed.links)
        assert lost > 0
        assert len(sink.ring) == messages - lost

    def test_loss_does_not_leak_sender_slots(self):
        """Sender-side slots are released at wire departure, so frames lost
        on the cable must not pin pool memory."""
        testbed, deployment, sink, _messages = self.run_lossy_flow(0.5, seed=2)
        assert deployment.runtime(0).memory.pool.in_use == 0

    def test_full_blackout_delivers_nothing_without_hanging(self):
        testbed, _deployment, sink, _messages = self.run_lossy_flow(1.0, seed=3)
        assert len(sink.ring) == 0


class TestMigration:
    def test_subscriber_migrates_between_hosts(self):
        """A sink app detaches from host1 and reattaches on host2; the
        publisher's code and stream never change."""
        testbed = Testbed.local(hosts=3, seed=4)
        sim = testbed.sim
        deployment = InsaneDeployment(testbed)
        publisher = Session(deployment.runtime(0), "pub")
        stream = publisher.create_stream(QosPolicy.fast(), name="mig")
        source = publisher.create_source(stream, channel=1)
        received = {"host1": 0, "host2": 0}

        # phase 1: the consumer runs on host1
        consumer_a = Session(deployment.runtime(1), "consumer")
        stream_a = consumer_a.create_stream(QosPolicy.fast(), name="mig")
        consumer_a.create_sink(
            stream_a, channel=1,
            callback=lambda d: received.__setitem__("host1", received["host1"] + 1),
        )

        def publish_burst(count):
            for _ in range(count):
                buffer = yield from publisher.get_buffer_wait(source, 32)
                yield from publisher.emit_data(source, buffer, length=32)
                yield Timeout(5_000)

        def scenario():
            yield from publish_burst(10)
            yield Timeout(100_000)
            # the consumer component migrates: detach at host1 ...
            consumer_a.close()
            # ... and reattach at host2 (same application code)
            consumer_b = Session(deployment.runtime(2), "consumer")
            stream_b = consumer_b.create_stream(QosPolicy.fast(), name="mig")
            consumer_b.create_sink(
                stream_b, channel=1,
                callback=lambda d: received.__setitem__("host2", received["host2"] + 1),
            )
            yield from publish_burst(10)

        sim.process(scenario())
        sim.run()
        assert received == {"host1": 10, "host2": 10}

    def test_migration_across_heterogeneous_hosts_rebinds_datapath(self):
        """Migrating to a host without DPDK transparently falls back."""
        from repro.hw import LOCAL_TESTBED

        accelerated = Testbed(LOCAL_TESTBED, seed=5)
        plain = Testbed(
            LOCAL_TESTBED.replace(dpdk_capable=False, xdp_capable=False), seed=6
        )
        app_policy = QosPolicy.fast()

        def deploy(testbed):
            deployment = InsaneDeployment(testbed)
            session = Session(deployment.runtime(0), "roaming-app")
            stream = session.create_stream(app_policy, name="roam")
            return stream

        fast_stream = deploy(accelerated)
        fallback_stream = deploy(plain)
        assert fast_stream.datapath == "dpdk"
        assert fallback_stream.datapath == "udp"
        assert fallback_stream.decision.fallback

    def test_session_close_releases_rings_and_subscriptions(self):
        testbed = Testbed.local(seed=7)
        deployment = InsaneDeployment(testbed)
        runtime = deployment.runtime(0)
        session = Session(runtime, "ephemeral")
        stream = session.create_stream(QosPolicy.fast(), name="eph")
        session.create_sink(stream, channel=1)
        assert runtime.sink_ring_count == 1
        session.close()
        assert runtime.sink_ring_count == 0
        from repro.core.channel import ChannelKey

        assert not deployment.control.has_subscribers(ChannelKey("eph", 1))


class TestMessageConservation:
    def test_every_emitted_message_is_accounted_for(self):
        """Conservation invariant under a mixed random workload:
        emitted == delivered + every drop counter."""
        testbed = Testbed.local(hosts=3, seed=8)
        sim = testbed.sim
        deployment = InsaneDeployment(testbed)
        sessions = []
        sinks = []
        emitted = [0]
        for index in range(3):
            session = Session(deployment.runtime(index), "node%d" % index)
            stream = session.create_stream(QosPolicy.fast(), name="soak")
            sessions.append((session, stream))
        for index, (session, stream) in enumerate(sessions):
            sinks.append(session.create_sink(stream, channel=77))

        def producer(session, stream, count, seed):
            import random

            rng = random.Random(seed)
            source = session.create_source(stream, channel=77)
            for _ in range(count):
                size = rng.choice((16, 128, 1024))
                buffer = yield from session.get_buffer_wait(source, size)
                yield from session.emit_data(source, buffer, length=size)
                emitted[0] += 1
                yield Timeout(rng.randrange(200, 3_000))

        for index, (session, stream) in enumerate(sessions):
            sim.process(producer(session, stream, 60, seed=index))
        sim.run()

        delivered = sum(len(sink.ring) for sink in sinks)
        drops = 0
        for runtime in deployment.runtimes.values():
            for binding in runtime.bindings.values():
                drops += binding.pool_drops.value
                drops += binding.no_sink_drops.value
                drops += binding.unknown_drops.value
            for endpoints in runtime._sinks.values():
                for endpoint in endpoints:
                    drops += endpoint.dropped.value
        for host in testbed.hosts:
            drops += host.nic.rx_dropped.value
        # each emit fans out to 3 sinks (2 remote + 1 local)
        assert delivered + drops == emitted[0] * 3
