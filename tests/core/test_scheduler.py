"""FIFO and 802.1Qbv TSN scheduler tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.scheduler import (
    CLASS_BEST_EFFORT,
    CLASS_TIME_SENSITIVE,
    FifoScheduler,
    GateControlList,
    TsnScheduler,
    scheduler_for,
)


class TestFifo:
    def test_pops_in_push_order(self):
        scheduler = FifoScheduler()
        for index in range(5):
            scheduler.push(index)
        assert scheduler.pop_ready(now=0, max_items=10) == [0, 1, 2, 3, 4]

    def test_max_items_respected(self):
        scheduler = FifoScheduler()
        for index in range(5):
            scheduler.push(index)
        assert scheduler.pop_ready(0, 2) == [0, 1]
        assert scheduler.pop_ready(0, 2) == [2, 3]

    def test_next_ready_at(self):
        scheduler = FifoScheduler()
        assert scheduler.next_ready_at(100) is None
        scheduler.push("x")
        assert scheduler.next_ready_at(100) == 100


class TestGateControlList:
    def make_gcl(self):
        # 0-30 us: TS only; 30-100 us: both
        return GateControlList(
            [
                (30_000, {CLASS_TIME_SENSITIVE}),
                (70_000, {CLASS_BEST_EFFORT, CLASS_TIME_SENSITIVE}),
            ]
        )

    def test_cycle_length(self):
        assert self.make_gcl().cycle_ns == 100_000

    def test_is_open_within_windows(self):
        gcl = self.make_gcl()
        assert gcl.is_open(CLASS_TIME_SENSITIVE, 10_000)
        assert not gcl.is_open(CLASS_BEST_EFFORT, 10_000)
        assert gcl.is_open(CLASS_BEST_EFFORT, 50_000)
        # wraps cyclically
        assert not gcl.is_open(CLASS_BEST_EFFORT, 110_000)
        assert gcl.is_open(CLASS_BEST_EFFORT, 150_000)

    def test_next_open_at(self):
        gcl = self.make_gcl()
        assert gcl.next_open_at(CLASS_BEST_EFFORT, 10_000) == 30_000
        assert gcl.next_open_at(CLASS_BEST_EFFORT, 50_000) == 50_000
        # from inside the second window of cycle k to the next cycle
        assert gcl.next_open_at(CLASS_TIME_SENSITIVE, 99_999) == 99_999
        assert gcl.next_open_at(CLASS_BEST_EFFORT, 100_000 + 5_000) == 130_000

    def test_empty_gcl_rejected(self):
        with pytest.raises(ValueError):
            GateControlList([])

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError):
            GateControlList([(0, {CLASS_BEST_EFFORT})])

    def test_class_never_open_raises(self):
        gcl = GateControlList([(10, {CLASS_TIME_SENSITIVE})])
        with pytest.raises(ValueError):
            gcl.next_open_at(CLASS_BEST_EFFORT, 0)

    @settings(max_examples=50, deadline=None)
    @given(now=st.integers(min_value=0, max_value=10_000_000))
    def test_property_next_open_is_open_and_minimal(self, now):
        gcl = self.make_gcl()
        for cls in (CLASS_BEST_EFFORT, CLASS_TIME_SENSITIVE):
            at = gcl.next_open_at(cls, now)
            assert at >= now
            assert gcl.is_open(cls, at)
            if at > now:
                assert not gcl.is_open(cls, now)


class TestTsnScheduler:
    def make(self):
        gcl = GateControlList(
            [
                (30_000, {CLASS_TIME_SENSITIVE}),
                (70_000, {CLASS_BEST_EFFORT, CLASS_TIME_SENSITIVE}),
            ]
        )
        return TsnScheduler(gcl)

    def test_gated_class_held_until_window(self):
        scheduler = self.make()
        scheduler.push("be", CLASS_BEST_EFFORT, now=0)
        assert scheduler.pop_ready(now=10_000, max_items=10) == []
        assert scheduler.pop_ready(now=30_000, max_items=10) == ["be"]

    def test_time_sensitive_has_priority_in_shared_window(self):
        scheduler = self.make()
        scheduler.push("be", CLASS_BEST_EFFORT, now=0)
        scheduler.push("ts", CLASS_TIME_SENSITIVE, now=0)
        assert scheduler.pop_ready(now=50_000, max_items=10) == ["ts", "be"]

    def test_next_ready_at_accounts_for_gates(self):
        scheduler = self.make()
        scheduler.push("be", CLASS_BEST_EFFORT, now=0)
        assert scheduler.next_ready_at(10_000) == 30_000
        scheduler.push("ts", CLASS_TIME_SENSITIVE, now=0)
        assert scheduler.next_ready_at(10_000) == 10_000

    def test_empty_scheduler_has_no_ready_time(self):
        assert self.make().next_ready_at(0) is None

    def test_len_counts_all_classes(self):
        scheduler = self.make()
        scheduler.push("a", CLASS_BEST_EFFORT)
        scheduler.push("b", CLASS_TIME_SENSITIVE)
        assert len(scheduler) == 2


def test_scheduler_factory():
    assert isinstance(scheduler_for(False), FifoScheduler)
    assert isinstance(scheduler_for(True), TsnScheduler)
