"""Polling-thread pool tests (paper §5.3)."""

from repro.core import QosPolicy, Session
from repro.core.config import RuntimeConfig
from repro.core.runtime import InsaneDeployment
from repro.hw import Testbed


def make(config=None, seed=0):
    testbed = Testbed.local(seed=seed)
    return testbed, InsaneDeployment(testbed, config=config)


class TestThreadMapping:
    def test_per_datapath_mapping_spawns_one_thread_per_plugin(self):
        testbed, deployment = make()
        runtime = deployment.runtime(0)
        session = Session(runtime, "app")
        session.create_stream(QosPolicy.fast(), name="a")
        session.create_stream(QosPolicy.slow(), name="b")
        assert len(runtime.bindings) == 2
        assert len(runtime.threads) == 2
        assert all(len(t.bindings) == 1 for t in runtime.threads)

    def test_shared_mapping_multiplexes_all_plugins(self):
        testbed, deployment = make(config=RuntimeConfig(thread_mapping="shared"))
        runtime = deployment.runtime(0)
        session = Session(runtime, "app")
        session.create_stream(QosPolicy.fast(), name="a")
        session.create_stream(QosPolicy.slow(), name="b")
        assert len(runtime.bindings) == 2
        assert len(runtime.threads) == 1
        assert len(runtime.threads[0].bindings) == 2

    def test_invalid_mapping_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            RuntimeConfig(thread_mapping="bogus")

    def test_each_thread_pins_one_core(self):
        testbed, deployment = make()
        runtime = deployment.runtime(0)
        before = runtime.host.pinned_cores  # the kernel listener is pinned
        session = Session(runtime, "app")
        session.create_stream(QosPolicy.fast(), name="a")   # +1 dpdk thread
        session.create_stream(QosPolicy.slow(), name="b")   # udp already up
        assert before == 1
        assert runtime.host.pinned_cores == before + 1

    def test_stopped_thread_unpins_its_core(self):
        testbed, deployment = make()
        runtime = deployment.runtime(0)
        session = Session(runtime, "app")
        session.create_stream(QosPolicy.fast(), name="a")
        pinned = runtime.host.pinned_cores
        for thread in runtime.threads:
            thread.stop()
        testbed.sim.run()
        assert runtime.host.pinned_cores == pinned - len(runtime.threads)


class TestIdleBehaviour:
    def test_idle_thread_parks_without_spinning(self):
        """An idle runtime must not generate unbounded simulation events."""
        testbed, deployment = make()
        runtime = deployment.runtime(0)
        session = Session(runtime, "app")
        session.create_stream(QosPolicy.fast(), name="idle")
        # run with nothing to do: the event heap must drain
        executed = testbed.sim.run(until=10_000_000)
        assert executed < 100

    def test_kick_wakes_parked_thread(self):
        testbed, deployment = make()
        sim = testbed.sim
        runtime = deployment.runtime(0)
        tx = Session(runtime, "tx")
        rx = Session(deployment.runtime(1), "rx")
        tx_stream = tx.create_stream(QosPolicy.fast(), name="wake")
        rx_stream = rx.create_stream(QosPolicy.fast(), name="wake")
        source = tx.create_source(tx_stream, channel=1)
        sink = rx.create_sink(rx_stream, channel=1)
        sim.run()  # everything parks

        def late_producer():
            buffer = tx.get_buffer(source, 8)
            buffer.write(b"wake up!")
            yield from tx.emit_data(source, buffer)

        sim.process(late_producer())
        sim.run()
        assert len(sink.ring) == 1

    def test_pending_kick_is_not_lost(self):
        """A kick arriving while the thread is mid-pass must not be lost."""
        testbed, deployment = make()
        sim = testbed.sim
        tx = Session(deployment.runtime(0), "tx")
        rx = Session(deployment.runtime(1), "rx")
        tx_stream = tx.create_stream(QosPolicy.fast(), name="burst")
        rx_stream = rx.create_stream(QosPolicy.fast(), name="burst")
        source = tx.create_source(tx_stream, channel=1)
        sink = rx.create_sink(rx_stream, channel=1)

        def producer():
            for index in range(100):
                buffer = yield from tx.get_buffer_wait(source, 4)
                buffer.write(b"%03d" % index + b"!")
                yield from tx.emit_data(source, buffer)

        sim.process(producer())
        sim.run()
        received = sink.received.value + len(sink.ring)
        assert received == 100
