"""Runtime introspection (stats snapshot) tests."""

from repro.core import QosPolicy, Session
from repro.core.runtime import InsaneDeployment
from repro.hw import Testbed


def test_stats_snapshot_structure_and_values():
    bed = Testbed.local(seed=0)
    sim = bed.sim
    deployment = InsaneDeployment(bed)
    tx = Session(deployment.runtime(0), "tx-app")
    rx = Session(deployment.runtime(1), "rx-app")
    tx_stream = tx.create_stream(QosPolicy.fast(), name="stats")
    rx_stream = rx.create_stream(QosPolicy.fast(), name="stats")
    source = tx.create_source(tx_stream, channel=1)
    rx.create_sink(rx_stream, channel=1, callback=lambda d: None)

    def producer():
        for _ in range(10):
            buffer = yield from tx.get_buffer_wait(source, 64)
            yield from tx.emit_data(source, buffer, length=64)

    sim.process(producer())
    sim.run()

    tx_stats = deployment.runtime(0).stats()
    assert tx_stats["host"] == "host0"
    assert tx_stats["profile"] == "local"
    assert "tx-app" in tx_stats["sessions"]
    assert tx_stats["memory"]["in_use"] == 0
    assert tx_stats["memory"]["allocations"] >= 10
    dpdk = tx_stats["bindings"]["dpdk"]
    assert dpdk["tx_packets"] == 10
    assert dpdk["tx_rings"]["tx-app"]["enqueued"] == 10
    assert dpdk["polling_threads"] == 1

    rx_stats = deployment.runtime(1).stats()
    assert rx_stats["bindings"]["dpdk"]["rx_packets"] == 0  # counted by datapath only on raw path
    assert rx_stats["sink_rings"] == 1
    assert rx_stats["warnings"] == []


def test_stats_reports_fallback_warnings():
    from repro.hw import LOCAL_TESTBED

    bed = Testbed(LOCAL_TESTBED.replace(dpdk_capable=False, xdp_capable=False), seed=1)
    deployment = InsaneDeployment(bed)
    session = Session(deployment.runtime(0), "app")
    session.create_stream(QosPolicy.fast(), name="warned")
    stats = deployment.runtime(0).stats()
    assert len(stats["warnings"]) == 1


def test_stats_scheduler_backlog_counts_tsn():
    bed = Testbed.local(seed=2)
    deployment = InsaneDeployment(bed)
    session = Session(deployment.runtime(0), "app")
    stream = session.create_stream(QosPolicy.fast(time_sensitive=True), name="ts")
    stats = deployment.runtime(0).stats()
    assert stats["bindings"]["dpdk"]["scheduler_backlog"] == 0
