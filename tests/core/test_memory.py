"""Memory manager tests: slot lifecycle, zero-copy semantics, accounting."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import BufferLifecycleError, PoolExhaustedError
from repro.core.memory import MemoryManager, SlotPool
from repro.hw import LOCAL_TESTBED
from repro.simnet import Simulator


def make_pool(slots=4, slot_bytes=64):
    return SlotPool(Simulator(), slots=slots, slot_bytes=slot_bytes, name="test")


class TestSlotPool:
    def test_alloc_release_cycle(self):
        pool = make_pool(slots=2)
        a = pool.alloc()
        b = pool.alloc()
        assert pool.free_slots == 0
        with pytest.raises(PoolExhaustedError):
            pool.alloc()
        pool.release(a)
        c = pool.alloc()
        assert c.slot_id == a.slot_id  # the slot is recycled
        pool.release(b)
        pool.release(c)
        assert pool.free_slots == 2

    def test_try_alloc_counts_exhaustions(self):
        pool = make_pool(slots=1)
        pool.alloc()
        assert pool.try_alloc() is None
        assert pool.exhaustions.value == 1

    def test_slots_are_distinct_memory(self):
        pool = make_pool(slots=2, slot_bytes=8)
        a = pool.alloc()
        b = pool.alloc()
        a.write(b"AAAA")
        b.write(b"BBBB")
        assert bytes(a.payload()) == b"AAAA"
        assert bytes(b.payload()) == b"BBBB"

    def test_write_too_large_rejected(self):
        pool = make_pool(slot_bytes=4)
        buffer = pool.alloc()
        with pytest.raises(ValueError):
            buffer.write(b"12345")

    def test_alloc_larger_than_slot_rejected(self):
        pool = make_pool(slot_bytes=16)
        with pytest.raises(ValueError):
            pool.try_alloc(size=17)

    def test_double_release_detected(self):
        pool = make_pool()
        buffer = pool.alloc()
        pool.release(buffer)
        with pytest.raises(BufferLifecycleError):
            pool.release(buffer)

    def test_foreign_buffer_rejected(self):
        pool_a = make_pool()
        pool_b = make_pool()
        buffer = pool_a.alloc()
        with pytest.raises(BufferLifecycleError):
            pool_b.release(buffer)

    def test_write_after_emit_rejected(self):
        pool = make_pool()
        buffer = pool.alloc()
        buffer.write(b"ok")
        buffer.freeze()
        with pytest.raises(BufferLifecycleError):
            buffer.write(b"no")

    def test_refcount_multi_sink_release(self):
        pool = make_pool(slots=1)
        buffer = pool.alloc()
        pool.addref(buffer)
        pool.addref(buffer)  # three holders in total
        pool.release(buffer)
        pool.release(buffer)
        assert pool.free_slots == 0  # still held by one borrower
        pool.release(buffer)
        assert pool.free_slots == 1

    def test_lookup_by_slot_id(self):
        pool = make_pool()
        buffer = pool.alloc()
        assert pool.lookup(buffer.slot_id) is buffer
        pool.release(buffer)
        with pytest.raises(BufferLifecycleError):
            pool.lookup(buffer.slot_id)

    def test_blocked_allocator_woken_by_release(self):
        sim = Simulator()
        pool = SlotPool(sim, slots=1, slot_bytes=8, name="t")
        held = pool.alloc()
        got = []
        pool.add_alloc_waiter(lambda buf, exc: got.append(buf))
        sim.run()
        assert not got
        pool.release(held)
        sim.run()
        assert len(got) == 1
        assert got[0].refcount == 1

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            SlotPool(Simulator(), slots=0, slot_bytes=8)
        with pytest.raises(ValueError):
            SlotPool(Simulator(), slots=8, slot_bytes=0)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.sampled_from(["alloc", "release"]), min_size=1, max_size=200))
    def test_property_free_plus_live_is_constant(self, ops):
        pool = make_pool(slots=8, slot_bytes=16)
        live = []
        for op in ops:
            if op == "alloc":
                buffer = pool.try_alloc()
                if buffer is not None:
                    live.append(buffer)
            elif live:
                pool.release(live.pop())
            assert pool.free_slots + pool.in_use == 8
            assert pool.in_use == len(live)

    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_property_no_aliasing_between_live_slots(self, data):
        pool = make_pool(slots=6, slot_bytes=8)
        buffers = [pool.alloc() for _ in range(6)]
        payloads = {}
        for index, buffer in enumerate(buffers):
            content = data.draw(st.binary(min_size=1, max_size=8), label="slot%d" % index)
            buffer.write(content)
            payloads[index] = content
        for index, buffer in enumerate(buffers):
            assert bytes(buffer.payload()) == payloads[index]


class TestMemoryManager:
    def make_manager(self):
        return MemoryManager(Simulator(), LOCAL_TESTBED, name="m")

    def test_attach_alloc_release(self):
        manager = self.make_manager()
        manager.attach("app")
        buffer = manager.alloc_for("app", 100)
        manager.release_for("app", buffer)
        assert manager.pool.free_slots == manager.pool.slots

    def test_alloc_requires_attach(self):
        manager = self.make_manager()
        with pytest.raises(ValueError):
            manager.alloc_for("ghost", 10)

    def test_double_attach_rejected(self):
        manager = self.make_manager()
        manager.attach("app")
        with pytest.raises(ValueError):
            manager.attach("app")

    def test_detach_reclaims_leaked_slots(self):
        manager = self.make_manager()
        manager.attach("leaky")
        for _ in range(5):
            manager.alloc_for("leaky", 10)
        assert manager.pool.in_use == 5
        leaked = manager.detach("leaky")
        assert leaked == 5
        assert manager.pool.in_use == 0

    def test_ownership_transfer_on_emit(self):
        manager = self.make_manager()
        manager.attach("app")
        buffer = manager.alloc_for("app", 10)
        manager.transfer_ownership("app", buffer)
        # app no longer owns it: detach reclaims nothing
        assert manager.detach("app") == 0
        # the runtime still must release the slot itself
        assert manager.pool.in_use == 1

    def test_transfer_of_unowned_buffer_rejected(self):
        manager = self.make_manager()
        manager.attach("a")
        manager.attach("b")
        buffer = manager.alloc_for("a", 10)
        with pytest.raises(BufferLifecycleError):
            manager.transfer_ownership("b", buffer)

    def test_lend_to_sink_then_release(self):
        manager = self.make_manager()
        manager.attach("sink")
        buffer = manager.pool.alloc()
        manager.lend_to("sink", buffer)
        manager.release_for("sink", buffer)
        assert manager.pool.in_use == 0
