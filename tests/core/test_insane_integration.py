"""End-to-end integration tests of the INSANE middleware, including the
Fig. 5/7 latency calibration of INSANE fast and INSANE slow."""

import pytest

from repro.core import QosPolicy, Session
from repro.core.runtime import InsaneDeployment
from repro.hw import LOCAL_TESTBED, Testbed


def make_deployment(profile_name="local", seed=0, hosts=2, config=None):
    bed = Testbed.local(seed=seed, hosts=hosts) if profile_name == "local" else Testbed.cloud(seed=seed, hosts=hosts)
    return bed, InsaneDeployment(bed, config=config)


def insane_pingpong(profile_name, policy, rounds, size, seed=0):
    """Ping-pong between two INSANE sessions on different hosts."""
    bed, deployment = make_deployment(profile_name, seed=seed)
    sim = bed.sim
    client = Session(deployment.runtime(0), "client")
    server = Session(deployment.runtime(1), "server")
    c_stream = client.create_stream(policy, name="bench")
    s_stream = server.create_stream(policy, name="bench")
    c_source = client.create_source(c_stream, channel=1)
    c_sink = client.create_sink(c_stream, channel=2)
    s_sink = server.create_sink(s_stream, channel=1)
    s_source = server.create_source(s_stream, channel=2)
    rtts = []

    def client_proc():
        for _ in range(rounds):
            start = sim.now
            buffer = client.get_buffer(c_source, size)
            yield from client.emit_data(c_source, buffer, length=size)
            delivery = yield from client.consume_data(c_sink)
            client.release_buffer(c_sink, delivery)
            rtts.append(sim.now - start)

    def server_proc():
        while True:
            delivery = yield from server.consume_data(s_sink)
            server.release_buffer(s_sink, delivery)
            buffer = server.get_buffer(s_source, size)
            yield from server.emit_data(s_source, buffer, length=size)

    sim.process(server_proc(), name="server")
    sim.process(client_proc(), name="client")
    sim.run()
    assert len(rtts) == rounds
    return rtts


def mean(values):
    return sum(values) / len(values)


class TestDataDelivery:
    def test_payload_integrity_cross_host_fast(self):
        bed, deployment = make_deployment(seed=5)
        sim = bed.sim
        tx = Session(deployment.runtime(0), "tx")
        rx = Session(deployment.runtime(1), "rx")
        tx_stream = tx.create_stream(QosPolicy.fast(), name="data")
        rx_stream = rx.create_stream(QosPolicy.fast(), name="data")
        source = tx.create_source(tx_stream, channel=7)
        sink = rx.create_sink(rx_stream, channel=7)
        received = []

        def producer():
            buffer = tx.get_buffer(source, 32)
            buffer.write(b"the quick brown fox jumps over")
            yield from tx.emit_data(source, buffer)

        def consumer():
            delivery = yield from rx.consume_data(sink)
            received.append(bytes(delivery.payload()))
            rx.release_buffer(sink, delivery)

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert received == [b"the quick brown fox jumps over"]
        assert tx_stream.datapath == "dpdk"

    def test_payload_integrity_cross_host_slow(self):
        bed, deployment = make_deployment(seed=6)
        sim = bed.sim
        tx = Session(deployment.runtime(0), "tx")
        rx = Session(deployment.runtime(1), "rx")
        tx_stream = tx.create_stream(QosPolicy.slow(), name="data")
        rx_stream = rx.create_stream(QosPolicy.slow(), name="data")
        source = tx.create_source(tx_stream, channel=7)
        sink = rx.create_sink(rx_stream, channel=7)
        received = []

        def producer():
            buffer = tx.get_buffer(source, 5)
            buffer.write(b"hello")
            yield from tx.emit_data(source, buffer)

        def consumer():
            delivery = yield from rx.consume_data(sink)
            received.append(bytes(delivery.payload()))
            rx.release_buffer(sink, delivery)

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert received == [b"hello"]
        assert tx_stream.datapath == "udp"

    def test_colocated_delivery_uses_shared_memory_not_nic(self):
        bed, deployment = make_deployment(seed=7)
        sim = bed.sim
        session = Session(deployment.runtime(0), "both")
        stream = session.create_stream(QosPolicy.fast(), name="local")
        source = session.create_source(stream, channel=3)
        sink = session.create_sink(stream, channel=3)
        received = []

        def producer():
            buffer = session.get_buffer(source, 4)
            buffer.write(b"shmx")
            yield from session.emit_data(source, buffer)

        def consumer():
            delivery = yield from session.consume_data(sink)
            received.append(bytes(delivery.payload()))
            session.release_buffer(sink, delivery)

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert received == [b"shmx"]
        assert bed.hosts[0].nic.tx_frames.value == 0  # never touched the wire

    def test_channel_isolation(self):
        """Sinks only receive data for their own channel id."""
        bed, deployment = make_deployment(seed=8)
        sim = bed.sim
        tx = Session(deployment.runtime(0), "tx")
        rx = Session(deployment.runtime(1), "rx")
        tx_stream = tx.create_stream(QosPolicy.slow(), name="iso")
        rx_stream = rx.create_stream(QosPolicy.slow(), name="iso")
        source = tx.create_source(tx_stream, channel=1)
        sink_same = rx.create_sink(rx_stream, channel=1)
        sink_other = rx.create_sink(rx_stream, channel=2)

        def producer():
            buffer = tx.get_buffer(source, 3)
            buffer.write(b"abc")
            yield from tx.emit_data(source, buffer)

        sim.process(producer())
        sim.run()
        assert len(sink_same.ring) == 1
        assert len(sink_other.ring) == 0

    def test_stream_isolation(self):
        """Same channel id on different streams does not rendezvous."""
        bed, deployment = make_deployment(seed=9)
        sim = bed.sim
        tx = Session(deployment.runtime(0), "tx")
        rx = Session(deployment.runtime(1), "rx")
        tx_stream = tx.create_stream(QosPolicy.slow(), name="stream-A")
        rx_stream = rx.create_stream(QosPolicy.slow(), name="stream-B")
        source = tx.create_source(tx_stream, channel=1)
        sink = rx.create_sink(rx_stream, channel=1)

        def producer():
            buffer = tx.get_buffer(source, 3)
            buffer.write(b"abc")
            yield from tx.emit_data(source, buffer)

        sim.process(producer())
        sim.run()
        assert len(sink.ring) == 0

    def test_multi_sink_fanout_and_refcounting(self):
        bed, deployment = make_deployment(seed=10)
        sim = bed.sim
        tx = Session(deployment.runtime(0), "tx")
        rx_runtime = deployment.runtime(1)
        sinks = []
        sessions = []
        for index in range(3):
            session = Session(rx_runtime, "sink%d" % index)
            stream = session.create_stream(QosPolicy.fast(), name="fan")
            sinks.append(session.create_sink(stream, channel=9))
            sessions.append(session)
        tx_stream = tx.create_stream(QosPolicy.fast(), name="fan")
        source = tx.create_source(tx_stream, channel=9)
        payloads = []

        def producer():
            buffer = tx.get_buffer(source, 6)
            buffer.write(b"fanout")
            yield from tx.emit_data(source, buffer)

        def consumer(session, sink):
            delivery = yield from session.consume_data(sink)
            payloads.append(bytes(delivery.payload()))
            session.release_buffer(sink, delivery)

        sim.process(producer())
        for session, sink in zip(sessions, sinks):
            sim.process(consumer(session, sink))
        sim.run()
        assert payloads == [b"fanout"] * 3
        # every slot recycled: one shared slot, released by all three sinks
        assert rx_runtime.memory.pool.in_use == 0
        assert deployment.runtime(0).memory.pool.in_use == 0

    def test_callback_sink_delivery(self):
        bed, deployment = make_deployment(seed=11)
        sim = bed.sim
        tx = Session(deployment.runtime(0), "tx")
        rx = Session(deployment.runtime(1), "rx")
        tx_stream = tx.create_stream(QosPolicy.fast(), name="cb")
        rx_stream = rx.create_stream(QosPolicy.fast(), name="cb")
        source = tx.create_source(tx_stream, channel=1)
        got = []
        rx.create_sink(rx_stream, channel=1, callback=lambda d: got.append(bytes(d.payload())))

        def producer():
            for index in range(3):
                buffer = tx.get_buffer(source, 1)
                buffer.write(bytes([index]))
                yield from tx.emit_data(source, buffer)

        sim.process(producer())
        sim.run()
        assert got == [b"\x00", b"\x01", b"\x02"]
        assert rx.runtime.memory.pool.in_use == 0  # callback auto-releases


class TestEmitSemantics:
    def test_emit_outcome_lifecycle(self):
        bed, deployment = make_deployment(seed=12)
        sim = bed.sim
        tx = Session(deployment.runtime(0), "tx")
        rx = Session(deployment.runtime(1), "rx")
        tx_stream = tx.create_stream(QosPolicy.fast(), name="oc")
        rx_stream = rx.create_stream(QosPolicy.fast(), name="oc")
        source = tx.create_source(tx_stream, channel=1)
        rx.create_sink(rx_stream, channel=1)
        outcomes = []

        def producer():
            buffer = tx.get_buffer(source, 4)
            emit_id = yield from tx.emit_data(source, buffer, length=4)
            outcomes.append(tx.check_emit_outcome(source, emit_id))  # likely pending
            from repro.simnet import Timeout

            yield Timeout(50_000)
            outcomes.append(tx.check_emit_outcome(source, emit_id))

        sim.process(producer())
        sim.run()
        assert outcomes[-1] == "sent"

    def test_emit_without_subscribers_releases_buffer(self):
        bed, deployment = make_deployment(seed=13)
        sim = bed.sim
        tx = Session(deployment.runtime(0), "tx")
        stream = tx.create_stream(QosPolicy.fast(), name="void")
        source = tx.create_source(stream, channel=1)
        outcomes = []

        def producer():
            buffer = tx.get_buffer(source, 4)
            emit_id = yield from tx.emit_data(source, buffer, length=4)
            from repro.simnet import Timeout

            yield Timeout(10_000)
            outcomes.append(tx.check_emit_outcome(source, emit_id))

        sim.process(producer())
        sim.run()
        assert outcomes == ["no_subscribers"]
        assert deployment.runtime(0).memory.pool.in_use == 0

    def test_write_after_emit_is_rejected(self):
        bed, deployment = make_deployment(seed=14)
        sim = bed.sim
        tx = Session(deployment.runtime(0), "tx")
        stream = tx.create_stream(QosPolicy.fast(), name="frozen")
        source = tx.create_source(stream, channel=1)
        errors = []

        def producer():
            buffer = tx.get_buffer(source, 4)
            buffer.write(b"ok!!")
            yield from tx.emit_data(source, buffer)
            try:
                buffer.write(b"no!!")
            except Exception as exc:
                errors.append(exc)

        sim.process(producer())
        sim.run()
        assert len(errors) == 1

    def test_oversized_get_buffer_rejected(self):
        bed, deployment = make_deployment(seed=15)
        tx = Session(deployment.runtime(0), "tx")
        stream = tx.create_stream(QosPolicy.fast(), name="big")
        source = tx.create_source(stream, channel=1)
        with pytest.raises(ValueError):
            tx.get_buffer(source, 9_500)


class TestQosMappingInRuntime:
    def test_fast_falls_back_to_udp_with_warning_when_no_acceleration(self):
        profile = LOCAL_TESTBED.replace(dpdk_capable=False, xdp_capable=False)
        bed = Testbed(profile, seed=16)
        deployment = InsaneDeployment(bed)
        session = Session(deployment.runtime(0), "app")
        stream = session.create_stream(QosPolicy.fast(), name="fb")
        assert stream.datapath == "udp"
        assert stream.decision.fallback
        assert deployment.runtime(0).warnings

    def test_rdma_selected_on_rdma_hosts(self):
        profile = LOCAL_TESTBED.replace(rdma_nic=True)
        bed = Testbed(profile, seed=17)
        deployment = InsaneDeployment(bed)
        session = Session(deployment.runtime(0), "app")
        stream = session.create_stream(QosPolicy.fast(), name="rdma")
        assert stream.datapath == "rdma"

    def test_custom_mapping_strategy(self):
        from repro.core.config import RuntimeConfig

        config = RuntimeConfig(mapping_strategy=lambda policy, available: "xdp")
        bed, deployment = make_deployment(seed=18, config=config)
        session = Session(deployment.runtime(0), "app")
        stream = session.create_stream(QosPolicy.fast(), name="custom")
        assert stream.datapath == "xdp"

    def test_datapath_instantiated_at_most_once(self):
        bed, deployment = make_deployment(seed=19)
        runtime = deployment.runtime(0)
        a = Session(runtime, "a")
        b = Session(runtime, "b")
        stream_a = a.create_stream(QosPolicy.fast(), name="s1")
        stream_b = b.create_stream(QosPolicy.fast(), name="s2")
        assert stream_a.binding is stream_b.binding
        # exactly one dpdk binding, plus the always-on kernel listener
        assert set(runtime.bindings) == {"udp", "dpdk"}


class TestSessionLifecycle:
    def test_close_reclaims_leaked_buffers(self):
        bed, deployment = make_deployment(seed=20)
        runtime = deployment.runtime(0)
        session = Session(runtime, "leaky")
        stream = session.create_stream(QosPolicy.fast(), name="leak")
        source = session.create_source(stream, channel=1)
        for _ in range(4):
            session.get_buffer(source, 8)
        assert runtime.memory.pool.in_use == 4
        leaked = session.close()
        assert leaked == 4
        assert runtime.memory.pool.in_use == 0

    def test_closed_session_rejects_operations(self):
        from repro.core.errors import SessionError

        bed, deployment = make_deployment(seed=21)
        session = Session(deployment.runtime(0), "gone")
        stream = session.create_stream(QosPolicy.slow(), name="s")
        source = session.create_source(stream, channel=1)
        session.close()
        with pytest.raises(SessionError):
            session.create_stream(QosPolicy.slow(), name="t")
        with pytest.raises(SessionError):
            session.get_buffer(source, 8)

    def test_sink_close_unsubscribes(self):
        bed, deployment = make_deployment(seed=22)
        rx = Session(deployment.runtime(1), "rx")
        stream = rx.create_stream(QosPolicy.slow(), name="unsub")
        sink = rx.create_sink(stream, channel=5)
        from repro.core.channel import ChannelKey

        key = ChannelKey("unsub", 5)
        assert deployment.control.has_subscribers(key)
        sink.close()
        assert not deployment.control.has_subscribers(key)


class TestLatencyCalibration:
    """INSANE fast/slow RTT must land on the paper's Fig. 7 values (±5 %)."""

    def test_insane_fast_local(self):
        rtts = insane_pingpong("local", QosPolicy.fast(), rounds=300, size=64, seed=30)
        assert mean(rtts) == pytest.approx(4_950, rel=0.05)

    def test_insane_slow_local(self):
        rtts = insane_pingpong("local", QosPolicy.slow(), rounds=300, size=64, seed=31)
        assert mean(rtts) == pytest.approx(13_660, rel=0.05)

    def test_insane_fast_cloud(self):
        rtts = insane_pingpong("cloud", QosPolicy.fast(), rounds=300, size=64, seed=32)
        assert mean(rtts) == pytest.approx(10_430, rel=0.05)

    def test_insane_slow_cloud(self):
        rtts = insane_pingpong("cloud", QosPolicy.slow(), rounds=300, size=64, seed=33)
        assert mean(rtts) == pytest.approx(23_270, rel=0.05)

    def test_rtt_stable_across_payload_sizes(self):
        small = mean(insane_pingpong("local", QosPolicy.fast(), 150, 64, seed=34))
        large = mean(insane_pingpong("local", QosPolicy.fast(), 150, 1024, seed=35))
        assert (large - small) / small < 0.15
