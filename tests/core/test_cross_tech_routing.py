"""Cross-technology routing on heterogeneous deployments.

A publisher must reach subscribers whose runtimes bound the channel to a
*different* datapath (e.g. fast publisher, slow subscriber; DPDK-only
publisher, RDMA subscriber).  The control plane carries each subscriber's
bound technology and the sender picks a mutually supported one, with the
always-on kernel listener as the universal fallback.
"""

import pytest

from repro.core import QosPolicy, Session
from repro.core.runtime import InsaneDeployment
from repro.hw import LOCAL_TESTBED, Testbed


def heterogeneous_pair(tx_profile, rx_profile, seed=0):
    bed = Testbed(LOCAL_TESTBED, hosts=2, seed=seed)
    bed.hosts[0].profile = tx_profile
    bed.hosts[1].profile = rx_profile
    deployment = InsaneDeployment(bed)
    deployment.runtime(0).profile = tx_profile
    deployment.runtime(1).profile = rx_profile
    return bed, deployment


def run_flow(bed, deployment, tx_policy, rx_policy, messages=5):
    sim = bed.sim
    tx = Session(deployment.runtime(0), "tx")
    rx = Session(deployment.runtime(1), "rx")
    tx_stream = tx.create_stream(tx_policy, name="x")
    rx_stream = rx.create_stream(rx_policy, name="x")
    source = tx.create_source(tx_stream, channel=1)
    got = []
    rx.create_sink(rx_stream, channel=1, callback=lambda d: got.append(d.length))

    def producer():
        for _ in range(messages):
            buffer = yield from tx.get_buffer_wait(source, 64)
            yield from tx.emit_data(source, buffer, length=64)

    sim.process(producer())
    sim.run()
    return got, tx_stream, rx_stream


def test_fast_publisher_reaches_slow_subscriber():
    bed, deployment = heterogeneous_pair(LOCAL_TESTBED, LOCAL_TESTBED, seed=1)
    got, tx_stream, rx_stream = run_flow(
        bed, deployment, QosPolicy.fast(), QosPolicy.slow()
    )
    assert tx_stream.datapath == "dpdk"
    assert rx_stream.datapath == "udp"
    assert got == [64] * 5
    # the publisher routed through its kernel binding
    assert deployment.runtime(0).bindings["dpdk"].cross_tech_routes.value == 5


def test_slow_publisher_reaches_fast_subscriber():
    bed, deployment = heterogeneous_pair(LOCAL_TESTBED, LOCAL_TESTBED, seed=2)
    got, tx_stream, rx_stream = run_flow(
        bed, deployment, QosPolicy.slow(), QosPolicy.fast()
    )
    assert (tx_stream.datapath, rx_stream.datapath) == ("udp", "dpdk")
    assert got == [64] * 5


def test_dpdk_publisher_reaches_rdma_subscriber_via_kernel():
    """The publisher lacks RDMA hardware; the subscriber listens on RDMA
    only (plus the universal kernel listener)."""
    rdma_host = LOCAL_TESTBED.replace(rdma_nic=True)
    bed, deployment = heterogeneous_pair(LOCAL_TESTBED, rdma_host, seed=3)
    got, tx_stream, rx_stream = run_flow(
        bed, deployment, QosPolicy.fast(), QosPolicy.fast()
    )
    assert tx_stream.datapath == "dpdk"
    assert rx_stream.datapath == "rdma"
    assert got == [64] * 5


def test_rdma_publisher_downgrades_for_plain_subscriber():
    rdma_host = LOCAL_TESTBED.replace(rdma_nic=True)
    plain_host = LOCAL_TESTBED.replace(dpdk_capable=False, xdp_capable=False)
    bed, deployment = heterogeneous_pair(rdma_host, plain_host, seed=4)
    got, tx_stream, rx_stream = run_flow(
        bed, deployment, QosPolicy.fast(), QosPolicy.fast()
    )
    assert tx_stream.datapath == "rdma"
    assert rx_stream.datapath == "udp"  # subscriber fell back with warning
    assert got == [64] * 5


def test_same_tech_does_not_count_cross_routes():
    bed, deployment = heterogeneous_pair(LOCAL_TESTBED, LOCAL_TESTBED, seed=5)
    run_flow(bed, deployment, QosPolicy.fast(), QosPolicy.fast())
    assert deployment.runtime(0).bindings["dpdk"].cross_tech_routes.value == 0


def test_mixed_subscribers_each_reached_on_their_technology():
    """One publisher, one fast subscriber and one slow subscriber on
    different hosts: each receives via its own bound technology."""
    bed = Testbed(LOCAL_TESTBED, hosts=3, seed=6)
    deployment = InsaneDeployment(bed)
    sim = bed.sim
    tx = Session(deployment.runtime(0), "tx")
    fast_rx = Session(deployment.runtime(1), "fast-rx")
    slow_rx = Session(deployment.runtime(2), "slow-rx")
    tx_stream = tx.create_stream(QosPolicy.fast(), name="mix")
    fast_stream = fast_rx.create_stream(QosPolicy.fast(), name="mix")
    slow_stream = slow_rx.create_stream(QosPolicy.slow(), name="mix")
    source = tx.create_source(tx_stream, channel=1)
    got = {"fast": 0, "slow": 0}
    fast_rx.create_sink(fast_stream, channel=1,
                        callback=lambda d: got.__setitem__("fast", got["fast"] + 1))
    slow_rx.create_sink(slow_stream, channel=1,
                        callback=lambda d: got.__setitem__("slow", got["slow"] + 1))

    def producer():
        for _ in range(7):
            buffer = yield from tx.get_buffer_wait(source, 32)
            yield from tx.emit_data(source, buffer, length=32)

    sim.process(producer())
    sim.run()
    assert got == {"fast": 7, "slow": 7}
    # the slow subscriber's packets really crossed the kernel path
    kernel_rx = deployment.runtime(2).bindings["udp"]
    assert kernel_rx.no_sink_drops.value == 0
