"""Token ring tests."""

from repro.core.ipc import Token, TokenRing
from repro.hw import Testbed


def make_ring(capacity=4):
    bed = Testbed.local()
    return bed, TokenRing(bed.sim, bed.hosts[0], capacity, "ring")


def make_token(slot=1):
    return Token(slot_id=slot, length=64, stream="s", channel=1)


def test_enqueue_dequeue_fifo():
    _, ring = make_ring()
    for slot in range(3):
        assert ring.try_enqueue(make_token(slot))
    assert [ring.try_dequeue().slot_id for _ in range(3)] == [0, 1, 2]
    assert ring.try_dequeue() is None


def test_full_ring_rejects_and_counts():
    _, ring = make_ring(capacity=2)
    assert ring.try_enqueue(make_token())
    assert ring.try_enqueue(make_token())
    assert not ring.try_enqueue(make_token())
    assert ring.rejected.value == 1
    assert ring.enqueued.value == 2


def test_drain_respects_limit():
    _, ring = make_ring(capacity=8)
    for slot in range(6):
        ring.try_enqueue(make_token(slot))
    batch = ring.drain(4)
    assert [token.slot_id for token in batch] == [0, 1, 2, 3]
    assert len(ring) == 2


def test_blocking_enqueue_applies_backpressure():
    bed, ring = make_ring(capacity=1)
    sim = bed.sim
    order = []

    def producer():
        yield ring.enqueue_effect(make_token(1))
        order.append(("put1", sim.now))
        yield ring.enqueue_effect(make_token(2))
        order.append(("put2", sim.now))

    def consumer():
        from repro.simnet import Timeout

        yield Timeout(500)
        ring.try_dequeue()
        order.append(("got", sim.now))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert ("put2", 500) in order  # blocked until the consumer drained


def test_half_cost_reflects_profile():
    bed, ring = make_ring()
    stage = bed.profile.stage("insane_ipc")
    effect = ring.half_cost(burst=1)
    expected = stage.cost(0, burst=1) / 2.0
    # jittered, but within a few percent
    assert abs(effect.delay - expected) / expected < 0.2


def test_token_meta_is_per_token():
    a, b = make_token(), make_token()
    a.meta["x"] = 1
    assert "x" not in b.meta
