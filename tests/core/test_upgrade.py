"""Transparent runtime software upgrade tests (paper §4, Snap-style)."""

from repro.core import QosPolicy, Session
from repro.core.runtime import InsaneDeployment
from repro.hw import Testbed
from repro.simnet import Timeout


def test_upgrade_preserves_traffic_and_sessions():
    """Messages emitted before, during, and after an upgrade all arrive;
    the application sessions never notice."""
    bed = Testbed.local(seed=40)
    sim = bed.sim
    deployment = InsaneDeployment(bed)
    rx_runtime = deployment.runtime(1)
    tx = Session(deployment.runtime(0), "tx")
    rx = Session(rx_runtime, "rx")
    tx_stream = tx.create_stream(QosPolicy.fast(), name="up")
    rx_stream = rx.create_stream(QosPolicy.fast(), name="up")
    source = tx.create_source(tx_stream, channel=1)
    got = []
    rx.create_sink(rx_stream, channel=1, callback=lambda d: got.append(d.length))
    downtime = []

    def producer():
        for _ in range(60):
            buffer = yield from tx.get_buffer_wait(source, 64)
            yield from tx.emit_data(source, buffer, length=64)
            yield Timeout(10_000)

    def upgrader():
        yield Timeout(200_000)  # mid-stream
        spent = yield from rx_runtime.upgrade()
        downtime.append(spent)

    sim.process(producer())
    sim.process(upgrader())
    sim.run()
    assert len(got) == 60
    assert rx_runtime.version == 2
    assert downtime[0] >= 100_000
    assert rx.runtime is rx_runtime  # session untouched


def test_upgrade_restores_thread_mapping():
    from repro.core.config import RuntimeConfig

    bed = Testbed.local(seed=41)
    sim = bed.sim
    deployment = InsaneDeployment(bed, config=RuntimeConfig(threads_per_datapath=2))
    runtime = deployment.runtime(0)
    session = Session(runtime, "app")
    session.create_stream(QosPolicy.fast(), name="map")
    threads_before = len(runtime.threads)

    def upgrader():
        yield from runtime.upgrade()

    sim.process(upgrader())
    sim.run()
    assert len(runtime.threads) == threads_before
    for binding in runtime.bindings.values():
        assert len(binding.threads) == 2


def test_upgrade_releases_old_cores():
    bed = Testbed.local(seed=42)
    sim = bed.sim
    deployment = InsaneDeployment(bed)
    runtime = deployment.runtime(0)
    Session(runtime, "app").create_stream(QosPolicy.fast(), name="c")
    pinned_before = runtime.host.pinned_cores

    def upgrader():
        yield from runtime.upgrade()

    sim.process(upgrader())
    sim.run()
    assert runtime.host.pinned_cores == pinned_before


def test_back_to_back_upgrades():
    bed = Testbed.local(seed=43)
    sim = bed.sim
    deployment = InsaneDeployment(bed)
    runtime = deployment.runtime(0)

    def upgrader():
        yield from runtime.upgrade()
        yield from runtime.upgrade()

    sim.process(upgrader())
    sim.run()
    assert runtime.version == 3
