"""Seeded city-topology generation: determinism, validation, structure."""

import pytest

from repro.core.errors import TopologyError
from repro.hw.generate import (
    CITY_PRESETS,
    city_plan,
    class_queue_ceilings,
    normalize_city_spec,
    resolve_topology,
    topology_digest,
)


def tiny(**overrides):
    spec = {"hosts": 16, "regions": 4, "messages": 2, "seed": 7}
    spec.update(overrides)
    return spec


class TestResolve:
    def test_preset_resolves(self):
        spec = resolve_topology("smoke64")
        assert spec["hosts"] == 64
        assert spec["regions"] == 4

    def test_unknown_preset_raises(self):
        with pytest.raises(TopologyError):
            resolve_topology("atlantis")

    def test_preset_equals_its_own_spec(self):
        assert (topology_digest("smoke64")
                == topology_digest(dict(CITY_PRESETS["smoke64"])))

    def test_digest_tracks_content(self):
        assert topology_digest(tiny()) != topology_digest(tiny(seed=8))
        assert topology_digest(tiny()) != topology_digest(tiny(hosts=32))

    def test_normalize_is_idempotent(self):
        spec = normalize_city_spec(tiny())
        assert normalize_city_spec(spec) == spec


class TestValidation:
    @pytest.mark.parametrize("bad", [
        {"hosts": 2},                     # too few hosts
        {"hosts": "many"},                # wrong type
        {"regions": 1},                   # single region is not a city
        {"regions": 9},                   # > hosts // 2
        {"hosts": 2048, "regions": 2},    # > 254 hosts per region (10.R.0.K)
        {"classes": 0},
        {"classes": 9},
        {"datapath": "carrier-pigeon"},
        {"profile": "mainframe"},
        {"interval_ns": 0.0},
        {"trunk_propagation_ns": -1.0},
        {"moat": True},                   # unknown key
    ])
    def test_bad_specs_raise(self, bad):
        with pytest.raises(TopologyError):
            normalize_city_spec(tiny(**bad))

    def test_ceilings_monotone_in_class(self):
        ceilings = class_queue_ceilings(resolve_topology(tiny(classes=3)))
        assert sorted(ceilings) == [0, 1, 2]
        # class 0 (EF) gets the shallowest queue
        assert ceilings[0] < ceilings[1] < ceilings[2]


class TestPlan:
    def test_same_inputs_same_plan(self):
        spec = resolve_topology(tiny())
        assert city_plan(spec) == city_plan(spec)

    def test_seed_moves_the_plan(self):
        a = city_plan(resolve_topology(tiny()))
        b = city_plan(resolve_topology(tiny(seed=8)))
        assert [f["phase_ns"] for f in a["flows"]] \
            != [f["phase_ns"] for f in b["flows"]]

    def test_flow_classes_round_robin(self):
        spec = resolve_topology(tiny(classes=3))
        for flow in city_plan(spec)["flows"]:
            assert flow["cls"] == flow["id"] % 3

    def test_phases_inside_one_interval(self):
        spec = resolve_topology(tiny())
        for flow in city_plan(spec)["flows"]:
            assert 0.0 <= flow["phase_ns"] < spec["interval_ns"]

    def test_rpc_flows_cross_regions_to_services(self):
        spec = resolve_topology(tiny(rpc_every=2))
        plan = city_plan(spec)
        hosts = plan["hosts"]
        services = {region["service"] for region in plan["regions"]}
        rpcs = [flow for flow in plan["flows"] if flow["kind"] == "rpc"]
        assert rpcs
        for flow in rpcs:
            assert flow["dst"] in services
            assert hosts[flow["src"]]["region"] != hosts[flow["dst"]]["region"]

    def test_services_land_on_accelerated_hosts(self):
        plan = city_plan(resolve_topology(tiny()))
        hosts = plan["hosts"]
        for region in plan["regions"]:
            assert hosts[region["service"]]["accelerated"]

    def test_every_host_has_a_region_local_address(self):
        plan = city_plan(resolve_topology(tiny()))
        for host in plan["hosts"]:
            assert host["ip"].startswith("10.%d.0." % host["region"])
