"""Tests for NIC, link, switch, host, and topology models."""

import pytest

from repro.hw import CLOUD_TESTBED, LOCAL_TESTBED, Testbed
from repro.hw.profiles import StageCost
from repro.netstack import Packet


def make_packet(src, dst, size=64):
    return Packet(src, dst, 7000, 7001, payload_len=size)


class TestStageCost:
    def test_burst_amortizes_fixed_only(self):
        stage = StageCost(fixed=320, per_pkt=50, per_byte=0.5)
        assert stage.cost(100, burst=1) == 320 + 50 + 50
        assert stage.cost(100, burst=32) == 10 + 50 + 50

    def test_invalid_burst(self):
        with pytest.raises(ValueError):
            StageCost(per_pkt=1).cost(0, burst=0)


class TestProfiles:
    def test_profiles_expose_required_stages(self):
        required = {
            "udp_tx", "udp_rx", "dpdk_tx", "dpdk_rx", "ustack_tx", "ustack_rx",
            "xdp_tx", "xdp_rx", "rdma_post", "rdma_poll_cq",
            "insane_ipc", "insane_sched_slow", "insane_sched_fast",
            "insane_dispatch_slow", "insane_dispatch_fast",
            "catnap_lib", "catnip_lib",
        }
        for profile in (LOCAL_TESTBED, CLOUD_TESTBED):
            missing = required - set(profile.stages)
            assert not missing, "%s missing %s" % (profile.name, missing)

    def test_unknown_stage_raises(self):
        with pytest.raises(KeyError):
            LOCAL_TESTBED.stage("nonexistent")
        with pytest.raises(KeyError):
            LOCAL_TESTBED.scalar("nonexistent")

    def test_cloud_kernel_costs_scaled_up(self):
        local = LOCAL_TESTBED.stage("udp_rx").cost(64)
        cloud = CLOUD_TESTBED.stage("udp_rx").cost(64)
        assert cloud > local

    def test_cloud_has_switch_local_does_not(self):
        assert CLOUD_TESTBED.has_switch
        assert not LOCAL_TESTBED.has_switch


class TestDirectLink:
    def test_frame_travels_between_hosts(self):
        bed = Testbed.local()
        src, dst = bed.hosts
        src.nic.transmit(make_packet(src.ip, dst.ip))
        bed.sim.run()
        assert len(dst.nic.rx_ring) == 1
        ok, packet = dst.nic.rx_ring.try_get()
        assert ok and packet.dst_ip == dst.ip

    def test_latency_includes_dma_serialization_propagation(self):
        bed = Testbed.local()
        src, dst = bed.hosts
        packet = make_packet(src.ip, dst.ip, size=64)
        src.nic.transmit(packet)
        bed.sim.run()
        profile = bed.profile
        serialization = packet.wire_size * 8.0 / profile.nic_bandwidth_gbps
        expected = (
            profile.nic_tx_dma_ns
            + serialization
            + profile.link_propagation_ns
            + profile.nic_rx_dma_ns
        )
        assert bed.sim.now == pytest.approx(expected, rel=1e-9)

    def test_tx_serialization_queues_back_to_back_frames(self):
        bed = Testbed.local()
        src, dst = bed.hosts
        big = make_packet(src.ip, dst.ip, size=8192)
        departure_a = src.nic.transmit(big)
        departure_b = src.nic.transmit(make_packet(src.ip, dst.ip, size=8192))
        # the second frame cannot start serializing before the first ends
        assert departure_b >= departure_a + big.wire_size * 8.0 / 100.0

    def test_rx_ring_overflow_drops(self):
        bed = Testbed.local()
        src, dst = bed.hosts
        capacity = bed.profile.nic_rx_ring_slots
        for _ in range(capacity + 50):
            src.nic.transmit(make_packet(src.ip, dst.ip))
        bed.sim.run()
        assert len(dst.nic.rx_ring) == capacity
        assert dst.nic.rx_dropped.value == 50


class TestSwitchTopology:
    def test_cloud_frames_pass_through_switch(self):
        bed = Testbed.cloud()
        src, dst = bed.hosts
        src.nic.transmit(make_packet(src.ip, dst.ip))
        bed.sim.run()
        assert bed.switch.forwarded.value == 1
        assert len(dst.nic.rx_ring) == 1

    def test_switch_adds_forwarding_latency(self):
        local = Testbed.local()
        cloud = Testbed.cloud()
        for bed in (local, cloud):
            src, dst = bed.hosts
            src.nic.transmit(make_packet(src.ip, dst.ip))
            bed.sim.run()
        assert cloud.sim.now > local.sim.now + CLOUD_TESTBED.switch_forward_ns

    def test_multi_host_topology_routes_by_ip(self):
        bed = Testbed(LOCAL_TESTBED, hosts=4)
        assert bed.switch is not None
        a, b, c, d = bed.hosts
        a.nic.transmit(make_packet(a.ip, c.ip))
        a.nic.transmit(make_packet(a.ip, d.ip))
        bed.sim.run()
        assert len(c.nic.rx_ring) == 1
        assert len(d.nic.rx_ring) == 1
        assert len(b.nic.rx_ring) == 0

    def test_unknown_destination_dropped_at_switch(self):
        bed = Testbed.cloud()
        src = bed.hosts[0]
        src.nic.transmit(make_packet(src.ip, "10.9.9.9"))
        bed.sim.run()
        assert bed.switch.dropped.value == 1


class TestHost:
    def test_jitter_centered_on_cost(self):
        bed = Testbed.local(seed=3)
        host = bed.hosts[0]
        samples = [host.jitter(1000.0) for _ in range(500)]
        mean = sum(samples) / len(samples)
        assert 980 < mean < 1020

    def test_stage_cost_without_jitter_is_exact(self):
        bed = Testbed.local()
        host = bed.hosts[0]
        exact = LOCAL_TESTBED.stage("dpdk_tx").cost(64)
        assert host.stage_cost("dpdk_tx", 64, jitter=False) == exact

    def test_core_pinning_limits(self):
        bed = Testbed.local()
        host = bed.hosts[0]
        for _ in range(LOCAL_TESTBED.cores):
            host.pin_core()
        with pytest.raises(RuntimeError):
            host.pin_core()
        host.unpin_core()
        host.pin_core()

    def test_host_lookup_by_ip(self):
        bed = Testbed.local()
        assert bed.host_by_ip("10.0.0.2") is bed.hosts[1]
        with pytest.raises(KeyError):
            bed.host_by_ip("1.2.3.4")

    def test_testbed_requires_two_hosts(self):
        with pytest.raises(ValueError):
            Testbed(LOCAL_TESTBED, hosts=1)
