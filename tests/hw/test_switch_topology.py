"""Switch wiring checks: reachability at build time, hairpins at runtime."""

import dataclasses

import pytest

from repro.core.errors import TopologyError
from repro.hw import CLOUD_TESTBED, Testbed
from repro.hw.nic import Frame
from repro.hw.switch import Switch
from repro.netstack import Packet
from repro.simnet import Simulator


def make_switch():
    sim = Simulator()
    switch = Switch(sim, CLOUD_TESTBED)
    return sim, switch


def frame(dst="10.0.0.9"):
    return Frame(Packet("10.0.0.1", dst, 1, 2, payload_len=64))


class TestCheckReachable:
    def test_missing_route_raises_with_the_hosts_named(self):
        _, switch = make_switch()
        switch.bind("10.0.0.1", switch.new_port())
        with pytest.raises(TopologyError) as err:
            switch.check_reachable(["10.0.0.1", "10.0.0.2", "10.0.0.3"])
        assert "10.0.0.2" in str(err.value)
        assert "10.0.0.3" in str(err.value)

    def test_fully_wired_table_passes(self):
        _, switch = make_switch()
        switch.bind("10.0.0.1", switch.new_port())
        switch.check_reachable(["10.0.0.1"])

    def test_testbed_builds_validate_their_own_wiring(self):
        # Testbed construction runs check_reachable; a clean build is the
        # regression guard that the check is actually invoked.
        bed = Testbed.cloud(seed=0)
        assert set(bed.switch.table) == {host.ip for host in bed.hosts}


class TestHairpin:
    def test_hairpin_counts_separately_from_missing_route(self):
        sim, switch = make_switch()
        port = switch.new_port()
        switch.bind("10.0.0.9", port)
        # route resolves back out the ingress port: hairpin, not "dropped"
        switch.forward(frame("10.0.0.9"), port)
        assert switch.hairpin_dropped.value == 1
        assert switch.dropped.value == 0
        assert switch.forwarded.value == 0
        # a genuinely unroutable frame lands in the other counter
        switch.forward(frame("10.9.9.9"), port)
        assert switch.hairpin_dropped.value == 1
        assert switch.dropped.value == 1

    def test_hairpin_schedules_nothing(self):
        sim, switch = make_switch()
        port = switch.new_port()
        switch.bind("10.0.0.9", port)
        switch.forward(frame("10.0.0.9"), port)
        sim.run()
        assert sim.now == 0.0


class TestProfileQueueCeiling:
    def test_switch_reads_the_profile_field(self):
        shallow = dataclasses.replace(CLOUD_TESTBED,
                                      switch_port_queue_ns=123.0)
        sim = Simulator()
        assert Switch(sim, shallow).max_port_queue_ns == 123.0

    def test_shallow_profile_drops_where_deep_does_not(self):
        def converge(profile):
            bed = Testbed(profile, hosts=3, seed=4)
            a, b, c = bed.hosts
            for _ in range(50):
                a.nic.transmit(Packet(a.ip, c.ip, 1, 2, payload_len=8192))
                b.nic.transmit(Packet(b.ip, c.ip, 1, 2, payload_len=8192))
            bed.sim.run()
            return bed.switch.dropped.value

        shallow = dataclasses.replace(CLOUD_TESTBED,
                                      switch_port_queue_ns=1_000.0)
        assert converge(shallow) > 0
        assert converge(CLOUD_TESTBED) == 0
