"""Switch output-port queueing and overflow behaviour."""

import pytest

from repro.hw import CLOUD_TESTBED, Testbed
from repro.hw.nic import Frame
from repro.hw.switch import Switch
from repro.netstack import Packet
from repro.simnet import Simulator


def flood(bed, count, size=8192):
    src, dst = bed.hosts[0], bed.hosts[1]
    for _ in range(count):
        src.nic.transmit(Packet(src.ip, dst.ip, 1000, 2000, payload_len=size))
    bed.sim.run()
    return dst


def test_output_queue_serializes_bursts():
    """Back-to-back frames leave the switch spaced by serialization time."""
    bed = Testbed.cloud(seed=0)
    dst = flood(bed, 3)
    assert dst.nic.rx_frames.value == 3
    arrivals = []
    while True:
        ok, packet = dst.nic.rx_ring.try_get()
        if not ok:
            break
        arrivals.append(packet.trace)
    # all three forwarded, none dropped at the switch
    assert bed.switch.forwarded.value == 3
    assert bed.switch.dropped.value == 0


def test_sustained_overload_drops_at_switch():
    """Two line-rate senders converging on one output port overflow its
    queue once it exceeds max_port_queue_ns."""
    bed = Testbed(CLOUD_TESTBED, hosts=3, seed=1)
    bed.switch.max_port_queue_ns = 10_000.0  # very shallow for the test
    a, b, c = bed.hosts
    for _ in range(100):
        a.nic.transmit(Packet(a.ip, c.ip, 1, 2, payload_len=8192))
        b.nic.transmit(Packet(b.ip, c.ip, 1, 2, payload_len=8192))
    bed.sim.run()
    delivered = c.nic.rx_frames.value + c.nic.rx_dropped.value
    assert bed.switch.dropped.value > 0
    assert delivered + bed.switch.dropped.value == 200


def test_two_senders_share_one_output_port():
    bed = Testbed(CLOUD_TESTBED, hosts=3, seed=2)
    a, b, c = bed.hosts
    for _ in range(5):
        a.nic.transmit(Packet(a.ip, c.ip, 1, 2, payload_len=1024))
        b.nic.transmit(Packet(b.ip, c.ip, 1, 2, payload_len=1024))
    bed.sim.run()
    assert c.nic.rx_frames.value == 10


def test_switch_latency_scales_with_queue_depth():
    """The tenth frame of a burst arrives later than a lone frame."""
    lone = Testbed.cloud(seed=3)
    flood(lone, 1)
    lone_time = lone.sim.now

    burst = Testbed.cloud(seed=3)
    flood(burst, 10, size=8192)
    assert burst.sim.now > lone_time


# -- port-level overflow mechanics (no testbed, raw port objects) -------------

class CarrySink:
    """Stands in for the Link on a port's egress; records departures."""

    def __init__(self):
        self.carried = []

    def carry(self, frame, sender):
        self.carried.append(frame)


class TraceRecorder:
    """Minimal packet trace: records stamps and drop marks."""

    def __init__(self):
        self.stamps = {}
        self.drops = []

    def __setitem__(self, key, when):
        self.stamps[key] = when

    def mark_dropped(self, now, reason):
        self.drops.append((now, reason))


def make_port(queue_ns):
    sim = Simulator()
    switch = Switch(sim, CLOUD_TESTBED)
    switch.max_port_queue_ns = queue_ns
    port = switch.new_port()
    port.egress = CarrySink()
    return sim, switch, port


def traced_frame(size=8192):
    recorder = TraceRecorder()
    packet = Packet("10.0.0.1", "10.0.0.2", 1, 2, payload_len=size,
                    trace=recorder)
    return Frame(packet), recorder


def test_overflow_drop_does_not_advance_the_tx_horizon():
    """A dropped frame must not consume port bandwidth: the committed
    transmit horizon stays where the admitted frames left it, so the next
    frame is not delayed by one that never went out."""
    sim, switch, port = make_port(queue_ns=1.0)
    first, _ = traced_frame()
    port.emit(first)
    horizon = port._tx_free_at
    assert horizon > 0.0
    overflow, recorder = traced_frame()
    port.emit(overflow)  # queued-wait would exceed 1ns -> dropped
    assert switch.dropped.value == 1
    assert port._tx_free_at == horizon
    assert recorder.drops and "queue overflow" in recorder.drops[0][1]
    # the port index is named in the drop reason
    assert "port %d" % port.index in recorder.drops[0][1]
    sim.run()
    assert len(port.egress.carried) == 1


def test_admitted_frames_depart_in_fifo_order_at_line_rate():
    sim, switch, port = make_port(queue_ns=1e9)
    frames = [traced_frame()[0] for _ in range(3)]
    for f in frames:
        port.emit(f)
    sim.run()
    assert port.egress.carried == frames
    assert switch.dropped.value == 0


def make_qos_port(ceilings):
    sim = Simulator()
    switch = Switch(sim, CLOUD_TESTBED)
    port = switch.new_qos_port(ceilings, region=0)
    port.egress = CarrySink()
    return sim, switch, port


def classed_frame(cls, size=8192):
    frame, recorder = traced_frame(size)
    if cls is not None:
        frame.packet.meta["qos_class"] = cls
    return frame, recorder


def test_qos_strict_priority_reorders_across_classes():
    """With the port busy, a later high-class frame departs before the
    earlier low-class backlog."""
    sim, switch, port = make_qos_port({0: 1e9, 1: 1e9})
    low_a, _ = classed_frame(1)
    low_b, _ = classed_frame(1)
    high, _ = classed_frame(0)
    port.emit(low_a)   # starts transmitting immediately
    port.emit(low_b)   # queued behind it
    port.emit(high)    # queued, but class 0 preempts the queue order
    sim.run()
    assert port.egress.carried == [low_a, high, low_b]


def test_qos_per_class_ceilings_and_counters():
    sim, switch, port = make_qos_port({0: 1.0, 1: 1e9})
    filler, _ = classed_frame(1)
    port.emit(filler)  # occupies the wire; class-0 wait now exceeds 1ns
    premium, recorder = classed_frame(0)
    port.emit(premium)
    assert switch.dropped.value == 1
    assert port.class_dropped == {0: 1, 1: 0}
    assert recorder.drops and "class 0" in recorder.drops[0][1]
    sim.run()
    assert port.egress.carried == [filler]


def test_qos_unclassed_frames_ride_the_lowest_class():
    sim, switch, port = make_qos_port({0: 1e9, 2: 1e9})
    plain, _ = classed_frame(None)
    assert port._class_of(plain) == 2
    stranger, _ = classed_frame(7)  # class not configured on this port
    assert port._class_of(stranger) == 2


def test_qos_port_requires_a_class_map():
    sim = Simulator()
    switch = Switch(sim, CLOUD_TESTBED)
    with pytest.raises(ValueError):
        switch.new_qos_port({})
