"""Switch output-port queueing and overflow behaviour."""

from repro.hw import CLOUD_TESTBED, Testbed
from repro.netstack import Packet


def flood(bed, count, size=8192):
    src, dst = bed.hosts[0], bed.hosts[1]
    for _ in range(count):
        src.nic.transmit(Packet(src.ip, dst.ip, 1000, 2000, payload_len=size))
    bed.sim.run()
    return dst


def test_output_queue_serializes_bursts():
    """Back-to-back frames leave the switch spaced by serialization time."""
    bed = Testbed.cloud(seed=0)
    dst = flood(bed, 3)
    assert dst.nic.rx_frames.value == 3
    arrivals = []
    while True:
        ok, packet = dst.nic.rx_ring.try_get()
        if not ok:
            break
        arrivals.append(packet.trace)
    # all three forwarded, none dropped at the switch
    assert bed.switch.forwarded.value == 3
    assert bed.switch.dropped.value == 0


def test_sustained_overload_drops_at_switch():
    """Two line-rate senders converging on one output port overflow its
    queue once it exceeds max_port_queue_ns."""
    bed = Testbed(CLOUD_TESTBED, hosts=3, seed=1)
    bed.switch.max_port_queue_ns = 10_000.0  # very shallow for the test
    a, b, c = bed.hosts
    for _ in range(100):
        a.nic.transmit(Packet(a.ip, c.ip, 1, 2, payload_len=8192))
        b.nic.transmit(Packet(b.ip, c.ip, 1, 2, payload_len=8192))
    bed.sim.run()
    delivered = c.nic.rx_frames.value + c.nic.rx_dropped.value
    assert bed.switch.dropped.value > 0
    assert delivered + bed.switch.dropped.value == 200


def test_two_senders_share_one_output_port():
    bed = Testbed(CLOUD_TESTBED, hosts=3, seed=2)
    a, b, c = bed.hosts
    for _ in range(5):
        a.nic.transmit(Packet(a.ip, c.ip, 1, 2, payload_len=1024))
        b.nic.transmit(Packet(b.ip, c.ip, 1, 2, payload_len=1024))
    bed.sim.run()
    assert c.nic.rx_frames.value == 10


def test_switch_latency_scales_with_queue_depth():
    """The tenth frame of a burst arrives later than a lone frame."""
    lone = Testbed.cloud(seed=3)
    flood(lone, 1)
    lone_time = lone.sim.now

    burst = Testbed.cloud(seed=3)
    flood(burst, 10, size=8192)
    assert burst.sim.now > lone_time
