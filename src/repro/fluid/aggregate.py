"""Fluid aggregates: a cold subscriber population folded into one object.

A :class:`FluidAggregate` stands for ``subscribers`` cold sinks of one
``(host, datapath)`` pair.  Instead of per-subscriber rings, processes
and IPC events, the aggregate keeps O(1) state and is drained by a
single periodic engine event (:meth:`Simulator.schedule_periodic`) that
parks itself when the flow goes idle — the total event cost of the cold
population is one callback per drain interval, independent of whether it
models 10 or 1,000,000 subscribers.

Two operating modes:

``piggyback``
    Some sinks on the host are packet-accurate (hot), so every message
    already crosses the wire once.  The aggregate registers a *weighted*
    sink endpoint (``InsaneRuntime.register_fluid_sink``): the dispatch
    loop hands it each delivery token exactly once, the rx-pass charges
    the fan-out cost of the full modelled population, and the L2
    ring-pressure model sees ``weight`` rings.  The absorber records the
    dispatch instant and the analytic (jitter-free) IPC pickup, so the
    cold latency estimate differs from a hot sink's sample only by the
    per-sink jitter draw.  Delivered counts are *exact*: the endpoint
    weight and the hot sink list are mutated at the same simulated
    instant (inside the drain callback), so every dispatched message
    sees a consistent configuration summing to the subscriber count.

``analytic``
    No hot sinks: nothing subscribes, no packets are built, and the
    publisher's emits are mirrored into the aggregate by the driver
    (:meth:`on_emit`).  Arrivals land one calibrated one-way latency
    after each emit, and the wire crossings the DES would have simulated
    are accounted through the ``fluid_*`` counters on the NICs, links
    and datapaths (conservation: a full-DES run's ``tx_frames`` equals a
    hybrid run's ``tx_frames + fluid_tx_frames``).
"""

from repro.obs import LogHistogram

MODE_PIGGYBACK = "piggyback"
MODE_ANALYTIC = "analytic"


class FluidAbsorber:
    """Ring-duck standing in for the cold population's sink rings.

    ``_dispatch`` treats it like any ring: ``try_put`` receives the
    delivery token.  It always absorbs — the aggregate's drop behaviour
    is modelled by the weighted fan-out charge upstream, not by slot
    exhaustion — and immediately returns the lent pool buffer so the
    cold population never holds memory.
    """

    __slots__ = ("aggregate", "app_id", "memory")

    def __init__(self, aggregate, app_id, memory):
        self.aggregate = aggregate
        self.app_id = app_id
        self.memory = memory

    def try_put(self, delivery):
        self.aggregate._absorb(delivery)
        self.memory.release_for(self.app_id, delivery.buffer)
        return True

    def __len__(self):
        return 0


class FluidAggregate:
    """``subscribers`` cold sinks of one channel on one host."""

    def __init__(self, runtime, key, subscribers, envelope,
                 mode=MODE_PIGGYBACK, hist=None, datapath="udp",
                 drain_interval_ns=200_000.0, wire=None, frame_bytes=0,
                 service_extra_ns=0.0, name="fluid-agg"):
        if subscribers < 1:
            raise ValueError("a fluid aggregate models >= 1 subscriber, "
                             "got %r" % (subscribers,))
        if mode not in (MODE_PIGGYBACK, MODE_ANALYTIC):
            raise ValueError("unknown fluid mode %r" % (mode,))
        self.runtime = runtime
        self.sim = runtime.sim
        self.key = key
        self.subscribers = subscribers
        self.envelope = envelope
        self.mode = mode
        self.hist = hist if hist is not None else LogHistogram()
        #: per-message cold arrival instants (one entry per message, for
        #: inter-arrival gap metrics; bounded by the message count)
        self.arrivals = []
        self.delivered = 0
        self.messages = 0
        self.drain_ticks = 0
        self.drain_interval_ns = drain_interval_ns
        self.rate_ewma_hz = 0.0
        self.first_arrival_ns = None
        self.last_arrival_ns = None
        #: attached by FidelityController; called on every drain tick
        self.controller = None
        self.closed = False
        #: analytic-mode wire path: {"tx_nic", "rx_nic", "links",
        #: "tx_datapath", "rx_datapath"} — whichever are present get the
        #: modelled crossings accounted on their fluid counters
        self.wire = wire or {}
        self.frame_bytes = frame_bytes
        #: analytic-mode latency surcharge beyond the calibrated 1-sink
        #: one-way: the receiver's fan-out service for the population
        #: (piggyback mode sees real dispatch instants and needs none)
        self.service_extra_ns = service_extra_ns
        self._pending = []  # (arrival_ns, latency_ns)
        self._rate_mark_ns = None
        self.endpoint = None
        self.handle = self.sim.schedule_periodic(drain_interval_ns,
                                                 self._drain)
        if mode == MODE_PIGGYBACK:
            self.absorber = FluidAbsorber(self, name, runtime.memory)
            self.endpoint = runtime.register_fluid_sink(
                key, self.absorber, subscribers, name, datapath=datapath)

    # -- arrivals ----------------------------------------------------------

    def _absorb(self, delivery):
        """Piggyback arrival: one dispatched token for the whole cold
        population, at the exact instant hot sinks are enqueued."""
        now = self.sim.now
        trace = delivery.meta.get("trace")
        emit = trace.get("emit_ns") if trace else None
        if emit is not None:
            # dispatch instant + jitter-free IPC pickup: what a real sink
            # would record, modulo its per-sink jitter draw
            latency = now + self.envelope.ipc_half_ns - emit
        else:
            latency = self.envelope.one_way_ns
        self._pending.append((now, latency))
        self.handle.kick()

    def on_emit(self, emit_ns):
        """Analytic arrival: the driver mirrors one publisher emit; the
        cold population receives it one calibrated one-way (plus the
        population's fan-out service) later."""
        latency = self.envelope.one_way_ns + self.service_extra_ns
        self._pending.append((emit_ns + latency, latency))
        self.handle.kick()

    # -- the single periodic event -----------------------------------------

    def _drain(self):
        """One drain tick: fold every matured arrival into the aggregate
        statistics; re-arm only while arrivals remain in flight."""
        now = self.sim.now
        if self.mode == MODE_ANALYTIC:
            ready = [entry for entry in self._pending if entry[0] <= now]
            if ready:
                self._pending = [entry for entry in self._pending
                                 if entry[0] > now]
        else:
            ready, self._pending = self._pending, []
        if ready:
            weight = self.subscribers
            hist = self.hist
            arrivals = self.arrivals
            for arrival, latency in ready:
                self.messages += 1
                self.delivered += weight
                arrivals.append(arrival)
                if self.first_arrival_ns is None:
                    self.first_arrival_ns = arrival
                self.last_arrival_ns = arrival
                hist.record_many(latency, weight)
            if self.mode == MODE_ANALYTIC:
                self._account_wire(len(ready))
        self.drain_ticks += 1
        self._update_rate(now, len(ready))
        if self.controller is not None:
            self.controller.on_tick(now, self.rate_ewma_hz)
        return bool(self._pending)

    def _update_rate(self, now, count):
        mark = self._rate_mark_ns
        self._rate_mark_ns = now
        if mark is None or now <= mark:
            return
        instant_hz = count * 1e9 / (now - mark)
        # EWMA over drain ticks: smooth enough for hysteresis, fast
        # enough to track a burst within a few intervals
        self.rate_ewma_hz += 0.3 * (instant_hz - self.rate_ewma_hz)

    def _account_wire(self, frames):
        """Account the wire crossings a full-DES run would have
        simulated for ``frames`` messages (analytic mode only)."""
        wire = self.wire
        if not wire:
            return
        byte_count = frames * self.frame_bytes
        tx_nic = wire.get("tx_nic")
        if tx_nic is not None:
            tx_nic.account_fluid_tx(frames, byte_count)
        for link in wire.get("links", ()):
            link.account_fluid(frames)
        rx_nic = wire.get("rx_nic")
        if rx_nic is not None:
            rx_nic.account_fluid_rx(frames, byte_count)
        tx_datapath = wire.get("tx_datapath")
        if tx_datapath is not None:
            tx_datapath.account_fluid(tx=frames)
        rx_datapath = wire.get("rx_datapath")
        if rx_datapath is not None:
            rx_datapath.account_fluid(rx=frames)

    # -- promotion/demotion ------------------------------------------------

    def set_subscribers(self, count):
        """Re-weight the modelled population (promotion moves subscribers
        out to real DES sinks, demotion folds them back).  In piggyback
        mode the runtime weight changes at this exact instant, so a
        caller that registers/unregisters the corresponding real sinks
        in the same callback keeps delivered counts exact."""
        if count < 1:
            raise ValueError("a fluid aggregate models >= 1 subscriber, "
                             "got %r" % (count,))
        if self.endpoint is not None:
            self.runtime.set_fluid_weight(self.endpoint, self.subscribers,
                                          count)
        self.subscribers = count

    # -- lifecycle ---------------------------------------------------------

    def flush(self):
        """Fold any still-pending arrivals in, regardless of maturity
        (end-of-run safety net; a live run drains itself empty)."""
        if self._pending:
            self._pending.sort()
            weight = self.subscribers
            for arrival, latency in self._pending:
                self.messages += 1
                self.delivered += weight
                self.arrivals.append(arrival)
                if self.first_arrival_ns is None:
                    self.first_arrival_ns = arrival
                self.last_arrival_ns = arrival
                self.hist.record_many(latency, weight)
            if self.mode == MODE_ANALYTIC:
                self._account_wire(len(self._pending))
            self._pending = []

    def close(self):
        if self.closed:
            return
        self.closed = True
        self.handle.cancel()
        if self.endpoint is not None:
            self.runtime.unregister_fluid_sink(self.endpoint,
                                               self.subscribers)
            self.endpoint = None

    def stats(self):
        return {
            "mode": self.mode,
            "subscribers": self.subscribers,
            "messages": self.messages,
            "delivered": self.delivered,
            "drain_ticks": self.drain_ticks,
            "drain_interval_ns": self.drain_interval_ns,
            "rate_ewma_hz": self.rate_ewma_hz,
        }
