"""Hybrid-fidelity flow modeling: a fluid rate-envelope tier beside the
packet-accurate DES (DESIGN.md §15).

Hot flows stay per-packet; cold populations collapse into
:class:`FluidAggregate` objects drained by one periodic engine event,
with :class:`FidelityController` moving subscribers across the boundary
as their rate crosses a threshold.  :func:`run_hybrid_fanout` is the
driver behind ``insane bench fanout`` and the scenario DSL's
``subscribers`` fan-out mode; :mod:`repro.validate.fanout` bounds the
fluid tier's error against full DES.
"""

from repro.fluid.aggregate import (
    MODE_ANALYTIC,
    MODE_PIGGYBACK,
    FluidAbsorber,
    FluidAggregate,
)
from repro.fluid.controller import FidelityController
from repro.fluid.envelope import (
    Envelope,
    calibrate_envelope,
    envelope_from_breakdown,
)
from repro.fluid.fanout import drive_fanout_scenario, run_hybrid_fanout

__all__ = [
    "MODE_ANALYTIC",
    "MODE_PIGGYBACK",
    "Envelope",
    "FidelityController",
    "FluidAbsorber",
    "FluidAggregate",
    "calibrate_envelope",
    "drive_fanout_scenario",
    "envelope_from_breakdown",
    "run_hybrid_fanout",
]
