"""Hybrid-fidelity MoM fan-out: hot DES sinks + a fluid cold tail.

The paper's LUNAR scenario (§7.1) is one publisher feeding a very large
subscriber population.  Packet-accurate DES costs O(subscribers) events
per message, which caps a single box around 10⁴ subscribers; the hybrid
driver keeps a configurable *hot fraction* packet-accurate and folds the
cold tail into one :class:`~repro.fluid.aggregate.FluidAggregate` per
(host, datapath), so a 10⁶-subscriber fan-out runs in the event budget
of a ~10²-sink one while the weighted fan-out charge and the L2
ring-pressure model keep the *timing* of the full population.

``hot_fraction=1.0`` degenerates to a plain full-DES fan-out — the
reference the differential validator (:mod:`repro.validate.fanout`)
compares hybrid runs against.
"""

from repro.core import QosPolicy, Session
from repro.core.channel import ChannelKey
from repro.core.config import RuntimeConfig
from repro.core.errors import SessionError
from repro.core.runtime import InsaneDeployment
from repro.hw import Testbed
from repro.hw.profiles import PROFILES
from repro.netstack.packet import WIRE_OVERHEAD
from repro.obs import LogHistogram
from repro.simnet import Timeout

from repro.fluid.aggregate import (
    MODE_ANALYTIC,
    MODE_PIGGYBACK,
    FluidAggregate,
)
from repro.fluid.controller import FidelityController
from repro.fluid.envelope import calibrate_envelope

STREAM_NAME = "fanout"
DATA_CHANNEL = 1


class _HotSink:
    """Book-keeping for one packet-accurate sink."""

    __slots__ = ("session", "sink", "count", "first_ns", "last_ns",
                 "deliveries")

    def __init__(self, session, sink, keep_deliveries=False):
        self.session = session
        self.sink = sink
        self.count = 0
        self.first_ns = None
        self.last_ns = None
        self.deliveries = [] if keep_deliveries else None


def _latency_block(hist):
    return {
        "count": hist.count,
        "mean_ns": hist.mean,
        "p50_ns": hist.percentile(50),
        "p99_ns": hist.percentile(99),
        "p999_ns": hist.percentile(99.9),
        "max_ns": hist.maximum,
        "histogram": hist.to_dict(),
    }


def _gap_block(deliveries):
    gaps = sorted(b - a for a, b in zip(deliveries, deliveries[1:]))
    if not gaps:
        return {"nominal_ns": 0.0, "blackout_ns": 0.0}
    return {"nominal_ns": gaps[len(gaps) // 2], "blackout_ns": gaps[-1]}


def _resolve_policy(qos):
    if qos is None:
        return QosPolicy.fast()
    if isinstance(qos, QosPolicy):
        return qos
    return QosPolicy.from_dict(qos)


def _path_links(testbed, tx_nic, rx_nic):
    """Every cable segment a host0→host1 frame traverses (direct link,
    or both NIC-to-switch segments on switched profiles)."""
    return [link for link in testbed.links
            if link.end_a in (tx_nic, rx_nic)
            or link.end_b in (tx_nic, rx_nic)]


def run_hybrid_fanout(subscribers, messages=64, size=1024,
                      hot_fraction=0.01, promote_threshold_hz=None,
                      demote_ratio=0.5, promote_batch=None, dwell_ticks=2,
                      drain_interval_ns=None, interval_ns=None,
                      profile="local", seed=0, datapath=None, qos=None,
                      testbed=None, deployment=None, envelope=None,
                      stream_name=STREAM_NAME, channel=DATA_CHANNEL):
    """Run one publisher → ``subscribers`` fan-out at hybrid fidelity.

    ``hot_fraction`` of the population is packet-accurate (at least one
    sink when the fraction is nonzero, or when a promote threshold needs
    the piggyback arrival signal); the rest rides a fluid aggregate.
    ``interval_ns`` paces the publisher — a float, a callable
    ``f(message_index) -> ns`` (rate-varying flows, e.g. to exercise
    demotion), or ``None`` for the envelope's drop-free interval.
    Passing ``testbed``/``deployment`` reuses an externally-built stack
    (the scenario compiler does); otherwise a 2-host testbed is built
    from ``profile``.  Returns a JSON-native metrics dict.
    """
    if subscribers < 1:
        raise ValueError("subscribers must be >= 1, got %r" % (subscribers,))
    if messages < 1:
        raise ValueError("messages must be >= 1, got %r" % (messages,))
    if not 0.0 <= hot_fraction <= 1.0:
        raise ValueError("hot_fraction must be in [0, 1], got %r"
                         % (hot_fraction,))
    hot = int(round(subscribers * hot_fraction))
    if hot == 0 and hot_fraction > 0.0:
        hot = 1
    if hot > subscribers:
        hot = subscribers
    if promote_threshold_hz is not None and hot == 0 and hot < subscribers:
        # promotion changes the sink registry mid-flow, which is only
        # exact when the aggregate sees real dispatch instants — seed one
        # hot sink so the cold tail rides piggyback mode
        hot = 1
    cold = subscribers - hot

    if envelope is None:
        envelope = calibrate_envelope(profile=profile, size=size,
                                      datapath=datapath, qos=qos,
                                      seed=seed + 7919)
    if testbed is None:
        prof = PROFILES[profile]
        if datapath == "rdma" and not prof.rdma_nic:
            prof = prof.replace(rdma_nic=True)
        testbed = Testbed(prof, hosts=2, seed=seed)
        config = RuntimeConfig(trace=True)
        if datapath is not None:
            config.mapping_strategy = \
                lambda policy, available, _pin=datapath: _pin
        deployment = InsaneDeployment(testbed, config=config)
    sim = testbed.sim
    policy = _resolve_policy(qos)
    pub = Session(deployment.runtime(0), "fanout-pub")
    pub_stream = pub.create_stream(policy, name=stream_name)
    source = pub.create_source(pub_stream, channel=channel)
    initial_datapath = pub_stream.datapath

    hot_hist = LogHistogram()
    hot_sinks = []
    promoted = []
    retired = []
    sub_runtime = deployment.runtime(1)

    def hot_proc(state):
        session, sink = state.session, state.sink
        while True:
            try:
                delivery = yield from session.consume_data(sink)
            except SessionError:
                return  # demoted: session closed with an empty ring
            now = sim.now
            state.count += 1
            if state.first_ns is None:
                state.first_ns = now
            state.last_ns = now
            if state.deliveries is not None:
                state.deliveries.append(now)
            stamps = delivery.meta.get("trace")
            if stamps and "emit_ns" in stamps:
                hot_hist.record(now - stamps["emit_ns"])
            session.release_buffer(sink, delivery)

    def spawn_hot(index):
        session = Session(sub_runtime, "fanout-hot%d" % index)
        stream = session.create_stream(policy, name=stream_name)
        sink = session.create_sink(stream, channel=channel)
        state = _HotSink(session, sink, keep_deliveries=(index == 0))
        hot_sinks.append(state)
        sim.process(hot_proc(state), name="fanout.hot%d" % index)
        return state

    for index in range(hot):
        spawn_hot(index)
    sink_datapath = (hot_sinks[0].sink.stream.datapath if hot_sinks
                     else initial_datapath)

    aggregate = None
    controller = None
    if cold > 0:
        mode = MODE_PIGGYBACK if hot > 0 else MODE_ANALYTIC
        key = ChannelKey(stream_name, channel)
        wire = {}
        if mode == MODE_ANALYTIC:
            tx_nic = testbed.hosts[0].nic
            rx_nic = testbed.hosts[1].nic
            wire = {
                "tx_nic": tx_nic,
                "rx_nic": rx_nic,
                "links": _path_links(testbed, tx_nic, rx_nic),
                "tx_datapath": pub_stream.binding.datapath,
                "rx_datapath":
                    sub_runtime.ensure_binding(initial_datapath).datapath,
            }
        aggregate = FluidAggregate(
            sub_runtime, key, cold, envelope,
            mode=mode,
            datapath=sink_datapath,
            drain_interval_ns=(drain_interval_ns
                               or max(envelope.safe_interval_ns(subscribers),
                                      200_000.0)),
            wire=wire,
            frame_bytes=size + WIRE_OVERHEAD,
            service_extra_ns=(envelope.fanout_service_ns(subscribers)
                              if mode == MODE_ANALYTIC else 0.0),
            name="fanout-fluid",
        )
        if promote_threshold_hz is not None:
            next_index = [hot]

            def do_promote(want):
                moved = 0
                for _ in range(want):
                    state = spawn_hot(next_index[0])
                    next_index[0] += 1
                    promoted.append(state)
                    moved += 1
                return moved

            def do_demote(want):
                moved = 0
                while promoted and moved < want:
                    state = promoted[-1]
                    if state.session.data_available(state.sink):
                        break  # in-flight deliveries: not safe to fold yet
                    promoted.pop()
                    state.session.close()
                    retired.append(state)
                    hot_sinks.remove(state)
                    moved += 1
                return moved

            controller = FidelityController(
                aggregate, promote_threshold_hz,
                on_promote=do_promote, on_demote=do_demote,
                demote_ratio=demote_ratio, promote_batch=promote_batch,
                dwell_ticks=dwell_ticks,
            )

    if interval_ns is None:
        interval_for = lambda index: envelope.safe_interval_ns(subscribers)
    elif callable(interval_ns):
        interval_for = interval_ns
    else:
        interval_for = lambda index, _gap=float(interval_ns): _gap

    def producer():
        for index in range(messages):
            buffer = yield from pub.get_buffer_wait(source, size)
            emit_at = sim.now
            yield from pub.emit_data(source, buffer, length=size)
            if aggregate is not None and aggregate.mode == MODE_ANALYTIC:
                aggregate.on_emit(emit_at)
            gap = interval_for(index)
            if gap > 0:
                yield Timeout(gap)

    sim.process(producer(), name="fanout.pub")
    sim.run()
    if aggregate is not None:
        aggregate.flush()
        aggregate.close()

    all_sinks = hot_sinks + retired
    delivered_hot = sum(state.count for state in all_sinks)
    delivered_cold = aggregate.delivered if aggregate is not None else 0
    delivered = delivered_hot + delivered_cold
    expected = messages * subscribers

    starts = [state.first_ns for state in all_sinks
              if state.first_ns is not None]
    ends = [state.last_ns for state in all_sinks
            if state.last_ns is not None]
    if aggregate is not None and aggregate.first_arrival_ns is not None:
        starts.append(aggregate.first_arrival_ns)
        ends.append(aggregate.last_arrival_ns)
    window = (max(ends) - min(starts)) if starts else 0.0
    goodput = delivered * size * 8.0 / window if window > 0 else 0.0

    sink_rates = [
        (state.count - 1) * size * 8.0 / (state.last_ns - state.first_ns)
        for state in all_sinks
        if state.count > 1 and state.last_ns > state.first_ns
    ]
    if aggregate is not None and aggregate.messages > 1:
        cold_window = aggregate.last_arrival_ns - aggregate.first_arrival_ns
        if cold_window > 0:
            sink_rates.append(
                (aggregate.messages - 1) * size * 8.0 / cold_window)

    hists = [hot_hist]
    if aggregate is not None:
        hists.append(aggregate.hist)
    merged = LogHistogram.merged(hists)

    if hot_sinks and hot_sinks[0].deliveries is not None:
        gap_samples = hot_sinks[0].deliveries
    elif aggregate is not None:
        gap_samples = aggregate.arrivals
    else:
        gap_samples = []

    tx_nic = testbed.hosts[0].nic
    rx_nic = testbed.hosts[1].nic
    metrics = {
        "kind": "fanout",
        "mode": "hybrid" if aggregate is not None else "des",
        "subscribers": subscribers,
        "sinks": subscribers,
        "hot": hot,
        "cold": cold,
        "emitted": messages,
        "delivered": delivered,
        "delivered_hot": delivered_hot,
        "delivered_cold": delivered_cold,
        "expected": expected,
        "delivery_ratio": delivered / expected,
        "duration_ns": window,
        "goodput_gbps": goodput,
        "min_sink_goodput_gbps": min(sink_rates) if sink_rates else 0.0,
        "latency": _latency_block(merged),
        "hot_latency": _latency_block(hot_hist),
        "cold_latency": (_latency_block(aggregate.hist)
                         if aggregate is not None else None),
        "gaps": _gap_block(gap_samples),
        "wire": {
            "tx_frames": tx_nic.tx_frames.value,
            "fluid_tx_frames": tx_nic.fluid_tx_frames.value,
            "rx_frames": rx_nic.rx_frames.value,
            "fluid_rx_frames": rx_nic.fluid_rx_frames.value,
            "rx_dropped": rx_nic.rx_dropped.value,
        },
        "fluid": None,
        "datapath": {"initial": initial_datapath,
                     "final": pub_stream.datapath,
                     "degraded": pub_stream.degraded},
        "failovers": sum(runtime.failovers.value
                         for runtime in deployment.runtimes.values()),
    }
    if aggregate is not None:
        fluid = aggregate.stats()
        fluid["envelope"] = envelope.to_dict()
        fluid["promotions"] = controller.promotions if controller else 0
        fluid["demotions"] = controller.demotions if controller else 0
        if controller is not None:
            fluid["controller"] = controller.stats()
        metrics["fluid"] = fluid
    return metrics


def drive_fanout_scenario(spec, testbed, deployment,
                          stream_name="scenario", channel=1):
    """Scenario-DSL adapter: a ``fanout`` workload with ``subscribers``
    runs on the hybrid engine, reusing the compiler's pre-built stack
    (and therefore its fault schedule, datapath pin and seed)."""
    workload = spec["workload"]
    fidelity = workload.get("fidelity") or {}
    return run_hybrid_fanout(
        subscribers=workload["subscribers"],
        messages=workload["messages"],
        size=workload["size"],
        hot_fraction=fidelity.get("hot_fraction", 0.01),
        promote_threshold_hz=fidelity.get("promote_threshold"),
        drain_interval_ns=fidelity.get("drain_interval"),
        interval_ns=workload.get("interval"),
        profile=spec["topology"]["profile"],
        seed=spec["seed"],
        datapath=workload.get("datapath"),
        qos=workload["qos"],
        testbed=testbed,
        deployment=deployment,
        stream_name=stream_name,
        channel=channel,
    )
