"""Promotion/demotion between the fluid and packet-accurate tiers.

The controller watches the aggregate's EWMA message rate at every drain
tick and moves subscribers across the fidelity boundary with hysteresis:

* **promote** — the rate has stayed above ``promote_threshold_hz`` for
  ``dwell_ticks`` consecutive ticks: move a batch of cold subscribers to
  real (packet-accurate) sinks.  A hot flow's subscribers then see true
  per-event latency, drops and jitter.
* **demote** — the rate has stayed below ``demote_ratio`` × threshold
  for ``dwell_ticks``: fold previously-promoted subscribers back into
  the aggregate.  Only promoted sinks are eligible (the caller's initial
  hot cohort is pinned), and the caller refuses to demote a sink whose
  ring still holds deliveries, so no in-flight message is lost.

The dead band between the two thresholds (hysteresis) plus the dwell
requirement keeps a flow hovering near the threshold from flapping.

The controller is mechanism-free: the driver supplies ``on_promote(n)``
(create up to ``n`` real sinks, return how many it made) and
``on_demote(n)`` (retire up to ``n`` promoted sinks, return how many).
Both callbacks run inside the drain callback — a single simulated
instant — so the weight shift and the sink registry change are atomic
and delivered counts stay exact across the transition.
"""


class FidelityController:
    """Hysteresis rate controller for one :class:`FluidAggregate`."""

    def __init__(self, aggregate, promote_threshold_hz, on_promote,
                 on_demote, demote_ratio=0.5, promote_batch=None,
                 dwell_ticks=2, min_cold=1):
        if promote_threshold_hz is None or promote_threshold_hz <= 0:
            raise ValueError("promote_threshold_hz must be > 0, got %r"
                             % (promote_threshold_hz,))
        if not 0.0 < demote_ratio < 1.0:
            raise ValueError("demote_ratio must be in (0, 1), got %r"
                             % (demote_ratio,))
        if dwell_ticks < 1:
            raise ValueError("dwell_ticks must be >= 1")
        if min_cold < 1:
            # the weighted endpoint needs >= 1 modelled subscriber; a
            # fully-promoted channel is just a plain DES fan-out
            raise ValueError("min_cold must be >= 1")
        self.aggregate = aggregate
        self.threshold_hz = promote_threshold_hz
        self.demote_hz = promote_threshold_hz * demote_ratio
        self.on_promote = on_promote
        self.on_demote = on_demote
        self.batch = promote_batch or max(1, aggregate.subscribers // 100)
        self.dwell_ticks = dwell_ticks
        self.min_cold = min_cold
        self.promotions = 0
        self.demotions = 0
        self._ticks_above = 0
        self._ticks_below = 0
        aggregate.controller = self

    def on_tick(self, now, rate_hz):
        aggregate = self.aggregate
        if rate_hz > self.threshold_hz:
            self._ticks_above += 1
            self._ticks_below = 0
            if self._ticks_above >= self.dwell_ticks:
                room = aggregate.subscribers - self.min_cold
                want = min(self.batch, room)
                if want > 0:
                    moved = self.on_promote(want)
                    if moved:
                        aggregate.set_subscribers(
                            aggregate.subscribers - moved)
                        self.promotions += moved
        elif rate_hz < self.demote_hz:
            self._ticks_below += 1
            self._ticks_above = 0
            if self._ticks_below >= self.dwell_ticks:
                moved = self.on_demote(self.batch)
                if moved:
                    aggregate.set_subscribers(
                        aggregate.subscribers + moved)
                    self.demotions += moved
        else:
            # dead band: decay both streaks so a hovering rate neither
            # promotes nor demotes
            self._ticks_above = 0
            self._ticks_below = 0

    def stats(self):
        return {
            "promote_threshold_hz": self.threshold_hz,
            "demote_threshold_hz": self.demote_hz,
            "batch": self.batch,
            "dwell_ticks": self.dwell_ticks,
            "promotions": self.promotions,
            "demotions": self.demotions,
        }
