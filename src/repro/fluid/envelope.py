"""Rate envelopes: the fluid tier's analytic stand-in for per-packet DES.

A flow modelled at fluid fidelity is not a stream of packet events but a
*rate envelope*: per-stage service times calibrated against the
packet-accurate engine, from which arrival instants and latencies are
derived analytically.  Calibration runs the same traced one-message
pipeline the Fig. 6 breakdown uses (:mod:`repro.bench.breakdown` /
``repro.obs``): a short paced 1-publisher/1-sink DES probe with
per-packet tracing on, decomposed into the paper's four components via
the lifecycle stamps (``emit_ns`` → ``nic_handoff`` → ``nic_rx_arrival``
→ ``runtime_rx`` → consume).  The envelope therefore inherits every
profile scalar — stage costs, DMA, propagation, the L2 ring-pressure
cliff — without re-deriving them by hand.
"""

from dataclasses import dataclass, field

from repro.core import QosPolicy, Session
from repro.core.config import RuntimeConfig
from repro.core.runtime import InsaneDeployment
from repro.hw import Testbed
from repro.hw.profiles import PROFILES
from repro.simnet import Tally, Timeout

#: the Fig. 6 decomposition, one-way (bench.breakdown doubles these for
#: its RTT presentation; the fluid tier wants the one-way values)
STAGES = ("send", "network", "receive", "data_processing")


@dataclass(frozen=True)
class Envelope:
    """One flow's calibrated rate envelope (all times one-way, ns)."""

    profile: str
    datapath: str
    size: int
    #: emit → consume-return, mean over the probe
    one_way_ns: float
    #: analytic (jitter-free) sink-side IPC pickup charge
    ipc_half_ns: float
    #: per-stage means: {"send", "network", "receive", "data_processing"}
    stage_ns: dict = field(default_factory=dict)
    #: receiver fan-out scalars (mirrors DatapathBinding._fanout_cost)
    fanout_per_sink_ns: float = 0.0
    l2_ring_budget: int = 0
    l2_penalty_ns: float = 0.0
    #: probe length the means were averaged over
    messages: int = 0

    def fanout_service_ns(self, subscribers, ring_count=None):
        """Receiver-side fan-out service time for one message delivered
        to ``subscribers`` local sinks — the analytic mirror of
        ``DatapathBinding._fanout_cost`` including the L2 ring-pressure
        penalty (``ring_count`` defaults to one ring per subscriber)."""
        if subscribers <= 0:
            return 0.0
        rings = subscribers if ring_count is None else ring_count
        cost = (subscribers - 1) * self.fanout_per_sink_ns
        excess = rings - self.l2_ring_budget
        if excess > 0:
            cost += excess * self.l2_penalty_ns
        return cost

    def service_ns(self, subscribers):
        """Receiver service time for one message: RX pipeline plus the
        fan-out to ``subscribers`` sink rings."""
        return self.stage_ns.get("receive", 0.0) \
            + self.fanout_service_ns(subscribers)

    def safe_interval_ns(self, subscribers, headroom=2.0):
        """An emit interval that keeps a ``subscribers``-wide fan-out
        drop-free: ``headroom`` × the slower of the sender's and the
        receiver's per-message service time (floored at 1 µs so tiny
        fan-outs stay paced rather than bursty)."""
        service = self.service_ns(subscribers)
        send = self.stage_ns.get("send", 0.0)
        return max(headroom * service, headroom * send, 1000.0)

    def to_dict(self):
        return {
            "profile": self.profile,
            "datapath": self.datapath,
            "size": self.size,
            "one_way_ns": self.one_way_ns,
            "ipc_half_ns": self.ipc_half_ns,
            "stage_ns": dict(self.stage_ns),
            "fanout_per_sink_ns": self.fanout_per_sink_ns,
            "l2_ring_budget": self.l2_ring_budget,
            "l2_penalty_ns": self.l2_penalty_ns,
            "messages": self.messages,
        }


def _resolve_policy(qos):
    if qos is None:
        return QosPolicy.fast()
    if isinstance(qos, QosPolicy):
        return qos
    return QosPolicy.from_dict(qos)


def calibrate_envelope(profile="local", size=1024, datapath=None, qos=None,
                       messages=64, seed=7919, gap_ns=30_000.0):
    """Calibrate an :class:`Envelope` with a traced DES probe.

    Runs a paced one-way 1→1 flow (the :mod:`repro.bench.breakdown`
    measurement shape) on a fresh 2-host testbed and averages the
    lifecycle-stamp decomposition.  ``datapath`` pins the technology the
    probe (and the flow it stands for) rides; ``qos`` is a policy dict or
    :class:`QosPolicy` (defaults to INSANE fast)."""
    prof = PROFILES[profile]
    if datapath == "rdma" and not prof.rdma_nic:
        # scenario convention: an explicit rdma pin is the what-if that
        # enables the RNIC the recorded testbeds lack
        prof = prof.replace(rdma_nic=True)
    testbed = Testbed(prof, hosts=2, seed=seed)
    sim = testbed.sim
    config = RuntimeConfig(trace=True)
    if datapath is not None:
        config.mapping_strategy = \
            lambda policy, available, _pin=datapath: _pin
    deployment = InsaneDeployment(testbed, config=config)
    policy = _resolve_policy(qos)
    tx = Session(deployment.runtime(0), "env-tx")
    rx = Session(deployment.runtime(1), "env-rx")
    tx_stream = tx.create_stream(policy, name="envelope")
    rx_stream = rx.create_stream(policy, name="envelope")
    source = tx.create_source(tx_stream, channel=1)
    sink = rx.create_sink(rx_stream, channel=1)
    tallies = {stage: Tally(stage) for stage in STAGES}
    one_way = Tally("one_way")

    def producer():
        for _ in range(messages):
            buffer = yield from tx.get_buffer_wait(source, size)
            yield from tx.emit_data(source, buffer, length=size)
            yield Timeout(gap_ns)  # paced: isolate per-message pipeline

    def consumer():
        for _ in range(messages):
            delivery = yield from rx.consume_data(sink)
            done = sim.now
            trace = delivery.meta.get("trace")
            if trace and "emit_ns" in trace:
                tallies["send"].record(
                    trace["nic_handoff"] - trace["emit_ns"])
                tallies["network"].record(
                    trace["nic_rx_arrival"] - trace["nic_handoff"])
                tallies["receive"].record(
                    trace["runtime_rx"] - trace["nic_rx_arrival"])
                tallies["data_processing"].record(
                    done - trace["runtime_rx"])
                one_way.record(done - trace["emit_ns"])
            rx.release_buffer(sink, delivery)

    sim.process(consumer(), name="env.consumer")
    sim.process(producer(), name="env.producer")
    sim.run()
    if one_way.count == 0:
        raise RuntimeError(
            "envelope calibration probe delivered nothing "
            "(profile=%r datapath=%r)" % (profile, datapath))
    return Envelope(
        profile=profile,
        datapath=tx_stream.datapath,
        size=size,
        one_way_ns=one_way.mean,
        ipc_half_ns=prof.stage("insane_ipc").cost(0, burst=1) / 2.0,
        stage_ns={stage: tallies[stage].mean for stage in STAGES},
        fanout_per_sink_ns=prof.scalar("insane_fanout_per_sink_ns"),
        l2_ring_budget=prof.scalar("insane_l2_ring_budget"),
        l2_penalty_ns=prof.scalar("insane_l2_penalty_ns"),
        messages=one_way.count,
    )


def envelope_from_breakdown(components_us, profile="local", datapath="dpdk",
                            size=64, messages=0):
    """Build an :class:`Envelope` from a :func:`repro.bench.breakdown.
    run_breakdown` result (``{component: mean_us_per_rtt}``; the RTT
    convention doubles each one-way component, so this halves them)."""
    prof = PROFILES[profile]
    stage_ns = {stage: components_us[stage] * 1000.0 / 2.0
                for stage in STAGES}
    return Envelope(
        profile=profile,
        datapath=datapath,
        size=size,
        one_way_ns=sum(stage_ns.values()),
        ipc_half_ns=prof.stage("insane_ipc").cost(0, burst=1) / 2.0,
        stage_ns=stage_ns,
        fanout_per_sink_ns=prof.scalar("insane_fanout_per_sink_ns"),
        l2_ring_budget=prof.scalar("insane_l2_ring_budget"),
        l2_penalty_ns=prof.scalar("insane_l2_penalty_ns"),
        messages=messages,
    )
