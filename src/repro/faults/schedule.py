"""Fault schedules: composable, seed-reproducible failure scenarios.

A :class:`FaultSchedule` is an ordered set of injectors plus the fluent
API to build one; :meth:`FaultSchedule.apply` arms every injector on a
testbed/deployment and returns a :class:`FaultTrace` that accumulates the
fired events in simulated-time order.  The trace's :meth:`~FaultTrace.digest`
is a sha256 over the canonical event lines, so "same seed + same fault
schedule ⇒ identical trace" is a one-line assertion.

Randomized scenarios come from :meth:`FaultSchedule.random`, which draws
from its *own* ``random.Random(seed)`` — never from the simulator's rng,
so generating a schedule cannot perturb the simulation it is applied to.
"""

import hashlib
import random

from repro.core.errors import FaultInjectionError
from repro.faults.injectors import (
    CpuSlowdown,
    DatapathFailure,
    DatapathStall,
    LinkDown,
    LossBurst,
    NicQueueSqueeze,
    parse_ns,
)

#: fault-kind tag -> injector class; the vocabulary of the JSON-native
#: schedule shape (:meth:`FaultSchedule.from_dict`) and the scenario DSL.
INJECTOR_KINDS = {
    cls.kind: cls
    for cls in (
        LinkDown, LossBurst, NicQueueSqueeze,
        DatapathFailure, DatapathStall, CpuSlowdown,
    )
}


class FaultTrace:
    """The events a fault schedule produced, in simulated-time order."""

    def __init__(self, schedule):
        self.schedule = schedule
        self.events = []   # (time_ns, kind, phase, target-tuple)

    def record(self, time_ns, kind, phase, target):
        self.events.append((time_ns, kind, phase, target))

    def lines(self):
        """Canonical one-line-per-event rendering (digest input)."""
        out = ["schedule %s" % (self.schedule.describe(),)]
        for time_ns, kind, phase, target in self.events:
            out.append("%.6f %s %s %s" % (time_ns, kind, phase, target))
        return out

    def digest(self):
        """sha256 over the canonical trace — the reproducibility witness."""
        h = hashlib.sha256()
        for line in self.lines():
            h.update(line.encode())
            h.update(b"\n")
        return h.hexdigest()


def _injector_from_record(record, index):
    """One JSON-native fault record -> a frozen injector, loudly."""
    if not isinstance(record, dict):
        raise FaultInjectionError(
            "faults[%d] must be a dict, got %s"
            % (index, type(record).__name__)
        )
    spec = dict(record)
    kind = spec.pop("kind", None)
    injector_cls = INJECTOR_KINDS.get(kind)
    if injector_cls is None:
        raise FaultInjectionError(
            "faults[%d]: unknown fault kind %r (known: %s)"
            % (index, kind, ", ".join(sorted(INJECTOR_KINDS)))
        )
    kwargs = {}
    # the declarative spellings; the Python-level names also work
    for declarative, pythonic in (("at", "at_ns"), ("for", "for_ns")):
        if declarative in spec:
            kwargs[pythonic] = spec.pop(declarative)
    import dataclasses

    known = {field.name for field in dataclasses.fields(injector_cls)}
    for name, value in spec.items():
        if name not in known:
            raise FaultInjectionError(
                "faults[%d] (%s): unknown field %r (fields: %s)"
                % (index, kind, name, ", ".join(sorted(known - {"at_ns", "for_ns"}) + ["at", "for"]))
            )
        kwargs[name] = value
    if "at_ns" not in kwargs:
        raise FaultInjectionError(
            "faults[%d] (%s): missing required field 'at'" % (index, kind)
        )
    try:
        return injector_cls(**kwargs)
    except FaultInjectionError as exc:
        raise FaultInjectionError("faults[%d] (%s): %s" % (index, kind, exc)) from None


class FaultSchedule:
    """An ordered collection of fault injectors with a fluent builder.

    ::

        schedule = (FaultSchedule()
                    .datapath_failure(host=0, datapath="dpdk", at=200_000)
                    .loss_burst(link=0, at=1_000_000, for_ns=500_000, rate=0.2))
        trace = schedule.apply(testbed, deployment)
        sim.run()
        assert trace.digest() == trace_from_identical_run.digest()
    """

    def __init__(self, injectors=()):
        self.injectors = list(injectors)
        self._applied = False

    def __len__(self):
        return len(self.injectors)

    def __iter__(self):
        return iter(self.injectors)

    def add(self, injector):
        self.injectors.append(injector)
        return self

    # -- fluent adders (keyword-first, times in simulated ns) ---------------

    def link_down(self, at, for_ns, link=0):
        return self.add(LinkDown(at, for_ns, link=link))

    def loss_burst(self, at, for_ns, rate, link=0):
        return self.add(LossBurst(at, for_ns, link=link, rate=rate))

    def nic_queue_squeeze(self, at, for_ns, capacity, host=0):
        return self.add(NicQueueSqueeze(at, for_ns, host=host, capacity=capacity))

    def datapath_failure(self, at, host=0, datapath="dpdk", for_ns=None,
                         reason="injected"):
        return self.add(
            DatapathFailure(at, for_ns, host=host, datapath=datapath, reason=reason)
        )

    def datapath_stall(self, at, for_ns, host=0, datapath="dpdk"):
        return self.add(DatapathStall(at, for_ns, host=host, datapath=datapath))

    def cpu_slowdown(self, at, for_ns, factor, host=0):
        return self.add(CpuSlowdown(at, for_ns, host=host, factor=factor))

    # -- application ---------------------------------------------------------

    def apply(self, testbed, deployment=None):
        """Arm every injector on the simulation clock; returns the trace.

        A schedule arms once (re-applying the same instance would schedule
        duplicate faults silently — a classic source of irreproducibility,
        so it raises instead).
        """
        if self._applied:
            raise FaultInjectionError(
                "this schedule is already applied; build a new one "
                "(schedules arm exactly once)"
            )
        self._applied = True
        trace = FaultTrace(self)
        for injector in self.injectors:
            injector.arm(testbed, deployment, trace)
        return trace

    def describe(self):
        """Canonical description of the armed faults (digest input)."""
        return tuple(injector.describe() for injector in self.injectors)

    # -- JSON-native round trip ----------------------------------------------

    def to_dict(self):
        """The schedule as ``{"faults": [...]}`` of JSON-native records.

        Round-trips through :meth:`from_dict`: the reconstructed schedule
        has an identical :meth:`describe` tuple, so fault-trace digests
        are preserved across serialization.
        """
        return {"faults": [injector.to_dict() for injector in self.injectors]}

    @classmethod
    def from_dict(cls, document):
        """Build a schedule from JSON-native fault records.

        ``document`` is either ``{"faults": [...]}`` or a bare list of
        records; each record names its ``kind`` (one of
        :data:`INJECTOR_KINDS`) and uses the declarative field spellings:
        ``at``/``for`` durations as ns numbers *or* ``"250us"``-style
        strings, plus the injector's own fields (``link``, ``host``,
        ``rate``, ...)::

            FaultSchedule.from_dict({"faults": [
                {"kind": "link_down", "at": "1ms", "for": "300us"},
                {"kind": "loss_burst", "at": 0, "for": 500_000, "rate": 0.2},
            ]})

        Unknown kinds and unknown fields raise
        :class:`~repro.core.errors.FaultInjectionError` naming the
        offending record.
        """
        if isinstance(document, dict):
            records = document.get("faults")
            if records is None:
                raise FaultInjectionError(
                    "a fault-schedule dict needs a 'faults' list, got keys %s"
                    % sorted(document)
                )
        else:
            records = document
        if not isinstance(records, (list, tuple)):
            raise FaultInjectionError(
                "faults must be a list of records, got %s"
                % type(records).__name__
            )
        schedule = cls()
        for index, record in enumerate(records):
            schedule.add(_injector_from_record(record, index))
        return schedule

    # -- randomized scenarios -------------------------------------------------

    @classmethod
    def random(cls, seed, horizon_ns, faults=4, hosts=2, links=1,
               datapaths=("dpdk", "xdp")):
        """A reproducible random scenario: ``faults`` injectors drawn from
        ``random.Random(seed)`` over ``[0, horizon_ns)``.

        The generator rng is private to this call — the simulator's random
        stream is untouched, so the same (seed, parameters) always yields
        the same schedule regardless of what simulation it is applied to.
        """
        if horizon_ns <= 0:
            raise FaultInjectionError("horizon_ns must be > 0")
        rng = random.Random(seed)
        schedule = cls()
        kinds = ("link_down", "loss_burst", "nic_queue_squeeze",
                 "datapath_stall", "cpu_slowdown")
        for _ in range(faults):
            kind = rng.choice(kinds)
            at = rng.uniform(0.0, horizon_ns * 0.8)
            for_ns = rng.uniform(horizon_ns * 0.05, horizon_ns * 0.2)
            if kind == "link_down":
                schedule.link_down(at, for_ns, link=rng.randrange(links))
            elif kind == "loss_burst":
                schedule.loss_burst(
                    at, for_ns, rate=rng.uniform(0.05, 0.5),
                    link=rng.randrange(links),
                )
            elif kind == "nic_queue_squeeze":
                schedule.nic_queue_squeeze(
                    at, for_ns, capacity=rng.randrange(2, 16),
                    host=rng.randrange(hosts),
                )
            elif kind == "datapath_stall":
                schedule.datapath_stall(
                    at, for_ns, host=rng.randrange(hosts),
                    datapath=rng.choice(datapaths),
                )
            else:
                schedule.cpu_slowdown(
                    at, for_ns, factor=rng.uniform(1.5, 4.0),
                    host=rng.randrange(hosts),
                )
        return schedule
