"""Deterministic fault injection and QoS-aware failover scenarios.

This package is the failure half of the reproduction: injectors model
faults at every layer of the simulated stack (cable, NIC, datapath
plugin, CPU), schedules compose them into seed-reproducible scenarios,
and the runtime's :class:`~repro.core.control.HealthMonitor` answers with
QoS-aware failover — re-mapping affected streams onto the best surviving
datapath their policy allows (paper §5.2's fallback rule, extended to
runtime failures).

Everything runs on the simulation clock: same seed + same fault schedule
⇒ bit-identical trace (see :meth:`FaultTrace.digest`).
"""

from repro.faults.injectors import (
    CpuSlowdown,
    DatapathFailure,
    DatapathStall,
    Injector,
    LinkDown,
    LossBurst,
    NicQueueSqueeze,
    parse_ns,
)
from repro.faults.schedule import INJECTOR_KINDS, FaultSchedule, FaultTrace

__all__ = [
    "CpuSlowdown",
    "DatapathFailure",
    "DatapathStall",
    "FaultSchedule",
    "FaultTrace",
    "INJECTOR_KINDS",
    "Injector",
    "LinkDown",
    "LossBurst",
    "NicQueueSqueeze",
    "parse_ns",
]
