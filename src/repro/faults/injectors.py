"""Fault injectors: deterministic, simulator-scheduled failures.

Each injector is a frozen description of one fault — *what* fails, *when*,
and for *how long*.  Arming an injector schedules its fire (and, for
transient faults, its clear) callbacks on the simulation clock; nothing
happens outside simulated time, so a schedule of injectors is exactly as
reproducible as the rest of the simulation (same seed + same schedule ⇒
bit-identical trace).

Injector taxonomy, bottom-up through the stack:

* :class:`LinkDown` / :class:`LossBurst` — the cable (``hw/link.py``);
* :class:`NicQueueSqueeze` — NIC receive descriptors (``hw/nic.py``);
* :class:`DatapathFailure` / :class:`DatapathStall` — a datapath plugin
  (driver crash / wedged PMD thread; triggers the runtime's QoS-aware
  failover, the tentpole of the fault model);
* :class:`CpuSlowdown` — the host's cores (``hw/host.py``).
"""

from dataclasses import dataclass, fields
from typing import Optional, Union

from repro.core.errors import FaultInjectionError

#: duration-suffix multipliers for :func:`parse_ns`, longest-first so
#: ``"ms"`` is tried before ``"s"``.
_NS_UNITS = (("ns", 1.0), ("us", 1e3), ("ms", 1e6), ("s", 1e9))


def parse_ns(value, what="duration"):
    """Normalize a time value to float nanoseconds.

    Accepts the JSON-native forms a declarative front end produces:
    plain numbers (already ns), and strings with a unit suffix —
    ``"250us"``, ``"1.5ms"``, ``"3s"``, ``"700ns"``, or a bare numeric
    string (ns).  ``None`` passes through (the "permanent" duration).
    Anything else raises :class:`~repro.core.errors.FaultInjectionError`.
    """
    if value is None:
        return None
    if isinstance(value, bool):
        raise FaultInjectionError(
            "%s must be a number of ns or a '250us'-style string, got %r"
            % (what, value)
        )
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        text = value.strip().lower().replace("_", "").replace(" ", "")
        for suffix, scale in sorted(_NS_UNITS, key=lambda u: -len(u[0])):
            if text.endswith(suffix):
                number = text[: -len(suffix)]
                try:
                    return float(number) * scale
                except ValueError:
                    break
        try:
            return float(text)
        except ValueError:
            pass
        raise FaultInjectionError(
            "%s %r is not a recognized time: use a number of ns or a "
            "string with one of the suffixes %s (e.g. '250us')"
            % (what, value, "/".join(unit for unit, _ in _NS_UNITS))
        )
    raise FaultInjectionError(
        "%s must be a number of ns or a '250us'-style string, got %s %r"
        % (what, type(value).__name__, value)
    )


@dataclass(frozen=True)
class Injector:
    """Base class: one scheduled fault.

    ``at_ns`` is when the fault fires; ``for_ns`` is how long it lasts
    (``None`` = permanent — no clear callback is scheduled).  Both accept
    the string forms of :func:`parse_ns` (``"250us"``) and are normalized
    to float ns at construction, so a schedule built from YAML/JSON and a
    schedule built from Python literals compare (and digest) identically.
    """

    at_ns: Union[float, str]
    for_ns: Optional[Union[float, str]] = None

    def __post_init__(self):
        object.__setattr__(self, "at_ns", parse_ns(self.at_ns, "fault time"))
        object.__setattr__(
            self, "for_ns", parse_ns(self.for_ns, "fault duration")
        )
        if self.at_ns is None or self.at_ns < 0:
            raise FaultInjectionError("fault time must be >= 0, got %r" % (self.at_ns,))
        if self.for_ns is not None and self.for_ns <= 0:
            raise FaultInjectionError(
                "fault duration must be > 0 (or None for permanent), got %r"
                % (self.for_ns,)
            )

    def to_dict(self):
        """The injector as a JSON-native dict (``kind`` + its fields).

        Round-trips through :meth:`repro.faults.FaultSchedule.from_dict`;
        times are always emitted as plain ns numbers, never strings.
        """
        record = {"kind": self.kind, "at": self.at_ns}
        if self.for_ns is not None:
            record["for"] = self.for_ns
        for spec in fields(self):
            if spec.name in ("at_ns", "for_ns"):
                continue
            record[spec.name] = getattr(self, spec.name)
        return record

    #: short type tag used in trace lines and digests.
    kind = "fault"

    def describe(self):
        """Canonical, digest-stable description tuple."""
        return (self.kind, self.at_ns, self.for_ns) + self._target()

    def _target(self):
        return ()

    def arm(self, testbed, deployment, trace):
        """Schedule the fire/clear callbacks.  Called once by the schedule.

        A ``_fire`` returning the string ``"skip"`` means the fault could
        not apply to the live system (e.g. the targeted datapath binding
        was never instantiated); the trace records a ``skip`` phase and no
        clear is scheduled, instead of an exception unwinding ``sim.run``.
        """
        sim = testbed.sim

        def fire():
            if self._fire(testbed, deployment) == "skip":
                trace.record(sim.now, self.kind, "skip", self._target())
                return
            trace.record(sim.now, self.kind, "fire", self._target())
            if self.for_ns is not None:
                sim.schedule(self.for_ns, clear)

        def clear():
            self._clear(testbed, deployment)
            trace.record(sim.now, self.kind, "clear", self._target())

        sim.schedule(self.at_ns, fire)

    # subclasses implement the actual fault mechanics:

    def _fire(self, testbed, deployment):
        raise NotImplementedError

    def _clear(self, testbed, deployment):
        raise NotImplementedError


def _link(testbed, index):
    try:
        return testbed.links[index]
    except IndexError:
        raise FaultInjectionError(
            "no link %d on this testbed (%d links)" % (index, len(testbed.links))
        ) from None


def _host(testbed, index):
    try:
        return testbed.hosts[index]
    except IndexError:
        raise FaultInjectionError(
            "no host %d on this testbed (%d hosts)" % (index, len(testbed.hosts))
        ) from None


def _runtime(deployment, host_index):
    if deployment is None:
        raise FaultInjectionError(
            "this injector targets a runtime, but the schedule was applied "
            "without a deployment"
        )
    host = _host(deployment.testbed, host_index)
    runtime = deployment.runtimes.get(host.name)
    if runtime is None:
        raise FaultInjectionError("no runtime deployed on %s" % host.name)
    return runtime


@dataclass(frozen=True)
class LinkDown(Injector):
    """Cut a cable for ``for_ns`` (a link flap): every frame is lost."""

    link: int = 0
    kind = "link_down"

    def _target(self):
        return ("link%d" % self.link,)

    def _fire(self, testbed, deployment):
        _link(testbed, self.link).take_down()

    def _clear(self, testbed, deployment):
        _link(testbed, self.link).bring_up()


@dataclass(frozen=True)
class LossBurst(Injector):
    """Raise a link's random loss rate to ``rate`` for ``for_ns``."""

    link: int = 0
    rate: float = 0.1
    kind = "loss_burst"

    def __post_init__(self):
        super().__post_init__()
        if not 0.0 < self.rate <= 1.0:
            raise FaultInjectionError("loss rate must be in (0, 1], got %r" % (self.rate,))

    def _target(self):
        return ("link%d" % self.link, self.rate)

    def _fire(self, testbed, deployment):
        _link(testbed, self.link).loss_rate = self.rate

    def _clear(self, testbed, deployment):
        _link(testbed, self.link).loss_rate = 0.0


@dataclass(frozen=True)
class NicQueueSqueeze(Injector):
    """Shrink a host NIC's receive queues to ``capacity`` descriptors."""

    host: int = 0
    capacity: int = 4
    kind = "nic_queue_squeeze"

    # the saved capacities of the currently-armed squeeze, keyed by object
    # id (the dataclass is frozen; state lives in this class-level map)
    _saved = {}

    def _target(self):
        return ("host%d" % self.host, self.capacity)

    def _fire(self, testbed, deployment):
        nic = _host(testbed, self.host).nic
        NicQueueSqueeze._saved[id(self)] = nic.squeeze_queues(self.capacity)

    def _clear(self, testbed, deployment):
        saved = NicQueueSqueeze._saved.pop(id(self), None)
        if saved is not None:
            _host(testbed, self.host).nic.restore_queues(saved)


@dataclass(frozen=True)
class DatapathFailure(Injector):
    """Fail a datapath binding on one host's runtime.

    This is the headline fault: the runtime's health monitor detects the
    failure ``failover_detect_ns`` later and re-maps affected streams onto
    the best surviving datapath per their QoS policy (fast → XDP → kernel
    degradation order), emitting the paper's fallback warning.
    """

    host: int = 0
    datapath: str = "dpdk"
    reason: str = "injected"
    kind = "datapath_failure"

    def _target(self):
        return ("host%d" % self.host, self.datapath, self.reason)

    def _fire(self, testbed, deployment):
        runtime = _runtime(deployment, self.host)
        if runtime.bindings.get(self.datapath) is None:
            return "skip"
        runtime.fail_datapath(self.datapath, self.reason)

    def _clear(self, testbed, deployment):
        _runtime(deployment, self.host).restore_datapath(self.datapath)


@dataclass(frozen=True)
class DatapathStall(Injector):
    """Wedge a datapath's polling passes for ``for_ns`` (queues back up,
    then drain — no failover, just a stall)."""

    host: int = 0
    datapath: str = "dpdk"
    kind = "datapath_stall"

    def __post_init__(self):
        super().__post_init__()
        if self.for_ns is None:
            raise FaultInjectionError("a stall needs a duration (for_ns)")

    def _target(self):
        return ("host%d" % self.host, self.datapath)

    def arm(self, testbed, deployment, trace):
        # a stall has no separate clear callback: the binding un-wedges
        # itself at stalled_until (it kicks its own polling threads)
        sim = testbed.sim

        def fire():
            runtime = _runtime(deployment, self.host)
            binding = runtime.bindings.get(self.datapath)
            if binding is None:
                trace.record(sim.now, self.kind, "skip", self._target())
                return
            binding.stall(self.for_ns)
            trace.record(sim.now, self.kind, "fire", self._target())

        sim.schedule(self.at_ns, fire)


@dataclass(frozen=True)
class CpuSlowdown(Injector):
    """Scale a host's software costs by ``factor`` (thermal throttling or
    a noisy neighbour stealing cycles)."""

    host: int = 0
    factor: float = 2.0
    kind = "cpu_slowdown"

    def __post_init__(self):
        super().__post_init__()
        if self.factor <= 0:
            raise FaultInjectionError("slowdown factor must be > 0, got %r" % (self.factor,))

    def _target(self):
        return ("host%d" % self.host, self.factor)

    def _fire(self, testbed, deployment):
        _host(testbed, self.host).slow_down(self.factor)

    def _clear(self, testbed, deployment):
        _host(testbed, self.host).restore_speed()
