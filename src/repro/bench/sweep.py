"""Cell runners and grid builders for the parallel figure sweeps.

The runner functions here are the worker-side targets registered in
:data:`repro.simnet.cell.CELL_RUNNERS`: each takes one grid point's
parameters, executes the same harness call the serial figure loop makes,
and returns a plain-JSON payload.  The grid builders turn the figure
constants (``FIG5_SYSTEMS`` x ``FIG5_SIZES``, ...) into cell lists the
:class:`~repro.parallel.SweepExecutor` can shard.

Payloads are JSON so they survive pickling, caching, and digesting;
:class:`TallyStats` re-wraps a tally payload with the ``.mean`` /
``.median`` attributes the chart renderers and figure benchmarks expect.
"""

from repro.bench import harness
from repro.parallel.cache import ResultCache
from repro.parallel.cells import make_cell
from repro.parallel.executor import SweepExecutor

#: tally summary fields carried by a ping-pong cell payload.
TALLY_FIELDS = (
    "count", "mean", "median", "minimum", "maximum",
    "stddev", "p95", "p99", "total",
)


def tally_payload(tally):
    """A :class:`~repro.simnet.Tally` as a plain-JSON summary dict."""
    return {
        "name": tally.name,
        "count": tally.count,
        "mean": tally.mean,
        "median": tally.median,
        "minimum": tally.minimum,
        "maximum": tally.maximum,
        "stddev": tally.stddev,
        "p95": tally.percentile(95),
        "p99": tally.percentile(99),
        "total": tally.total,
    }


class TallyStats:
    """Attribute view over a tally payload, chart/bench compatible.

    Carries exactly the summary statistics; raw samples stay in the
    worker.  ``results[s].mean`` / ``.median`` keep working wherever a
    figure runner used to hand back a live Tally.
    """

    __slots__ = ("name",) + TALLY_FIELDS

    def __init__(self, payload):
        self.name = payload.get("name", "")
        for field in TALLY_FIELDS:
            setattr(self, field, payload[field])

    def percentile(self, p):
        if p == 95:
            return self.p95
        if p == 99:
            return self.p99
        if p == 50:
            return self.median
        raise ValueError(
            "TallyStats carries p50/p95/p99 only, not p%r" % (p,)
        )

    def __repr__(self):
        return "TallyStats(%s: n=%d mean=%.1f median=%.1f)" % (
            self.name, self.count, self.mean, self.median,
        )


# -- worker-side cell runners -------------------------------------------------

def run_pingpong_cell(system, profile="local", rounds=2000, size=64, seed=0):
    """One fig5/fig7 grid point; returns the RTT tally summary (ns)."""
    tally = harness.run_pingpong(
        system, profile=profile, rounds=rounds, size=size, seed=seed
    )
    return tally_payload(tally)


def run_throughput_cell(system, profile="local", messages=20000, size=1024,
                        seed=0):
    """One fig8a grid point; returns ``{"gbps": goodput}``."""
    gbps = harness.run_throughput(
        system, profile=profile, messages=messages, size=size, seed=seed
    )
    return {"gbps": gbps}


def run_multisink_cell(sinks, profile="local", messages=20000, size=1024,
                       seed=0):
    """One fig8b grid point; returns per-sink and average goodput."""
    testbed = harness.make_testbed(profile, seed=seed)
    app = harness.InsaneBenchApp(testbed, "fast")
    meters = app.stream(messages, size, sinks=sinks)
    rates = [meter.gbps() for meter in meters]
    return {
        "avg_gbps": sum(rates) / len(rates),
        "per_sink_gbps": rates,
    }


def run_perf_workload_cell(workload, engine="fast", stack=None, rounds=None,
                           messages=None, profile="local", seed=0, reps=1):
    """One perf-suite measurement (wall-clock; never digest-compared)."""
    from repro.bench import perfbench

    return perfbench.run_workload(
        workload, engine, stack=stack,
        rounds=perfbench.QUICK_ROUNDS if rounds is None else rounds,
        messages=perfbench.QUICK_MESSAGES if messages is None else messages,
        profile=profile, seed=seed, reps=reps,
    )


# -- grid builders ------------------------------------------------------------

def fig5_cells(profile="local", rounds=2000, seed=0):
    from repro.bench.runner import FIG5_SIZES, FIG5_SYSTEMS

    return [
        make_cell("bench.pingpong", system=system, profile=profile,
                  rounds=rounds, size=size, seed=seed)
        for system in FIG5_SYSTEMS for size in FIG5_SIZES
    ]


def fig7_cells(profile="local", rounds=2000, seed=0):
    return [
        make_cell("bench.pingpong", system=system, profile=profile,
                  rounds=rounds, size=64, seed=seed)
        for system in harness.SYSTEMS
    ]


def fig8a_cells(messages=20000, seed=0):
    from repro.bench.runner import FIG8A_SIZES, FIG8A_SYSTEMS

    return [
        make_cell("bench.throughput", system=system, messages=messages,
                  size=size, seed=seed)
        for system in FIG8A_SYSTEMS for size in FIG8A_SIZES
    ]


def fig8b_cells(messages=20000, seed=0):
    from repro.bench.runner import FIG8B_SINKS

    return [
        make_cell("bench.multisink", sinks=sinks, messages=messages,
                  size=1024, seed=seed)
        for sinks in FIG8B_SINKS
    ]


def sweep_cells(cells, workers=1, cache=None):
    """Run a cell list through the executor.

    ``cache`` may be ``None`` (no caching), ``True`` (the default on-disk
    cache), or a ready :class:`~repro.parallel.ResultCache`.
    """
    if cache is True:
        cache = ResultCache()
    return SweepExecutor(workers=workers, cache=cache).run(cells)


def grid_payloads(sweep, *param_names):
    """Index a sweep's payloads by a tuple of cell params.

    ``grid_payloads(sweep, "system", "size")`` returns
    ``{(system, size): payload}``; with one name the key is scalar.
    """
    table = {}
    for result in sweep.results:
        params = result.cell["params"]
        key = tuple(params[name] for name in param_names)
        table[key if len(param_names) > 1 else key[0]] = result.payload
    return table
