"""Fault-injection scenario sweep: failover latency and goodput under loss.

Three scenarios, all driven by :mod:`repro.faults` schedules:

* ``failover`` — the headline experiment: a DPDK binding failure under
  steady accelerated traffic.  The runtime's health monitor detects the
  failure and re-maps the stream onto the best surviving datapath (XDP on
  the local profile); we measure the detection latency, the end-to-end
  delivery blackout, and the outcome mix (``sent`` before, ``degraded``
  after).  The scenario runs twice with the same seed and reports whether
  the two traces are bit-identical (the determinism contract).
* ``loss`` — goodput and delivery ratio of a best-effort stream under a
  sweep of link loss rates (INSANE is best-effort by design, paper §5.2).
* ``flap`` — a link flap under the reliable ARQ app layer
  (:mod:`repro.apps.reliable`): everything is delivered anyway, at the
  cost of retransmissions and backoff.
"""

import hashlib

from repro.bench.tables import format_table
from repro.core import QosPolicy, Session
from repro.core.runtime import InsaneDeployment
from repro.faults import FaultSchedule
from repro.hw import Testbed
from repro.simnet import Timeout


# -- scenario 1: datapath failure -> QoS-aware failover -----------------------

def _run_failover_once(seed, messages, interval_ns, fail_at_ns):
    """One failover run; returns (results dict, reproducibility digest)."""
    testbed = Testbed.local(seed=seed)
    sim = testbed.sim
    deployment = InsaneDeployment(testbed)
    runtime = deployment.runtime(0)

    with Session(runtime, "pub") as pub, \
            Session(deployment.runtime(1), "sub") as sub:
        pub_stream = pub.create_stream(QosPolicy.fast(), name="fo")
        sub_stream = sub.create_stream(QosPolicy.fast(), name="fo")
        source = pub.create_source(pub_stream, channel=1)
        sink = sub.create_sink(sub_stream, channel=1)
        datapath_before = pub_stream.datapath

        emit_ids = []
        deliveries = []

        def producer():
            for _ in range(messages):
                buffer = yield from pub.get_buffer_wait(source, 64)
                emit_id = yield from pub.emit_data(source, buffer, length=64)
                emit_ids.append(emit_id)
                yield Timeout(interval_ns)

        def consumer():
            while True:
                delivery = yield from sub.consume_data(sink)
                deliveries.append(sim.now)
                sub.release_buffer(sink, delivery)

        sim.process(producer(), name="fo.pub")
        sim.process(consumer(), name="fo.sub")

        schedule = FaultSchedule().datapath_failure(
            at=fail_at_ns, host=0, datapath=datapath_before, reason="injected"
        )
        trace = schedule.apply(testbed, deployment)
        sim.run()

        outcomes = {}
        for emit_id in emit_ids:
            outcome = str(pub.check_emit_outcome(source, emit_id))
            outcomes[outcome] = outcomes.get(outcome, 0) + 1

        event = runtime.health.events[0] if runtime.health.events else None
        gaps_before = [
            b - a for a, b in zip(deliveries, deliveries[1:]) if b < fail_at_ns
        ]
        nominal_gap = (
            sorted(gaps_before)[len(gaps_before) // 2] if gaps_before else 0.0
        )
        blackout = 0.0
        for a, b in zip(deliveries, deliveries[1:]):
            if a <= fail_at_ns <= b or (a >= fail_at_ns and b - a > blackout):
                blackout = max(blackout, b - a)

        results = {
            "datapath_before": datapath_before,
            "datapath_after": pub_stream.datapath,
            "stream_degraded": pub_stream.degraded,
            "failovers": runtime.failovers.value,
            "detection_latency_ns": (
                event.detection_latency_ns if event else None
            ),
            "tokens_migrated": event.migrated if event else 0,
            "delivered": len(deliveries),
            "emitted": len(emit_ids),
            "nominal_gap_ns": nominal_gap,
            "blackout_ns": blackout,
            "outcomes": outcomes,
        }

        # reproducibility digest: the fault trace plus every delivery
        # timestamp and emit outcome — bit-identical across same-seed runs
        h = hashlib.sha256(trace.digest().encode())
        for t in deliveries:
            h.update(("%.9f" % t).encode())
        for outcome, count in sorted(outcomes.items()):
            h.update(("%s=%d" % (outcome, count)).encode())
        return results, h.hexdigest()


def run_failover(seed=0, messages=200, interval_ns=25_000.0,
                 fail_at_ns=1_000_000.0, quiet=False):
    """DPDK-binding failure under load; returns the failover report dict.

    Runs the scenario twice with the same seed and records whether the
    traces (fault events, delivery timestamps, outcomes) are identical.
    """
    results, digest_a = _run_failover_once(seed, messages, interval_ns, fail_at_ns)
    _, digest_b = _run_failover_once(seed, messages, interval_ns, fail_at_ns)
    results["digest"] = digest_a
    results["reproducible"] = digest_a == digest_b
    if not quiet:
        rows = [
            ("datapath before -> after",
             "%s -> %s" % (results["datapath_before"], results["datapath_after"])),
            ("failure detected after", "%.1f us" % (results["detection_latency_ns"] / 1000.0)),
            ("delivery blackout", "%.1f us" % (results["blackout_ns"] / 1000.0)),
            ("nominal delivery gap", "%.1f us" % (results["nominal_gap_ns"] / 1000.0)),
            ("tokens migrated off dead ring", results["tokens_migrated"]),
            ("delivered / emitted", "%d / %d" % (results["delivered"], results["emitted"])),
            ("emit outcomes", ", ".join(
                "%s=%d" % kv for kv in sorted(results["outcomes"].items()))),
            ("same-seed rerun identical", "yes" if results["reproducible"] else "NO"),
            ("trace digest", results["digest"][:16]),
        ]
        print(format_table(
            ("metric", "value"), rows,
            title="Failover: injected %s failure at t=%.0f us (seed %d)"
            % (results["datapath_before"], fail_at_ns / 1000.0, seed),
        ))
    return results


# -- scenario 2: goodput under loss bursts ------------------------------------

def run_loss_cell(rate, seed=0, messages=2000, size=1024,
                  interval_ns=1_000.0):
    """One loss-sweep point (a ``bench.loss`` sweep cell).

    Builds an isolated testbed for the given loss rate and returns the
    plain-JSON delivery record the loss table is assembled from.
    """
    testbed = Testbed.local(seed=seed)
    sim = testbed.sim
    deployment = InsaneDeployment(testbed)
    with Session(deployment.runtime(0), "pub") as pub, \
            Session(deployment.runtime(1), "sub") as sub:
        pub_stream = pub.create_stream(QosPolicy.fast(), name="loss")
        sub_stream = sub.create_stream(QosPolicy.fast(), name="loss")
        source = pub.create_source(pub_stream, channel=1)
        received = [0, 0.0]

        def on_delivery(delivery, received=received):
            received[0] += 1
            received[1] = sim.now
            return False

        sub.create_sink(sub_stream, channel=1, callback=on_delivery)
        if rate > 0.0:
            FaultSchedule().loss_burst(
                at=0.0, for_ns=None, rate=rate, link=0
            ).apply(testbed, deployment)

        def producer():
            for _ in range(messages):
                buffer = yield from pub.get_buffer_wait(source, size)
                yield from pub.emit_data(source, buffer, length=size)
                yield Timeout(interval_ns)

        sim.process(producer(), name="loss.pub")
        sim.run()
        delivered, last_ns = received
        goodput_gbps = (
            delivered * size * 8.0 / last_ns if last_ns > 0 else 0.0
        )
        return {
            "delivered": delivered,
            "ratio": delivered / messages,
            "goodput_gbps": goodput_gbps,
        }


def run_loss_goodput(seed=0, messages=2000, size=1024, interval_ns=1_000.0,
                     rates=(0.0, 0.05, 0.1, 0.2), quiet=False, workers=1,
                     cache=None):
    """Best-effort goodput and delivery ratio vs link loss rate.

    The producer is paced (``interval_ns``) to keep the offered load below
    the path capacity, so the delivery ratio isolates *loss* rather than
    receiver overload.  Each rate is an independent sweep cell; ``workers``
    shards them across processes."""
    from repro.bench.sweep import grid_payloads, sweep_cells
    from repro.parallel.cells import make_cell

    cells = [
        make_cell("bench.loss", rate=rate, seed=seed, messages=messages,
                  size=size, interval_ns=interval_ns)
        for rate in rates
    ]
    sweep = sweep_cells(cells, workers=workers, cache=cache)
    payloads = grid_payloads(sweep, "rate")
    results = {rate: payloads[rate] for rate in rates}
    if not quiet:
        rows = [
            ("%.0f%%" % (rate * 100.0),
             r["delivered"], "%.3f" % r["ratio"], "%.2f" % r["goodput_gbps"])
            for rate, r in results.items()
        ]
        print(format_table(
            ("loss rate", "delivered", "ratio", "goodput Gbps"), rows,
            title="Goodput under loss: %d x %dB, best-effort (seed %d)"
            % (messages, size, seed),
        ))
    return results


# -- scenario 3: link flap under the reliable ARQ layer -----------------------

def run_flap_reliable(seed=0, messages=60, flap_at_ns=500_000.0,
                      flap_ns=300_000.0, quiet=False):
    """A link flap under :class:`~repro.apps.reliable.ReliableSender`:
    the ARQ layer retransmits through the outage and delivers everything."""
    from repro.apps.reliable import ReliableReceiver, ReliableSender

    testbed = Testbed.local(seed=seed)
    sim = testbed.sim
    deployment = InsaneDeployment(testbed)
    with Session(deployment.runtime(0), "tx") as tx, \
            Session(deployment.runtime(1), "rx") as rx:
        tx_stream = tx.create_stream(QosPolicy.fast(), name="arq")
        rx_stream = rx.create_stream(QosPolicy.fast(), name="arq")
        sender = ReliableSender(tx, tx_stream, channel=1, window=8)
        delivered = []
        ReliableReceiver(rx, rx_stream, channel=1, deliver=delivered.append)

        def producer():
            for index in range(messages):
                yield from sender.send(b"msg-%04d" % index)
                yield Timeout(20_000.0)
            yield from sender.drain()
            sender.close()

        sim.process(producer(), name="arq.tx")
        FaultSchedule().link_down(
            at=flap_at_ns, for_ns=flap_ns, link=0
        ).apply(testbed, deployment)
        sim.run()

        results = {
            "sent": messages,
            "delivered": len(delivered),
            "in_order": delivered == [b"msg-%04d" % i for i in range(messages)],
            "retransmissions": sender.retransmissions.value,
            "survived": len(delivered) == messages and not sender.failed,
        }
    if not quiet:
        rows = [
            ("delivered / sent", "%d / %d" % (results["delivered"], results["sent"])),
            ("in order", "yes" if results["in_order"] else "NO"),
            ("retransmissions", results["retransmissions"]),
            ("survived the flap", "yes" if results["survived"] else "NO"),
        ]
        print(format_table(
            ("metric", "value"), rows,
            title="Link flap (%.0f us down) under reliable ARQ (seed %d)"
            % (flap_ns / 1000.0, seed),
        ))
    return results


# -- entry point ---------------------------------------------------------------

def run_faults(seed=0, messages=None, quiet=False, workers=1, cache=None):
    """The full fault-scenario sweep (the ``faults`` CLI experiment).

    ``workers``/``cache`` apply to the loss sweep (its rates are
    independent cells); failover and flap are single scenarios and always
    run inline.
    """
    messages = messages or 2000
    report = {}
    report["failover"] = run_failover(seed=seed, quiet=quiet)
    if not quiet:
        print()
    report["loss"] = run_loss_goodput(seed=seed, messages=messages,
                                      quiet=quiet, workers=workers,
                                      cache=cache)
    if not quiet:
        print()
    report["flap"] = run_flap_reliable(seed=seed, quiet=quiet)
    return report
