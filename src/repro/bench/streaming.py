"""Drivers for the streaming comparison (paper Fig. 11 + Table 4)."""

from repro.apps.lunar_streaming import LunarStreamClient, LunarStreamServer
from repro.baselines.sendfile import SendfileStreamer
from repro.bench.harness import make_testbed
from repro.bench.images import image_size_bytes
from repro.core.runtime import InsaneDeployment

STREAMING_SYSTEMS = ("lunar_fast", "lunar_slow", "sendfile")


def lunar_streaming_run(mode, resolution, frames, profile="local", seed=0):
    """Stream ``frames`` synthetic images; returns (fps, latencies_ns)."""
    testbed = make_testbed(profile, seed=seed)
    sim = testbed.sim
    deployment = InsaneDeployment(testbed)
    server = LunarStreamServer(deployment.runtime(0), mode=mode)
    client = LunarStreamClient(deployment.runtime(1), mode=mode, synthetic=True)
    frame_size = image_size_bytes(resolution)
    completions = []

    def server_proc():
        yield from server.wait_for_client()

        def wait_next():
            return iter(())  # camera always has the next frame ready

        yield from server.loop(lambda: frame_size, wait_next, frames)

    def client_proc():
        yield from client.connect()
        received = yield from client.receive_frames(frames)
        completions.extend(done for _frame, done in received)

    sim.process(server_proc(), name="lnr.server")
    sim.process(client_proc(), name="lnr.client")
    sim.run()
    if len(completions) != frames:
        raise RuntimeError(
            "client reassembled %d/%d frames" % (len(completions), frames)
        )
    latencies = [
        done - start for done, start in zip(completions, server.frame_starts)
    ]
    elapsed = completions[-1] - server.frame_starts[0]
    fps = frames * 1e9 / elapsed if elapsed > 0 else 0.0
    return fps, latencies


def sendfile_run(resolution, frames, profile="local", seed=0):
    """The sendfile baseline for the same workload; returns (fps, latencies)."""
    testbed = make_testbed(profile, seed=seed)
    streamer = SendfileStreamer(testbed)
    frame_size = image_size_bytes(resolution)
    latencies, meter = streamer.stream_frames(frame_size, frames)
    if len(latencies) != frames:
        raise RuntimeError("client reassembled %d/%d frames" % (len(latencies), frames))
    elapsed = meter.last_ns - (meter.first_ns - latencies[0])
    fps = frames * 1e9 / elapsed if elapsed > 0 else 0.0
    return fps, latencies


def streaming_run(system, resolution, frames, profile="local", seed=0):
    """Uniform entry point across the three Fig. 11 systems."""
    if system == "sendfile":
        return sendfile_run(resolution, frames, profile=profile, seed=seed)
    if system in ("lunar_fast", "lunar_slow"):
        return lunar_streaming_run(system.split("_")[1], resolution, frames, profile=profile, seed=seed)
    raise ValueError("unknown streaming system %r" % (system,))


def frames_for_resolution(resolution, quick=False):
    """Pick a frame count that keeps simulated event counts tractable."""
    size = image_size_bytes(resolution)
    budget = 40_000_000 if quick else 150_000_000
    return max(4, min(60, budget // size))
