"""Latency breakdown of INSANE fast (paper Fig. 6).

Runs a paced one-way INSANE fast flow with per-packet tracing enabled and
splits each message's latency into the paper's four components:

* **send** — emit to NIC hand-off (client IPC, scheduler pass, mempool
  exchange, userspace stack TX, driver call);
* **network** — NIC hand-off to NIC receive-ring arrival (DMA,
  serialization, propagation, and — on the cloud testbed — the switch);
* **receive** — ring arrival to runtime dispatch (poll detection, driver
  RX, stack RX, channel dispatch);
* **data processing** — dispatch to the application's consume returning
  (token delivery over the sink ring and the client-library pickup).

The figure reports an RTT breakdown of a symmetric echo, so each one-way
component is doubled.
"""

from repro.bench.harness import make_testbed
from repro.core import QosPolicy, Session
from repro.core.config import RuntimeConfig
from repro.core.runtime import InsaneDeployment
from repro.hw import Testbed
from repro.hw.profiles import PROFILES
from repro.simnet import Tally, Timeout

COMPONENTS = ("send", "network", "receive", "data_processing")

#: datapaths compared by the traced breakdown (paper Fig. 7 columns)
TRACED_DATAPATHS = ("udp", "xdp", "dpdk", "rdma")


def run_breakdown(profile="local", messages=300, size=64, seed=0, gap_ns=30_000):
    """Measure the Fig. 6 breakdown; returns {component: mean_us_per_rtt}."""
    testbed = make_testbed(profile, seed=seed)
    sim = testbed.sim
    deployment = InsaneDeployment(testbed, config=RuntimeConfig(trace=True))
    tx = Session(deployment.runtime(0), "bd-tx")
    rx = Session(deployment.runtime(1), "bd-rx")
    tx_stream = tx.create_stream(QosPolicy.fast(), name="breakdown")
    rx_stream = rx.create_stream(QosPolicy.fast(), name="breakdown")
    source = tx.create_source(tx_stream, channel=1)
    sink = rx.create_sink(rx_stream, channel=1)
    tallies = {component: Tally(component) for component in COMPONENTS}

    def producer():
        for _ in range(messages):
            buffer = yield from tx.get_buffer_wait(source, size)
            yield from tx.emit_data(source, buffer, length=size)
            yield Timeout(gap_ns)  # paced: isolate per-message pipeline

    def consumer():
        for _ in range(messages):
            delivery = yield from rx.consume_data(sink)
            consume_done = sim.now
            trace = delivery.meta.get("trace")
            if trace and "emit_ns" in trace:
                tallies["send"].record(trace["nic_handoff"] - trace["emit_ns"])
                tallies["network"].record(trace["nic_rx_arrival"] - trace["nic_handoff"])
                tallies["receive"].record(trace["runtime_rx"] - trace["nic_rx_arrival"])
                tallies["data_processing"].record(consume_done - trace["runtime_rx"])
            rx.release_buffer(sink, delivery)

    sim.process(consumer(), name="bd.consumer")
    sim.process(producer(), name="bd.producer")
    sim.run()
    # one-way components doubled: the echo path is symmetric
    return {component: 2 * tallies[component].mean / 1000.0 for component in COMPONENTS}


def run_traced_breakdown(profile="local", messages=200, size=64, seed=0,
                         gap_ns=30_000, datapaths=TRACED_DATAPATHS):
    """Per-datapath critical-path breakdown via lifecycle tracing.

    Runs one paced one-way flow per datapath — the mapping strategy is
    pinned so the QoS layer cannot pick a different one, and RDMA runs
    on a profile copy with the RNIC enabled — each with a fresh
    :class:`~repro.obs.LifecycleTracer` attached through
    ``RuntimeConfig(tracer=...)``.  Returns ``{datapath: tracer}``,
    ready for :func:`repro.obs.breakdown_report` /
    :func:`repro.obs.chrome_trace`.
    """
    from repro.obs import LifecycleTracer

    tracers = {}
    for name in datapaths:
        prof = PROFILES[profile]
        if name == "rdma" and not prof.rdma_nic:
            prof = prof.replace(rdma_nic=True)
        testbed = Testbed(prof, hosts=2, seed=seed)
        sim = testbed.sim
        tracer = LifecycleTracer()
        tracer.attach_engine(sim, label=name)
        config = RuntimeConfig(
            tracer=tracer,
            mapping_strategy=lambda policy, available, _name=name: _name,
        )
        deployment = InsaneDeployment(testbed, config=config)
        tx = Session(deployment.runtime(0), "tbd-tx")
        rx = Session(deployment.runtime(1), "tbd-rx")
        tx_stream = tx.create_stream(QosPolicy.fast(), name="traced")
        rx_stream = rx.create_stream(QosPolicy.fast(), name="traced")
        source = tx.create_source(tx_stream, channel=1)
        sink = rx.create_sink(rx_stream, channel=1)

        def producer(tx=tx, source=source):
            for _ in range(messages):
                buffer = yield from tx.get_buffer_wait(source, size)
                yield from tx.emit_data(source, buffer, length=size)
                yield Timeout(gap_ns)

        def consumer(rx=rx, sink=sink):
            for _ in range(messages):
                delivery = yield from rx.consume_data(sink)
                rx.release_buffer(sink, delivery)

        sim.process(consumer(), name="tbd.consumer")
        sim.process(producer(), name="tbd.producer")
        sim.run()
        tracers[name] = tracer
    return tracers


def print_traced_breakdown(tracers):
    """Render the per-datapath stage table; returns the report dict."""
    from repro.obs import breakdown_report, format_breakdown

    report = breakdown_report(tracers)
    print(format_breakdown(report))
    return report
