"""Terminal bar charts for the regenerated figures.

The paper's figures are plots; where a table hides the shape, these
renderers make orderings and gaps visible directly in the terminal.
``insane-bench <figure> --chart`` uses them.
"""


def hbar_chart(title, labels, values, unit="", width=50, reference=None):
    """A horizontal bar chart.

    ``reference`` optionally maps labels to paper values, drawn as a
    marker on each bar's scale.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not values:
        return title + "\n(no data)"
    peak = max(values)
    if reference:
        peak = max(peak, max(reference.values()))
    peak = peak or 1.0
    label_width = max(len(str(label)) for label in labels)
    lines = [title]
    for label, value in zip(labels, values):
        filled = int(round(width * value / peak))
        bar = "#" * filled
        if reference and label in reference:
            marker = int(round(width * reference[label] / peak))
            bar = _place_marker(bar, marker, width)
        lines.append(
            "%s  %s %.2f%s" % (str(label).ljust(label_width), bar.ljust(width), value, unit)
        )
    if reference:
        lines.append("%s  (| marks the paper's value)" % (" " * label_width))
    return "\n".join(lines)


def _place_marker(bar, position, width):
    position = min(max(position, 0), width - 1)
    padded = list(bar.ljust(width))
    padded[position] = "|"
    return "".join(padded)


def grouped_series_chart(title, x_labels, series, unit="", width=40):
    """Several named series over the same x axis, one block per x value.

    ``series`` is a dict name -> list of values aligned with ``x_labels``.
    """
    lengths = {len(values) for values in series.values()}
    if lengths != {len(x_labels)}:
        raise ValueError("every series must align with x_labels")
    peak = max(max(values) for values in series.values()) or 1.0
    name_width = max(len(name) for name in series)
    lines = [title]
    for index, x_label in enumerate(x_labels):
        lines.append("%s:" % x_label)
        for name, values in series.items():
            value = values[index]
            filled = int(round(width * value / peak))
            lines.append(
                "  %s  %s %.2f%s"
                % (name.ljust(name_width), ("#" * filled).ljust(width), value, unit)
            )
    return "\n".join(lines)


def sparkline(values, width=None):
    """A one-line magnitude profile using block characters."""
    if not values:
        return ""
    blocks = " .:-=+*#%@"
    peak = max(values) or 1.0
    return "".join(blocks[min(int(v / peak * (len(blocks) - 1)), len(blocks) - 1)] for v in values)
