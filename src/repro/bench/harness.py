"""Drivers for the latency and throughput benchmarks (paper §6.2).

Seven systems, exactly as in Fig. 7:

===================  =========================================================
``udp_blocking``     UDP sockets, blocking receive
``udp_nonblocking``  UDP sockets, busy-polled non-blocking receive
``catnap``           Demikernel over kernel sockets
``insane_slow``      INSANE with the no-acceleration QoS (kernel UDP)
``catnip``           Demikernel over DPDK
``insane_fast``      INSANE with the acceleration QoS (DPDK)
``raw_dpdk``         native DPDK application
===================  =========================================================
"""

from repro.baselines.demikernel import DemikernelApp
from repro.baselines.raw_dpdk import DpdkBenchApp
from repro.baselines.raw_udp import UdpBenchApp
from repro.core import QosPolicy, Session
from repro.core.runtime import InsaneDeployment
from repro.hw import Testbed
from repro.hw.profiles import PROFILES
from repro.simnet import RateMeter, Tally, Timeout

#: Paper Fig. 7 ordering.
SYSTEMS = (
    "udp_blocking",
    "udp_nonblocking",
    "catnap",
    "insane_slow",
    "catnip",
    "insane_fast",
    "raw_dpdk",
)


def make_testbed(profile="local", seed=0, hosts=2):
    """Build a testbed by profile name ('local' or 'cloud')."""
    return Testbed(PROFILES[profile], hosts=hosts, seed=seed)


def make_system(name, testbed, config=None):
    """Instantiate the benchmark application for one system."""
    if name == "udp_blocking":
        return UdpBenchApp(testbed, blocking=True)
    if name == "udp_nonblocking":
        return UdpBenchApp(testbed, blocking=False)
    if name == "raw_dpdk":
        return DpdkBenchApp(testbed)
    if name == "catnap":
        return DemikernelApp(testbed, "catnap")
    if name == "catnip":
        return DemikernelApp(testbed, "catnip")
    if name == "insane_slow":
        return InsaneBenchApp(testbed, "slow", config=config)
    if name == "insane_fast":
        return InsaneBenchApp(testbed, "fast", config=config)
    raise ValueError("unknown system %r (choose from %s)" % (name, SYSTEMS))


class InsaneBenchApp:
    """The INSANE version of the benchmarking application.

    This is deliberately the same application shape as the raw versions, but
    written against the INSANE public API — the program Table 3 counts at
    189 LoC in C (see ``examples/loc_apps/app_insane.py`` for the runnable
    equivalent counted by the Table 3 bench).
    """

    def __init__(self, testbed, mode, config=None):
        if mode not in ("fast", "slow"):
            raise ValueError("mode must be 'fast' or 'slow'")
        self.testbed = testbed
        self.sim = testbed.sim
        self.mode = mode
        self.policy = QosPolicy.fast() if mode == "fast" else QosPolicy.slow()
        self.deployment = InsaneDeployment(testbed, config=config)
        self.client = Session(self.deployment.runtime(0), "bench-client")
        self.server = Session(self.deployment.runtime(1), "bench-server")
        stream_name = "bench-" + mode
        self.client_stream = self.client.create_stream(self.policy, name=stream_name)
        self.server_stream = self.server.create_stream(self.policy, name=stream_name)

    # -- ping-pong ------------------------------------------------------------

    def pingpong(self, rounds, size):
        sim = self.sim
        rtts = Tally("insane_%s_rtt" % self.mode)
        c_source = self.client.create_source(self.client_stream, channel=1)
        c_sink = self.client.create_sink(self.client_stream, channel=2)
        s_sink = self.server.create_sink(self.server_stream, channel=1)
        s_source = self.server.create_source(self.server_stream, channel=2)

        def client():
            for _ in range(rounds):
                start = sim.now
                buffer = yield from self.client.get_buffer_wait(c_source, size)
                yield from self.client.emit_data(c_source, buffer, length=size)
                delivery = yield from self.client.consume_data(c_sink)
                self.client.release_buffer(c_sink, delivery)
                rtts.record(sim.now - start)

        def server():
            while True:
                delivery = yield from self.server.consume_data(s_sink)
                self.server.release_buffer(s_sink, delivery)
                buffer = yield from self.server.get_buffer_wait(s_source, size)
                yield from self.server.emit_data(s_source, buffer, length=size)

        sim.process(server(), name="insane.server")
        sim.process(client(), name="insane.client")
        sim.run()
        return rtts

    # -- streaming throughput -------------------------------------------------

    def stream(self, messages, size, sinks=1):
        """Flood ``messages`` to ``sinks`` concurrent sink applications on
        the receiver host; returns a list of per-sink RateMeters."""
        sim = self.sim
        source = self.client.create_source(self.client_stream, channel=5)
        meters = []
        sink_sessions = []
        stream_name = self.server_stream.name
        for index in range(sinks):
            if index == 0:
                session, stream = self.server, self.server_stream
            else:
                session = Session(self.deployment.runtime(1), "bench-sink%d" % index)
                stream = session.create_stream(self.policy, name=stream_name)
            sink = session.create_sink(stream, channel=5)
            meters.append(RateMeter("sink%d" % index))
            sink_sessions.append((session, sink, meters[-1]))

        def sender():
            for _ in range(messages):
                buffer = yield from self.client.get_buffer_wait(source, size)
                yield from self.client.emit_data(source, buffer, length=size)

        legacy = getattr(sim, "legacy_stack", False)

        def sink_proc(session, sink, meter):
            touch = session.runtime.host.profile.stage("app_touch").cost(size)
            received = 0
            while received < messages:
                # the per-message app-processing sleep is folded into the
                # receive-side IPC charge (one wake-up, identical instant)
                delivery = yield from session.consume_data(sink, extra_ns=touch)
                session.release_buffer(sink, delivery)
                meter.record(sim.now, size)
                received += 1

        def sink_proc_legacy(session, sink, meter):
            """Pre-overhaul sink loop, verbatim (perf baseline)."""
            touch = session.runtime.host.profile.stage("app_touch").cost(size)
            received = 0
            while received < messages:
                delivery = yield from session.consume_data(sink)
                if touch:
                    yield Timeout(touch)
                session.release_buffer(sink, delivery)
                meter.record(sim.now, size)
                received += 1

        if legacy:
            sink_proc = sink_proc_legacy

        for session, sink, meter in sink_sessions:
            sim.process(sink_proc(session, sink, meter), name="insane.sink")
        sim.process(sender(), name="insane.sender")
        sim.run()
        return meters


def run_pingpong(system, profile="local", rounds=2000, size=64, seed=0, config=None):
    """One Fig. 5/7 data point; returns a Tally of RTTs in ns."""
    testbed = make_testbed(profile, seed=seed)
    app = make_system(system, testbed, config=config)
    return app.pingpong(rounds, size)


def run_throughput(system, profile="local", messages=20000, size=1024, seed=0, config=None):
    """One Fig. 8a data point; returns goodput in Gbps."""
    testbed = make_testbed(profile, seed=seed)
    app = make_system(system, testbed, config=config)
    if system.startswith("insane"):
        meters = app.stream(messages, size)
        return meters[0].gbps()
    return app.stream(messages, size).gbps()


def run_multisink(sinks, profile="local", messages=20000, size=1024, seed=0, config=None):
    """One Fig. 8b data point; returns the average per-sink goodput (Gbps)."""
    testbed = make_testbed(profile, seed=seed)
    app = InsaneBenchApp(testbed, "fast", config=config)
    meters = app.stream(messages, size, sinks=sinks)
    rates = [meter.gbps() for meter in meters]
    return sum(rates) / len(rates)
