"""One function per paper experiment.

Each ``run_*`` function executes the experiment, prints a paper-style table
(including the paper's reference values where the paper states them), and
returns the measured data so benchmarks and tests can assert on it.
"""

from repro.bench.breakdown import COMPONENTS, run_breakdown
from repro.bench.harness import SYSTEMS, run_multisink, run_pingpong, run_throughput
from repro.bench.images import table4_rows
from repro.bench.loc import table3_rows
from repro.bench.mom import MOM_SYSTEMS, mom_pingpong, mom_throughput
from repro.bench.streaming import STREAMING_SYSTEMS, frames_for_resolution, streaming_run
from repro.bench.tables import format_table
from repro.datapaths.registry import capability_table

#: Paper-reported average RTTs (us, 64 B) for Fig. 7.
PAPER_FIG7 = {
    "local": {
        "udp_blocking": 27.20, "udp_nonblocking": 12.58, "catnap": 13.34,
        "insane_slow": 13.66, "catnip": 4.26, "insane_fast": 4.95,
        "raw_dpdk": 3.44,
    },
    "cloud": {
        "udp_blocking": None, "udp_nonblocking": 19.10, "catnap": 21.33,
        "insane_slow": 23.27, "catnip": 7.40, "insane_fast": 10.43,
        "raw_dpdk": 6.55,
    },
}

#: Paper-reported Fig. 8b values (Gbps at 1 KB).
PAPER_FIG8B = {1: 25.98, 2: 25.66, 8: 15.66}

#: Paper-reported Fig. 9b values (Gbps).
PAPER_FIG9B = {
    ("lunar_fast", 64): 3.60, ("lunar_fast", 256): 10.51, ("lunar_fast", 1024): 22.82,
    ("lunar_slow", 64): 0.37, ("lunar_slow", 256): 1.44, ("lunar_slow", 1024): 4.69,
    ("cyclone_dds", 64): 0.54, ("cyclone_dds", 256): 1.49, ("cyclone_dds", 1024): 5.72,
}

FIG5_SYSTEMS = ("raw_dpdk", "insane_fast", "insane_slow", "udp_nonblocking")
FIG5_SIZES = (64, 256, 1024)
FIG8A_SYSTEMS = ("udp_nonblocking", "catnap", "insane_slow", "catnip", "insane_fast", "raw_dpdk")
FIG8A_SIZES = (64, 256, 1024, 4096, 8192)
FIG8B_SINKS = (1, 2, 4, 6, 8)
FIG9_SIZES = (64, 256, 1024)


def run_table1():
    """Table 1: the end-host networking technology comparison."""
    rows = [
        (
            row["technology"],
            row["kernel_integration"],
            row["api"],
            "yes" if row["zero_copy"] else "no",
            row["cpu_consumption"],
            "yes" if row["dedicated_hardware"] else "no",
        )
        for row in capability_table()
    ]
    print(format_table(
        ["technology", "kernel integration", "API", "zero-copy", "CPU", "dedicated HW"],
        rows,
        title="Table 1: end-host networking options",
    ))
    return rows


def run_table3():
    """Table 3: LoC of the benchmarking application per interface."""
    rows = table3_rows()
    print(format_table(
        ["interface", "LoC (ours)", "increase", "LoC (paper)", "increase (paper)"],
        [(r["interface"], r["loc"], r["increase"], r["paper_loc"], r["paper_increase"]) for r in rows],
        title="Table 3: LoC to implement the benchmarking application",
    ))
    return rows


def run_table4():
    """Table 4: raw image sizes used by the streaming benchmark."""
    rows = table4_rows()
    print(format_table(
        ["resolution", "width", "height", "size (MB)"],
        [(r["resolution"], r["width"], r["height"], r["size_mb"]) for r in rows],
        title="Table 4: streamed image sizes",
    ))
    return rows


def run_fig5(profile="local", rounds=2000, seed=0, workers=1, cache=None):
    """Fig. 5: RTT medians for increasing payload sizes.

    The grid runs through the parallel sweep executor (serially by
    default); ``workers``/``cache`` shard it across processes and reuse
    digest-keyed cached points.
    """
    from repro.bench.sweep import TallyStats, fig5_cells, grid_payloads, sweep_cells

    sweep = sweep_cells(
        fig5_cells(profile=profile, rounds=rounds, seed=seed),
        workers=workers, cache=cache,
    )
    payloads = grid_payloads(sweep, "system", "size")
    results = {}
    rows = []
    for system in FIG5_SYSTEMS:
        medians = []
        for size in FIG5_SIZES:
            tally = TallyStats(payloads[(system, size)])
            results[(system, size)] = tally
            medians.append(tally.median / 1000.0)
        rows.append([system] + medians)
    print(format_table(
        ["system"] + ["%dB (us)" % s for s in FIG5_SIZES],
        rows,
        title="Fig. 5 (%s): median RTT vs payload size" % profile,
    ))
    return results


def run_fig6(rounds=300, seed=0):
    """Fig. 6: INSANE fast latency breakdown (64 B) on both testbeds."""
    results = {}
    rows = []
    for profile in ("local", "cloud"):
        breakdown = run_breakdown(profile, messages=rounds, seed=seed)
        results[profile] = breakdown
        rows.append(
            [profile]
            + [breakdown[c] for c in COMPONENTS]
            + [sum(breakdown.values())]
        )
    print(format_table(
        ["testbed"] + list(COMPONENTS) + ["total (us)"],
        rows,
        title="Fig. 6: INSANE fast latency breakdown (64B RTT, us)",
    ))
    return results


def run_fig7(profile="local", rounds=2000, seed=0, workers=1, cache=None):
    """Fig. 7: average RTT of all seven systems (64 B)."""
    from repro.bench.sweep import TallyStats, fig7_cells, grid_payloads, sweep_cells

    sweep = sweep_cells(
        fig7_cells(profile=profile, rounds=rounds, seed=seed),
        workers=workers, cache=cache,
    )
    payloads = grid_payloads(sweep, "system")
    results = {}
    rows = []
    for system in SYSTEMS:
        tally = TallyStats(payloads[system])
        results[system] = tally
        paper = PAPER_FIG7[profile][system]
        rows.append([system, tally.mean / 1000.0, paper if paper is not None else "n/a"])
    print(format_table(
        ["system", "avg RTT (us)", "paper (us)"],
        rows,
        title="Fig. 7 (%s): average RTT, 64B payload" % profile,
    ))
    return results


def run_fig8a(messages=20000, seed=0, workers=1, cache=None):
    """Fig. 8a: throughput for increasing payload size (local testbed)."""
    from repro.bench.sweep import fig8a_cells, grid_payloads, sweep_cells

    sweep = sweep_cells(
        fig8a_cells(messages=messages, seed=seed),
        workers=workers, cache=cache,
    )
    payloads = grid_payloads(sweep, "system", "size")
    results = {}
    rows = []
    for system in FIG8A_SYSTEMS:
        series = []
        for size in FIG8A_SIZES:
            gbps = payloads[(system, size)]["gbps"]
            results[(system, size)] = gbps
            series.append(gbps)
        rows.append([system] + series)
    print(format_table(
        ["system"] + ["%dB" % s for s in FIG8A_SIZES],
        rows,
        title="Fig. 8a: goodput (Gbps) vs payload size (local)",
    ))
    return results


def run_fig8b(messages=20000, seed=0, workers=1, cache=None):
    """Fig. 8b: INSANE fast throughput vs number of sinks (1 KB)."""
    from repro.bench.sweep import fig8b_cells, grid_payloads, sweep_cells

    sweep = sweep_cells(
        fig8b_cells(messages=messages, seed=seed),
        workers=workers, cache=cache,
    )
    payloads = grid_payloads(sweep, "sinks")
    results = {}
    rows = []
    for sinks in FIG8B_SINKS:
        gbps = payloads[sinks]["avg_gbps"]
        results[sinks] = gbps
        rows.append([sinks, gbps, PAPER_FIG8B.get(sinks, "-")])
    print(format_table(
        ["sinks", "avg Gbps/sink", "paper"],
        rows,
        title="Fig. 8b: average per-sink goodput, 1KB payload (local)",
    ))
    return results


def run_fig9a(rounds=1000, seed=0):
    """Fig. 9a: MoM RTT for increasing payload sizes (local testbed)."""
    results = {}
    rows = []
    for system in MOM_SYSTEMS:
        series = []
        for size in FIG9_SIZES:
            tally = mom_pingpong(system, rounds=rounds, size=size, seed=seed)
            results[(system, size)] = tally
            series.append(tally.mean / 1000.0)
        rows.append([system] + series)
    print(format_table(
        ["system"] + ["%dB (us)" % s for s in FIG9_SIZES],
        rows,
        title="Fig. 9a: MoM average RTT vs payload size (local)",
    ))
    return results


def run_fig9b(messages=20000, seed=0):
    """Fig. 9b: MoM throughput (ZeroMQ excluded, as in the paper)."""
    results = {}
    rows = []
    for system in ("lunar_fast", "lunar_slow", "cyclone_dds"):
        series = []
        for size in FIG9_SIZES:
            gbps = mom_throughput(system, messages=messages, size=size, seed=seed)
            results[(system, size)] = gbps
            paper = PAPER_FIG9B.get((system, size), "-")
            series.extend([gbps, paper])
        rows.append([system] + series)
    headers = ["system"]
    for size in FIG9_SIZES:
        headers += ["%dB" % size, "paper"]
    print(format_table(headers, rows, title="Fig. 9b: MoM goodput (Gbps, local)"))
    return results


def run_fig11(quick=True, seed=0):
    """Fig. 11: streaming FPS and per-frame latency vs resolution."""
    from repro.bench.images import RESOLUTIONS

    results = {}
    rows = []
    for resolution in RESOLUTIONS:
        frames = frames_for_resolution(resolution, quick=quick)
        row = [resolution]
        for system in STREAMING_SYSTEMS:
            fps, latencies = streaming_run(system, resolution, frames, seed=seed)
            mean_latency_ms = sum(latencies) / len(latencies) / 1e6
            results[(system, resolution)] = (fps, mean_latency_ms)
            row.extend([fps, mean_latency_ms])
        rows.append(row)
    headers = ["resolution"]
    for system in STREAMING_SYSTEMS:
        headers += ["%s FPS" % system, "%s ms" % system]
    print(format_table(headers, rows, title="Fig. 11: streaming FPS / frame latency"))
    return results
