"""Ablation studies on the design choices DESIGN.md calls out.

A1 — packet scheduling: FIFO vs the 802.1Qbv time-aware scheduler for a
     time-sensitive flow sharing a datapath with bulk traffic (paper §5.2,
     §8 "Packet scheduling").
A2 — polling-thread mapping: one thread per datapath vs one shared thread
     (paper §5.3, §8 "Thread scheduling strategies").
A3 — opportunistic batching on/off (paper §6.2's explanation of Fig. 8a).
A4 — the QoS mapping matrix: policy x host capability -> chosen datapath,
     with the measured RTT of each mapping (paper §5.2).
"""

from repro.bench.harness import (
    InsaneBenchApp,
    make_testbed,
    run_multisink,
    run_throughput,
)
from repro.bench.tables import format_table
from repro.core import QosPolicy, Session
from repro.core.config import RuntimeConfig
from repro.core.runtime import InsaneDeployment
from repro.hw import Testbed
from repro.hw.profiles import LOCAL_TESTBED
from repro.simnet import Tally, Timeout


def run_ablation_tsn(messages=200, period_ns=20_000, seed=0, quiet=False):
    """A1: one-way latency of a time-sensitive flow whose *sender* is
    congested by a bulk flow to a third host, FIFO vs TSN.

    The 802.1Qbv time-aware shaper acts on the transmit scheduler, so the
    contention point must be the sender: host0 sends the time-sensitive
    flow to host1 while flooding bulk traffic to host2 through the same
    datapath binding.  Returns {mode: Tally}.
    """
    import struct

    results = {}
    for mode in ("fifo", "tsn"):
        testbed = make_testbed("local", seed=seed, hosts=3)
        sim = testbed.sim
        deployment = InsaneDeployment(testbed)
        tx = Session(deployment.runtime(0), "ts-tx")
        bulk_tx = Session(deployment.runtime(0), "bulk-tx")  # separate app
        rx = Session(deployment.runtime(1), "ts-rx")
        bulk_rx = Session(deployment.runtime(2), "bulk-rx")
        time_sensitive = mode == "tsn"
        ts_policy = QosPolicy.fast(time_sensitive=time_sensitive)
        bulk_policy = QosPolicy.fast()
        ts_tx_stream = tx.create_stream(ts_policy, name="ts")
        ts_rx_stream = rx.create_stream(ts_policy, name="ts")
        bulk_tx_stream = bulk_tx.create_stream(bulk_policy, name="bulk")
        bulk_rx_stream = bulk_rx.create_stream(bulk_policy, name="bulk")
        ts_source = tx.create_source(ts_tx_stream, channel=1)
        ts_sink = rx.create_sink(ts_rx_stream, channel=1)
        bulk_source = bulk_tx.create_source(bulk_tx_stream, channel=2)
        bulk_rx.create_sink(bulk_rx_stream, channel=2, callback=lambda d: None)
        latencies = Tally("%s_latency" % mode)

        def bulk_sender():
            while True:
                buffer = yield from bulk_tx.get_buffer_wait(bulk_source, 4096)
                yield from bulk_tx.emit_data(bulk_source, buffer, length=4096)

        def ts_sender():
            for _ in range(messages):
                buffer = yield from tx.get_buffer_wait(ts_source, 64)
                # carry the send timestamp in the payload itself
                buffer.write(struct.pack("!Q", int(sim.now)))
                yield from tx.emit_data(ts_source, buffer, length=64)
                yield Timeout(period_ns)

        def ts_receiver():
            # under FIFO, bulk load may drop time-sensitive packets at the
            # NIC ring: consume whatever arrives within the time bound
            while True:
                delivery = yield from rx.consume_data(ts_sink)
                (sent_ns,) = struct.unpack("!Q", bytes(delivery.buffer.view[:8]))
                latencies.record(sim.now - sent_ns)
                rx.release_buffer(ts_sink, delivery)

        sim.process(bulk_sender(), name="bulk")
        sim.process(ts_receiver(), name="ts-rx")
        sim.process(ts_sender(), name="ts-tx")
        sim.run(until=int(messages * period_ns * 3) + 5_000_000)
        latencies.delivered_fraction = latencies.count / float(messages)
        results[mode] = latencies
    if not quiet:
        rows = [
            [
                mode,
                t.mean / 1000.0,
                t.percentile(99) / 1000.0,
                t.maximum / 1000.0,
                "%d%%" % round(100 * t.delivered_fraction),
            ]
            for mode, t in results.items()
        ]
        print(format_table(
            ["scheduler", "mean (us)", "p99 (us)", "max (us)", "delivered"],
            rows,
            title="A1: time-sensitive flow latency under bulk contention",
        ))
    return results


def run_ablation_threads(rounds=500, seed=0, quiet=False):
    """A2: fast-path RTT while a slow-path flood runs, per-datapath threads
    vs one shared polling thread.  Returns {mapping: Tally}."""
    results = {}
    for mapping in ("per-datapath", "shared"):
        config = RuntimeConfig(thread_mapping=mapping)
        testbed = make_testbed("local", seed=seed)
        sim = testbed.sim
        deployment = InsaneDeployment(testbed, config=config)
        client = Session(deployment.runtime(0), "a2-client")
        server = Session(deployment.runtime(1), "a2-server")
        fast = QosPolicy.fast()
        c_stream = client.create_stream(fast, name="a2")
        s_stream = server.create_stream(fast, name="a2")
        c_source = client.create_source(c_stream, channel=1)
        c_sink = client.create_sink(c_stream, channel=2)
        s_sink = server.create_sink(s_stream, channel=1)
        s_source = server.create_source(s_stream, channel=2)
        # background slow-path load through the same runtimes
        slow_tx = Session(deployment.runtime(0), "bg-tx")
        slow_rx = Session(deployment.runtime(1), "bg-rx")
        slow_tx_stream = slow_tx.create_stream(QosPolicy.slow(), name="bg")
        slow_rx_stream = slow_rx.create_stream(QosPolicy.slow(), name="bg")
        bg_source = slow_tx.create_source(slow_tx_stream, channel=9)
        slow_rx.create_sink(slow_rx_stream, channel=9, callback=lambda d: None)
        rtts = Tally(mapping)
        done = [False]

        def background():
            while not done[0]:
                buffer = yield from slow_tx.get_buffer_wait(bg_source, 1024)
                yield from slow_tx.emit_data(bg_source, buffer, length=1024)

        def client_proc():
            for _ in range(rounds):
                start = sim.now
                buffer = yield from client.get_buffer_wait(c_source, 64)
                yield from client.emit_data(c_source, buffer, length=64)
                delivery = yield from client.consume_data(c_sink)
                client.release_buffer(c_sink, delivery)
                rtts.record(sim.now - start)
            done[0] = True

        def server_proc():
            while True:
                delivery = yield from server.consume_data(s_sink)
                server.release_buffer(s_sink, delivery)
                buffer = yield from server.get_buffer_wait(s_source, 64)
                yield from server.emit_data(s_source, buffer, length=64)

        sim.process(background(), name="bg")
        sim.process(server_proc(), name="a2.server")
        sim.process(client_proc(), name="a2.client")
        sim.run()
        results[mapping] = rtts
    if not quiet:
        rows = [
            [mapping, t.mean / 1000.0, t.percentile(99) / 1000.0]
            for mapping, t in results.items()
        ]
        print(format_table(
            ["thread mapping", "fast RTT mean (us)", "p99 (us)"],
            rows,
            title="A2: polling-thread mapping under mixed load",
        ))
    return results


def run_ablation_batching(messages=20000, size=1024, seed=0, quiet=False):
    """A3: INSANE fast throughput with and without opportunistic batching.
    Returns {mode: gbps}."""
    results = {}
    for mode, config in (
        ("batching", None),
        ("no-batching", RuntimeConfig(opportunistic_batching=False, tx_burst=1)),
    ):
        results[mode] = run_throughput(
            "insane_fast", messages=messages, size=size, seed=seed, config=config
        )
    if not quiet:
        rows = [[mode, gbps] for mode, gbps in results.items()]
        print(format_table(
            ["mode", "goodput (Gbps)"],
            rows,
            title="A3: opportunistic batching, 1KB payload",
        ))
    return results


def run_ablation_rx_threads(messages=8000, size=1024, seed=0, quiet=False):
    """A5: parallelizing the datapath over multiple polling threads
    (paper §8, "Thread scheduling strategies").  Returns
    {(threads, sinks): gbps}."""
    results = {}
    for threads in (1, 2):
        for sinks in (1, 8):
            config = RuntimeConfig(threads_per_datapath=threads)
            results[(threads, sinks)] = run_multisink(
                sinks, messages=messages, size=size, seed=seed, config=config
            )
    if not quiet:
        rows = [
            [threads, sinks, results[(threads, sinks)]]
            for threads in (1, 2)
            for sinks in (1, 8)
        ]
        print(format_table(
            ["polling threads", "sinks", "avg Gbps/sink"],
            rows,
            title="A5: polling threads per datapath (1KB payload)",
        ))
    return results


def run_ablation_qos(rounds=300, seed=0, quiet=False):
    """A4: QoS policy x host capability -> datapath mapping + measured RTT.
    Returns a list of row dicts."""
    scenarios = [
        ("all datapaths", LOCAL_TESTBED.replace(rdma_nic=True)),
        ("no RDMA NIC", LOCAL_TESTBED),
        ("kernel only", LOCAL_TESTBED.replace(dpdk_capable=False, xdp_capable=False)),
    ]
    policies = [
        ("no acceleration", QosPolicy.slow()),
        ("accelerated", QosPolicy.fast()),
        ("accelerated, constrained", QosPolicy.fast(constrained=True)),
    ]
    rows = []
    for host_label, profile in scenarios:
        for policy_label, policy in policies:
            testbed = Testbed(profile, seed=seed)
            deployment = InsaneDeployment(testbed)
            tx = Session(deployment.runtime(0), "qos-tx")
            rx = Session(deployment.runtime(1), "qos-rx")
            tx_stream = tx.create_stream(policy, name="qos")
            rx.create_stream(policy, name="qos")
            rtt = _mini_pingpong(testbed, deployment, policy, rounds)
            rows.append(
                {
                    "host": host_label,
                    "policy": policy_label,
                    "datapath": tx_stream.datapath,
                    "fallback": tx_stream.decision.fallback,
                    "rtt_us": rtt / 1000.0,
                }
            )
    if not quiet:
        print(format_table(
            ["host capability", "policy", "mapped datapath", "fallback", "RTT (us)"],
            [[r["host"], r["policy"], r["datapath"], "yes" if r["fallback"] else "no", r["rtt_us"]] for r in rows],
            title="A4: QoS mapping matrix",
        ))
    return rows


def _mini_pingpong(testbed, deployment, policy, rounds):
    """Average RTT of a small INSANE ping-pong on an existing deployment."""
    sim = testbed.sim
    client = Session(deployment.runtime(0), "qq-client")
    server = Session(deployment.runtime(1), "qq-server")
    c_stream = client.create_stream(policy, name="qq")
    s_stream = server.create_stream(policy, name="qq")
    c_source = client.create_source(c_stream, channel=1)
    c_sink = client.create_sink(c_stream, channel=2)
    s_sink = server.create_sink(s_stream, channel=1)
    s_source = server.create_source(s_stream, channel=2)
    rtts = Tally("rtt")

    def client_proc():
        for _ in range(rounds):
            start = sim.now
            buffer = yield from client.get_buffer_wait(c_source, 64)
            yield from client.emit_data(c_source, buffer, length=64)
            delivery = yield from client.consume_data(c_sink)
            client.release_buffer(c_sink, delivery)
            rtts.record(sim.now - start)

    def server_proc():
        while True:
            delivery = yield from server.consume_data(s_sink)
            server.release_buffer(s_sink, delivery)
            buffer = yield from server.get_buffer_wait(s_source, 64)
            yield from server.emit_data(s_source, buffer, length=64)

    sim.process(server_proc(), name="qq.server")
    sim.process(client_proc(), name="qq.client")
    sim.run()
    return rtts.mean
