"""Drivers for the MoM comparison (paper Fig. 9).

Four systems: LUNAR MoM fast/slow (over INSANE), Cyclone-DDS-like, and
ZeroMQ-like, all running the same ping-pong and throughput workloads.
"""

from repro.apps.lunar_mom import LunarMom
from repro.baselines.dds import CycloneDdsNode, DdsDomain
from repro.baselines.zeromq import ZmqContext, ZmqNode
from repro.bench.harness import make_testbed
from repro.core.runtime import InsaneDeployment
from repro.simnet import Get, RateMeter, Store, Tally

MOM_SYSTEMS = ("lunar_fast", "lunar_slow", "cyclone_dds", "zeromq")


def _make_mom_pair(system, testbed):
    """Two MoM participants (host0, host1) plus per-system publish/subscribe
    closures with a uniform interface."""
    if system in ("lunar_fast", "lunar_slow"):
        mode = system.split("_")[1]
        deployment = InsaneDeployment(testbed)
        node_a = LunarMom(deployment.runtime(0), mode)
        node_b = LunarMom(deployment.runtime(1), mode)

        def publish(node, topic, size):
            yield from node.publish(topic, size=size)

        def publish_burst(node, topic, size, count):
            for _ in range(count):
                yield from node.publish(topic, size=size)

        def subscribe(node, topic, on_message):
            node.subscribe(topic, lambda _topic, payload: on_message(len(payload)))

        def length_of(payload):
            return len(payload)

    elif system == "cyclone_dds":
        domain = DdsDomain()
        node_a = CycloneDdsNode(testbed.hosts[0], domain)
        node_b = CycloneDdsNode(testbed.hosts[1], domain)

        def publish(node, topic, size):
            yield from node.publish(topic, size)

        def publish_burst(node, topic, size, count):
            yield from node.publish_burst(topic, size, count)

        def subscribe(node, topic, on_message):
            node.subscribe(topic, lambda _topic, packet: on_message(packet.payload_len))

    elif system == "zeromq":
        context = ZmqContext()
        node_a = ZmqNode(testbed.hosts[0], context)
        node_b = ZmqNode(testbed.hosts[1], context)

        def publish(node, topic, size):
            yield from node.radio_send(topic, size)

        def publish_burst(node, topic, size, count):
            for _ in range(count):
                yield from node.radio_send(topic, size)

        def subscribe(node, topic, on_message):
            node.dish_join(topic, lambda _group, packet: on_message(packet.payload_len))

    else:
        raise ValueError("unknown MoM system %r (choose from %s)" % (system, MOM_SYSTEMS))

    return node_a, node_b, publish, publish_burst, subscribe


def mom_pingpong(system, rounds=1000, size=64, profile="local", seed=0):
    """One Fig. 9a data point; returns a Tally of RTTs in ns."""
    testbed = make_testbed(profile, seed=seed)
    sim = testbed.sim
    node_a, node_b, publish, _publish_burst, subscribe = _make_mom_pair(system, testbed)
    rtts = Tally("%s_rtt" % system)
    pongs = Store(sim)
    pings = Store(sim)
    subscribe(node_a, "pong", lambda _size: pongs.try_put(1))
    subscribe(node_b, "ping", lambda _size: pings.try_put(1))

    def requester():
        for _ in range(rounds):
            start = sim.now
            yield from publish(node_a, "ping", size)
            yield Get(pongs)
            rtts.record(sim.now - start)

    def responder():
        while True:
            yield Get(pings)
            yield from publish(node_b, "pong", size)

    sim.process(responder(), name=system + ".responder")
    sim.process(requester(), name=system + ".requester")
    sim.run()
    return rtts


def mom_throughput(system, messages=20000, size=1024, profile="local", seed=0):
    """One Fig. 9b data point; returns subscriber goodput in Gbps."""
    testbed = make_testbed(profile, seed=seed)
    sim = testbed.sim
    node_a, node_b, _publish, publish_burst, subscribe = _make_mom_pair(system, testbed)
    meter = RateMeter(system)
    subscribe(node_b, "camera", lambda length: meter.record(sim.now, size))

    def publisher():
        remaining = messages
        while remaining:
            count = min(32, remaining)
            yield from publish_burst(node_a, "camera", size, count)
            remaining -= count

    sim.process(publisher(), name=system + ".publisher")
    sim.run()
    return meter.gbps()
