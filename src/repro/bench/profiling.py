"""``insane-bench profile``: cProfile a perf workload, aggregate by package.

Answers "where does packet time actually go?" without leaving the repo's
tooling: one suite workload (or the engine-churn microbenchmark) runs under
:mod:`cProfile`, and the report shows

* self-time totals aggregated by ``repro`` sub-package (plus an
  ``stdlib/other`` bucket), which localizes the hot layer at a glance, and
* the top-N functions by cumulative time, which names the hot call paths
  inside that layer.

Reading the output: ``cumtime`` on a function includes everything it calls,
so the engine's run loop dominating cumulative time is expected and
meaningless on its own — look at ``tottime`` (self time) to find where
cycles are actually spent, and at the package table for the layer split.
DESIGN.md §11 walks through a worked example.

Profiling costs roughly 2-4x wall-clock overhead and perturbs small
functions the most (per-call tracing overhead is flat), so treat the
numbers as a map, not a measurement: the authoritative events/sec figures
come from the unprofiled ``benchmarks/bench_wallclock.py`` runs.
"""

import cProfile
import os
import pstats

from repro.bench.perfbench import (
    QUICK_MESSAGES,
    QUICK_ROUNDS,
    SUITE,
    run_churn,
    run_workload,
)

#: workloads the profiler accepts: the wall-clock suite plus engine churn
PROFILE_WORKLOADS = tuple(SUITE) + ("engine_churn",)


def _package_of(path):
    """Map a source path to its aggregation bucket.

    Files under ``repro/`` bucket by sub-package (``repro.simnet``,
    ``repro.datapaths``, ...); everything else (stdlib, builtins) folds
    into ``stdlib/other``.
    """
    parts = path.replace(os.sep, "/").split("/")
    if "repro" in parts:
        index = parts.index("repro")
        if index + 1 < len(parts) - 1:
            return "repro." + parts[index + 1]
        return "repro"
    return "stdlib/other"


def profile_workload(workload="fig8a_streaming", engine="fast",
                     rounds=QUICK_ROUNDS, messages=QUICK_MESSAGES, seed=0):
    """Run ``workload`` under cProfile; returns ``(record, pstats.Stats)``."""
    if workload not in PROFILE_WORKLOADS:
        raise ValueError("unknown workload %r (choose from %s)"
                         % (workload, ", ".join(PROFILE_WORKLOADS)))
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        if workload == "engine_churn":
            record = run_churn(engine, seed=seed)
        else:
            record = run_workload(workload, engine, rounds=rounds,
                                  messages=messages, seed=seed)
    finally:
        profiler.disable()
    return record, pstats.Stats(profiler)


def package_totals(stats):
    """Self-time seconds per package bucket, as a dict.

    Self time (``tottime``) attributes each sample to the function whose
    frame was actually executing, so the totals sum to (roughly) the
    profiled wall clock and expose the layer split directly.
    """
    totals = {}
    for (path, _line, _name), entry in stats.stats.items():
        tottime = entry[2]
        bucket = _package_of(path)
        totals[bucket] = totals.get(bucket, 0.0) + tottime
    return totals


def top_functions(stats, top=25):
    """The ``top`` functions by cumulative time, as row dicts."""
    rows = []
    for (path, line, name), entry in stats.stats.items():
        cc, nc, tottime, cumtime = entry[0], entry[1], entry[2], entry[3]
        rows.append({
            "function": "%s:%d:%s" % (os.path.basename(path), line, name),
            "package": _package_of(path),
            "ncalls": nc,
            "primitive_calls": cc,
            "tottime_s": tottime,
            "cumtime_s": cumtime,
        })
    rows.sort(key=lambda row: row["cumtime_s"], reverse=True)
    return rows[:top]


def report_lines(record, stats, top=25):
    """Human-readable profile report for one profiled run."""
    lines = [
        "profile: %s engine=%s  wall %.3fs  %d events  %.3f Mev/s "
        "(profiled — expect 2-4x slower than the bench numbers)"
        % (record["workload"], record["engine"], record["wall_s"],
           record["events"], record["events_per_sec"] / 1e6),
        "",
        "self-time by package:",
    ]
    totals = package_totals(stats)
    grand = sum(totals.values()) or 1.0
    for bucket, seconds in sorted(totals.items(), key=lambda kv: -kv[1]):
        lines.append("  %-22s %8.3fs %6.1f%%"
                     % (bucket, seconds, 100.0 * seconds / grand))
    lines += [
        "",
        "top %d by cumulative time:" % top,
        "  %9s %9s %10s  %s" % ("cumtime", "tottime", "ncalls", "function"),
    ]
    for row in top_functions(stats, top=top):
        calls = ("%d" % row["ncalls"]
                 if row["ncalls"] == row["primitive_calls"]
                 else "%d/%d" % (row["ncalls"], row["primitive_calls"]))
        lines.append("  %8.3fs %8.3fs %10s  %s [%s]"
                     % (row["cumtime_s"], row["tottime_s"], calls,
                        row["function"], row["package"]))
    return lines


def run_profile(workload="fig8a_streaming", engine="fast", top=25,
                rounds=QUICK_ROUNDS, messages=QUICK_MESSAGES, seed=0):
    """CLI entry: profile, print the report, return the machine record."""
    record, stats = profile_workload(workload, engine, rounds=rounds,
                                     messages=messages, seed=seed)
    for line in report_lines(record, stats, top=top):
        print(line)
    return {
        "workload": record["workload"],
        "engine": record["engine"],
        "wall_s": record["wall_s"],
        "events": record["events"],
        "events_per_sec": record["events_per_sec"],
        "package_self_time_s": package_totals(stats),
        "top_functions": top_functions(stats, top=top),
    }
