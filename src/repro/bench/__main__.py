"""``python -m repro.bench`` — alias of the ``insane-bench`` CLI.

Examples::

    python -m repro.bench faults
    python -m repro.bench fig7 --profile cloud
"""

import sys

from repro.bench.cli import main

if __name__ == "__main__":
    sys.exit(main())
