"""Wall-clock performance harness for the simulation kernel.

Every figure in this reproduction funnels through :mod:`repro.simnet`, so
*wall-clock* throughput (events/sec) — not simulated time — bounds how many
messages, sinks, and sweeps a run can afford.  This module measures it on a
fixed suite of paper workloads and records the trajectory in
``BENCH_wallclock.json`` so perf regressions are visible PR over PR.

Each workload runs in two configurations:

``fast``
    The overhauled stack: tuple-heap engine with zero-delay lane
    (:class:`repro.simnet.Simulator`), inline-dispatch process
    trampolines, coalesced datapath charges, pending-checked polling.

``legacy``
    The full pre-overhaul stack: object-per-event engine
    (:class:`repro.simnet.legacy.LegacySimulator` with
    ``legacy_stack=True``), apply-dispatch trampolines, one Timeout per
    pipeline stage, unconditional polling passes.

The two configurations intentionally execute *different event streams*
(coalescing removes events and reorders rng draws), so their simulated
results are compared within a small tolerance here.  The bit-identical
determinism guarantee is separate and stricter: the fast engine versus the
legacy *engine* running the same fast stack must agree exactly — that is
asserted by the golden-trace tests in ``tests/simnet/test_determinism.py``
and is available here as ``run_workload(..., engine="legacy",
stack="fast")``.

Usage::

    python benchmarks/bench_wallclock.py            # reduced-message smoke
    python benchmarks/bench_wallclock.py --full     # paper-scale counts
"""

import hashlib
import json
import os
import platform
import time

from repro.bench.harness import InsaneBenchApp
from repro.hw import Testbed
from repro.hw.profiles import PROFILES
from repro.simnet import ChargeChain, Simulator
from repro.simnet.legacy import LegacySimulator

#: workload name -> (kind, kwargs) — fig5 ping-pong latency, fig8a
#: streaming throughput, fig8b 8-sink fan-out, exactly the shapes the
#: paper's evaluation leans on hardest.
SUITE = {
    "fig5_pingpong": {"kind": "pingpong", "size": 64},
    "fig8a_streaming": {"kind": "stream", "size": 1024, "sinks": 1},
    "fig8b_8sink": {"kind": "stream", "size": 1024, "sinks": 8},
}

ENGINES = {"fast": Simulator, "legacy": LegacySimulator}

#: smoke-mode iteration counts (CI); --full uses paper-scale counts.
QUICK_ROUNDS = 400
QUICK_MESSAGES = 3000
FULL_ROUNDS = 2000
FULL_MESSAGES = 20000

#: relative tolerance when comparing simulated results across the two
#: stacks (jitter draws interleave differently; medians barely move).
RESULT_RTOL = 0.05

#: repetitions per measurement in :func:`run_suite` — wall time is
#: best-of-N because scheduler noise only ever adds time, never removes it.
SUITE_REPS = 3

#: engine-churn microbenchmark: enough events to swamp setup noise, small
#: enough for a CI smoke run.
CHURN_EVENTS = 200_000
CHURN_DRIVERS = 16
CHURN_BURST = 64
CHURN_CANCEL_FRACTION = 0.25


def run_workload(name, engine="fast", stack=None, rounds=QUICK_ROUNDS,
                 messages=QUICK_MESSAGES, profile="local", seed=0, reps=1):
    """Run one suite workload on one engine/stack configuration.

    ``engine`` picks the event loop; ``stack`` picks the surrounding
    application-layer behaviour ("fast" or "legacy") and defaults to the
    engine name.  ``(engine="legacy", stack="fast")`` is the golden-trace
    configuration whose results must be bit-identical to the fast engine.
    ``reps`` repeats the whole run and keeps the fastest wall clock.
    """
    best = None
    for _ in range(max(1, reps)):
        record = _run_workload_once(name, engine, stack, rounds, messages,
                                    profile, seed)
        if best is None or record["wall_s"] < best["wall_s"]:
            best = record
    return best


def _run_workload_once(name, engine, stack, rounds, messages, profile, seed):
    spec = SUITE[name]
    stack = stack or engine
    sim = ENGINES[engine](seed=seed)
    if stack == "legacy":
        sim.legacy_stack = True
    testbed = Testbed(PROFILES[profile], hosts=2, seed=seed, sim=sim)
    app = InsaneBenchApp(testbed, "fast")
    wall_start = time.perf_counter()
    if spec["kind"] == "pingpong":
        tally = app.pingpong(rounds, spec["size"])
        result = {"median_rtt_ns": tally.median, "rounds": rounds}
    else:
        meters = app.stream(messages, spec["size"], sinks=spec["sinks"])
        result = {
            "per_sink_gbps": [meter.gbps() for meter in meters],
            "messages": messages,
        }
    wall_s = time.perf_counter() - wall_start
    stats = sim.stats()
    events = stats["events_executed"]
    return {
        "workload": name,
        "engine": engine,
        "stack": stack,
        "seed": seed,
        "wall_s": wall_s,
        "events": events,
        "events_per_sec": events / wall_s if wall_s > 0 else 0.0,
        "sim_ns": sim.now,
        "result": result,
        "sim_stats": stats,
        "failures": len(sim.failures),
    }


def _noop():
    pass


class _ChurnRecord:
    """An inert slotted stand-in for a packet inside a churn chain."""

    __slots__ = ("payload_len", "hits")

    def __init__(self):
        self.payload_len = 64
        self.hits = 0


class _ChurnHost:
    """The minimal host shape a chain caches (stage costs)."""

    __slots__ = ()

    @staticmethod
    def stage_cost(key, size, burst=1, jitter=True):
        return 0.0  # never reached: churn chains declare no stages


class _ChurnDp:
    """The minimal datapath shape :class:`ChargeChain` constructs from."""

    __slots__ = ("sim", "host")

    def __init__(self, sim):
        self.sim = sim
        self.host = _ChurnHost()


class _ChurnChain(ChargeChain):
    """A charge chain over inert records: pure per-step engine cost.

    ``stages`` is empty (no rng draws, zero-cost steps), so every step
    measures exactly the chain-execution machinery: the per-record action,
    the inline-next proof, and the ``now``/``_executed`` bookkeeping.
    """

    __slots__ = ()

    stages = ()

    def _act(self, record):
        record.hits += 1


class _ChurnDriver:
    """One self-rescheduling burst source.

    Each tick draws from the shared rng, occasionally spawns an
    immediately-cancelled decoy timer (the per-packet retransmission-timer
    pattern that lazy compaction exists for), then runs one
    :class:`_ChurnChain` over its record batch; the chain resumes the
    driver, which schedules the next tick a short random delay out (so
    chains from different drivers almost always run with an empty lane and
    the inline path engages, as in a real poll loop).
    """

    __slots__ = ("sim", "dp", "batch", "budget", "_random", "_schedule",
                 "_cancellable")

    def __init__(self, sim, dp, budget):
        self.sim = sim
        self.dp = dp
        self.batch = [_ChurnRecord() for _ in range(CHURN_BURST)]
        self.budget = budget
        self._random = sim.rng.random
        self._schedule = sim.schedule
        self._cancellable = sim.schedule_cancellable

    def tick(self, _=None):
        budget = self.budget
        if budget[0] <= 0:
            return
        budget[0] -= 1
        if self._random() < CHURN_CANCEL_FRACTION:
            self._cancellable(1e6 + self._random(), _noop).cancel()
        _ChurnChain(self.dp, self.batch).apply(self.sim, self)

    def resume(self, value=None, exc=None):
        """Chain completion callback (the driver plays the process role)."""
        if exc is not None:
            raise exc
        self._schedule(1.0 + self._random() * 100.0, self.tick, None)


def run_churn(engine="fast", events=CHURN_EVENTS, seed=0, reps=1):
    """Pure engine churn: the identical event stream on either engine.

    :data:`CHURN_DRIVERS` drivers each run :class:`_ChurnChain` bursts of
    :data:`CHURN_BURST` zero-cost steps over slotted records, plus timed
    rescheduling (heap churn) and immediately-cancelled decoy timers
    (compaction coverage).  No processes, stores, or application code
    runs, so this isolates the per-event cost of the batched hot path —
    the machinery the fig8a speedup dilutes with stack callback time (see
    the Amdahl decomposition in DESIGN.md).  Both engines execute the same
    stream — on the legacy engine every chain step is a normally-scheduled
    heap event, on the fast engine steps run inline when provably next —
    so event counts and final simulated time must match exactly (asserted
    by ``run_suite`` as ``identical_stream``).

    ``events`` is a budget: each tick accounts CHURN_BURST + 1 executed
    events (the tick plus its chain steps), and ticks stop once the budget
    is spent.
    """
    best = None
    for _ in range(max(1, reps)):
        record = _run_churn_once(engine, events, seed)
        if best is None or record["wall_s"] < best["wall_s"]:
            best = record
    return best


def _run_churn_once(engine, events, seed):
    sim = ENGINES[engine](seed=seed)
    dp = _ChurnDp(sim)
    ticks = max(events // (CHURN_BURST + 1), CHURN_DRIVERS)
    budget = [ticks]
    drivers = [_ChurnDriver(sim, dp, budget) for _ in range(CHURN_DRIVERS)]
    for driver in drivers:
        driver.tick()
    wall_start = time.perf_counter()
    sim.run()
    wall_s = time.perf_counter() - wall_start
    stats = sim.stats()
    executed = stats["events_executed"]
    return {
        "workload": "engine_churn",
        "engine": engine,
        "stack": engine,
        "seed": seed,
        "wall_s": wall_s,
        "events": executed,
        "events_per_sec": executed / wall_s if wall_s > 0 else 0.0,
        "sim_ns": sim.now,
        "result": {"events_requested": events, "ticks": ticks,
                   "burst": CHURN_BURST, "drivers": CHURN_DRIVERS},
        "sim_stats": stats,
        "failures": len(sim.failures),
    }


def _close(a, b, rtol=RESULT_RTOL):
    scale = max(abs(a), abs(b))
    return scale == 0 or abs(a - b) <= rtol * scale


def results_close(fast, legacy, rtol=RESULT_RTOL):
    """Whether two runs' simulated outcomes agree within tolerance."""
    if fast["failures"] or legacy["failures"]:
        return False
    fr, lr = fast["result"], legacy["result"]
    if "median_rtt_ns" in fr:
        return _close(fr["median_rtt_ns"], lr["median_rtt_ns"], rtol)
    pairs = zip(fr["per_sink_gbps"], lr["per_sink_gbps"])
    return len(fr["per_sink_gbps"]) == len(lr["per_sink_gbps"]) and all(
        _close(f, l, rtol) for f, l in pairs
    )


def _speedups(entry, fast, legacy):
    entry["speedup_events_per_sec"] = (
        fast["events_per_sec"] / legacy["events_per_sec"]
        if legacy["events_per_sec"] else 0.0
    )
    entry["speedup_wall"] = (
        legacy["wall_s"] / fast["wall_s"] if fast["wall_s"] else 0.0
    )


def run_suite(full=False, seed=0, compare_legacy=True, reps=SUITE_REPS,
              workers=1):
    """Run the whole suite; returns the record written to the report.

    ``workers`` shards the (workload, engine) measurements across
    processes via ``bench.perf`` sweep cells — each worker owns whole
    cores, so per-measurement wall clocks stay meaningful.  Perf cells
    are never cached: wall time is the measurement.
    """
    rounds = FULL_ROUNDS if full else QUICK_ROUNDS
    messages = FULL_MESSAGES if full else QUICK_MESSAGES
    engines = ("fast", "legacy") if compare_legacy else ("fast",)
    measured = {}
    if workers > 1:
        from repro.parallel.cells import make_cell
        from repro.parallel.executor import SweepExecutor

        cells = [
            make_cell("bench.perf", workload=name, engine=engine,
                      rounds=rounds, messages=messages, seed=seed, reps=reps)
            for name in SUITE for engine in engines
        ]
        sweep = SweepExecutor(workers=workers).run(cells)
        for result in sweep.results:
            params = result.cell["params"]
            measured[(params["workload"], params["engine"])] = result.payload
    else:
        for name in SUITE:
            for engine in engines:
                measured[(name, engine)] = run_workload(
                    name, engine, rounds=rounds, messages=messages,
                    seed=seed, reps=reps,
                )
    suite = {}
    for name in SUITE:
        fast = measured[(name, "fast")]
        entry = {"fast": fast}
        if compare_legacy:
            legacy = measured[(name, "legacy")]
            entry["legacy"] = legacy
            _speedups(entry, fast, legacy)
            # sanity cross-check: the two stacks model the same system, so
            # their simulated outcomes must agree within jitter tolerance
            # (exact bit-identity across *engines* is asserted by the
            # golden-trace tests, on the same stack)
            entry["results_close"] = results_close(fast, legacy)
        suite[name] = entry
    # the engine-only microbenchmark: no stack code, identical event stream
    fast = run_churn("fast", seed=seed, reps=reps)
    entry = {"fast": fast}
    if compare_legacy:
        legacy = run_churn("legacy", seed=seed, reps=reps)
        entry["legacy"] = legacy
        _speedups(entry, fast, legacy)
        entry["identical_stream"] = (
            fast["events"] == legacy["events"]
            and fast["sim_ns"] == legacy["sim_ns"]
        )
    suite["engine_churn"] = entry
    return {
        "mode": "full" if full else "quick",
        "seed": seed,
        "rounds": rounds,
        "messages": messages,
        "reps": reps,
        "workers": workers,
        "suite": suite,
    }


def check_trajectory(path="BENCH_wallclock.json", workload="fig8a_streaming",
                     wall_factor=3.0, reps=SUITE_REPS):
    """The no-op-hook check: a tracing-off run vs the committed trajectory.

    Re-runs ``workload`` with the same parameters as the newest committed
    record and compares against its ``fast`` entry: the simulated outcome
    (event count, final sim time) must match **exactly** — the lifecycle
    hooks added for ``repro.obs`` are inert when no tracer is configured —
    and wall clock must stay within ``wall_factor`` (loose, so the check
    holds across machines; the trend lives in the appended history).

    Returns ``(ok, lines)``.
    """
    lines = []
    if not os.path.exists(path):
        return False, ["trajectory: no committed report at %s" % path]
    with open(path) as handle:
        runs = json.load(handle)
    if not isinstance(runs, list):
        runs = [runs]
    baseline_run = next(
        (run for run in reversed(runs) if workload in run.get("suite", {})),
        None,
    )
    if baseline_run is None:
        return False, ["trajectory: no committed %s record" % workload]
    baseline = baseline_run["suite"][workload]["fast"]
    current = run_workload(
        workload, "fast",
        rounds=baseline_run.get("rounds", QUICK_ROUNDS),
        messages=baseline_run.get("messages", QUICK_MESSAGES),
        seed=baseline_run.get("seed", 0),
        reps=reps,
    )
    ok = True
    if current["events"] != baseline["events"]:
        ok = False
        lines.append(
            "trajectory: %s executed %d events, committed record has %d "
            "(tracing-off hooks must not change the simulation)"
            % (workload, current["events"], baseline["events"])
        )
    if current["sim_ns"] != baseline["sim_ns"]:
        ok = False
        lines.append(
            "trajectory: %s ended at sim_ns=%r, committed record has %r"
            % (workload, current["sim_ns"], baseline["sim_ns"])
        )
    ratio = (current["wall_s"] / baseline["wall_s"]
             if baseline["wall_s"] > 0 else float("inf"))
    if ratio > wall_factor:
        ok = False
        lines.append(
            "trajectory: %s wall %.3fs is %.2fx the committed %.3fs "
            "(allowed factor %.1f)"
            % (workload, current["wall_s"], ratio, baseline["wall_s"],
               wall_factor)
        )
    lines.append(
        "trajectory: %s events=%d (committed %d), wall %.3fs vs %.3fs "
        "(%.2fx) -> %s"
        % (workload, current["events"], baseline["events"],
           current["wall_s"], baseline["wall_s"], ratio,
           "OK" if ok else "FAIL")
    )
    return ok, lines


#: the perf ratchet fails when a fast-engine churn run falls below this
#: fraction of the newest committed events/sec — generous on purpose: CI
#: runners are shared and slow relative to the machines that append
#: BENCH_wallclock.json entries, so the ratchet catches "the batched hot
#: path stopped engaging" (a many-x cliff), not percent-level drift.
RATCHET_FLOOR_FRACTION = 0.25

#: set (to anything non-empty) to skip the ratchet, e.g. on a machine
#: known to be much slower than the committed baseline's host
RATCHET_SKIP_ENV = "INSANE_PERF_RATCHET_SKIP"


def check_ratchet(path="BENCH_wallclock.json",
                  floor_fraction=RATCHET_FLOOR_FRACTION, reps=SUITE_REPS):
    """The perf ratchet: fast-engine churn vs the committed trajectory.

    Reruns the ``engine_churn`` microbenchmark on the fast engine and
    fails when its events/sec lands below ``floor_fraction`` of the newest
    committed record's.  Setting :data:`RATCHET_SKIP_ENV` in the
    environment skips the check (returns ok with a note).

    Returns ``(ok, lines)``.
    """
    if os.environ.get(RATCHET_SKIP_ENV):
        return True, ["ratchet: skipped (%s is set)" % RATCHET_SKIP_ENV]
    if not os.path.exists(path):
        return False, ["ratchet: no committed report at %s" % path]
    with open(path) as handle:
        runs = json.load(handle)
    if not isinstance(runs, list):
        runs = [runs]
    baseline_run = next(
        (run for run in reversed(runs)
         if "engine_churn" in run.get("suite", {})),
        None,
    )
    if baseline_run is None:
        return False, ["ratchet: no committed engine_churn record"]
    committed = baseline_run["suite"]["engine_churn"]["fast"]["events_per_sec"]
    floor = committed * floor_fraction
    current = run_churn("fast", seed=baseline_run.get("seed", 0), reps=reps)
    ok = current["events_per_sec"] >= floor
    lines = [
        "ratchet: engine_churn fast %.3f Mev/s vs committed %.3f Mev/s "
        "(floor %.3f = %.0f%%) -> %s"
        % (current["events_per_sec"] / 1e6, committed / 1e6, floor / 1e6,
           floor_fraction * 100, "OK" if ok else "FAIL")
    ]
    if not ok:
        lines.append(
            "ratchet: the batched hot path is likely not engaging — "
            "profile with 'insane-bench profile --workload engine_churn' "
            "(or set %s on a known-slow machine)" % RATCHET_SKIP_ENV
        )
    return ok, lines


def record_digest(record):
    """sha256 over the *measurement* fields of one run record.

    The ``meta`` block (wall-clock timestamp, host identity) is excluded:
    two same-seed runs of the same code produce the same digest, so
    record-level comparisons and git diffs are not churned by when or
    where a run happened.
    """
    stripped = {k: v for k, v in record.items() if k != "meta"}
    text = json.dumps(stripped, sort_keys=True, separators=(",", ":"),
                      default=repr)
    return hashlib.sha256(text.encode()).hexdigest()


def write_report(record, path="BENCH_wallclock.json"):
    """Append ``record`` to the perf-trajectory report, atomically.

    The file holds a list of run records (newest last) so every PR extends
    the recorded trajectory instead of erasing it.  The write goes through
    a ``.tmp`` sibling + ``os.replace`` so a crashed run never corrupts
    history.

    Wall-clock and host facts go into a separate ``meta`` block —
    :func:`record_digest` and the ``--trajectory`` check compare
    measurement fields only, so re-running the bench never churns a
    digest (or a git diff) merely because time passed.
    """
    record = dict(record)
    meta = dict(record.get("meta") or {})
    meta.setdefault("unix_time", time.time())
    meta.setdefault("host", platform.node())
    meta.setdefault("python", platform.python_version())
    record["meta"] = meta
    runs = []
    if os.path.exists(path):
        with open(path) as handle:
            try:
                runs = json.load(handle)
            except ValueError:
                runs = []
        if not isinstance(runs, list):
            runs = [runs]
    runs.append(record)
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        json.dump(runs, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return record


def summary_lines(record):
    """Human-readable table of one run record."""
    lines = [
        "%-18s %10s %12s %12s %9s %9s" % (
            "workload", "config", "wall (s)", "events", "Mev/s", "speedup"
        )
    ]
    for name, entry in record["suite"].items():
        for engine in ("fast", "legacy"):
            if engine not in entry:
                continue
            row = entry[engine]
            speedup = ""
            if engine == "fast" and "speedup_events_per_sec" in entry:
                speedup = "%.2fx" % entry["speedup_events_per_sec"]
            lines.append("%-18s %10s %12.3f %12d %9.3f %9s" % (
                name, engine, row["wall_s"], row["events"],
                row["events_per_sec"] / 1e6, speedup,
            ))
        if "results_close" in entry:
            lines.append("%-18s %10s results_close=%s" % (
                "", "", entry["results_close"]))
        if "identical_stream" in entry:
            lines.append("%-18s %10s identical_stream=%s" % (
                "", "", entry["identical_stream"]))
    return lines
