"""The million-subscriber fan-out benchmark (``insane bench fanout``).

Runs one publisher against a very large subscriber population on the
hybrid-fidelity engine (:mod:`repro.fluid`): a small hot fraction stays
packet-accurate while the cold tail rides a fluid rate-envelope
aggregate, so the full run costs minutes of wall clock, not days.  The
run is paired with the fluid-vs-DES differential
(:mod:`repro.validate.fanout`) on sampled small sub-scenarios, so the
emitted ``bench.fanout`` :class:`~repro.report.RunReport` carries its
own error bound: exact delivered counts, conserved wire frames, and the
measured p50/p99 deviation against the declared ε.
"""

import time

from repro.fluid import calibrate_envelope, run_hybrid_fanout
from repro.report import RunReport
from repro.validate.fanout import run_fanout_differential

DIFFERENTIAL_SUBSCRIBERS = (64, 256, 1024)


def run_fanout_bench(subscribers=1_000_000, messages=64, size=1024,
                     hot_fraction=1e-4, promote_threshold_hz=None,
                     epsilon=0.15, seed=0, profile="local", datapath=None,
                     differential=True,
                     diff_subscribers=DIFFERENTIAL_SUBSCRIBERS,
                     diff_messages=24):
    """Run the benchmark; returns ``(RunReport, metrics, diff)``."""
    start = time.perf_counter()
    envelope = calibrate_envelope(profile=profile, size=size,
                                  datapath=datapath, seed=seed + 7919)
    metrics = run_hybrid_fanout(
        subscribers, messages=messages, size=size,
        hot_fraction=hot_fraction,
        promote_threshold_hz=promote_threshold_hz,
        profile=profile, seed=seed, datapath=datapath, envelope=envelope)
    fanout_wall = time.perf_counter() - start
    diff = None
    if differential:
        diff = run_fanout_differential(
            subscribers=diff_subscribers, messages=diff_messages, size=size,
            hot_fraction=max(hot_fraction, 0.05), epsilon=epsilon,
            seed=seed, profile=profile, datapath=datapath,
            envelope=envelope)
    wall = time.perf_counter() - start
    report = RunReport(
        kind="bench.fanout",
        data={"fanout": metrics, "differential": diff},
        meta={"wall_s": round(wall, 3),
              "fanout_wall_s": round(fanout_wall, 3)},
    )
    return report, metrics, diff


def format_fanout(report):
    """Human-readable summary of a ``bench.fanout`` report."""
    metrics = report.data["fanout"]
    diff = report.data["differential"]
    latency = metrics["latency"]
    lines = [
        "fan-out: %d subscribers (%d hot, %d fluid), %d messages, "
        "%s mode" % (metrics["subscribers"], metrics["hot"],
                     metrics["cold"], metrics["emitted"], metrics["mode"]),
        "  delivered %d / %d (ratio %.6f)"
        % (metrics["delivered"], metrics["expected"],
           metrics["delivery_ratio"]),
        "  latency p50 %.1f us  p99 %.1f us  (count %d)"
        % (latency["p50_ns"] / 1000.0, latency["p99_ns"] / 1000.0,
           latency["count"]),
        "  goodput %.3f Gbps over a %.3f ms delivery window"
        % (metrics["goodput_gbps"], metrics["duration_ns"] / 1e6),
        "  wire: %d simulated + %d fluid-accounted tx frames"
        % (metrics["wire"]["tx_frames"], metrics["wire"]["fluid_tx_frames"]),
    ]
    if metrics["fluid"]:
        fluid = metrics["fluid"]
        lines.append(
            "  fluid tier: %s, %d drain ticks @ %.0f us, "
            "%d promoted / %d demoted"
            % (fluid["mode"], fluid["drain_ticks"],
               fluid["drain_interval_ns"] / 1000.0,
               fluid["promotions"], fluid["demotions"]))
    if diff is not None:
        lines.append(
            "  error bound (vs full DES, epsilon %.2f): delivered %s, "
            "wire %s, max p50 err %.2f%%, max p99 err %.2f%% => %s"
            % (diff["epsilon"],
               "exact" if diff["delivered_exact"] else "MISMATCH",
               "conserved" if diff["wire_conserved"] else "VIOLATED",
               100.0 * diff["max_p50_rel_err"],
               100.0 * diff["max_p99_rel_err"],
               "OK" if diff["ok"] else "FAILED"))
    lines.append("  wall %.2f s (fan-out run %.2f s)"
                 % (report.meta["wall_s"], report.meta["fanout_wall_s"]))
    return "\n".join(lines)
