"""City-scale generated-topology bench: one sweep row per partition count.

Each row runs the same generated city once — serially for
``partitions=1``, space-partitioned through :mod:`repro.dist` otherwise —
as one ``bench.city`` sweep cell, so sharding, result caching, and the
merged-digest determinism contract of
:class:`~repro.parallel.SweepExecutor` apply unchanged.

Because every row simulates the *same* city, the per-row record digest
must be bit-identical across partition counts; the bench enforces that
before reporting.  A divergence here is a synchronization bug, not a
statistic, so it raises instead of printing a quietly-wrong table.
"""

from repro.hw.generate import DATAPATH_STAGES, resolve_topology

CITY_CELL_KIND = "bench.city"

DEFAULT_PARTITIONS = (1, 2, 4)

#: accepted datapath spellings -> generator stage-table name (the obs
#: layer calls the kernel stack ``kernel_udp``; the generator ``udp``).
_DATAPATH_ALIASES = {"kernel_udp": "udp"}


def normalize_city_datapath(name):
    """Canonical generator datapath name; raises ``ValueError`` if unknown."""
    canonical = _DATAPATH_ALIASES.get(name, name)
    if canonical not in DATAPATH_STAGES:
        raise ValueError(
            "unknown datapath %r (choose from %s)"
            % (name, ", ".join(sorted(DATAPATH_STAGES) + ["kernel_udp"]))
        )
    return canonical


def city_topology(topology="smoke64", nodes=None):
    """The resolved city spec, optionally re-sized to ``nodes`` hosts.

    ``topology`` is a preset name or a spec dict; ``nodes`` overrides the
    host count (the preset keeps its region count, so the override must
    still satisfy ``regions <= hosts // 2``).  Validation errors surface
    as :class:`~repro.core.errors.TopologyError` immediately, before any
    cell is built.
    """
    spec = dict(resolve_topology(topology))
    if nodes is not None:
        spec["hosts"] = nodes
    return resolve_topology(spec)


def city_cells(topology="smoke64", partitions=DEFAULT_PARTITIONS,
               datapath="udp", nodes=None, seed=0):
    """The partition-count axis as sweep cells (one cell per count)."""
    from repro.parallel.cells import make_cell

    spec = city_topology(topology, nodes=nodes)
    # a plain preset rides along by name (smaller cells, and the payload
    # keeps the preset label); any override ships the resolved spec.
    if nodes is None and isinstance(topology, str):
        spec = topology
    datapath = normalize_city_datapath(datapath)
    return [
        make_cell(CITY_CELL_KIND, topology=spec, partitions=count,
                  datapath=datapath, seed=seed)
        for count in sorted(set(partitions))
    ]


def run_city_bench(topology="smoke64", partitions=DEFAULT_PARTITIONS,
                   datapath="udp", nodes=None, workers=1, cache=None,
                   seed=0):
    """Sweep partition counts over one generated city.

    Returns ``(report, sweep, rows)``: the ``bench.city``
    :class:`~repro.report.RunReport`, the raw
    :class:`~repro.parallel.SweepResult`, and the partition-ordered row
    payloads.  Raises ``RuntimeError`` if any partitioned row's record
    digest differs from the serial row's — the partitioning contract is a
    precondition of the numbers being comparable at all.
    """
    from repro.parallel import SweepExecutor

    cells = city_cells(topology, partitions=partitions, datapath=datapath,
                       nodes=nodes, seed=seed)
    sweep = SweepExecutor(workers=workers, cache=cache).run(cells)
    rows = sorted(sweep.payloads(), key=lambda row: row["partitions"])
    digests = sorted(set(row["digest"] for row in rows))
    if len(digests) > 1:
        raise RuntimeError(
            "partitioned record digests diverged across partition counts "
            "%s: %s — conservative sync is broken, refusing to report"
            % ([row["partitions"] for row in rows],
               ", ".join(digest[:16] for digest in digests))
        )
    report = sweep.to_report(
        kind=CITY_CELL_KIND,
        topology=(topology if isinstance(topology, str) else "custom"),
        datapath=normalize_city_datapath(datapath),
        seed=seed,
    )
    return report, sweep, rows


def format_city(rows):
    """Human-readable partition-count table for one city sweep."""
    if not rows:
        return "city: empty sweep"
    head = rows[0]
    lines = [
        "city: topology=%s hosts=%d regions=%d datapath=%s"
        % (head["topology"], head["hosts"], head["regions"],
           head["datapath"]),
        "  %10s %9s %9s %7s %10s %10s %10s"
        % ("partitions", "transport", "delivered", "ratio", "p50 (us)",
           "p99 (us)", "rpc p99"),
    ]
    for row in rows:
        latency = row["latency"]
        rpc = row["rpc_rtt"]
        lines.append(
            "  %10d %9s %9d %7.4f %10.2f %10.2f %10.2f"
            % (row["partitions"], row["transport"], row["delivered"],
               row["delivery_ratio"], latency["p50_ns"] / 1000.0,
               latency["p99_ns"] / 1000.0, rpc["p99_ns"] / 1000.0)
        )
    lines.append("  records digest %s (identical at every partition count)"
                 % head["digest"][:16])
    return "\n".join(lines)
