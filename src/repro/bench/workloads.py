"""Workload generators: arrival processes for benchmark senders.

The paper's benchmarks use closed-loop (ping-pong) and open-loop
(full-speed flood) workloads; real edge traffic sits between those
extremes.  These generators produce inter-arrival gaps for paced senders —
constant rate (sensor loops), Poisson (aggregated telemetry), and on/off
bursts (cameras, batch uploads) — and a driver that pushes any of them
through an INSANE source.
"""


class ConstantRate:
    """Fixed inter-arrival gap (a control loop or sensor at ``hz``)."""

    def __init__(self, interval_ns):
        if interval_ns <= 0:
            raise ValueError("interval must be positive")
        self.interval_ns = interval_ns

    @classmethod
    def hz(cls, rate_hz):
        return cls(1e9 / rate_hz)

    def gaps(self, rng):
        while True:
            yield self.interval_ns


class PoissonArrivals:
    """Exponential inter-arrival gaps with the given mean rate."""

    def __init__(self, rate_per_s):
        if rate_per_s <= 0:
            raise ValueError("rate must be positive")
        self.rate_per_s = rate_per_s

    def gaps(self, rng):
        mean_ns = 1e9 / self.rate_per_s
        while True:
            yield rng.expovariate(1.0) * mean_ns


class OnOffBurst:
    """Alternating burst/idle phases; bursts send at ``burst_interval_ns``.

    Models a camera shipping a frame's fragments then idling, or periodic
    batch uploads — the traffic shape that stresses schedulers hardest.
    """

    def __init__(self, on_ns, off_ns, burst_interval_ns):
        if min(on_ns, off_ns, burst_interval_ns) <= 0:
            raise ValueError("all durations must be positive")
        self.on_ns = on_ns
        self.off_ns = off_ns
        self.burst_interval_ns = burst_interval_ns

    def gaps(self, rng):
        while True:
            elapsed = 0.0
            while elapsed < self.on_ns:
                yield self.burst_interval_ns
                elapsed += self.burst_interval_ns
            yield self.off_ns


def drive_source(session, source, size, workload, count, on_emit=None):
    """Emit ``count`` messages paced by ``workload`` (generator).

    ``on_emit(emit_ns)`` is called after each emission — benchmarks use it
    to record send timestamps.
    """
    from repro.simnet import Timeout

    rng = session.sim.rng
    gaps = workload.gaps(rng)
    for _ in range(count):
        buffer = yield from session.get_buffer_wait(source, size)
        yield from session.emit_data(source, buffer, length=size)
        if on_emit is not None:
            on_emit(session.sim.now)
        yield Timeout(next(gaps))
