"""Raw image sizes of the streaming benchmark (paper Table 4).

The paper streams raw RGB images (3 bytes per pixel); the resolutions
below reproduce Table 4's sizes exactly.
"""

from collections import OrderedDict

#: resolution name -> (width, height); 3 B/pixel RGB.
RESOLUTIONS = OrderedDict(
    [
        ("HD", (1280, 720)),        # 2.76 MB
        ("FullHD", (1920, 1080)),   # 6.22 MB
        ("2K", (2560, 1512)),       # 11.61 MB
        ("4K", (3840, 2160)),       # 24.88 MB
        ("8K", (7680, 4320)),       # 99.53 MB
    ]
)

BYTES_PER_PIXEL = 3


def image_size_bytes(resolution):
    """Raw RGB frame size in bytes for a named resolution."""
    try:
        width, height = RESOLUTIONS[resolution]
    except KeyError:
        raise KeyError(
            "unknown resolution %r (choose from %s)" % (resolution, list(RESOLUTIONS))
        )
    return width * height * BYTES_PER_PIXEL


def table4_rows():
    """The rows of the paper's Table 4 (sizes in MB)."""
    return [
        {
            "resolution": name,
            "width": dims[0],
            "height": dims[1],
            "size_mb": round(dims[0] * dims[1] * BYTES_PER_PIXEL / 1e6, 2),
        }
        for name, dims in RESOLUTIONS.items()
    ]
