"""Lines-of-code accounting for the paper's Table 3.

The paper counts the LoC of the same benchmarking application written three
times: against the INSANE API (189), against UDP sockets (227, +20 %), and
against native DPDK (384, +103 %).  This module counts the LoC of the three
runnable equivalents in ``examples/loc_apps/`` the same way the paper's C
count works: non-blank, non-comment source lines.
"""

import os

#: Paper Table 3 reference values.
PAPER_LOC = {"insane": 189, "udp": 227, "dpdk": 384}

LOC_APP_FILES = {
    "insane": "app_insane.py",
    "udp": "app_udp.py",
    "dpdk": "app_dpdk.py",
}


def count_loc(path):
    """Non-blank, non-comment lines (docstrings count as comments)."""
    lines = 0
    in_docstring = False
    delimiter = None
    with open(path) as handle:
        for raw in handle:
            stripped = raw.strip()
            if in_docstring:
                if delimiter in stripped:
                    in_docstring = False
                continue
            if not stripped or stripped.startswith("#"):
                continue
            if stripped.startswith(('"""', "'''")):
                delimiter = stripped[:3]
                # one-line docstring?
                if not (stripped.count(delimiter) >= 2 and len(stripped) > 3):
                    in_docstring = True
                continue
            lines += 1
    return lines


def default_examples_dir():
    here = os.path.dirname(os.path.abspath(__file__))
    repo_root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    return os.path.join(repo_root, "examples", "loc_apps")


def table3_rows(examples_dir=None):
    """Measure our three implementations and relate them as Table 3 does."""
    examples_dir = examples_dir or default_examples_dir()
    measured = {
        name: count_loc(os.path.join(examples_dir, filename))
        for name, filename in LOC_APP_FILES.items()
    }
    base = measured["insane"]
    rows = []
    for name in ("insane", "udp", "dpdk"):
        increase = "-" if name == "insane" else "+%d%%" % round(
            100.0 * (measured[name] - base) / base
        )
        paper_increase = "-" if name == "insane" else "+%d%%" % round(
            100.0 * (PAPER_LOC[name] - PAPER_LOC["insane"]) / PAPER_LOC["insane"]
        )
        rows.append(
            {
                "interface": name,
                "loc": measured[name],
                "increase": increase,
                "paper_loc": PAPER_LOC[name],
                "paper_increase": paper_increase,
            }
        )
    return rows
