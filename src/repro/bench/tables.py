"""Plain-text table/series formatting for benchmark output."""


def format_table(headers, rows, title=None):
    """Render an aligned ASCII table.

    ``rows`` is a list of sequences; cells are str()-ed.  Floats are
    formatted with two decimals.
    """
    def render(cell):
        if isinstance(cell, float):
            return "%.2f" % cell
        return str(cell)

    rendered = [[render(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_comparison(title, headers, rows, paper_column=None):
    """A table with an optional note pointing at the paper reference column."""
    table = format_table(headers, rows, title=title)
    if paper_column:
        table += "\n(%s column: value reported in the paper)" % paper_column
    return table
