"""Machine-readable result reporting (JSON) for the benchmark CLI.

Since the :class:`repro.report.RunReport` unification, each ``--json``
invocation appends one ``bench.run`` report document: the experiments
(and the profile/seed that produced them) live in the digest-compared
``data`` block, kernel diagnostics (``sim_stats``) in the non-compared
``meta`` block.  The file stays a plain JSON list, so successive
invocations (e.g. local then cloud) accumulate rather than overwrite.
"""

from repro.report import RunReport, write_reports
from repro.simnet import Tally


def _jsonable(value):
    """Convert experiment results into JSON-encodable structures."""
    if isinstance(value, Tally):
        return value.summary()
    if isinstance(value, dict):
        return {_key(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return repr(value)


def _key(key):
    """JSON object keys must be strings; tuples become '/'-joined."""
    if isinstance(key, tuple):
        return "/".join(str(part) for part in key)
    return str(key)


def bench_report(results_by_experiment, profile="local", seed=0,
                 sim_stats=None):
    """Fold one bench invocation into a ``bench.run`` RunReport.

    ``data`` (digest-compared) carries profile, seed and the experiment
    results — a pure function of the run's inputs.  Kernel counters —
    events executed, peak heap, purged timers — go in ``meta`` as
    diagnostics: they tell a perf regression apart from a workload change
    without ever moving the digest.
    """
    meta = {}
    if sim_stats is not None:
        meta["sim_stats"] = _jsonable(sim_stats)
    return RunReport(
        kind="bench.run",
        data={
            "profile": profile,
            "seed": seed,
            "experiments": {
                name: _jsonable(results)
                for name, results in results_by_experiment.items()
            },
        },
        meta=meta,
    )


def write_json_report(path, results_by_experiment, profile="local", seed=0,
                      sim_stats=None):
    """Append one run's ``bench.run`` report document to a JSON file.

    Pass a :meth:`repro.simnet.Simulator.stats` dict (or a mapping of
    them) as ``sim_stats`` to record kernel counters alongside the
    results.  Returns the :class:`~repro.report.RunReport` written.
    """
    report = bench_report(results_by_experiment, profile=profile, seed=seed,
                          sim_stats=sim_stats)
    write_reports(path, [report])
    return report
