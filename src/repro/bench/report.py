"""Machine-readable result reporting (JSON) for the benchmark CLI."""

import json
import os

from repro.simnet import Tally


def _jsonable(value):
    """Convert experiment results into JSON-encodable structures."""
    if isinstance(value, Tally):
        return value.summary()
    if isinstance(value, dict):
        return {_key(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return repr(value)


def _key(key):
    """JSON object keys must be strings; tuples become '/'-joined."""
    if isinstance(key, tuple):
        return "/".join(str(part) for part in key)
    return str(key)


def write_json_report(path, results_by_experiment, profile="local", seed=0,
                      sim_stats=None):
    """Append one run's results to a JSON report file.

    The file holds a list of run records, so successive invocations (e.g.
    local then cloud) accumulate rather than overwrite.  Pass a
    :meth:`repro.simnet.Simulator.stats` dict (or a mapping of them) as
    ``sim_stats`` to record kernel counters — events executed, peak heap,
    purged timers — alongside the results, so a perf regression can be told
    apart from a workload change when trajectories diverge.
    """
    record = {
        "profile": profile,
        "seed": seed,
        "experiments": {
            name: _jsonable(results)
            for name, results in results_by_experiment.items()
        },
    }
    if sim_stats is not None:
        record["sim_stats"] = _jsonable(sim_stats)
    runs = []
    if os.path.exists(path):
        with open(path) as handle:
            try:
                runs = json.load(handle)
            except ValueError:
                runs = []
        if not isinstance(runs, list):
            runs = [runs]
    runs.append(record)
    with open(path, "w") as handle:
        json.dump(runs, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return record
