"""The ``insane-bench`` command line: regenerate any paper table or figure.

Examples::

    insane-bench fig7 --profile cloud
    insane-bench fig8a --full
    insane-bench all --quick
"""

import argparse
import sys

from repro.bench import runner
from repro.bench.ablations import (
    run_ablation_batching,
    run_ablation_qos,
    run_ablation_rx_threads,
    run_ablation_threads,
    run_ablation_tsn,
)
from repro.bench.faults import run_faults
from repro.cli.common import add_execution_options, make_cache

EXPERIMENTS = {
    "table1": lambda args: runner.run_table1(),
    "table3": lambda args: runner.run_table3(),
    "table4": lambda args: runner.run_table4(),
    "fig5": lambda args: runner.run_fig5(
        profile=args.profile, rounds=args.rounds, seed=args.seed,
        workers=args.workers, cache=args.cache,
    ),
    "fig6": lambda args: runner.run_fig6(rounds=args.rounds, seed=args.seed),
    "fig7": lambda args: runner.run_fig7(
        profile=args.profile, rounds=args.rounds, seed=args.seed,
        workers=args.workers, cache=args.cache,
    ),
    "fig8a": lambda args: runner.run_fig8a(
        messages=args.messages, seed=args.seed,
        workers=args.workers, cache=args.cache,
    ),
    "fig8b": lambda args: runner.run_fig8b(
        messages=args.messages, seed=args.seed,
        workers=args.workers, cache=args.cache,
    ),
    "fig9a": lambda args: runner.run_fig9a(rounds=args.rounds, seed=args.seed),
    "fig9b": lambda args: runner.run_fig9b(messages=args.messages, seed=args.seed),
    "fig11": lambda args: runner.run_fig11(quick=args.quick, seed=args.seed),
    "ablation-tsn": lambda args: run_ablation_tsn(seed=args.seed),
    "ablation-threads": lambda args: run_ablation_threads(seed=args.seed),
    "ablation-batching": lambda args: run_ablation_batching(
        messages=args.messages, seed=args.seed
    ),
    "ablation-qos": lambda args: run_ablation_qos(seed=args.seed),
    "ablation-rx-threads": lambda args: run_ablation_rx_threads(
        messages=args.messages, seed=args.seed
    ),
    "faults": lambda args: run_faults(
        seed=args.seed, messages=args.messages,
        workers=args.workers, cache=args.cache,
    ),
    "validate": lambda args: run_validate(seed=args.seed, quick=args.quick),
    "breakdown": lambda args: run_breakdown_cmd(args),
    "profile": lambda args: run_profile_cmd(args),
    "capacity": lambda args: run_capacity_cmd(args),
    "city": lambda args: run_city_cmd(args),
    "fanout": lambda args: run_fanout_cmd(args),
}

#: meta-tools excluded from ``insane-bench all`` (they measure the harness
#: or plan capacity/scale, not the paper)
NOT_IN_ALL = ("profile", "capacity", "city", "fanout")


def run_fanout_cmd(args):
    """Million-subscriber hybrid fan-out; see :mod:`repro.bench.fanout`.

    Runs the hybrid-fidelity fan-out (hot packet-accurate cohort + fluid
    cold tail) and, unless ``--no-differential``, the fluid-vs-DES
    differential on sampled sub-scenarios so the printed result and the
    ``bench.fanout`` RunReport carry the measured error bound.
    """
    from repro.bench.fanout import format_fanout, run_fanout_bench

    if args.subscribers < 1:
        raise SystemExit("fanout: --subscribers must be >= 1")
    if not 0.0 <= args.hot_fraction <= 1.0:
        raise SystemExit("fanout: --hot-fraction must be in [0, 1]")
    datapath = None if args.datapath == "kernel_udp" else args.datapath
    report, metrics, diff = run_fanout_bench(
        subscribers=args.subscribers,
        messages=args.fanout_messages,
        hot_fraction=args.hot_fraction,
        promote_threshold_hz=args.promote_threshold,
        epsilon=args.error_bound,
        seed=args.seed, profile=args.profile, datapath=datapath,
        differential=not args.no_differential,
    )
    print(format_fanout(report))
    print("  report digest %s" % report.digest())
    if args.report:
        from repro.report import write_reports

        write_reports(args.report, [report])
        print("  fanout report written to %s" % args.report)
    if diff is not None and not diff["ok"]:
        raise SystemExit("fanout: fluid tier exceeded the declared error "
                         "bound (epsilon %.2f)" % diff["epsilon"])
    return report.to_dict()


def run_profile_cmd(args):
    """cProfile one perf workload; see :mod:`repro.bench.profiling`."""
    from repro.bench.perfbench import QUICK_MESSAGES, QUICK_ROUNDS
    from repro.bench.profiling import PROFILE_WORKLOADS, run_profile

    workload = args.workload or "fig8a_streaming"
    if workload not in PROFILE_WORKLOADS:
        raise SystemExit("profile: unknown workload %r (choose from %s)"
                         % (workload, ", ".join(PROFILE_WORKLOADS)))
    return run_profile(
        workload,
        engine=args.engine,
        top=args.top,
        rounds=args.rounds if args.rounds is not None else QUICK_ROUNDS,
        messages=(args.messages if args.messages is not None
                  else QUICK_MESSAGES),
        seed=args.seed,
    )


def _parse_clients(text):
    """``--clients`` CSV -> sorted tuple of positive ints, loudly."""
    try:
        counts = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise SystemExit("capacity: --clients must be a comma-separated "
                         "list of integers, got %r" % (text,))
    if not counts or any(count < 1 for count in counts):
        raise SystemExit("capacity: --clients needs at least one positive "
                         "client count, got %r" % (text,))
    return counts


def run_capacity_cmd(args):
    """Closed-loop capacity sweep; see :mod:`repro.loadgen.capacity`.

    Runs the client-count grid on one pinned datapath through the sweep
    executor, prints the per-N table with the latency-throughput knee and
    the fitted capacity model, and (with ``--report``) writes the
    standalone ``bench.capacity`` :class:`~repro.report.RunReport`.
    """
    from repro.loadgen.capacity import format_capacity, run_capacity

    clients = (_parse_clients(args.clients) if args.clients
               else None)
    try:
        report, _ = run_capacity(
            args.datapath,
            **({"clients": clients} if clients else {}),
            profile=args.profile, workers=args.workers, cache=args.cache,
            seed=args.seed, think_ns=args.think * 1000.0,
            think_dist=args.think_dist, epsilon=args.epsilon,
            outstanding=args.outstanding,
        )
    except ValueError as exc:
        raise SystemExit("capacity: %s" % exc)
    print(format_capacity(report))
    print("  report digest %s" % report.digest())
    if args.report:
        from repro.report import write_reports

        write_reports(args.report, [report])
        print("  capacity report written to %s" % args.report)
    return report.to_dict()


def _parse_partitions(text):
    """``--partitions`` CSV -> sorted tuple of positive ints, loudly."""
    try:
        counts = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise SystemExit("city: --partitions must be a comma-separated "
                         "list of integers, got %r" % (text,))
    if not counts or any(count < 1 for count in counts):
        raise SystemExit("city: --partitions needs at least one positive "
                         "partition count, got %r" % (text,))
    return counts


def run_city_cmd(args):
    """City-scale generated-topology sweep; see :mod:`repro.bench.city`.

    Runs one generated city at each requested partition count through the
    sweep executor, prints the partition table (digests must be
    bit-identical across counts or the bench refuses to report), and
    (with ``--report``) writes the ``bench.city``
    :class:`~repro.report.RunReport`.
    """
    from repro.bench.city import format_city, run_city_bench
    from repro.core.errors import TopologyError

    partitions = (_parse_partitions(args.partitions)
                  if args.partitions else (1, 2, 4))
    try:
        report, _sweep, rows = run_city_bench(
            args.topology, partitions=partitions, datapath=args.datapath,
            nodes=args.nodes, workers=args.workers, cache=args.cache,
            seed=args.seed,
        )
    except (TopologyError, ValueError) as exc:
        raise SystemExit("city: %s" % exc)
    print(format_city(rows))
    print("  report digest %s" % report.digest())
    if args.report:
        from repro.report import write_reports

        write_reports(args.report, [report])
        print("  city report written to %s" % args.report)
    return {row["partitions"]: row for row in rows}


def run_breakdown_cmd(args):
    """Latency breakdown; with ``--trace``, per-datapath lifecycle spans.

    The plain form reproduces the Fig. 6 component split for the default
    mapping.  ``--trace`` instead pins each datapath in turn, collects
    span-based lifecycle traces, prints the per-stage critical-path table,
    and (with ``--trace-out``) writes a Chrome-trace JSON loadable in
    ``chrome://tracing`` or Perfetto.
    """
    from repro.bench.breakdown import (
        print_traced_breakdown,
        run_breakdown,
        run_traced_breakdown,
    )

    rounds = min(args.rounds, 500) if args.rounds else 300
    if not args.trace:
        breakdown = run_breakdown(profile=args.profile, messages=rounds, seed=args.seed)
        for component, mean_us in breakdown.items():
            print("  %-16s %8.2f us" % (component, mean_us))
        print("  %-16s %8.2f us" % ("total", sum(breakdown.values())))
        return breakdown
    tracers = run_traced_breakdown(
        profile=args.profile, messages=rounds, seed=args.seed
    )
    report = print_traced_breakdown(tracers)
    if args.trace_out:
        from repro.obs import write_chrome_trace

        write_chrome_trace(args.trace_out, tracers)
        print("Chrome trace written to %s (load in Perfetto / chrome://tracing)"
              % args.trace_out)
    return report


def run_validate(seed=0, quick=True):
    """Differential oracle + golden-corpus check, bench-style.

    The full ``insane-validate`` CLI has more knobs; this entry point runs
    the two headline checks so ``insane-bench all`` also exercises the
    validation subsystem.
    """
    from repro.validate import check_corpus, run_differential

    n = 10 if quick else 50
    checked, divergences = run_differential(seed=seed, n=n)
    print("validate: differential oracle %d/%d workload(s), %d divergence(s)"
          % (checked, n, len(divergences)))
    for divergence in divergences:
        print(divergence.report())
    problems = check_corpus()
    print("validate: golden corpus %s"
          % ("holds" if not problems else "FAILED"))
    for problem in problems:
        print("  - %s" % problem)
    return {
        "differential_checked": checked,
        "divergences": [divergence.report() for divergence in divergences],
        "golden_problems": list(problems),
    }


def _chart_fig7(results, args):
    from repro.bench.charts import hbar_chart
    from repro.bench.harness import SYSTEMS
    from repro.bench.runner import PAPER_FIG7

    labels = list(SYSTEMS)
    values = [results[s].mean / 1000.0 for s in labels]
    reference = {
        s: v for s, v in PAPER_FIG7[args.profile].items() if v is not None
    }
    return hbar_chart(
        "Fig. 7 (%s): average RTT, 64B (us)" % args.profile,
        labels, values, unit=" us", reference=reference,
    )


def _chart_fig8a(results, args):
    from repro.bench.charts import grouped_series_chart
    from repro.bench.runner import FIG8A_SIZES, FIG8A_SYSTEMS

    series = {
        system: [results[(system, size)] for size in FIG8A_SIZES]
        for system in FIG8A_SYSTEMS
    }
    return grouped_series_chart(
        "Fig. 8a: goodput vs payload (Gbps)",
        ["%dB" % size for size in FIG8A_SIZES],
        series, unit=" Gbps",
    )


def _chart_fig8b(results, args):
    from repro.bench.charts import hbar_chart
    from repro.bench.runner import FIG8B_SINKS, PAPER_FIG8B

    labels = ["%d sinks" % s for s in FIG8B_SINKS]
    values = [results[s] for s in FIG8B_SINKS]
    reference = {
        "%d sinks" % s: v for s, v in PAPER_FIG8B.items()
    }
    return hbar_chart("Fig. 8b: per-sink goodput, 1KB (Gbps)",
                      labels, values, unit=" Gbps", reference=reference)


def _chart_fig9a(results, args):
    from repro.bench.charts import grouped_series_chart
    from repro.bench.mom import MOM_SYSTEMS
    from repro.bench.runner import FIG9_SIZES

    series = {
        system: [results[(system, size)].mean / 1000.0 for size in FIG9_SIZES]
        for system in MOM_SYSTEMS
    }
    return grouped_series_chart(
        "Fig. 9a: MoM average RTT (us)",
        ["%dB" % size for size in FIG9_SIZES],
        series, unit=" us",
    )


def _chart_fig11(results, args):
    from repro.bench.charts import grouped_series_chart
    from repro.bench.images import RESOLUTIONS
    from repro.bench.streaming import STREAMING_SYSTEMS

    series = {
        system: [results[(system, res)][0] for res in RESOLUTIONS]
        for system in STREAMING_SYSTEMS
    }
    return grouped_series_chart(
        "Fig. 11a: streaming FPS", list(RESOLUTIONS), series, unit=" fps",
    )


CHART_RENDERERS = {
    "fig7": _chart_fig7,
    "fig8a": _chart_fig8a,
    "fig8b": _chart_fig8b,
    "fig9a": _chart_fig9a,
    "fig11": _chart_fig11,
}


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="insane-bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which experiment to run ('all' runs everything)",
    )
    parser.add_argument("--profile", choices=("local", "cloud"), default="local")
    parser.add_argument("--rounds", type=int, default=None,
                        help="ping-pong rounds per data point")
    parser.add_argument("--messages", type=int, default=None,
                        help="messages per throughput data point")
    add_execution_options(
        parser,
        workers_help="shard sweep cells across N worker processes "
                     "(fig5/fig7/fig8a/fig8b/faults; results are "
                     "bit-identical at any worker count)",
        json_help="append machine-readable results to a JSON file",
    )
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--quick", action="store_true",
                       help="small sample counts (default)")
    group.add_argument("--full", action="store_true",
                       help="larger sample counts (slower, tighter stats)")
    parser.add_argument("--chart", action="store_true",
                        help="also render terminal bar charts where available")
    parser.add_argument("--trace", action="store_true",
                        help="breakdown only: collect lifecycle spans per datapath")
    parser.add_argument("--trace-out", metavar="PATH", default=None,
                        help="breakdown --trace: write a Chrome-trace JSON here")
    parser.add_argument("--workload", metavar="NAME", default=None,
                        help="profile only: which perf workload to profile "
                             "(a bench_wallclock suite name or "
                             "'engine_churn'; default fig8a_streaming)")
    parser.add_argument("--engine", choices=("fast", "legacy"),
                        default="fast",
                        help="profile only: which engine to profile")
    parser.add_argument("--top", type=int, default=25, metavar="N",
                        help="profile only: functions in the cumulative-"
                             "time table")
    parser.add_argument("--datapath", metavar="NAME", default="kernel_udp",
                        help="capacity only: datapath to pin "
                             "(kernel_udp, xdp, dpdk, rdma)")
    parser.add_argument("--clients", metavar="N,N,...", default=None,
                        help="capacity only: comma-separated client counts "
                             "to sweep (default 1,2,4,8,16)")
    parser.add_argument("--think", type=float, default=10.0, metavar="US",
                        help="capacity only: mean client think time in "
                             "microseconds")
    parser.add_argument("--think-dist", choices=("fixed", "exponential"),
                        default="exponential",
                        help="capacity only: think-time distribution")
    parser.add_argument("--epsilon", type=float, default=0.05,
                        help="capacity only: interactive-law residual "
                             "bound per accepted window")
    parser.add_argument("--outstanding", type=int, default=1, metavar="W",
                        help="capacity only: per-client outstanding-"
                             "request window")
    parser.add_argument("--report", metavar="PATH", default=None,
                        help="capacity/city only: write the standalone "
                             "RunReport to this JSON file")
    parser.add_argument("--topology", metavar="NAME", default="smoke64",
                        help="city only: generated-topology preset "
                             "(smoke64, city256, metro1k)")
    parser.add_argument("--partitions", metavar="N,N,...", default=None,
                        help="city only: comma-separated partition counts "
                             "to sweep (default 1,2,4)")
    parser.add_argument("--nodes", type=int, default=None, metavar="N",
                        help="city only: override the preset's edge-host "
                             "count")
    parser.add_argument("--subscribers", type=int, default=1_000_000,
                        metavar="N",
                        help="fanout only: subscriber population size")
    parser.add_argument("--hot-fraction", type=float, default=1e-4,
                        metavar="F",
                        help="fanout only: fraction kept packet-accurate "
                             "(the rest rides the fluid tier)")
    parser.add_argument("--promote-threshold", type=float, default=None,
                        metavar="HZ",
                        help="fanout only: message rate above which cold "
                             "subscribers promote to packet-accurate DES")
    parser.add_argument("--error-bound", type=float, default=0.15,
                        metavar="EPS",
                        help="fanout only: declared relative p50/p99 error "
                             "bound for the DES-vs-hybrid differential")
    parser.add_argument("--no-differential", action="store_true",
                        help="fanout only: skip the DES-vs-hybrid "
                             "differential")
    args = parser.parse_args(argv)
    # fanout paces per the envelope, so its natural message count is far
    # below the throughput default; honor an explicit --messages only
    args.fanout_messages = args.messages if args.messages is not None else 64

    args.cache = make_cache(args)
    args.quick = not args.full
    if args.rounds is None:
        args.rounds = 2000 if args.full else 500
    if args.messages is None:
        args.messages = 50000 if args.full else 10000

    if args.experiment == "all":
        names = [n for n in sorted(EXPERIMENTS) if n not in NOT_IN_ALL]
    else:
        names = [args.experiment]
    collected = {}
    for name in names:
        print()
        results = EXPERIMENTS[name](args)
        collected[name] = results
        if args.chart and name in CHART_RENDERERS:
            print()
            print(CHART_RENDERERS[name](results, args))
        print()
    if args.json:
        from repro.bench.report import write_json_report

        write_json_report(args.json, collected, profile=args.profile, seed=args.seed)
        print("JSON results appended to %s" % args.json)
    return 0


if __name__ == "__main__":
    sys.exit(main())
