"""The kernel UDP/IP datapath (AF_INET sockets).

Packets destined to unsteered ports land in the NIC's default ring, where a
per-host *kernel receive process* (IRQ + softirq context) runs protocol
processing and demultiplexes datagrams into per-socket buffers.
Applications then pay the receive-side syscall cost plus either a
busy-polling detection delay (non-blocking sockets) or a scheduler wake-up
(blocking sockets) — the gap the paper's Fig. 7 measures.
"""

from repro.datapaths.base import Datapath, DatapathInfo
from repro.simnet import Counter, Get, Store, Timeout
from repro.simnet.burst import KernelRxChain, TxChain


class KernelUdpDatapath(Datapath):
    """One per host; lazily started with the first socket."""

    info = DatapathInfo(
        name="udp",
        kernel_integration="in-kernel",
        api="AF_INET socket",
        zero_copy=False,
        cpu_consumption="per-packet",
        dedicated_hardware=False,
    )

    tx_done_key = "udp_tx_done"
    rx_done_key = "kernel_rx_done"

    _instances = {}

    def __init__(self, host):
        super().__init__(host)
        self._sockets = {}
        self.rx_burst = int(self.profile.scalar("udp_rx_burst"))
        self.no_socket_drops = Counter(host.name + ".udp.no_socket_drops")
        self.socket_overflow_drops = Counter(host.name + ".udp.sockbuf_drops")
        self._rx_process = self.sim.process(self._kernel_rx_loop(), name=host.name + ".softirq")

    @classmethod
    def get(cls, host):
        """The per-host singleton (the kernel exists once per machine)."""
        instance = cls._instances.get(id(host))
        if instance is None or instance.host is not host:
            instance = cls(host)
            cls._instances[id(host)] = instance
        return instance

    def socket(self, port, blocking=False):
        """Open a UDP socket bound to ``port``."""
        if port in self._sockets:
            raise ValueError("port %d already bound on %s" % (port, self.host.name))
        socket = UdpSocket(self, port, blocking)
        self._sockets[port] = socket
        return socket

    def _close_socket(self, port):
        self._sockets.pop(port, None)

    def _kernel_rx_loop(self):
        """IRQ + softirq processing: NIC default ring -> socket buffers.

        Batches mimic NAPI: when a backlog exists, per-packet cost
        amortizes its fixed component.  Each drained batch executes as one
        :class:`KernelRxChain` — identical per-packet charges and rng
        order, one trampoline activation per batch.
        """
        ring = self.nic.rx_ring
        if self._legacy:
            # pre-overhaul: one generator resume per charged packet
            while True:
                first = yield Get(ring)
                batch = self.drain_queue(ring, first, self.rx_burst)
                for packet in batch:
                    yield self.charge("udp_rx", packet.payload_len, burst=len(batch))
                    packet.stamp("kernel_rx_done", self.sim.now)
                    socket = self._sockets.get(packet.dst_port)
                    if socket is None:
                        self.no_socket_drops.increment()
                    elif socket.buffer.try_put(packet):
                        self.rx_packets.increment()
                    else:
                        self.socket_overflow_drops.increment()
        while True:
            first = yield Get(ring)
            batch = self.drain_queue(ring, first, self.rx_burst)
            yield KernelRxChain(self, batch)


class UdpSocket:
    """A bound UDP socket with the paper's enlarged receive buffer."""

    def __init__(self, datapath, port, blocking):
        self.datapath = datapath
        self.host = datapath.host
        self.port = port
        self.blocking = blocking
        self.buffer = Store(
            datapath.sim,
            capacity=datapath.profile.scalar("socket_buffer_slots"),
            name="%s.udp%d" % (self.host.name, port),
        )
        self.closed = False

    def close(self):
        self.closed = True
        self.datapath._close_socket(self.port)

    # -- send ----------------------------------------------------------------

    def send(self, packet):
        """Send one datagram (one sendto syscall)."""
        yield from self.send_many([packet])

    def send_many(self, packets):
        """Send a batch in one activation (models sendmmsg amortization)."""
        self._check_open()
        if not packets:
            return
        datapath = self.datapath
        if datapath._legacy:
            burst = len(packets)
            for packet in packets:
                yield datapath.charge("udp_tx", packet.payload_len, burst=burst)
                packet.stamp("udp_tx_done", datapath.sim.now)
                datapath.transmit(packet)
            return
        yield TxChain(datapath, packets, ("udp_tx",), "udp_tx_done")

    # -- receive ---------------------------------------------------------------

    def recv(self):
        """Receive one datagram, paying the mode-appropriate latency."""
        self._check_open()
        packet = yield Get(self.buffer)
        scalars = self.datapath.profile.scalars
        if self.blocking:
            yield Timeout(self.host.jitter(scalars["wakeup_ns"]))
        else:
            yield Timeout(self.host.jitter(scalars["udp_poll_detect_ns"]))
        packet.stamp("app_rx", self.datapath.sim.now)
        return packet

    def recv_many(self, max_burst):
        """Drain up to ``max_burst`` datagrams (models recvmmsg)."""
        self._check_open()
        first = yield Get(self.buffer)
        scalars = self.datapath.profile.scalars
        if self.blocking:
            yield Timeout(self.host.jitter(scalars["wakeup_ns"]))
        else:
            yield Timeout(self.host.jitter(scalars["udp_poll_detect_ns"]))
        batch = self.datapath.drain_queue(self.buffer, first, max_burst)
        for packet in batch:
            packet.stamp("app_rx", self.datapath.sim.now)
        return batch

    def try_recv(self):
        """Non-blocking poll; returns a packet or None (no cost model —
        cost is the caller's poll loop, covered by the detect scalar)."""
        ok, packet = self.buffer.try_get()
        return packet if ok else None

    def _check_open(self):
        if self.closed:
            raise RuntimeError("socket on port %d is closed" % self.port)
