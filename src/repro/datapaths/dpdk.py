"""The DPDK datapath: kernel-bypassing poll-mode driver.

The NIC's receive flow steering directs claimed ports straight into a
userspace queue; a busy-polling thread (lcore) drains it in bursts.  Every
received packet occupies an mbuf from the *mempool*; if the mempool is
exhausted the packet is dropped at the driver, exactly like running out of
rx descriptors on real hardware.  Packets carry their mempool buffer in
``meta["rx_buffer"]``; consumers must release it.

The fixed component of the burst-call costs amortizes across the burst,
which is what makes DPDK (and INSANE's opportunistic batching on top of it)
fast under load.
"""

from repro.datapaths.base import Datapath, DatapathInfo
from repro.simnet import Counter, Get, Timeout
from repro.simnet.burst import DpdkRxChain, TxChain

#: pseudo-port carrying ARP exchanges on the simulated wire (the frame
#: model is UDP-shaped; the ARP payload bytes themselves are the real
#: RFC 826 encoding from repro.netstack.arp)
ARP_PORT = 2054  # == 0x0806, the ARP ethertype


class DpdkDatapath(Datapath):
    info = DatapathInfo(
        name="dpdk",
        kernel_integration="kernel-bypassing",
        api="RTE",
        zero_copy=True,
        cpu_consumption="busy polling",
        dedicated_hardware=False,
    )

    tx_done_key = "dpdk_tx_done"
    rx_done_key = "dpdk_rx_done"

    def __init__(self, host, mempool=None):
        super().__init__(host)
        # imported here to keep repro.core <-> repro.datapaths acyclic
        from repro.core.memory import SlotPool

        self.mempool = mempool or SlotPool(
            host.sim,
            slots=self.profile.scalar("pool_slots"),
            slot_bytes=self.profile.scalar("pool_slot_bytes"),
            name=host.name + ".dpdk.mempool",
        )
        self.rx_burst = int(self.profile.scalar("dpdk_rx_burst"))
        self.detect_ns = self.profile.scalar("dpdk_poll_detect_ns")
        self.mempool_drops = Counter(host.name + ".dpdk.mempool_drops")
        self._queues = {}
        self.arp = None  # created by enable_arp()

    @classmethod
    def available(cls, profile):
        return profile.dpdk_capable

    # -- port management -------------------------------------------------------

    def open_port(self, port):
        """Claim ``port`` via flow steering; returns the receive queue."""
        queue = self.nic.create_queue([port])
        self._queues[port] = queue
        return queue

    def close_port(self, port):
        self._queues.pop(port, None)
        self.nic.release_port(port)

    # -- transmit ----------------------------------------------------------------

    def send(self, packet):
        yield from self.send_many([packet])

    def send_many(self, packets):
        """Transmit a burst through the PMD (rte_eth_tx_burst)."""
        if not packets:
            return
        if self._legacy:
            burst = len(packets)
            for packet in packets:
                yield self.charge("ustack_tx", packet.payload_len, burst=burst)
                yield self.charge("dpdk_tx", packet.payload_len, burst=burst)
                packet.stamp("dpdk_tx_done", self.sim.now)
                self.transmit(packet)
            return
        yield TxChain(self, packets, ("ustack_tx", "dpdk_tx"), "dpdk_tx_done")

    # -- receive ------------------------------------------------------------------

    def recv_burst(self, queue, max_burst=None):
        """Busy-poll ``queue``; returns a non-empty batch of packets.

        The poll-loop reaction time (half a spin iteration on average) is
        charged once per burst; driver and stack costs amortize their fixed
        components across the burst.
        """
        max_burst = max_burst or self.rx_burst
        first = yield Get(queue)
        yield Timeout(self.host.jitter(self.detect_ns))
        batch = self.drain_queue(queue, first, max_burst)
        if not self._legacy:
            delivered = yield DpdkRxChain(self, batch)
            return delivered
        delivered = []
        for packet in batch:
            yield self.charge("dpdk_rx", packet.payload_len, burst=len(batch))
            yield self.charge("ustack_rx", packet.payload_len, burst=len(batch))
            if not self._stage_into_mempool(packet):
                continue
            packet.stamp("dpdk_rx_done", self.sim.now)
            self.rx_packets.increment()
            delivered.append(packet)
        return delivered

    def _stage_into_mempool(self, packet):
        """Move the payload into an mbuf; drop the packet when out of mbufs."""
        buffer = self.mempool.try_alloc()
        if buffer is None:
            self.mempool_drops.value += 1
            return False
        if packet.payload is not None:
            buffer.write(packet.payload)
            packet.payload = buffer.payload()
        else:
            buffer.length = min(packet.payload_len, buffer.capacity)
        packet.rx_buffer = buffer
        return True

    @staticmethod
    def release_rx(packet):
        """Return a received packet's mbuf to the mempool."""
        buffer = packet.rx_buffer
        if buffer is not None:
            packet.rx_buffer = None
            buffer.pool.release(buffer)

    # -- ARP control path ----------------------------------------------------

    def enable_arp(self):
        """Start the userspace ARP responder/resolver on this datapath.

        A kernel-bypassing application cannot use the kernel's neighbor
        table; this gives it the stack's own resolver
        (:class:`repro.netstack.arp.ArpResolver`) exchanging real RFC 826
        packets over the wire.  Returns the resolver.
        """
        from repro.netstack import MacAddress
        from repro.netstack.arp import ArpResolver

        if self.arp is not None:
            return self.arp
        own_index = int(self.host.ip.rsplit(".", 1)[1])
        self._arp_mac = MacAddress.from_index(own_index)
        self._arp_queue = self.nic.create_queue([ARP_PORT], capacity=64)
        self.arp = ArpResolver(
            self.sim,
            self._arp_mac,
            self.host.ip,
            send_request=self._send_arp_request,
        )
        self.sim.process(self._arp_responder(), name=self.host.name + ".arp")
        return self.arp

    def resolve(self, dst_ip):
        """Resolve a peer's MAC over the wire (generator)."""
        if self.arp is None:
            raise RuntimeError("call enable_arp() before resolve()")
        return (yield from self.arp.resolve(dst_ip))

    def _send_arp_request(self, target_ip):
        from repro.netstack import Packet
        from repro.netstack.arp import ArpPacket

        request = ArpPacket.request(self._arp_mac, self.host.ip, target_ip)
        packet = Packet(self.host.ip, target_ip, ARP_PORT, ARP_PORT,
                        payload=request.to_bytes())
        packet.meta["arp"] = True
        self.nic.transmit(packet)

    def _arp_responder(self):
        from repro.netstack import Packet
        from repro.netstack.arp import ArpPacket

        while True:
            incoming = yield Get(self._arp_queue)
            yield Timeout(self.host.jitter(200.0))  # driver->stack handling
            try:
                arp = ArpPacket.from_bytes(incoming.payload_bytes())
            except ValueError:
                continue
            self.arp.on_reply(arp)  # learn sender binding (also handles replies)
            reply = self.arp.make_reply_for(arp)
            if reply is not None:
                packet = Packet(self.host.ip, arp.sender_ip, ARP_PORT, ARP_PORT,
                                payload=reply.to_bytes())
                packet.meta["arp"] = True
                self.nic.transmit(packet)
