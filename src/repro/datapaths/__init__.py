"""Datapath plugins: one per network acceleration technology.

Each plugin implements the same small contract (:class:`Datapath`) on top of
the simulated NIC: cost-charged ``send`` and burst ``receive`` generators,
port management via receive flow steering, and the static capability
metadata behind the paper's Table 1.

Supported technologies (paper §3):

* :mod:`repro.datapaths.kernel_udp` — the kernel TCP/IP stack (AF_INET);
* :mod:`repro.datapaths.xdp` — AF_XDP sockets (in-kernel fast path);
* :mod:`repro.datapaths.dpdk` — kernel-bypassing poll-mode driver;
* :mod:`repro.datapaths.rdma` — two-sided RDMA (RoCEv2), hardware offload.
"""

from repro.datapaths.base import Datapath, DatapathInfo
from repro.datapaths.kernel_udp import KernelUdpDatapath, UdpSocket
from repro.datapaths.dpdk import DpdkDatapath
from repro.datapaths.xdp import XdpDatapath
from repro.datapaths.rdma import RdmaDatapath
from repro.datapaths.registry import (
    DATAPATH_CLASSES,
    available_datapaths,
    capability_table,
)

__all__ = [
    "DATAPATH_CLASSES",
    "Datapath",
    "DatapathInfo",
    "DpdkDatapath",
    "KernelUdpDatapath",
    "RdmaDatapath",
    "UdpSocket",
    "XdpDatapath",
    "available_datapaths",
    "capability_table",
]
