"""The AF_XDP datapath: in-kernel fast path with a userspace UMEM ring.

XDP runs in the device driver and forwards raw frames to an AF_XDP socket
through a shared UMEM area — zero-copy, but each packet costs CPU to shuttle
between driver and socket (paper Table 1: per-packet CPU, no spinning
cores).  Slower than DPDK, much faster than the full kernel stack, and needs
no dedicated hardware: the QoS mapper picks it when acceleration is wanted
but resource consumption matters (paper §5.2).
"""

from repro.datapaths.base import Datapath, DatapathInfo
from repro.simnet import Get, Timeout
from repro.simnet.burst import TxChain, XdpRxChain


class XdpDatapath(Datapath):
    info = DatapathInfo(
        name="xdp",
        kernel_integration="in-kernel",
        api="AF_XDP socket",
        zero_copy=True,
        cpu_consumption="per-packet",
        dedicated_hardware=False,
    )

    tx_done_key = "xdp_tx_done"
    rx_done_key = "xdp_rx_done"

    def __init__(self, host):
        super().__init__(host)
        self.detect_ns = self.profile.scalar("xdp_poll_detect_ns")
        self.rx_burst = int(self.profile.scalar("dpdk_rx_burst"))
        self._queues = {}

    @classmethod
    def available(cls, profile):
        return profile.xdp_capable

    def open_port(self, port):
        """Attach the eBPF redirect program for ``port``; returns the UMEM
        fill queue the driver redirects matching frames into."""
        queue = self.nic.create_queue([port])
        self._queues[port] = queue
        return queue

    def close_port(self, port):
        self._queues.pop(port, None)
        self.nic.release_port(port)

    def send(self, packet):
        yield from self.send_many([packet])

    def send_many(self, packets):
        """Write descriptors to the TX ring and kick the driver once.

        The sendto() kick is the fixed component; it amortizes across the
        batch like a real AF_XDP submission.
        """
        if not packets:
            return
        if self._legacy:
            burst = len(packets)
            for packet in packets:
                yield self.charge("ustack_tx", packet.payload_len, burst=burst)
                yield self.charge("xdp_tx", packet.payload_len, burst=burst)
                packet.stamp("xdp_tx_done", self.sim.now)
                self.transmit(packet)
            return
        yield TxChain(self, packets, ("ustack_tx", "xdp_tx"), "xdp_tx_done")

    def recv_burst(self, queue, max_burst=None):
        """Wait for redirected frames and process them through the
        userspace stack."""
        max_burst = max_burst or self.rx_burst
        first = yield Get(queue)
        yield Timeout(self.host.jitter(self.detect_ns))
        batch = self.drain_queue(queue, first, max_burst)
        if not self._legacy:
            yield XdpRxChain(self, batch)
            return batch
        for packet in batch:
            yield self.charge("xdp_rx", packet.payload_len, burst=len(batch))
            yield self.charge("ustack_rx", packet.payload_len, burst=len(batch))
            if isinstance(packet.payload, memoryview):
                packet.payload = bytes(packet.payload)
            packet.stamp("xdp_rx_done", self.sim.now)
            self.rx_packets.increment()
        return batch
