"""Datapath registry and the capability matrix behind the paper's Table 1."""

from repro.datapaths.dpdk import DpdkDatapath
from repro.datapaths.kernel_udp import KernelUdpDatapath
from repro.datapaths.rdma import RdmaDatapath
from repro.datapaths.xdp import XdpDatapath

#: name -> class, in the paper's Table 1 order.
DATAPATH_CLASSES = {
    "udp": KernelUdpDatapath,
    "xdp": XdpDatapath,
    "dpdk": DpdkDatapath,
    "rdma": RdmaDatapath,
}


def available_datapaths(profile):
    """Names of technologies usable on a host with ``profile``."""
    return [name for name, cls in DATAPATH_CLASSES.items() if cls.available(profile)]


def capability_table():
    """The rows of the paper's Table 1 as dictionaries."""
    rows = []
    for cls in DATAPATH_CLASSES.values():
        info = cls.info
        rows.append(
            {
                "technology": info.name,
                "kernel_integration": info.kernel_integration,
                "api": info.api,
                "zero_copy": info.zero_copy,
                "cpu_consumption": info.cpu_consumption,
                "dedicated_hardware": info.dedicated_hardware,
            }
        )
    return rows
