"""The RDMA datapath: two-sided operations over RoCEv2.

INSANE commits to the two-sided subset only (paper §3): SEND/RECV through a
queue pair.  Protocol processing is offloaded to the NIC, so the host pays
only work-request posting and completion-queue polling; a compatible NIC is
required (``profile.rdma_nic``), which is why the default QoS mapping
prefers RDMA whenever it is present.
"""

from repro.datapaths.base import Datapath, DatapathInfo
from repro.simnet import Counter, Get, Timeout
from repro.simnet.burst import RdmaRxChain, RdmaTxChain


class RdmaDatapath(Datapath):
    info = DatapathInfo(
        name="rdma",
        kernel_integration="kernel-bypassing",
        api="Verbs",
        zero_copy=True,
        cpu_consumption="hardware offloading",
        dedicated_hardware=True,
    )

    tx_done_key = "rdma_post_done"
    rx_done_key = "rdma_rx_done"

    def __init__(self, host):
        super().__init__(host)
        self.detect_ns = self.profile.scalar("rdma_poll_detect_ns")
        self.rx_burst = int(self.profile.scalar("dpdk_rx_burst"))
        self._queue_pairs = {}

    @classmethod
    def available(cls, profile):
        return profile.rdma_nic

    def create_qp(self, port, recv_depth=512):
        """Open a queue pair whose receive queue is fed by flow steering."""
        if port in self._queue_pairs:
            raise ValueError("queue pair on port %d already exists" % port)
        queue = self.nic.create_queue([port], capacity=recv_depth)
        qp = QueuePair(self, port, queue)
        self._queue_pairs[port] = qp
        return qp

    def close_qp(self, port):
        self._queue_pairs.pop(port, None)
        self.nic.release_port(port)


class QueuePair:
    """A send/receive work-queue pair plus its completion accounting."""

    def __init__(self, datapath, port, recv_queue):
        self.datapath = datapath
        self.port = port
        self.recv_queue = recv_queue
        self.posted_sends = Counter("qp%d.posted_sends" % port)
        self.completions = Counter("qp%d.completions" % port)

    def post_send(self, packet):
        """Post a SEND work request; the NIC does everything else."""
        yield from self.post_send_many([packet])

    def post_send_many(self, packets):
        if not packets:
            return
        datapath = self.datapath
        if datapath._legacy:
            burst = len(packets)
            for packet in packets:
                yield datapath.charge("rdma_post", packet.payload_len, burst=burst)
                packet.stamp("rdma_post_done", datapath.sim.now)
                datapath.transmit(packet)
                self.posted_sends.increment()
            return
        yield RdmaTxChain(datapath, packets, self.posted_sends)

    def poll_recv(self, max_burst=None):
        """Poll the completion queue for received messages.

        Two-sided RDMA requires pre-posted receives; the flow-steered queue
        capacity models the posted-receive depth, and overflow drops mirror
        receiver-not-ready errors.
        """
        max_burst = max_burst or self.datapath.rx_burst
        first = yield Get(self.recv_queue)
        yield Timeout(self.datapath.host.jitter(self.datapath.detect_ns))
        batch = self.datapath.drain_queue(self.recv_queue, first, max_burst)
        if not self.datapath._legacy:
            yield RdmaRxChain(self.datapath, batch, self.completions)
            return batch
        for packet in batch:
            yield self.datapath.charge("rdma_poll_cq", packet.payload_len, burst=len(batch))
            if isinstance(packet.payload, memoryview):
                packet.payload = bytes(packet.payload)
            packet.stamp("rdma_rx_done", self.datapath.sim.now)
            self.datapath.rx_packets.increment()
            self.completions.increment()
        return batch
