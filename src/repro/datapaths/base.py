"""The datapath plugin contract and shared helpers."""

from dataclasses import dataclass

from repro.simnet import Counter, Timeout


@dataclass(frozen=True)
class DatapathInfo:
    """Static capability metadata: one row of the paper's Table 1."""

    name: str
    kernel_integration: str      # "in-kernel" | "kernel-bypassing"
    api: str                     # "AF_INET socket", "RTE", "Verbs", ...
    zero_copy: bool
    cpu_consumption: str         # "per-packet" | "busy polling" | "hw offload"
    dedicated_hardware: bool


class Datapath:
    """Base class for datapath plugins.

    Subclasses define :attr:`info`, the cost stages they charge, and the
    technology-specific send/receive mechanics.  ``send`` and receive
    methods are generators meant to run inside the calling thread's process
    (``yield from dp.send(...)``), so CPU time lands on the right simulated
    core.
    """

    info = None  # overridden by subclasses

    #: lifecycle-trace stamp keys this technology records when a packet
    #: finishes its TX (resp. RX) pipeline stage; used by repro.obs to
    #: normalize per-datapath stage names in breakdown reports.
    tx_done_key = None
    rx_done_key = None

    def __init__(self, host):
        self.host = host
        self.sim = host.sim
        self.profile = host.profile
        self.nic = host.nic
        #: pre-overhaul behaviour (one Timeout per pipeline stage instead
        #: of a coalesced charge) — only the perf baseline sets this.
        self._legacy = getattr(host.sim, "legacy_stack", False)
        self.tx_packets = Counter("%s.%s.tx" % (host.name, self.info.name))
        self.rx_packets = Counter("%s.%s.rx" % (host.name, self.info.name))
        # fluid-tier accounting (repro.fluid): packets the aggregate model
        # carried analytically instead of as per-packet events; separate
        # from the event-driven counters so conservation across fidelity
        # modes is checkable
        self.fluid_tx_packets = Counter(
            "%s.%s.fluid_tx" % (host.name, self.info.name))
        self.fluid_rx_packets = Counter(
            "%s.%s.fluid_rx" % (host.name, self.info.name))
        #: fault-injection state (repro.faults): a failed datapath drops
        #: every frame handed to it instead of reaching the NIC.
        self.failed = False
        self.failed_drops = Counter("%s.%s.failed_drops" % (host.name, self.info.name))
        if self._legacy:
            self.transmit = self._transmit_legacy

    def account_fluid(self, tx=0, rx=0):
        """Account modelled (not simulated) packets through this plugin."""
        if tx:
            self.fluid_tx_packets.value += tx
        if rx:
            self.fluid_rx_packets.value += rx

    # -- fault injection ---------------------------------------------------

    def fail(self):
        """Mark the technology failed (driver crash, unbound NIC, ...)."""
        self.failed = True

    def restore(self):
        """Clear the failed state; subsequent transmits reach the NIC."""
        self.failed = False

    def _drop_failed(self, packet):
        """Swallow a frame handed to a failed datapath, reclaiming its TX
        buffer so the pool does not leak with the dead driver."""
        buffer = packet.meta.pop("tx_buffer", None)
        if buffer is not None:
            buffer.pool.release(buffer)
        self.failed_drops.value += 1
        trace = packet.trace
        if trace is not None:
            # duck-typed: lifecycle records close, plain dicts ignore
            mark = getattr(trace, "mark_dropped", None)
            if mark is not None:
                mark(self.sim.now, "datapath %s failed" % self.info.name)
        return self.sim.now

    # -- availability ------------------------------------------------------

    @classmethod
    def available(cls, profile):
        """Whether this technology can run on a host with ``profile``."""
        return True

    # -- helpers shared by plugins ------------------------------------------

    def charge(self, stage_key, size, burst=1):
        """Effect charging one stage's CPU cost (with jitter) to the caller."""
        return Timeout(self.host.stage_cost(stage_key, size, burst=burst))

    def charge_many(self, stage_keys, size, burst=1):
        """One effect charging several consecutive stages at once.

        Per-packet pipelines that yield back-to-back ``charge()`` timeouts
        (driver stage, then stack stage) pay a scheduler round-trip per
        stage even though nothing observable happens in between.  This
        coalesces them: jitter is drawn per stage, in stage order, and the
        draws are summed analytically into a single timeout, so the
        resumption timestamp equals the end of the last stage.
        """
        stage_cost = self.host.stage_cost
        total = 0.0
        for key in stage_keys:
            total += stage_cost(key, size, burst=burst)
        return Timeout(total)

    def charge_ns(self, nanoseconds):
        return Timeout(self.host.jitter(nanoseconds))

    def transmit(self, packet):
        """Hand ``packet`` to the NIC and release its TX buffer when the
        frame has fully left the host (the DMA read is then complete)."""
        if self.failed:
            return self._drop_failed(packet)
        payload = packet.payload
        if isinstance(payload, memoryview):
            # The NIC's DMA engine reads the slot during serialization;
            # capture the bytes so the slot can be recycled immediately.
            packet.payload = bytes(payload)
        sim = self.sim
        if packet.trace is not None:
            packet.trace["nic_handoff"] = sim.now
        departure = self.nic.transmit(packet)
        buffer = packet.tx_buffer
        if buffer is not None:
            packet.tx_buffer = None
            sim.schedule(departure - sim.now, buffer.pool.release, buffer)
        self.tx_packets.value += 1
        return departure

    def _transmit_legacy(self, packet):
        """Pre-overhaul transmit, verbatim (perf baseline)."""
        if isinstance(packet.payload, memoryview):
            packet.payload = bytes(packet.payload)
        packet.stamp("nic_handoff", self.sim.now)
        departure = self.nic.transmit(packet)
        buffer = packet.meta.pop("tx_buffer", None)
        if buffer is not None:
            self.sim.schedule_at(departure, buffer.pool.release, buffer)
        self.tx_packets.increment()
        return departure

    def drain_queue(self, queue, first, max_burst):
        """Collect up to ``max_burst`` packets starting from ``first``."""
        batch = [first]
        while len(batch) < max_burst:
            ok, packet = queue.try_get()
            if not ok:
                break
            batch.append(packet)
        return batch
