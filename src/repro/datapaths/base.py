"""The datapath plugin contract and shared helpers."""

from dataclasses import dataclass

from repro.simnet import Counter, Timeout


@dataclass(frozen=True)
class DatapathInfo:
    """Static capability metadata: one row of the paper's Table 1."""

    name: str
    kernel_integration: str      # "in-kernel" | "kernel-bypassing"
    api: str                     # "AF_INET socket", "RTE", "Verbs", ...
    zero_copy: bool
    cpu_consumption: str         # "per-packet" | "busy polling" | "hw offload"
    dedicated_hardware: bool


class Datapath:
    """Base class for datapath plugins.

    Subclasses define :attr:`info`, the cost stages they charge, and the
    technology-specific send/receive mechanics.  ``send`` and receive
    methods are generators meant to run inside the calling thread's process
    (``yield from dp.send(...)``), so CPU time lands on the right simulated
    core.
    """

    info = None  # overridden by subclasses

    def __init__(self, host):
        self.host = host
        self.sim = host.sim
        self.profile = host.profile
        self.nic = host.nic
        self.tx_packets = Counter("%s.%s.tx" % (host.name, self.info.name))
        self.rx_packets = Counter("%s.%s.rx" % (host.name, self.info.name))

    # -- availability ------------------------------------------------------

    @classmethod
    def available(cls, profile):
        """Whether this technology can run on a host with ``profile``."""
        return True

    # -- helpers shared by plugins ------------------------------------------

    def charge(self, stage_key, size, burst=1):
        """Effect charging one stage's CPU cost (with jitter) to the caller."""
        return Timeout(self.host.stage_cost(stage_key, size, burst=burst))

    def charge_ns(self, nanoseconds):
        return Timeout(self.host.jitter(nanoseconds))

    def transmit(self, packet):
        """Hand ``packet`` to the NIC and release its TX buffer when the
        frame has fully left the host (the DMA read is then complete)."""
        if isinstance(packet.payload, memoryview):
            # The NIC's DMA engine reads the slot during serialization;
            # capture the bytes so the slot can be recycled immediately.
            packet.payload = bytes(packet.payload)
        packet.stamp("nic_handoff", self.sim.now)
        departure = self.nic.transmit(packet)
        buffer = packet.meta.pop("tx_buffer", None)
        if buffer is not None:
            self.sim.schedule_at(departure, buffer.pool.release, buffer)
        self.tx_packets.increment()
        return departure

    def drain_queue(self, queue, first, max_burst):
        """Collect up to ``max_burst`` packets starting from ``first``."""
        batch = [first]
        while len(batch) < max_burst:
            ok, packet = queue.try_get()
            if not ok:
                break
            batch.append(packet)
        return batch
