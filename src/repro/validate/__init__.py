"""Differential validation and property testing for the simulation stack.

The reproduction's headline claims rest on two correctness contracts:

* the overhauled :class:`repro.simnet.Simulator` is *bit-identical* to the
  preserved pre-overhaul :class:`repro.simnet.legacy.LegacySimulator` when
  both drive the same application stack; and
* the fault/failover machinery preserves the invariants of the calibrated
  cost model (packet conservation, FIFO delivery, QoS-respecting mapping,
  exactly-once failure detection).

This package makes both contracts continuously checkable:

:mod:`repro.validate.canonical`
    :class:`TraceProbe` captures a canonical event stream (wire frames,
    datapath charges, process spawns, emits, deliveries, fault events)
    from a live testbed, independent of which engine drives it.
:mod:`repro.validate.workloads`
    Seeded random workload specs (:class:`WorkloadSpec`) and the driver
    that runs one spec on either engine and returns its canonical trace
    plus an accounting ledger.
:mod:`repro.validate.differential`
    The differential oracle: same spec on both engines, first-divergence
    reporting with a minimal reproducer.
:mod:`repro.validate.properties`
    Invariant checkers over a run's ledger: conservation, FIFO and
    duplicate-freedom, QoS-mapping monotonicity, fault-epoch
    exactly-once detection, time monotonicity.
:mod:`repro.validate.fuzz`
    A seeded fuzzer over specs (biased toward failover edge cases) with a
    greedy shrinker that reduces failures to a compact repro spec.
:mod:`repro.validate.golden`
    The pinned golden-trace corpus under ``tests/golden/`` and its
    regeneration tool (refuses to overwrite without ``--force``).
:mod:`repro.validate.parallel`
    Parallel fan-out of fuzz batches and differential sweeps via
    :mod:`repro.parallel`, plus the executor's own checker
    (serial-vs-parallel merged-digest equality).

Everything is exposed on the command line as ``insane-validate`` (see
:mod:`repro.validate.cli`) and as the pytest suites under
``tests/validate/`` and ``tests/golden/``.
"""

from repro.validate.canonical import CanonicalTrace, TraceProbe
from repro.validate.differential import Divergence, run_differential
from repro.validate.fuzz import FuzzFailure, fuzz, shrink
from repro.validate.golden import (
    check_corpus,
    compute_corpus,
    corpus_path,
    regenerate_corpus,
)
from repro.validate.parallel import (
    check_parallel_equivalence,
    parallel_differential,
    parallel_fuzz,
)
from repro.validate.properties import check_run, property_report
from repro.validate.workloads import RunResult, WorkloadSpec, random_spec, run_spec

__all__ = [
    "CanonicalTrace",
    "Divergence",
    "FuzzFailure",
    "RunResult",
    "TraceProbe",
    "WorkloadSpec",
    "check_corpus",
    "check_parallel_equivalence",
    "check_run",
    "compute_corpus",
    "corpus_path",
    "fuzz",
    "parallel_differential",
    "parallel_fuzz",
    "property_report",
    "random_spec",
    "regenerate_corpus",
    "run_differential",
    "run_spec",
    "shrink",
]
