"""Seeded property fuzzer with a greedy spec shrinker.

:func:`fuzz` draws random workload specs (biased, via
:func:`~repro.validate.workloads.random_spec`, toward failover edge cases:
restore-before-detect windows and zero-survivor stranding), runs each on
the fast engine, and checks every invariant in
:mod:`repro.validate.properties`.  Optionally it also cross-checks the two
engines differentially per spec.

A failing spec is handed to :func:`shrink`, which greedily simplifies it —
fewer messages, one sink, smaller payloads, plainer QoS, the local profile
— keeping only simplifications that still reproduce a violation.  The
result is a compact repro spec whose JSON form drops straight into a
regression test.
"""

from dataclasses import dataclass, replace
from typing import List, Optional

from repro.validate.differential import compare_spec
from repro.validate.properties import check_run
from repro.validate.workloads import random_spec, run_spec


@dataclass
class FuzzFailure:
    """One fuzzed spec that violated an invariant, with its shrunken form."""

    spec: object                 # the original failing WorkloadSpec
    violations: List[str]
    shrunk: object               # the minimized WorkloadSpec
    shrunk_violations: List[str]

    def report(self):
        lines = [
            "PROPERTY VIOLATION seed=%d" % self.spec.seed,
            "  spec:   %s" % self.spec.describe(),
            "  shrunk: %s" % self.shrunk.describe(),
            "  repro JSON: %s" % self.shrunk.to_json(),
        ]
        for violation in self.shrunk_violations or self.violations:
            lines.append("  - %s" % violation)
        return "\n".join(lines)


def check_spec(spec, differential=False):
    """Violations for one spec: property checks, plus the oracle if asked."""
    result = run_spec(spec)
    violations = list(check_run(result))
    if differential:
        divergence, _fast, _legacy = compare_spec(spec)
        if divergence is not None:
            violations.append("engine divergence: %s" % divergence.report())
    return violations


def shrink(spec, check=None, max_steps=40):
    """Greedily minimize ``spec`` while ``check(spec)`` stays non-empty.

    ``check`` defaults to the property checks on the fast engine.  Each
    round proposes one simplification; a proposal is kept only if the
    simplified spec still fails.  Stops at a fixpoint (or ``max_steps``).
    Returns ``(shrunk_spec, violations_of_shrunk)``.
    """
    if check is None:
        check = check_spec
    violations = check(spec)
    if not violations:
        return spec, []
    steps = 0
    improved = True
    while improved and steps < max_steps:
        improved = False
        for candidate in _candidates(spec):
            steps += 1
            try:
                candidate_violations = check(candidate)
            except Exception as exc:  # a shrink must never mask the bug
                candidate_violations = ["shrink candidate crashed: %r" % exc]
            if candidate_violations:
                spec, violations = candidate, candidate_violations
                improved = True
                break
            if steps >= max_steps:
                break
    return spec, violations


def _candidates(spec):
    """Simplification proposals, most aggressive first."""
    if spec.messages > 5:
        yield replace(spec, messages=max(5, spec.messages // 2))
    if spec.messages > 5:
        yield replace(spec, messages=spec.messages - 1)
    if spec.sinks > 1:
        yield replace(spec, sinks=1)
    if spec.size > 32:
        yield replace(spec, size=32)
    if spec.profile != "local":
        yield replace(spec, profile="local")
    if spec.time_sensitive:
        yield replace(spec, time_sensitive=False)
    if spec.constrained:
        yield replace(spec, constrained=False)
    if spec.fault_plan and spec.fault_plan[0] == "random":
        faults = spec.fault_plan[2]
        if faults > 1:
            yield replace(
                spec,
                fault_plan=("random", spec.fault_plan[1], faults - 1),
            )
    if spec.fault_plan:
        yield replace(spec, fault_plan=())
    if spec.kind == "pingpong":
        yield replace(spec, kind="stream")


def fuzz(seed=0, n=25, differential=False, do_shrink=True, progress=None):
    """Fuzz ``n`` specs seeded from ``seed``; returns ``(checked, failures)``."""
    failures = []
    checked = 0
    for index in range(n):
        spec = random_spec(seed + index)
        violations = check_spec(spec, differential=differential)
        checked += 1
        if progress is not None:
            progress(
                "[%d/%d] seed=%d %s %s"
                % (index + 1, n, spec.seed, spec.kind,
                   "FAILED" if violations else "ok")
            )
        if not violations:
            continue
        if do_shrink:
            shrunk, shrunk_violations = shrink(
                spec,
                check=lambda s: check_spec(s, differential=differential),
            )
        else:
            shrunk, shrunk_violations = spec, violations
        failures.append(
            FuzzFailure(
                spec=spec, violations=violations,
                shrunk=shrunk, shrunk_violations=shrunk_violations,
            )
        )
    return checked, failures
