"""Parallel fan-out for the validation subsystem, plus its own checker.

Fuzz batches and differential-oracle sweeps are embarrassingly parallel —
every spec builds its own simulator pair — so they shard one cell per
spec through :mod:`repro.parallel`.  The cell payloads carry the canonical
trace digests, which makes *the executor itself* checkable: a serial run
and a parallel run of the same cells must produce identical merged
digests (:func:`check_parallel_equivalence`), closing the loop on the
determinism contract the kernel already guarantees per-simulation.
"""

import json

from repro.parallel.cells import make_cell
from repro.parallel.executor import SweepExecutor
from repro.validate.workloads import WorkloadSpec, random_spec, run_spec


# -- worker-side cell runners -------------------------------------------------

def run_spec_cell(spec, engine="fast", seed=None):
    """Run one explicit :class:`WorkloadSpec` (as a JSON dict) on ``engine``.

    ``seed`` absorbs the executor's derived-seed injection; the spec's own
    pinned seed is authoritative, so the injected value is ignored.
    """
    from repro.validate.properties import check_run

    workload = WorkloadSpec.from_json(json.dumps(spec))
    result = run_spec(workload, engine=engine)
    return {
        "spec": json.loads(workload.to_json()),
        "engine": engine,
        "digest": result.trace.digest(),
        "events": len(result.trace),
        "emitted": result.ledger["emitted"],
        "sim_ns": result.ledger["sim_ns"],
        "violations": list(check_run(result)),
    }


def run_fuzz_cell(seed, differential=False, do_shrink=True):
    """One fuzzed spec: draw, run, check, shrink on failure.

    The payload embeds the canonical trace digest, so a fuzz batch's
    merged digest doubles as a corpus digest for serial-vs-parallel
    equivalence checks.
    """
    from repro.validate.differential import compare_spec
    from repro.validate.fuzz import check_spec, shrink
    from repro.validate.properties import check_run

    spec = random_spec(seed)
    result = run_spec(spec)
    violations = list(check_run(result))
    if differential:
        divergence, _fast, _legacy = compare_spec(spec)
        if divergence is not None:
            violations.append("engine divergence: %s" % divergence.report())
    payload = {
        "seed": seed,
        "spec": json.loads(spec.to_json()),
        "digest": result.trace.digest(),
        "events": len(result.trace),
        "emitted": result.ledger["emitted"],
        "violations": violations,
    }
    if violations and do_shrink:
        shrunk, shrunk_violations = shrink(
            spec, check=lambda s: check_spec(s, differential=differential)
        )
        payload["shrunk"] = json.loads(shrunk.to_json())
        payload["shrunk_violations"] = shrunk_violations
    return payload


def run_differential_cell(seed, perturb=None):
    """One differential-oracle spec: fast vs legacy engine, bit for bit."""
    from repro.validate.differential import compare_spec

    spec = random_spec(seed)
    divergence, fast, legacy = compare_spec(spec, perturb=perturb)
    return {
        "seed": seed,
        "spec": json.loads(spec.to_json()),
        "diverged": divergence is not None,
        "report": divergence.report() if divergence is not None else None,
        "fast_digest": fast.trace.digest(),
        "legacy_digest": legacy.trace.digest(),
        "events": len(fast.trace),
        "emitted": fast.ledger["emitted"],
    }


# -- cell builders ------------------------------------------------------------

def fuzz_cells(seed=0, n=25, differential=False, do_shrink=True):
    return [
        make_cell("validate.fuzz", seed=seed + index,
                  differential=differential, do_shrink=do_shrink)
        for index in range(n)
    ]


def differential_cells(seed=0, n=50, perturb=None):
    cells = []
    for index in range(n):
        params = {"seed": seed + index}
        if perturb is not None:
            params["perturb"] = perturb
        cells.append(make_cell("validate.differential", **params))
    return cells


# -- parallel drivers ---------------------------------------------------------

def parallel_fuzz(seed=0, n=25, workers=1, differential=False,
                  do_shrink=True, cache=None, progress=None):
    """Fan a fuzz batch out over workers; returns ``(checked, failures, sweep)``.

    ``failures`` is the list of failing cell payloads, in cell-key order
    (deterministic regardless of worker count).
    """
    cells = fuzz_cells(seed=seed, n=n, differential=differential,
                       do_shrink=do_shrink)
    sweep = SweepExecutor(workers=workers, cache=cache).run(cells)
    failures = [
        result.payload for result in sweep.results
        if result.payload["violations"]
    ]
    if progress is not None:
        for index, result in enumerate(sweep.results):
            payload = result.payload
            progress("[%d/%d] seed=%d %s %s" % (
                index + 1, n, payload["seed"], payload["spec"]["kind"],
                "FAILED" if payload["violations"] else "ok",
            ))
    return len(sweep.results), failures, sweep


def parallel_differential(seed=0, n=50, workers=1, perturb=None, cache=None,
                          progress=None):
    """Fan the differential oracle out; returns ``(checked, diverged, sweep)``.

    Unlike the serial :func:`~repro.validate.differential.run_differential`
    this always checks all ``n`` specs (parallel workers cannot usefully
    stop each other on the first divergence).
    """
    cells = differential_cells(seed=seed, n=n, perturb=perturb)
    sweep = SweepExecutor(workers=workers, cache=cache).run(cells)
    diverged = [
        result.payload for result in sweep.results if result.payload["diverged"]
    ]
    if progress is not None:
        for index, result in enumerate(sweep.results):
            payload = result.payload
            progress("[%d/%d] seed=%d %s (%d events, %d emitted) %s" % (
                index + 1, n, payload["seed"], payload["spec"]["kind"],
                payload["events"], payload["emitted"],
                "DIVERGED" if payload["diverged"] else "ok",
            ))
    return len(sweep.results), diverged, sweep


# -- sweep -> RunReport folds -------------------------------------------------

def fuzz_report(sweep):
    """Fold a fuzz sweep into a ``validate.fuzz`` RunReport.

    ``data`` (digest-compared) carries the verdict and the executor's
    merged digest; worker count and cache hits are provenance and live in
    non-compared ``meta``.
    """
    from repro.report import RunReport

    payloads = [result.payload for result in sweep.results]
    failed = sorted(p["seed"] for p in payloads if p["violations"])
    return RunReport(
        kind="validate.fuzz",
        data={
            "checked": len(payloads),
            "failed_seeds": failed,
            "merged_digest": sweep.merged_digest(),
            "ok": not failed,
        },
        meta={"workers": sweep.workers, "executed": sweep.executed,
              "cache_hits": sweep.cache_hits},
    )


def differential_report(sweep):
    """Fold a differential-oracle sweep into a ``validate.differential``
    RunReport (same data/meta split as :func:`fuzz_report`)."""
    from repro.report import RunReport

    payloads = [result.payload for result in sweep.results]
    diverged = sorted(p["seed"] for p in payloads if p["diverged"])
    return RunReport(
        kind="validate.differential",
        data={
            "checked": len(payloads),
            "diverged_seeds": diverged,
            "merged_digest": sweep.merged_digest(),
            "ok": not diverged,
        },
        meta={"workers": sweep.workers, "executed": sweep.executed,
              "cache_hits": sweep.cache_hits},
    )


# -- the executor's own checker -----------------------------------------------

def equivalence_cells(seed=0, n=4):
    """A small mixed cell set exercising bench and validate runners."""
    cells = fuzz_cells(seed=seed, n=n)
    # a few throughput points keep the bench runners honest too
    for system in ("insane_fast", "udp_nonblocking"):
        cells.append(make_cell("bench.throughput", system=system,
                               messages=400, size=256, seed=seed))
    return cells


def compare_sweeps(reference, candidate):
    """Cell-by-cell and digest comparison of two sweep results.

    Returns a problem list (empty == identical merge: same keys, same
    payloads, same merged digest).
    """
    problems = []
    for s, p in zip(reference.results, candidate.results):
        if s.key != p.key:
            problems.append("merge order differs: %s vs %s" % (s.key, p.key))
        elif s.payload != p.payload:
            problems.append("payload differs for cell %s" % s.key)
    if len(reference.results) != len(candidate.results):
        problems.append(
            "cell count differs: %d vs %d"
            % (len(reference.results), len(candidate.results))
        )
    if reference.merged_digest() != candidate.merged_digest():
        problems.append(
            "merged digest differs: %s (%d worker(s)) vs %s (%d worker(s))"
            % (reference.merged_digest(), reference.workers,
               candidate.merged_digest(), candidate.workers)
        )
    return problems


def check_parallel_equivalence(seed=0, n=4, workers=2, cells=None):
    """Serial vs parallel execution of the same cells; returns problems.

    Empty list == the sweep executor kept the determinism contract: the
    merged digests (and every individual payload) are identical at
    ``workers=1`` and ``workers=N``.
    """
    cells = cells if cells is not None else equivalence_cells(seed=seed, n=n)
    serial = SweepExecutor(workers=1).run(cells)
    parallel = SweepExecutor(workers=workers).run(cells)
    return compare_sweeps(serial, parallel)


def format_fuzz_failure(payload):
    """A fuzz-cell failure payload as the serial report's text shape."""
    lines = [
        "PROPERTY VIOLATION seed=%d" % payload["seed"],
        "  spec JSON: %s" % json.dumps(payload["spec"], sort_keys=True),
    ]
    if payload.get("shrunk") is not None:
        lines.append(
            "  repro JSON: %s" % json.dumps(payload["shrunk"], sort_keys=True)
        )
    for violation in payload.get("shrunk_violations") or payload["violations"]:
        lines.append("  - %s" % violation)
    return "\n".join(lines)
