"""The differential oracle: fast engine vs legacy engine, bit for bit.

:func:`run_differential` executes the same seeded workloads on
:class:`repro.simnet.Simulator` and :class:`repro.simnet.legacy.LegacySimulator`
(both driving the *fast* application stack — the configuration PR 1
guarantees bit-identical) and compares the canonical traces.  Any mismatch
is reported as a :class:`Divergence` naming the first differing canonical
event and the reproducer seed, so a failure shrinks to::

    insane-validate repro --seed <seed>

``perturb`` deliberately scales one cost-model stage on the *fast* side
only; the oracle must then fail at the first charge through the perturbed
stage — the self-test proving the comparison has no blind spots.
"""

from dataclasses import dataclass
from typing import Optional

from repro.hw.profiles import PROFILES
from repro.validate.workloads import random_spec, run_spec


@dataclass
class Divergence:
    """The first observable difference between two runs of one spec."""

    seed: int
    spec: object                   # WorkloadSpec
    index: Optional[int]           # first differing canonical line, or None
    fast_line: Optional[str]
    legacy_line: Optional[str]
    fast_digest: str
    legacy_digest: str

    def report(self):
        """A human-readable divergence report."""
        lines = [
            "DIVERGENCE seed=%d" % self.seed,
            "  spec: %s" % self.spec.describe(),
            "  repro: insane-validate repro --seed %d" % self.seed,
            "  fast   digest %s" % self.fast_digest,
            "  legacy digest %s" % self.legacy_digest,
        ]
        if self.index is None:
            lines.append("  traces agree line-by-line but digests differ "
                         "(summary mismatch)")
        else:
            lines.append("  first differing canonical event (line %d):"
                         % self.index)
            lines.append("    fast:   %s" % (self.fast_line,))
            lines.append("    legacy: %s" % (self.legacy_line,))
            if "msg=" in (self.fast_line or "") or "msg=" in (self.legacy_line or ""):
                lines.append("    (msg= cites a lifecycle span id: look the "
                             "message up in the run's Chrome trace)")
        return "\n".join(lines)


def first_difference(fast_trace, legacy_trace):
    """Index + lines of the first differing canonical line, or None."""
    fast_lines = fast_trace.lines()
    legacy_lines = legacy_trace.lines()
    for index, (a, b) in enumerate(zip(fast_lines, legacy_lines)):
        if a != b:
            return index, a, b
    if len(fast_lines) != len(legacy_lines):
        index = min(len(fast_lines), len(legacy_lines))
        longer_fast = len(fast_lines) > len(legacy_lines)
        return (
            index,
            fast_lines[index] if longer_fast else "<end of trace>",
            "<end of trace>" if longer_fast else legacy_lines[index],
        )
    return None


def perturbed_profile(name, perturb):
    """``PROFILES[name]`` with one stage's costs scaled.

    ``perturb`` is ``"stage_key=factor"`` (e.g. ``"insane_ipc=1.01"``);
    every component of that stage's cost is multiplied by ``factor``.
    """
    base = PROFILES[name]
    if not perturb:
        return base
    stage_key, _, factor_text = perturb.partition("=")
    stage_key = stage_key.strip()
    factor = float(factor_text) if factor_text else 1.5
    stage = base.stages[stage_key]   # KeyError -> loud failure, by design
    scaled = type(stage)(
        fixed=stage.fixed * factor,
        per_pkt=stage.per_pkt * factor,
        per_byte=stage.per_byte * factor,
    )
    stages = dict(base.stages)
    stages[stage_key] = scaled
    return base.replace(stages=stages)


def compare_spec(spec, perturb=None):
    """Run ``spec`` on both engines; returns ``(Divergence | None, fast, legacy)``."""
    fast_profile = (
        perturbed_profile(spec.profile, perturb) if perturb else None
    )
    fast = run_spec(spec, engine="fast", profile=fast_profile)
    legacy = run_spec(spec, engine="legacy")
    if fast.trace == legacy.trace:
        return None, fast, legacy
    diff = first_difference(fast.trace, legacy.trace)
    if diff is None:
        index = fast_line = legacy_line = None
    else:
        index, fast_line, legacy_line = diff
    return (
        Divergence(
            seed=spec.seed,
            spec=spec,
            index=index,
            fast_line=fast_line,
            legacy_line=legacy_line,
            fast_digest=fast.trace.digest(),
            legacy_digest=legacy.trace.digest(),
        ),
        fast,
        legacy,
    )


def run_differential(seed=0, n=50, perturb=None, stop_on_first=True,
                     progress=None):
    """The oracle over ``n`` random workloads seeded from ``seed``.

    Returns ``(checked, divergences)``.  ``progress`` is an optional
    callable receiving one status line per workload.
    """
    divergences = []
    checked = 0
    for index in range(n):
        spec = random_spec(seed + index)
        divergence, fast, _legacy = compare_spec(spec, perturb=perturb)
        checked += 1
        if progress is not None:
            status = "DIVERGED" if divergence else "ok"
            progress(
                "[%d/%d] seed=%d %s (%d events, %d emitted) %s"
                % (index + 1, n, spec.seed, spec.kind, len(fast.trace),
                   fast.ledger["emitted"], status)
            )
        if divergence is not None:
            divergences.append(divergence)
            if stop_on_first:
                break
    return checked, divergences
