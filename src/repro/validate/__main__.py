"""``python -m repro.validate`` — see :mod:`repro.validate.cli`."""

import sys

from repro.validate.cli import main

if __name__ == "__main__":
    sys.exit(main())
