"""``insane-validate``: the validation subsystem's command line.

Subcommands::

    insane-validate differential --seed 0 --n 50 [--perturb insane_ipc=1.01]
    insane-validate properties   --seed 0 --n 25
    insane-validate fuzz         --seed 0 --n 25 [--differential]
    insane-validate golden       [--regen [--force]] [--path FILE]
    insane-validate repro        --seed 17 [--json SPEC_JSON]

Also reachable as ``python -m repro.validate`` and as the ``validate``
experiment of ``insane-bench``.  Exit status is 0 iff every check passed.
"""

import argparse
import sys


def _cmd_differential(args):
    from repro.validate.differential import run_differential

    checked, divergences = run_differential(
        seed=args.seed, n=args.n, perturb=args.perturb,
        stop_on_first=not args.keep_going,
        progress=print if args.verbose else None,
    )
    for divergence in divergences:
        print(divergence.report())
    print(
        "differential: %d/%d workload(s) checked, %d divergence(s)"
        % (checked, args.n, len(divergences))
    )
    return 1 if divergences else 0


def _cmd_properties(args):
    from repro.validate.properties import property_report
    from repro.validate.workloads import random_spec, run_spec

    bad = 0
    for index in range(args.n):
        spec = random_spec(args.seed + index)
        report = property_report(run_spec(spec, engine=args.engine))
        if args.verbose or not report["ok"]:
            print(
                "seed=%d %s: %s"
                % (spec.seed, spec.kind, "ok" if report["ok"] else "FAILED")
            )
        for violation in report["violations"]:
            print("  - %s" % violation)
        bad += 0 if report["ok"] else 1
    print("properties: %d/%d run(s) clean" % (args.n - bad, args.n))
    return 1 if bad else 0


def _cmd_fuzz(args):
    from repro.validate.fuzz import fuzz

    checked, failures = fuzz(
        seed=args.seed, n=args.n, differential=args.differential,
        do_shrink=not args.no_shrink,
        progress=print if args.verbose else None,
    )
    for failure in failures:
        print(failure.report())
    print(
        "fuzz: %d spec(s) checked, %d failure(s)" % (checked, len(failures))
    )
    return 1 if failures else 0


def _cmd_golden(args):
    from repro.validate.golden import check_corpus, regenerate_corpus

    if args.regen:
        try:
            path = regenerate_corpus(path=args.path, force=args.force)
        except FileExistsError as exc:
            print(exc)
            return 1
        print("golden corpus written to %s" % path)
        return 0
    problems = check_corpus(path=args.path)
    for problem in problems:
        print("  - %s" % problem)
    print("golden: %s" % ("corpus holds" if not problems
                          else "%d mismatch(es)" % len(problems)))
    return 1 if problems else 0


def _cmd_repro(args):
    from repro.validate.differential import compare_spec
    from repro.validate.properties import property_report
    from repro.validate.workloads import WorkloadSpec, random_spec, run_spec

    if args.json:
        spec = WorkloadSpec.from_json(args.json)
    else:
        spec = random_spec(args.seed)
    print("spec: %s" % spec.describe())
    print("json: %s" % spec.to_json())
    divergence, fast, _legacy = compare_spec(spec)
    report = property_report(fast)
    print(
        "fast run: %d canonical events, %d emitted, %d delivered, digest %s"
        % (len(fast.trace), report["emitted"], report["delivered"],
           fast.trace.digest())
    )
    failed = False
    if divergence is not None:
        print(divergence.report())
        failed = True
    if not report["ok"]:
        for violation in report["violations"]:
            print("  - %s" % violation)
        failed = True
    if not failed:
        print("repro: engines agree and every invariant holds")
    return 1 if failed else 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="insane-validate",
        description="Differential validation and property testing for the "
                    "INSANE reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    differential = sub.add_parser(
        "differential", help="fast vs legacy engine, bit for bit"
    )
    differential.add_argument("--seed", type=int, default=0)
    differential.add_argument("--n", type=int, default=50)
    differential.add_argument(
        "--perturb", default=None, metavar="STAGE=FACTOR",
        help="scale one cost-model stage on the fast side only "
             "(self-test: the oracle must report a divergence)",
    )
    differential.add_argument("--keep-going", action="store_true")
    differential.add_argument("-v", "--verbose", action="store_true")
    differential.set_defaults(func=_cmd_differential)

    properties = sub.add_parser(
        "properties", help="invariant checks over random workloads"
    )
    properties.add_argument("--seed", type=int, default=0)
    properties.add_argument("--n", type=int, default=25)
    properties.add_argument("--engine", choices=("fast", "legacy"),
                            default="fast")
    properties.add_argument("-v", "--verbose", action="store_true")
    properties.set_defaults(func=_cmd_properties)

    fuzz = sub.add_parser(
        "fuzz", help="property fuzzing with failure shrinking"
    )
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument("--n", type=int, default=25)
    fuzz.add_argument("--differential", action="store_true",
                      help="also cross-check both engines per spec")
    fuzz.add_argument("--no-shrink", action="store_true")
    fuzz.add_argument("-v", "--verbose", action="store_true")
    fuzz.set_defaults(func=_cmd_fuzz)

    golden = sub.add_parser(
        "golden", help="check or regenerate the pinned golden corpus"
    )
    golden.add_argument("--regen", action="store_true")
    golden.add_argument("--force", action="store_true")
    golden.add_argument("--path", default=None)
    golden.set_defaults(func=_cmd_golden)

    repro = sub.add_parser(
        "repro", help="re-run one workload spec and report everything"
    )
    repro.add_argument("--seed", type=int, default=0)
    repro.add_argument("--json", default=None,
                       help="a WorkloadSpec JSON (from a shrunken failure)")
    repro.set_defaults(func=_cmd_repro)
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
