"""``insane-validate``: the validation subsystem's command line.

Subcommands::

    insane-validate differential --seed 0 --n 50 [--perturb insane_ipc=1.01]
                                 [--workers 4]
    insane-validate properties   --seed 0 --n 25
    insane-validate fuzz         --seed 0 --n 25 [--differential] [--workers 4]
    insane-validate golden       [--regen [--force]] [--path FILE]
    insane-validate parallel     --workers 2 [--n 4] [--cache-dir DIR]
    insane-validate partitioned  [--topology smoke64] [--partitions 2,4]
                                 [--transport process|inline] [--json PATH]
    insane-validate repro        --seed 17 [--json SPEC_JSON]
    insane-validate fanout       [--subscribers 64,256,1024] [--n 32]
                                 [--epsilon 0.15] [--hot-fraction 0.05]
                                 [--json PATH]

Also reachable as ``python -m repro.validate`` and as the ``validate``
experiment of ``insane-bench``.  Exit status is 0 iff every check passed.
"""

import argparse
import sys


def _cmd_differential(args):
    if args.workers > 1 or args.json:
        from repro.validate.parallel import (
            differential_report,
            parallel_differential,
        )

        checked, diverged, sweep = parallel_differential(
            seed=args.seed, n=args.n, workers=args.workers,
            perturb=args.perturb,
            progress=print if args.verbose else None,
        )
        for payload in diverged:
            print(payload["report"])
        print(
            "differential: %d/%d workload(s) checked, %d divergence(s) "
            "(%d workers)" % (checked, args.n, len(diverged), args.workers)
        )
        if args.json:
            from repro.report import write_reports

            write_reports(args.json, [differential_report(sweep)])
        return 1 if diverged else 0
    from repro.validate.differential import run_differential

    checked, divergences = run_differential(
        seed=args.seed, n=args.n, perturb=args.perturb,
        stop_on_first=not args.keep_going,
        progress=print if args.verbose else None,
    )
    for divergence in divergences:
        print(divergence.report())
    print(
        "differential: %d/%d workload(s) checked, %d divergence(s)"
        % (checked, args.n, len(divergences))
    )
    return 1 if divergences else 0


def _cmd_properties(args):
    from repro.validate.properties import property_report
    from repro.validate.workloads import random_spec, run_spec

    bad = 0
    for index in range(args.n):
        spec = random_spec(args.seed + index)
        report = property_report(run_spec(spec, engine=args.engine))
        if args.verbose or not report["ok"]:
            print(
                "seed=%d %s: %s"
                % (spec.seed, spec.kind, "ok" if report["ok"] else "FAILED")
            )
        for violation in report["violations"]:
            print("  - %s" % violation)
        bad += 0 if report["ok"] else 1
    print("properties: %d/%d run(s) clean" % (args.n - bad, args.n))
    return 1 if bad else 0


def _cmd_fuzz(args):
    if args.workers > 1 or args.json:
        from repro.validate.parallel import (
            format_fuzz_failure,
            fuzz_report,
            parallel_fuzz,
        )

        checked, failures, sweep = parallel_fuzz(
            seed=args.seed, n=args.n, workers=args.workers,
            differential=args.differential, do_shrink=not args.no_shrink,
            progress=print if args.verbose else None,
        )
        for payload in failures:
            print(format_fuzz_failure(payload))
        print(
            "fuzz: %d spec(s) checked, %d failure(s) (%d workers)"
            % (checked, len(failures), args.workers)
        )
        if args.json:
            from repro.report import write_reports

            write_reports(args.json, [fuzz_report(sweep)])
        return 1 if failures else 0
    from repro.validate.fuzz import fuzz

    checked, failures = fuzz(
        seed=args.seed, n=args.n, differential=args.differential,
        do_shrink=not args.no_shrink,
        progress=print if args.verbose else None,
    )
    for failure in failures:
        print(failure.report())
    print(
        "fuzz: %d spec(s) checked, %d failure(s)" % (checked, len(failures))
    )
    return 1 if failures else 0


def _cmd_golden(args):
    from repro.validate.golden import check_corpus, regenerate_corpus

    if args.regen:
        try:
            path = regenerate_corpus(path=args.path, force=args.force)
        except FileExistsError as exc:
            print(exc)
            return 1
        print("golden corpus written to %s" % path)
        return 0
    problems = check_corpus(path=args.path)
    for problem in problems:
        print("  - %s" % problem)
    print("golden: %s" % ("corpus holds" if not problems
                          else "%d mismatch(es)" % len(problems)))
    return 1 if problems else 0


def _cmd_parallel(args):
    """The sweep executor's own check: serial == parallel, cache hits.

    Runs a small mixed cell set three ways — serially, in parallel
    against an empty cache, and in parallel again over the warm cache —
    and requires (a) identical merged digests everywhere and (b) a 100%
    hit rate on the warm pass.  This is the CI parallel-smoke entrypoint.
    """
    import shutil
    import tempfile

    from repro.parallel import ResultCache, SweepExecutor
    from repro.validate.parallel import compare_sweeps, equivalence_cells

    cells = equivalence_cells(seed=args.seed, n=args.n)
    serial = SweepExecutor(workers=1).run(cells)

    cache_root = args.cache_dir or tempfile.mkdtemp(prefix="insane-cache-")
    problems = []
    try:
        cold = SweepExecutor(
            workers=args.workers, cache=ResultCache(root=cache_root)
        ).run(cells)
        warm = SweepExecutor(
            workers=args.workers, cache=ResultCache(root=cache_root)
        ).run(cells)
    finally:
        if args.cache_dir is None:
            shutil.rmtree(cache_root, ignore_errors=True)

    problems += compare_sweeps(serial, cold)
    problems += compare_sweeps(serial, warm)
    if warm.hit_rate() < 1.0:
        problems.append(
            "warm pass hit rate %.0f%% (expected 100%%): %d of %d cells "
            "re-executed"
            % (warm.hit_rate() * 100.0, warm.executed, len(warm.results))
        )
    for problem in problems:
        print("  - %s" % problem)
    print(
        "parallel: %d cell(s), serial vs %d-worker digest %s, "
        "warm-cache hit rate %.0f%%"
        % (len(cells), args.workers,
           "identical" if serial.merged_digest() == cold.merged_digest()
           == warm.merged_digest() else "DIFFERS",
           warm.hit_rate() * 100.0)
    )
    return 1 if problems else 0


def _cmd_partitioned(args):
    """Serial vs space-partitioned city runs, digest-for-digest.

    Runs a generated city once serially, then once per requested
    partition count through :mod:`repro.dist`, and requires every merged
    digest to equal the serial one bit for bit.  This is the CI
    partition-smoke entrypoint.
    """
    from repro.dist.sync import check_partition_equivalence

    counts = tuple(int(part) for part in args.partitions.split(","))
    problems, details = check_partition_equivalence(
        args.topology, partitions=counts, transport=args.transport
    )
    serial = details["serial"]
    print(
        "serial:          digest %s  delivered %d  events %d"
        % (serial["digest"][:16], serial["delivered"], serial["events"])
    )
    for run in details["partitioned"]:
        print(
            "partitioned x%d: digest %s  (%s)  %s"
            % (run["partitions"], run["digest"][:16], run["transport"],
               "== serial" if run["digest"] == serial["digest"]
               else "DIVERGED")
        )
    for problem in problems:
        print("  - %s" % problem)
    if args.json:
        from repro.report import RunReport, write_reports

        write_reports(args.json, [RunReport(
            kind="validate.partitioned",
            data={
                "ok": not problems,
                "problems": problems,
                "serial": serial,
                "partitioned": details["partitioned"],
            },
            meta={"topology": args.topology, "transport": args.transport},
        )])
    print(
        "partitioned: %s"
        % ("every digest identical to serial" if not problems
           else "%d problem(s)" % len(problems))
    )
    return 1 if problems else 0


def _cmd_repro(args):
    from repro.validate.differential import compare_spec
    from repro.validate.properties import property_report
    from repro.validate.workloads import WorkloadSpec, random_spec, run_spec

    if args.json:
        spec = WorkloadSpec.from_json(args.json)
    else:
        spec = random_spec(args.seed)
    print("spec: %s" % spec.describe())
    print("json: %s" % spec.to_json())
    divergence, fast, _legacy = compare_spec(spec)
    report = property_report(fast)
    print(
        "fast run: %d canonical events, %d emitted, %d delivered, digest %s"
        % (len(fast.trace), report["emitted"], report["delivered"],
           fast.trace.digest())
    )
    failed = False
    if divergence is not None:
        print(divergence.report())
        failed = True
    if not report["ok"]:
        for violation in report["violations"]:
            print("  - %s" % violation)
        failed = True
    if not failed:
        print("repro: engines agree and every invariant holds")
    return 1 if failed else 0


def _cmd_fanout(args):
    """Fluid-tier differential: hybrid fan-out vs full DES, ε-bounded."""
    from repro.validate.fanout import (
        format_fanout_differential,
        run_fanout_differential,
    )

    counts = tuple(int(part) for part in args.subscribers.split(","))
    result = run_fanout_differential(
        subscribers=counts, messages=args.n, size=args.size,
        hot_fraction=args.hot_fraction, epsilon=args.epsilon,
        seed=args.seed, profile=args.profile, datapath=args.datapath,
    )
    print(format_fanout_differential(result))
    if args.json:
        from repro.report import RunReport, write_reports

        write_reports(args.json, [RunReport(
            kind="validate.fanout", data=result,
            meta={"subscribers": list(counts)},
        )])
    return 0 if result["ok"] else 1


def build_parser():
    parser = argparse.ArgumentParser(
        prog="insane-validate",
        description="Differential validation and property testing for the "
                    "INSANE reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    differential = sub.add_parser(
        "differential", help="fast vs legacy engine, bit for bit"
    )
    differential.add_argument("--seed", type=int, default=0)
    differential.add_argument("--n", type=int, default=50)
    differential.add_argument(
        "--perturb", default=None, metavar="STAGE=FACTOR",
        help="scale one cost-model stage on the fast side only "
             "(self-test: the oracle must report a divergence)",
    )
    differential.add_argument("--keep-going", action="store_true")
    differential.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="shard specs across N worker processes (checks all --n specs; "
             "implies --keep-going)",
    )
    differential.add_argument("--json", metavar="PATH", default=None,
                              help="append a validate.differential RunReport "
                                   "to this JSON file")
    differential.add_argument("-v", "--verbose", action="store_true")
    differential.set_defaults(func=_cmd_differential)

    properties = sub.add_parser(
        "properties", help="invariant checks over random workloads"
    )
    properties.add_argument("--seed", type=int, default=0)
    properties.add_argument("--n", type=int, default=25)
    properties.add_argument("--engine", choices=("fast", "legacy"),
                            default="fast")
    properties.add_argument("-v", "--verbose", action="store_true")
    properties.set_defaults(func=_cmd_properties)

    fuzz = sub.add_parser(
        "fuzz", help="property fuzzing with failure shrinking"
    )
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument("--n", type=int, default=25)
    fuzz.add_argument("--differential", action="store_true",
                      help="also cross-check both engines per spec")
    fuzz.add_argument("--no-shrink", action="store_true")
    fuzz.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="shard fuzzed specs across N worker processes",
    )
    fuzz.add_argument("--json", metavar="PATH", default=None,
                      help="append a validate.fuzz RunReport to this "
                           "JSON file")
    fuzz.add_argument("-v", "--verbose", action="store_true")
    fuzz.set_defaults(func=_cmd_fuzz)

    golden = sub.add_parser(
        "golden", help="check or regenerate the pinned golden corpus"
    )
    golden.add_argument("--regen", action="store_true")
    golden.add_argument("--force", action="store_true")
    golden.add_argument("--path", default=None)
    golden.set_defaults(func=_cmd_golden)

    parallel = sub.add_parser(
        "parallel",
        help="check the sweep executor: serial==parallel digests, cache hits",
    )
    parallel.add_argument("--seed", type=int, default=0)
    parallel.add_argument("--n", type=int, default=4,
                          help="fuzz cells in the equivalence set")
    parallel.add_argument("--workers", type=int, default=2, metavar="N")
    parallel.add_argument("--cache-dir", default=None, metavar="DIR",
                          help="persist the cache here (default: a "
                               "throwaway temp dir)")
    parallel.set_defaults(func=_cmd_parallel)

    partitioned = sub.add_parser(
        "partitioned",
        help="check serial == space-partitioned city digests, bit for bit",
    )
    partitioned.add_argument("--topology", default="smoke64",
                             help="city preset name (see repro.hw.generate)")
    partitioned.add_argument("--partitions", default="2,4",
                             metavar="N[,N...]",
                             help="comma-separated partition counts to check")
    partitioned.add_argument("--transport", choices=("process", "inline"),
                             default="process",
                             help="worker processes (default) or the "
                                  "in-process scheduler")
    partitioned.add_argument("--json", metavar="PATH", default=None,
                             help="append a validate.partitioned RunReport "
                                  "to this JSON file")
    partitioned.set_defaults(func=_cmd_partitioned)

    repro = sub.add_parser(
        "repro", help="re-run one workload spec and report everything"
    )
    repro.add_argument("--seed", type=int, default=0)
    repro.add_argument("--json", default=None,
                       help="a WorkloadSpec JSON (from a shrunken failure)")
    repro.set_defaults(func=_cmd_repro)

    fanout = sub.add_parser(
        "fanout",
        help="bound the fluid tier's error against full DES on sampled "
             "fan-out sub-scenarios",
    )
    fanout.add_argument("--subscribers", default="64,256,1024",
                        metavar="N[,N...]",
                        help="comma-separated subscriber counts to sample")
    fanout.add_argument("--n", type=int, default=32,
                        help="messages per sampled run")
    fanout.add_argument("--size", type=int, default=512)
    fanout.add_argument("--epsilon", type=float, default=0.15,
                        help="relative p50/p99 error bound")
    fanout.add_argument("--hot-fraction", type=float, default=0.05)
    fanout.add_argument("--seed", type=int, default=0)
    fanout.add_argument("--profile", default="local")
    fanout.add_argument("--datapath", default=None)
    fanout.add_argument("--json", metavar="PATH", default=None,
                        help="append a validate.fanout RunReport to this "
                             "JSON file")
    fanout.set_defaults(func=_cmd_fanout)
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
