"""The pinned golden-trace corpus and its regeneration tool.

``tests/golden/corpus.json`` pins sha256 digests of the simulated results
of the paper workloads (fig5 ping-pong, fig8a streaming, fig8b 8-sink),
the failover bench, and a handful of differential-validation workloads —
everything a behaviour-changing commit would move.  A tier-1 test
(``tests/golden/test_corpus.py``) recomputes and compares them, so trace
drift fails CI with the exact entry that moved.

Regeneration is deliberate: :func:`regenerate_corpus` (exposed as
``insane-validate golden --regen``) refuses to overwrite an existing
corpus without ``force`` — re-pinning golden traces is a reviewed action,
never a side effect.
"""

import hashlib
import json
import os

#: corpus entries: reduced iteration counts — identity, not throughput.
ENGINE_WORKLOADS = ("fig5_pingpong", "fig8a_streaming", "fig8b_8sink")
ENGINE_ROUNDS = 40
ENGINE_MESSAGES = 150
ENGINE_SEED = 7

FAULTS_SEED = 5
FAULTS_MESSAGES = 150
FAULTS_INTERVAL_NS = 20_000.0
FAULTS_FAIL_AT_NS = 1_000_000.0

#: seeds of the differential-validation workloads pinned in the corpus.
VALIDATE_SEEDS = (0, 1, 2, 3)

CORPUS_VERSION = 1


def corpus_path(root=None):
    """Absolute path of ``tests/golden/corpus.json``."""
    if root is None:
        root = os.path.dirname(
            os.path.dirname(
                os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
            )
        )
    return os.path.join(root, "tests", "golden", "corpus.json")


def _digest(payload):
    """sha256 over a canonical JSON rendering of ``payload``."""
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=repr)
    return hashlib.sha256(text.encode()).hexdigest()


def compute_corpus():
    """Recompute every corpus entry from the current code."""
    from repro.bench.faults import _run_failover_once
    from repro.bench.perfbench import run_workload
    from repro.validate.workloads import random_spec, run_spec

    corpus = {
        "version": CORPUS_VERSION,
        "params": {
            "engine": {
                "rounds": ENGINE_ROUNDS, "messages": ENGINE_MESSAGES,
                "seed": ENGINE_SEED,
            },
            "faults": {
                "seed": FAULTS_SEED, "messages": FAULTS_MESSAGES,
                "interval_ns": FAULTS_INTERVAL_NS,
                "fail_at_ns": FAULTS_FAIL_AT_NS,
            },
            "validate_seeds": list(VALIDATE_SEEDS),
        },
        "engine": {},
        "faults": {},
        "validate": {},
    }
    for name in ENGINE_WORKLOADS:
        record = run_workload(
            name, engine="fast", rounds=ENGINE_ROUNDS,
            messages=ENGINE_MESSAGES, seed=ENGINE_SEED,
        )
        corpus["engine"][name] = _digest({
            "sim_ns": record["sim_ns"],
            "events": record["events"],
            "result": record["result"],
            "failures": record["failures"],
        })
    _results, faults_digest = _run_failover_once(
        FAULTS_SEED, FAULTS_MESSAGES, FAULTS_INTERVAL_NS, FAULTS_FAIL_AT_NS
    )
    corpus["faults"]["failover"] = faults_digest
    for seed in VALIDATE_SEEDS:
        result = run_spec(random_spec(seed))
        corpus["validate"]["seed-%d" % seed] = result.trace.digest()
    return corpus


def load_corpus(path=None):
    with open(path or corpus_path(), "r") as handle:
        return json.load(handle)


def check_corpus(path=None):
    """Compare the pinned corpus against freshly computed digests.

    Returns a list of mismatch strings (empty = corpus holds).
    """
    pinned = load_corpus(path)
    current = compute_corpus()
    problems = []
    if pinned.get("version") != current["version"]:
        problems.append(
            "corpus version %r != current %r (regenerate with "
            "insane-validate golden --regen --force)"
            % (pinned.get("version"), current["version"])
        )
    if pinned.get("params") != current["params"]:
        problems.append(
            "corpus params changed: pinned %r, current %r"
            % (pinned.get("params"), current["params"])
        )
    for section in ("engine", "faults", "validate"):
        pinned_section = pinned.get(section, {})
        for key, digest in current[section].items():
            expected = pinned_section.get(key)
            if expected is None:
                problems.append("corpus is missing %s/%s" % (section, key))
            elif expected != digest:
                problems.append(
                    "golden digest moved: %s/%s pinned %s, current %s"
                    % (section, key, expected, digest)
                )
        for key in pinned_section:
            if key not in current[section]:
                problems.append(
                    "corpus pins unknown entry %s/%s" % (section, key)
                )
    return problems


def regenerate_corpus(path=None, force=False):
    """Write a freshly computed corpus; refuses to overwrite unless forced."""
    path = path or corpus_path()
    if os.path.exists(path) and not force:
        raise FileExistsError(
            "%s already exists; golden corpora are only re-pinned "
            "deliberately — pass --force (insane-validate golden --regen "
            "--force) to overwrite" % path
        )
    corpus = compute_corpus()
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as handle:
        json.dump(corpus, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
