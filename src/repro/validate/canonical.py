"""Canonical event-stream capture for differential validation.

A :class:`TraceProbe` attaches to a testbed (and optionally a deployment)
and records, in execution order, every observable interaction the
simulation produces:

``wire``
    every frame crossing every link, including frames dropped by injected
    loss or a downed cable (via the link-tap hook that
    :class:`repro.trace.WireTap` also uses);
``charge``
    every software cost charged through :meth:`repro.hw.host.Host.jitter`
    — the datapath/resource charge stream, both the calibrated input cost
    and the jittered output (so a cost-model perturbation *or* an rng
    divergence is caught at the first affected charge);
``spawn``
    every process started on the simulator;
``emit`` / ``deliver``
    application-level send/receive events, recorded by the workload
    driver through :meth:`TraceProbe.emit` / :meth:`TraceProbe.deliver`.

At quiesce, :meth:`TraceProbe.finish` seals the stream into a
:class:`CanonicalTrace` together with a summary section: final simulated
time, executed event count, process failures, the rng state digest, fault
trace lines, failover events, and emit-outcome tallies.  Two runs are
behaviourally identical iff their canonical traces compare equal — which
is exactly the differential oracle's check.

The probe is engine-agnostic: it hooks the *stack* (hosts, links, the
``process`` constructor), never the event loop, so the same probe works
identically on :class:`repro.simnet.Simulator` and
:class:`repro.simnet.legacy.LegacySimulator`.  Probing draws nothing from
any rng and schedules nothing, so an instrumented run is bit-identical to
an uninstrumented one.
"""

import hashlib


class CanonicalTrace:
    """A sealed canonical event stream plus its quiesce summary."""

    def __init__(self, events, summary):
        self.events = events      # list of tuples, first element = kind
        self.summary = summary    # dict of quiesce facts

    def lines(self):
        """One canonical line per event, then the sorted summary lines."""
        out = []
        for event in self.events:
            out.append(" ".join(_canon(field) for field in event))
        for key in sorted(self.summary):
            out.append("summary %s=%s" % (key, _canon(self.summary[key])))
        return out

    def digest(self):
        """sha256 over the canonical lines — the trace's identity."""
        h = hashlib.sha256()
        for line in self.lines():
            h.update(line.encode())
            h.update(b"\n")
        return h.hexdigest()

    def __len__(self):
        return len(self.events)

    def __eq__(self, other):
        if not isinstance(other, CanonicalTrace):
            return NotImplemented
        return self.events == other.events and self.summary == other.summary

    def __ne__(self, other):
        equal = self.__eq__(other)
        return equal if equal is NotImplemented else not equal


def _canon(value):
    """Canonical string form of one trace field (digest-stable)."""
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, (list, tuple)):
        return "(" + ",".join(_canon(v) for v in value) + ")"
    if isinstance(value, dict):
        return "{" + ",".join(
            "%s:%s" % (_canon(k), _canon(value[k])) for k in sorted(value)
        ) + "}"
    return str(value)


class _LinkProbe:
    """A link tap recording canonical wire events (WireTap protocol)."""

    def __init__(self, probe, index):
        self.probe = probe
        self.index = index

    def record(self, frame, now, dropped=False):
        packet = frame.packet
        event = (
            "wire", now, self.index,
            packet.src_ip, packet.src_port, packet.dst_ip, packet.dst_port,
            packet.payload_len, packet.wire_size, 1 if dropped else 0,
        )
        msg_id = getattr(getattr(packet, "trace", None), "msg_id", None)
        if msg_id is not None:
            # traced runs cite the lifecycle span id so a divergence
            # report cross-references the Chrome trace; untraced runs
            # keep the historical tuple shape (digest-stable)
            event = event + ("msg=%s" % msg_id,)
        self.probe.events.append(event)


class TraceProbe:
    """Attach canonical-event recording to a live testbed."""

    def __init__(self, testbed, charges=True, spawns=True):
        self.testbed = testbed
        self.sim = testbed.sim
        self.events = []
        self._finished = False
        for index, link in enumerate(testbed.links):
            link.taps.append(_LinkProbe(self, index))
        if charges:
            for host in testbed.hosts:
                self._hook_jitter(host)
        if spawns:
            self._hook_process(self.sim)

    # -- stack hooks --------------------------------------------------------

    def _hook_jitter(self, host):
        inner = host.jitter
        events = self.events
        sim = self.sim

        def probed_jitter(cost_ns, _name=host.name):
            jittered = inner(cost_ns)
            events.append(("charge", sim.now, _name, cost_ns, jittered))
            return jittered

        host.jitter = probed_jitter

    def _hook_process(self, sim):
        inner = sim.process
        events = self.events

        def probed_process(generator, name=None):
            process = inner(generator, name=name)
            events.append(("spawn", sim.now, process.name))
            return process

        sim.process = probed_process

    # -- driver-level events ------------------------------------------------

    def emit(self, stream, channel, seq):
        """Record one completed ``emit_data`` call (driver-side hook)."""
        self.events.append(("emit", self.sim.now, stream, channel, seq))

    def deliver(self, sink_label, stream, channel, seq, length):
        """Record one consumed delivery (driver-side hook)."""
        self.events.append(
            ("deliver", self.sim.now, sink_label, stream, channel, seq, length)
        )

    def note(self, kind, *fields):
        """Record an arbitrary driver-defined canonical event."""
        self.events.append((kind,) + fields)

    # -- sealing ------------------------------------------------------------

    def finish(self, fault_trace=None, deployment=None, extra=None):
        """Seal the stream into a :class:`CanonicalTrace` at quiesce."""
        if self._finished:
            raise RuntimeError("probe already finished")
        self._finished = True
        sim = self.sim
        summary = {
            "sim_ns": sim.now,
            "events_executed": sim.stats()["events_executed"],
            "failures": [
                (name, "%s: %s" % (type(exc).__name__, exc))
                for name, exc in sim.failures
            ],
            "rng_digest": hashlib.sha256(
                repr(sim.rng.getstate()).encode()
            ).hexdigest(),
        }
        if fault_trace is not None:
            summary["fault_trace"] = fault_trace.lines()
            summary["fault_digest"] = fault_trace.digest()
        if deployment is not None:
            summary["failover_events"] = [
                (
                    event.host, event.datapath, event.failed_at,
                    event.detected_at, tuple(event.remapped),
                    tuple(event.stranded), event.migrated,
                )
                for runtime in deployment.runtimes.values()
                for event in runtime.health.events
            ]
            summary["warnings"] = [
                warning
                for runtime in deployment.runtimes.values()
                for warning in runtime.warnings
            ]
        if extra:
            summary.update(extra)
        return CanonicalTrace(self.events, summary)
