"""Differential validation of the fluid tier against full DES.

For each sampled sub-scenario (small subscriber counts where a full
packet-accurate run is cheap) the validator runs the *same* workload —
same seed, same message count, same explicit emit interval — once at
``hot_fraction=1.0`` (pure DES, the reference) and once per hybrid
configuration (the piggyback split and the pure-analytic ``0.0`` mode),
then checks the two fidelity contracts:

* **delivered counts are exact** — the hybrid run must deliver exactly
  the reference's count (fan-out delivery is conservative across the
  fidelity boundary, not approximately so);
* **latency percentiles are ε-bounded** — hybrid p50/p99 must land
  within a declared relative ``epsilon`` of the DES percentiles;
* **wire conservation** — the reference's transmitted frame count must
  equal the hybrid's simulated + fluid-accounted frames.

The cells and the overall verdict go into the ``bench.fanout`` report,
so every benchmark run carries its own error bound.
"""

from repro.fluid import calibrate_envelope, run_hybrid_fanout

DEFAULT_SUBSCRIBERS = (64, 256, 1024)


def _rel_err(hybrid, reference):
    if reference == 0:
        return 0.0 if hybrid == 0 else float("inf")
    return abs(hybrid - reference) / reference


def run_fanout_differential(subscribers=DEFAULT_SUBSCRIBERS, messages=32,
                            size=512, hot_fraction=0.05, epsilon=0.15,
                            seed=0, profile="local", datapath=None,
                            envelope=None, progress=None):
    """Bound the fluid tier's error on sampled sub-scenarios.

    Returns a JSON-native dict: per-cell results plus the aggregate
    verdict (``ok`` — every cell delivered exactly, conserved its wire
    frames, and stayed within ``epsilon`` on p50/p99).
    """
    if envelope is None:
        envelope = calibrate_envelope(profile=profile, size=size,
                                      datapath=datapath, seed=seed + 7919)
    cells = []
    for count in subscribers:
        # the reference and every hybrid run share one explicit interval,
        # so pacing never differs across fidelity modes
        interval = envelope.safe_interval_ns(count)
        reference = run_hybrid_fanout(
            count, messages=messages, size=size, hot_fraction=1.0,
            interval_ns=interval, profile=profile, seed=seed,
            datapath=datapath, envelope=envelope)
        for fraction in (hot_fraction, 0.0):
            hybrid = run_hybrid_fanout(
                count, messages=messages, size=size, hot_fraction=fraction,
                interval_ns=interval, profile=profile, seed=seed,
                datapath=datapath, envelope=envelope)
            p50_err = _rel_err(hybrid["latency"]["p50_ns"],
                               reference["latency"]["p50_ns"])
            p99_err = _rel_err(hybrid["latency"]["p99_ns"],
                               reference["latency"]["p99_ns"])
            delivered_exact = hybrid["delivered"] == reference["delivered"]
            conserved = (
                hybrid["wire"]["tx_frames"]
                + hybrid["wire"]["fluid_tx_frames"]
                == reference["wire"]["tx_frames"])
            cell = {
                "subscribers": count,
                "hot_fraction": fraction,
                "mode": hybrid["fluid"]["mode"] if hybrid["fluid"] else "des",
                "delivered_des": reference["delivered"],
                "delivered_hybrid": hybrid["delivered"],
                "delivered_exact": delivered_exact,
                "wire_conserved": conserved,
                "p50_des_ns": reference["latency"]["p50_ns"],
                "p50_hybrid_ns": hybrid["latency"]["p50_ns"],
                "p50_rel_err": p50_err,
                "p99_des_ns": reference["latency"]["p99_ns"],
                "p99_hybrid_ns": hybrid["latency"]["p99_ns"],
                "p99_rel_err": p99_err,
                "ok": (delivered_exact and conserved
                       and p50_err <= epsilon and p99_err <= epsilon),
            }
            cells.append(cell)
            if progress is not None:
                progress(cell)
    return {
        "epsilon": epsilon,
        "messages": messages,
        "size": size,
        "seed": seed,
        "profile": profile,
        "cells": cells,
        "delivered_exact": all(cell["delivered_exact"] for cell in cells),
        "wire_conserved": all(cell["wire_conserved"] for cell in cells),
        "max_p50_rel_err": max(cell["p50_rel_err"] for cell in cells),
        "max_p99_rel_err": max(cell["p99_rel_err"] for cell in cells),
        "ok": all(cell["ok"] for cell in cells),
    }


def format_fanout_differential(result):
    """Human-readable table of a differential result."""
    lines = [
        "fluid-vs-DES differential (epsilon %.2f, %d msgs, %dB)"
        % (result["epsilon"], result["messages"], result["size"]),
        "%10s %6s %10s %12s %12s %10s %10s %4s"
        % ("subs", "hot", "mode", "del(des)", "del(hyb)",
           "p50 err", "p99 err", "ok"),
    ]
    for cell in result["cells"]:
        lines.append(
            "%10d %6.2f %10s %12d %12d %9.2f%% %9.2f%% %4s"
            % (cell["subscribers"], cell["hot_fraction"], cell["mode"],
               cell["delivered_des"], cell["delivered_hybrid"],
               100.0 * cell["p50_rel_err"], 100.0 * cell["p99_rel_err"],
               "yes" if cell["ok"] else "NO"))
    lines.append(
        "delivered exact: %s  wire conserved: %s  max p50 err %.2f%%  "
        "max p99 err %.2f%%  => %s"
        % (result["delivered_exact"], result["wire_conserved"],
           100.0 * result["max_p50_rel_err"],
           100.0 * result["max_p99_rel_err"],
           "OK" if result["ok"] else "FAILED"))
    return "\n".join(lines)
