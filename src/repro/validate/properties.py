"""Invariant checkers over one executed workload's ledger and trace.

Each checker returns a list of human-readable violation strings (empty =
invariant holds).  :func:`check_run` runs them all; :func:`property_report`
wraps the result for the CLI/pytest suites.

The invariants (ISSUE 3 tentpole):

* **time monotonicity** — canonical event timestamps never decrease and
  are never negative (the simulator clock only moves forward);
* **outcome totals** — every successful emit has exactly one outcome, and
  ``pending`` outcomes correspond one-to-one to tokens still parked in
  shared-memory emit rings at quiesce;
* **packet conservation** — emitted = delivered + dropped + in-flight at
  quiesce, checked as an exact identity chain across every hop:
  emit rings -> packet schedulers -> datapaths -> NICs -> wire (loss,
  switch) -> receive queues -> kernel demux -> dispatch -> sink rings;
* **per-stream FIFO** — each sink observes its producer's sequence
  numbers in strictly increasing order on fault-free runs; under faults a
  failover re-map may legitimately reorder across datapath queues, so the
  check relaxes to duplicate-freedom (each seq delivered at most once per
  sink) plus emitted-subset membership;
* **QoS-mapping monotonicity** — a stream never lands on a datapath its
  policy excludes, including post-failover re-maps; an accelerated stream
  on the kernel path requires the paper's fallback warning on record;
* **fault-epoch exactly-once** — each datapath failure epoch produces
  exactly one failover event, and a restore *before* the detection delay
  produces none.
"""

#: event kinds whose canonical tuple carries ``time`` at index 1.
_TIMED_KINDS = {
    "wire", "charge", "spawn", "emit", "deliver", "map", "emit_refused",
}

#: which producer's sequence stream each sink label consumes.
_ACCELERATED_PATHS = ("rdma", "dpdk", "xdp")


def check_run(result):
    """Run every invariant checker; returns the list of violations."""
    problems = []
    problems += check_time_monotone(result)
    problems += check_outcome_totals(result)
    problems += check_conservation(result)
    problems += check_fifo(result)
    problems += check_qos_mapping(result)
    problems += check_exactly_once(result)
    problems += check_no_failures(result)
    return problems


def property_report(result):
    """A CLI/pytest-friendly summary of one run's invariant status."""
    violations = check_run(result)
    return {
        "spec": result.spec.describe(),
        "engine": result.engine,
        "events": len(result.trace),
        "emitted": result.ledger["emitted"],
        "delivered": result.ledger["counters"]["consumed"],
        "ok": not violations,
        "violations": violations,
    }


# -- individual checkers ------------------------------------------------------


def check_no_failures(result):
    """No application process may die with an unhandled exception."""
    failures = result.ledger["failures"]
    return [
        "process %s failed: %s" % (name, message) for name, message in failures
    ]


def check_time_monotone(result):
    problems = []
    last = 0.0
    for index, event in enumerate(result.trace.events):
        if event[0] not in _TIMED_KINDS:
            continue
        time_ns = event[1]
        if time_ns < 0:
            problems.append(
                "negative timestamp at event %d: %r" % (index, event)
            )
        if time_ns < last:
            problems.append(
                "time went backwards at event %d: %r after t=%r"
                % (index, event, last)
            )
        last = time_ns
    return problems


def check_outcome_totals(result):
    ledger = result.ledger
    problems = []
    total = sum(ledger["outcomes"].values())
    if total != ledger["emitted"]:
        problems.append(
            "outcome total %d != emitted %d (outcomes: %r)"
            % (total, ledger["emitted"], ledger["outcomes"])
        )
    pending = ledger["outcomes"].get("pending", 0)
    parked = ledger["residuals"]["tx_rings"]
    if pending != parked:
        problems.append(
            "pending outcomes %d != tokens parked in emit rings %d"
            % (pending, parked)
        )
    return problems


def check_conservation(result):
    """The exact per-hop identity chain from emit rings to sink rings."""
    ledger = result.ledger
    c = ledger["counters"]
    r = ledger["residuals"]
    outcomes = ledger["outcomes"]
    problems = []

    def expect(name, lhs, rhs):
        if lhs != rhs:
            problems.append(
                "conservation: %s: %d != %d (counters=%r residuals=%r "
                "outcomes=%r)" % (name, lhs, rhs, c, r, outcomes)
            )

    # every routed emit becomes exactly one scheduled packet (two-host
    # deployments: one remote subscriber host per frame)
    routed = outcomes.get("sent", 0) + outcomes.get("degraded", 0)
    expect(
        "routed emits == scheduler backlog + scheduler drops + "
        "failed-datapath drops + datapath tx",
        routed,
        r["sched"] + c["sched_drops"] + c["failed_drops"] + c["tx_datapath"],
    )
    # every frame a datapath accepts reaches its NIC
    expect("datapath tx == nic tx", c["tx_datapath"], c["nic_tx"])
    # wire conservation: transmitted frames are lost on a link, dropped in
    # the switch, dropped at the receiving NIC, or received
    expect(
        "nic tx == link lost + switch dropped + nic rx + nic rx dropped",
        c["nic_tx"],
        c["link_lost"] + c["switch_dropped"] + c["nic_rx"]
        + c["nic_rx_dropped"],
    )
    # receive-side demux: frames the NICs accepted either sit in the
    # kernel's default ring, were dropped by kernel demux, or were placed
    # in a binding's receive queue (steering for accelerated paths, socket
    # buffers for the kernel path)
    kernel_processed = (
        c["udp_no_socket_drops"] + c["udp_sockbuf_drops"] + c["udp_rx_packets"]
    )
    rx_enqueued = (
        c["nic_rx"] - r["nic_rx_ring"] - kernel_processed
        + c["udp_rx_packets"]
    )
    dispatched = (
        rx_enqueued - r["rx_queues"] - c["pool_drops"] - c["no_sink_drops"]
        - c["unknown_drops"]
    )
    if dispatched < 0:
        problems.append(
            "conservation: negative dispatched frame count %d" % dispatched
        )
    # fan-out: each dispatched frame attempts delivery to every local sink
    attempts = c["consumed"] + c["endpoint_dropped"] + r["sink_rings"]
    expect(
        "sink delivery attempts == dispatched frames * fan-out",
        attempts,
        dispatched * ledger["sinks_per_frame"],
    )
    return problems


def _sink_producers(ledger):
    """Map each sink label to the producer label whose seqs it consumes."""
    kind = ledger["spec"]["kind"]
    if kind == "pingpong":
        return {"server": "client", "client": "server"}
    return {label: "pub" for label in ledger["deliveries"]}


def check_fifo(result):
    ledger = result.ledger
    faulted = bool(ledger["spec"]["fault_plan"])
    producers = _sink_producers(ledger)
    problems = []
    for label, seqs in sorted(ledger["deliveries"].items()):
        emitted = set(ledger["emit_seqs"].get(producers[label], ()))
        unknown = [seq for seq in seqs if seq not in emitted]
        if unknown:
            problems.append(
                "sink %s delivered never-emitted seq(s) %r" % (label, unknown)
            )
        if len(set(seqs)) != len(seqs):
            problems.append(
                "sink %s saw duplicate deliveries (len %d, unique %d)"
                % (label, len(seqs), len(set(seqs)))
            )
        if not faulted:
            out_of_order = [
                (a, b) for a, b in zip(seqs, seqs[1:]) if b <= a
            ]
            if out_of_order:
                problems.append(
                    "sink %s out-of-order deliveries on a fault-free run: "
                    "%r" % (label, out_of_order[:5])
                )
    return problems


def check_qos_mapping(result):
    ledger = result.ledger
    warnings = ledger["warnings"]
    fallback_warned = any("falling back to kernel UDP" in w for w in warnings)
    problems = []
    for record in ledger["streams"]:
        label = record["label"]
        for which in ("initial", "final"):
            datapath = record[which]
            if not record["accelerated"]:
                if datapath != "udp":
                    problems.append(
                        "stream %s (slow policy) mapped to %s (%s)"
                        % (label, datapath, which)
                    )
            else:
                if datapath == "udp" and not fallback_warned:
                    problems.append(
                        "stream %s (fast policy) on kernel UDP (%s) with no "
                        "fallback warning on record" % (label, which)
                    )
                elif datapath not in _ACCELERATED_PATHS + ("udp",):
                    problems.append(
                        "stream %s on unknown datapath %s" % (label, datapath)
                    )
        if record["failovers"] and not (record["degraded"] or record["failed"]):
            problems.append(
                "stream %s re-mapped %d times but neither degraded nor "
                "failed" % (label, record["failovers"])
            )
    # remap targets recorded by failover events obey the same exclusions
    by_label = {record["label"]: record for record in ledger["streams"]}
    for event in ledger["failover_events"]:
        for app_id, stream_name, old, new in event["remapped"]:
            record = by_label.get("%s/%s" % (app_id, stream_name))
            if record is None:
                continue
            if not record["accelerated"] and new != "udp":
                problems.append(
                    "failover re-mapped slow stream %s/%s onto %s"
                    % (app_id, stream_name, new)
                )
            if new == old:
                problems.append(
                    "failover re-mapped %s/%s onto the failed datapath %s"
                    % (app_id, stream_name, new)
                )
    # stranded streams and failed stream flags must agree
    stranded = {
        "%s/%s" % (app_id, stream_name)
        for event in ledger["failover_events"]
        for app_id, stream_name in event["stranded"]
    }
    flagged = {
        record["label"] for record in ledger["streams"] if record["failed"]
    }
    if stranded != flagged:
        problems.append(
            "stranded streams %r != failed-flagged streams %r"
            % (sorted(stranded), sorted(flagged))
        )
    return problems


def check_exactly_once(result):
    ledger = result.ledger
    detect_ns = ledger["detect_ns"]
    events = ledger["failover_events"]
    problems = []
    fires = [
        (time_ns, tuple(target))
        for time_ns, kind, phase, target in ledger["fault_events"]
        if kind == "datapath_failure" and phase == "fire"
    ]
    clears = [
        (time_ns, tuple(target))
        for time_ns, kind, phase, target in ledger["fault_events"]
        if kind == "datapath_failure" and phase == "clear"
    ]
    for fired_at, target in fires:
        host, datapath = target[0], target[1]
        restore_delay = None
        for cleared_at, clear_target in clears:
            if clear_target[:2] == target[:2] and cleared_at >= fired_at:
                delay = cleared_at - fired_at
                if restore_delay is None or delay < restore_delay:
                    restore_delay = delay
        if restore_delay is not None and restore_delay == detect_ns:
            continue  # detect/restore tie: ordering is ambiguous by design
        expected = 0 if (
            restore_delay is not None and restore_delay < detect_ns
        ) else 1
        matching = [
            event for event in events
            if event["host"] == host and event["datapath"] == datapath
            and event["failed_at"] == fired_at
        ]
        if len(matching) != expected:
            problems.append(
                "failure epoch (%s, %s, t=%r): expected %d failover "
                "event(s), saw %d (restore delay %r, detect %r)"
                % (host, datapath, fired_at, expected, len(matching),
                   restore_delay, detect_ns)
            )
    # global exactly-once: no two events may share a failure epoch
    seen = set()
    for event in events:
        epoch = (event["host"], event["datapath"], event["failed_at"])
        if epoch in seen:
            problems.append("duplicate failover event for epoch %r" % (epoch,))
        seen.add(epoch)
    return problems
