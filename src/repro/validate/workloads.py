"""Seeded random workloads: the inputs of the differential oracle.

A :class:`WorkloadSpec` is a compact, JSON-serializable description of one
end-to-end scenario: topology profile, traffic shape (streaming fan-out or
ping-pong), QoS policy, and an optional fault plan.  :func:`random_spec`
draws a spec from a private ``random.Random(seed)`` — the generator never
touches the simulator's rng, so the same seed always yields the same
scenario regardless of which engine later runs it.

:func:`run_spec` executes one spec on either engine and returns a
:class:`RunResult`: the sealed :class:`~repro.validate.canonical.CanonicalTrace`
plus an accounting *ledger* — every counter the property checkers in
:mod:`repro.validate.properties` need to assert packet conservation, FIFO
delivery, QoS-mapping monotonicity, and exactly-once failure detection.

The fault-plan grammar (one plan per spec, a tuple of primitives):

``()``
    fault-free run;
``("failover", at_ns, restore_after_ns_or_None)``
    fail the publisher stream's datapath at ``at_ns`` (restored after the
    given delay, or never) — drawing ``restore_after < failover_detect_ns``
    exercises the restore-before-detect epoch guard;
``("strand", at_ns)``
    fail *every* instantiated binding on the publisher host: zero
    survivors, so affected streams strand and emits raise
    :class:`~repro.core.errors.DatapathFailedError`;
``("random", fault_seed, n_faults)``
    a :meth:`repro.faults.FaultSchedule.random` scenario (link flaps, loss
    bursts, NIC squeezes, datapath stalls, CPU slowdowns).
"""

import json
import random
from dataclasses import asdict, dataclass

from repro.core.errors import DatapathFailedError
from repro.core.qos import Acceleration, QosPolicy
from repro.core.runtime import InsaneDeployment
from repro.core.session import Session
from repro.faults import FaultSchedule
from repro.hw.profiles import PROFILES
from repro.hw.topology import Testbed
from repro.simnet import Simulator, Timeout
from repro.simnet.legacy import LegacySimulator
from repro.validate.canonical import TraceProbe

ENGINES = {"fast": Simulator, "legacy": LegacySimulator}

#: bytes of big-endian sequence number each producer writes into its buffer
SEQ_BYTES = 8

#: health-monitor detection latency assumed by random_spec's
#: restore-before-detect bias (the RuntimeConfig default).
DETECT_NS = 50_000.0


@dataclass(frozen=True)
class WorkloadSpec:
    """One differential-validation scenario, fully determined by its fields."""

    seed: int
    kind: str = "stream"          # "stream" | "pingpong"
    profile: str = "local"        # "local" | "cloud"
    messages: int = 60
    size: int = 256               # declared emit length (bytes)
    interval_ns: float = 20_000.0
    accelerated: bool = True
    constrained: bool = False
    time_sensitive: bool = False
    sinks: int = 1                # subscriber fan-out (stream kind only)
    fault_plan: tuple = ()

    def policy(self):
        kwargs = {"acceleration": "fast" if self.accelerated else "slow"}
        if self.accelerated and self.constrained:
            kwargs["constrained"] = True
        if self.time_sensitive:
            kwargs["time_sensitive"] = True
        return QosPolicy.from_kwargs(**kwargs)

    def horizon_ns(self):
        """Rough duration of the workload's active phase."""
        return max(self.messages * self.interval_ns, 200_000.0)

    def to_json(self):
        record = asdict(self)
        record["fault_plan"] = list(self.fault_plan)
        return json.dumps(record, sort_keys=True)

    @classmethod
    def from_json(cls, text):
        record = json.loads(text)
        record["fault_plan"] = tuple(record.get("fault_plan", ()))
        return cls(**record)

    def describe(self):
        """A compact one-line human description."""
        parts = [
            "seed=%d" % self.seed, self.kind, self.profile,
            "n=%d" % self.messages, "size=%d" % self.size,
            "ivl=%g" % self.interval_ns,
            "qos=%s%s%s" % (
                "fast" if self.accelerated else "slow",
                "+constrained" if self.constrained else "",
                "+ts" if self.time_sensitive else "",
            ),
        ]
        if self.kind == "stream":
            parts.append("sinks=%d" % self.sinks)
        if self.fault_plan:
            parts.append("fault=%s" % (self.fault_plan,))
        return " ".join(parts)


def random_spec(seed):
    """Draw a :class:`WorkloadSpec` from ``random.Random(seed)``.

    The distribution is biased toward the failover edge cases the fault
    model is most likely to get wrong: restore-before-detect windows and
    zero-survivor stranding both appear with non-trivial probability.
    """
    rng = random.Random(seed)
    kind = "pingpong" if rng.random() < 0.3 else "stream"
    profile = "cloud" if rng.random() < 0.25 else "local"
    messages = rng.randrange(30, 121)
    size = rng.choice((32, 64, 256, 512, 1024))
    interval_ns = float(rng.choice((5_000, 20_000, 50_000)))
    accelerated = rng.random() < 0.75
    constrained = accelerated and rng.random() < 0.3
    time_sensitive = rng.random() < 0.2
    sinks = rng.randrange(1, 4) if kind == "stream" else 1
    horizon = max(messages * interval_ns, 200_000.0)
    draw = rng.random()
    if draw < 0.5:
        plan = ()
    elif draw < 0.75:
        at = rng.uniform(0.1, 0.6) * horizon
        which = rng.random()
        if which < 1.0 / 3.0:
            restore = None                                   # permanent
        elif which < 2.0 / 3.0:
            restore = rng.uniform(0.1, 0.9) * DETECT_NS      # before detect
        else:
            restore = rng.uniform(2.0, 6.0) * DETECT_NS      # after detect
        plan = ("failover", at, restore)
    elif draw < 0.9:
        plan = ("random", rng.randrange(1 << 16), rng.randrange(2, 6))
    else:
        plan = ("strand", rng.uniform(0.1, 0.5) * horizon)
    return WorkloadSpec(
        seed=seed, kind=kind, profile=profile, messages=messages, size=size,
        interval_ns=interval_ns, accelerated=accelerated,
        constrained=constrained, time_sensitive=time_sensitive, sinks=sinks,
        fault_plan=plan,
    )


@dataclass
class RunResult:
    """One executed workload: its canonical trace plus the accounting ledger."""

    spec: WorkloadSpec
    engine: str
    trace: object          # CanonicalTrace
    ledger: dict


def run_spec(spec, engine="fast", profile=None):
    """Run ``spec`` on ``engine`` ("fast" | "legacy") to quiesce.

    ``profile`` optionally overrides the testbed profile object (the
    differential CLI uses this to perturb one side's cost model and prove
    the oracle catches it).
    """
    sim = ENGINES[engine](seed=spec.seed)
    prof = profile if profile is not None else PROFILES[spec.profile]
    testbed = Testbed(prof, hosts=2, seed=spec.seed, sim=sim)
    probe = TraceProbe(testbed)
    deployment = InsaneDeployment(testbed)
    policy = spec.policy()

    pub = Session(deployment.runtime(0), "pub")
    sub = Session(deployment.runtime(1), "sub")

    emit_log = {}        # producer label -> [(source, emit_id, seq), ...]
    delivery_log = {}    # sink label -> [seq, ...] in consumption order
    refused = {"count": 0}
    sinks = []           # (label, Sink handle) for residual accounting
    streams = []         # (label, Stream handle) for mapping checks

    def producer(session, source, label, channel, count):
        for seq in range(count):
            buffer = yield from session.get_buffer_wait(source, spec.size)
            buffer.write(seq.to_bytes(SEQ_BYTES, "big"))
            try:
                emit_id = yield from session.emit_data(
                    source, buffer, length=spec.size
                )
            except DatapathFailedError:
                session.release_buffer(source, buffer)
                refused["count"] += 1
                probe.note("emit_refused", sim.now, label, seq)
                yield Timeout(spec.interval_ns)
                continue
            emit_log[label].append((source, emit_id, seq))
            probe.emit(label, channel, seq)
            yield Timeout(spec.interval_ns)

    def consumer(session, sink, label):
        while True:
            delivery = yield from session.consume_data(sink)
            seq = int.from_bytes(delivery.payload()[:SEQ_BYTES], "big")
            delivery_log[label].append(seq)
            probe.deliver(label, delivery.stream, delivery.channel,
                          seq, delivery.length)
            session.release_buffer(sink, delivery)

    if spec.kind == "stream":
        pub_stream = pub.create_stream(policy, name="val")
        sub_stream = sub.create_stream(policy, name="val")
        streams += [
            ("pub/val", pub_stream, pub_stream.datapath),
            ("sub/val", sub_stream, sub_stream.datapath),
        ]
        source = pub.create_source(pub_stream, channel=1)
        emit_log["pub"] = []
        for index in range(spec.sinks):
            label = "sink%d" % index
            sink = sub.create_sink(sub_stream, channel=1)
            sinks.append((label, sink))
            delivery_log[label] = []
            sim.process(consumer(sub, sink, label), name="consumer.%s" % label)
        sim.process(
            producer(pub, source, "pub", 1, spec.messages), name="producer"
        )
        sinks_per_frame = spec.sinks
    elif spec.kind == "pingpong":
        pub_stream = pub.create_stream(policy, name="val")
        sub_stream = sub.create_stream(policy, name="val")
        streams += [
            ("pub/val", pub_stream, pub_stream.datapath),
            ("sub/val", sub_stream, sub_stream.datapath),
        ]
        c_source = pub.create_source(pub_stream, channel=1)
        c_sink = pub.create_sink(pub_stream, channel=2)
        s_sink = sub.create_sink(sub_stream, channel=1)
        s_source = sub.create_source(sub_stream, channel=2)
        emit_log["client"] = []
        emit_log["server"] = []
        delivery_log["client"] = []
        delivery_log["server"] = []
        sinks += [("client", c_sink), ("server", s_sink)]

        def server():
            while True:
                delivery = yield from sub.consume_data(s_sink)
                seq = int.from_bytes(delivery.payload()[:SEQ_BYTES], "big")
                delivery_log["server"].append(seq)
                probe.deliver("server", delivery.stream, delivery.channel,
                              seq, delivery.length)
                sub.release_buffer(s_sink, delivery)
                echo = yield from sub.get_buffer_wait(s_source, spec.size)
                echo.write(seq.to_bytes(SEQ_BYTES, "big"))
                try:
                    emit_id = yield from sub.emit_data(
                        s_source, echo, length=spec.size
                    )
                except DatapathFailedError:
                    sub.release_buffer(s_source, echo)
                    refused["count"] += 1
                    probe.note("emit_refused", sim.now, "server", seq)
                    continue
                emit_log["server"].append((s_source, emit_id, seq))
                probe.emit("server", 2, seq)

        def client():
            for seq in range(spec.messages):
                buffer = yield from pub.get_buffer_wait(c_source, spec.size)
                buffer.write(seq.to_bytes(SEQ_BYTES, "big"))
                try:
                    emit_id = yield from pub.emit_data(
                        c_source, buffer, length=spec.size
                    )
                except DatapathFailedError:
                    pub.release_buffer(c_source, buffer)
                    refused["count"] += 1
                    probe.note("emit_refused", sim.now, "client", seq)
                    yield Timeout(spec.interval_ns)
                    continue
                emit_log["client"].append((c_source, emit_id, seq))
                probe.emit("client", 1, seq)
                delivery = yield from pub.consume_data(c_sink)
                rseq = int.from_bytes(delivery.payload()[:SEQ_BYTES], "big")
                delivery_log["client"].append(rseq)
                probe.deliver("client", delivery.stream, delivery.channel,
                              rseq, delivery.length)
                pub.release_buffer(c_sink, delivery)
                yield Timeout(spec.interval_ns)

        sim.process(server(), name="server")
        sim.process(client(), name="client")
        sinks_per_frame = 1
    else:
        raise ValueError("unknown workload kind %r" % (spec.kind,))

    for label, stream, initial in streams:
        probe.note("map", sim.now, label, initial)

    fault_trace = None
    if spec.fault_plan:
        plan = spec.fault_plan
        if plan[0] == "failover":
            schedule = FaultSchedule().datapath_failure(
                at=plan[1], for_ns=plan[2], host=0,
                datapath=pub_stream.datapath,
            )
        elif plan[0] == "strand":
            schedule = FaultSchedule()
            for name in list(deployment.runtime(0).bindings):
                schedule.datapath_failure(
                    at=plan[1], host=0, datapath=name, reason="strand"
                )
        elif plan[0] == "random":
            schedule = FaultSchedule.random(
                plan[1], spec.horizon_ns(), faults=plan[2], hosts=2,
                links=len(testbed.links), datapaths=("dpdk", "xdp", "udp"),
            )
        else:
            raise ValueError("unknown fault plan %r" % (plan,))
        fault_trace = schedule.apply(testbed, deployment)

    sim.run()

    outcomes = {}
    for label, entries in sorted(emit_log.items()):
        session = pub if label in ("pub", "client") else sub
        for source, emit_id, _seq in entries:
            outcome = str(session.check_emit_outcome(source, emit_id))
            outcomes[outcome] = outcomes.get(outcome, 0) + 1

    ledger = _ledger(
        spec, sim, testbed, deployment, streams, sinks,
        emit_log, delivery_log, refused["count"], outcomes,
        sinks_per_frame, fault_trace,
    )
    trace = probe.finish(
        fault_trace=fault_trace,
        deployment=deployment,
        extra={"outcomes": outcomes, "refused": refused["count"]},
    )
    return RunResult(spec=spec, engine=engine, trace=trace, ledger=ledger)


def _ledger(spec, sim, testbed, deployment, streams, sinks, emit_log,
            delivery_log, refused, outcomes, sinks_per_frame, fault_trace):
    """Collect every counter the property checkers need, as plain data."""
    counters = {
        "tx_datapath": 0, "failed_drops": 0, "sched_drops": 0,
        "pool_drops": 0, "no_sink_drops": 0, "unknown_drops": 0,
        "udp_rx_packets": 0, "udp_no_socket_drops": 0, "udp_sockbuf_drops": 0,
        "endpoint_dropped": 0, "consumed": 0,
        "nic_tx": 0, "nic_rx": 0, "nic_rx_dropped": 0,
        "link_lost": 0, "switch_forwarded": 0, "switch_dropped": 0,
    }
    residuals = {
        "tx_rings": 0, "sched": 0, "rx_queues": 0,
        "nic_rx_ring": 0, "sink_rings": 0,
    }
    detect_ns = None
    for runtime in deployment.runtimes.values():
        if detect_ns is None:
            detect_ns = runtime.config.failover_detect_ns
        for binding in runtime.bindings.values():
            counters["tx_datapath"] += binding.datapath.tx_packets.value
            counters["failed_drops"] += binding.datapath.failed_drops.value
            counters["sched_drops"] += binding.sched_drops.value
            counters["pool_drops"] += binding.pool_drops.value
            counters["no_sink_drops"] += binding.no_sink_drops.value
            counters["unknown_drops"] += binding.unknown_drops.value
            if binding.name == "udp":
                counters["udp_rx_packets"] += binding.datapath.rx_packets.value
                counters["udp_no_socket_drops"] += (
                    binding.datapath.no_socket_drops.value
                )
                counters["udp_sockbuf_drops"] += (
                    binding.datapath.socket_overflow_drops.value
                )
            residuals["tx_rings"] += sum(
                len(ring) for ring in binding.tx_rings.values()
            )
            residuals["sched"] += len(binding.fifo)
            if binding.tsn is not None:
                residuals["sched"] += len(binding.tsn)
            residuals["rx_queues"] += len(binding.rx_queue)
    for host in testbed.hosts:
        counters["nic_tx"] += host.nic.tx_frames.value
        counters["nic_rx"] += host.nic.rx_frames.value
        counters["nic_rx_dropped"] += host.nic.rx_dropped.value
        residuals["nic_rx_ring"] += len(host.nic.rx_ring)
    for link in testbed.links:
        counters["link_lost"] += link.lost_frames.value
    if testbed.switch is not None:
        counters["switch_forwarded"] = testbed.switch.forwarded.value
        counters["switch_dropped"] = testbed.switch.dropped.value
    for _label, sink in sinks:
        counters["consumed"] += sink.received.value
        counters["endpoint_dropped"] += sink.endpoint.dropped.value
        residuals["sink_rings"] += len(sink.endpoint.ring)

    failover_events = [
        {
            "host": event.host, "datapath": event.datapath,
            "failed_at": event.failed_at, "detected_at": event.detected_at,
            "remapped": [tuple(r) for r in event.remapped],
            "stranded": [tuple(s) for s in event.stranded],
            "migrated": event.migrated,
        }
        for runtime in deployment.runtimes.values()
        for event in runtime.health.events
    ]
    warnings = [
        warning
        for runtime in deployment.runtimes.values()
        for warning in runtime.warnings
    ]
    return {
        "spec": json.loads(spec.to_json()),
        "emitted": sum(len(entries) for entries in emit_log.values()),
        "refused": refused,
        "outcomes": outcomes,
        "emit_seqs": {
            label: [seq for _s, _e, seq in entries]
            for label, entries in emit_log.items()
        },
        "deliveries": {label: list(seqs) for label, seqs in delivery_log.items()},
        "sinks_per_frame": sinks_per_frame,
        "streams": [
            {
                "label": label,
                "accelerated": stream.policy.acceleration
                is Acceleration.ACCELERATED,
                "initial": initial,
                "final": stream.datapath,
                "failed": stream.failed,
                "degraded": stream.degraded,
                "failovers": stream.failovers,
            }
            for label, stream, initial in streams
        ],
        "warnings": warnings,
        "failover_events": failover_events,
        "fault_events": (
            [list(event) for event in fault_trace.events]
            if fault_trace is not None else []
        ),
        "detect_ns": detect_ns,
        "counters": counters,
        "residuals": residuals,
        "sim_ns": sim.now,
        "failures": [
            (name, "%s: %s" % (type(exc).__name__, exc))
            for name, exc in sim.failures
        ],
        "stats": sim.stats(),
    }
