"""Wire-level tracing: tcpdump-style capture of simulated links."""

from repro.trace.capture import CaptureRecord, WireTap

__all__ = ["CaptureRecord", "WireTap"]
