"""A tcpdump-like capture facility for simulated links.

Attach a :class:`WireTap` to any link (or every link of a testbed) to
record the frames crossing it — including frames dropped by injected loss
— then filter and pretty-print them.  Useful both for debugging middleware
behaviour and for asserting on wire-level properties in tests (e.g. "the
co-located path produced zero frames", "fragments left in order").
"""

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class CaptureRecord:
    """One captured frame crossing one link."""

    ns: float
    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    payload_len: int
    wire_size: int
    dropped: bool
    seq: int

    def __str__(self):
        flag = " DROPPED" if self.dropped else ""
        return "%12.3f us  %s:%d > %s:%d  len=%d wire=%d%s" % (
            self.ns / 1000.0,
            self.src_ip,
            self.src_port,
            self.dst_ip,
            self.dst_port,
            self.payload_len,
            self.wire_size,
            flag,
        )


class WireTap:
    """Records frames on the links it is attached to."""

    def __init__(self, max_records=100_000):
        self.max_records = max_records
        self.records = []
        self.truncated = False

    # -- attachment -----------------------------------------------------------

    def attach(self, link):
        """Start capturing on one link."""
        link.taps.append(self)
        return self

    def attach_all(self, testbed):
        """Capture every link of a testbed."""
        for link in testbed.links:
            self.attach(link)
        return self

    # -- recording ---------------------------------------------------------------

    def record(self, frame, now, dropped=False):
        if len(self.records) >= self.max_records:
            self.truncated = True
            return
        packet = frame.packet
        self.records.append(
            CaptureRecord(
                ns=now,
                src_ip=packet.src_ip,
                dst_ip=packet.dst_ip,
                src_port=packet.src_port,
                dst_port=packet.dst_port,
                payload_len=packet.payload_len,
                wire_size=packet.wire_size,
                dropped=dropped,
                seq=packet.seq,
            )
        )

    # -- analysis -----------------------------------------------------------------

    def __len__(self):
        return len(self.records)

    def filter(self, src_ip=None, dst_ip=None, port=None, dropped=None):
        """Records matching every given criterion."""
        out = []
        for record in self.records:
            if src_ip is not None and record.src_ip != src_ip:
                continue
            if dst_ip is not None and record.dst_ip != dst_ip:
                continue
            if port is not None and port not in (record.src_port, record.dst_port):
                continue
            if dropped is not None and record.dropped != dropped:
                continue
            out.append(record)
        return out

    def bytes_on_wire(self):
        return sum(r.wire_size for r in self.records if not r.dropped)

    def to_text(self, limit=None):
        """tcpdump-style dump of the capture."""
        records = self.records if limit is None else self.records[:limit]
        lines = [str(record) for record in records]
        if self.truncated:
            lines.append("... capture truncated at %d records" % self.max_records)
        return "\n".join(lines)
