"""Capability-based stream access control (paper §8, "Security").

The paper argues that INSANE's centralized runtime "makes it easier for
infrastructure providers to control the whole networking activity"; this
module is that control point.  An infrastructure provider holds a secret
and issues HMAC-signed *credentials* granting an application the right to
publish and/or subscribe on a stream; the runtime verifies credentials at
source/sink creation and audits every decision.  Enforcement is off the
datapath entirely — stream setup is control-plane work — so the paper's
"no expectations of strong degradation" holds by construction.
"""

import hashlib
import hmac
from dataclasses import dataclass
from typing import Optional

from repro.core.errors import InsaneError

RIGHT_PUBLISH = "publish"
RIGHT_SUBSCRIBE = "subscribe"
_RIGHTS = frozenset({RIGHT_PUBLISH, RIGHT_SUBSCRIBE})


class SecurityError(InsaneError):
    """Raised when an operation lacks a valid credential."""


@dataclass(frozen=True)
class Credential:
    """A signed grant: ``app_id`` may exercise ``rights`` on ``stream``."""

    app_id: str
    stream: str
    rights: frozenset
    expires_ns: Optional[float]
    signature: bytes

    def describe(self):
        return "%s:%s:%s" % (self.app_id, self.stream, "+".join(sorted(self.rights)))


class AccessController:
    """Issues and verifies credentials; keeps an audit trail."""

    def __init__(self, secret, sim=None):
        if not secret:
            raise ValueError("the provider secret must be non-empty")
        self._secret = bytes(secret)
        self.sim = sim
        self.audit = []
        self.denials = 0

    # -- issuing ------------------------------------------------------------

    def issue(self, app_id, stream, rights, ttl_ns=None):
        """Create a credential for ``app_id`` on ``stream``."""
        rights = frozenset(rights)
        if not rights or not rights <= _RIGHTS:
            raise ValueError("rights must be a non-empty subset of %s" % sorted(_RIGHTS))
        expires_ns = None
        if ttl_ns is not None:
            if self.sim is None:
                raise ValueError("a TTL requires a simulator clock")
            expires_ns = self.sim.now + ttl_ns
        signature = self._sign(app_id, stream, rights, expires_ns)
        return Credential(app_id, stream, rights, expires_ns, signature)

    def _sign(self, app_id, stream, rights, expires_ns):
        message = "|".join(
            [app_id, stream, ",".join(sorted(rights)), repr(expires_ns)]
        ).encode("utf-8")
        return hmac.new(self._secret, message, hashlib.sha256).digest()

    # -- verification ------------------------------------------------------------

    def check(self, credential, app_id, stream, right):
        """Validate a credential for one operation; returns True/False and
        records the decision in the audit trail."""
        granted = self._valid(credential, app_id, stream, right)
        now = self.sim.now if self.sim is not None else 0
        self.audit.append((now, app_id, stream, right, granted))
        if not granted:
            self.denials += 1
        return granted

    def _valid(self, credential, app_id, stream, right):
        if credential is None:
            return False
        if credential.app_id != app_id or credential.stream != stream:
            return False
        if right not in credential.rights:
            return False
        if credential.expires_ns is not None:
            if self.sim is None or self.sim.now > credential.expires_ns:
                return False
        expected = self._sign(
            credential.app_id, credential.stream, credential.rights, credential.expires_ns
        )
        return hmac.compare_digest(expected, credential.signature)

    def enforce(self, credential, app_id, stream, right):
        """Like :meth:`check`, but raises :class:`SecurityError` on denial."""
        if not self.check(credential, app_id, stream, right):
            raise SecurityError(
                "application %r denied %s on stream %r" % (app_id, right, stream)
            )
