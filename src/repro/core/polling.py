"""The pool of polling threads executing datapath logic (paper §5.3).

Each thread is pinned to a core and drives one or more datapath bindings:
it drains the client TX rings through the packet scheduler into the
datapath, and drains the datapath's receive queue into sink rings.  Threads
pause automatically when idle and are kicked awake by ring/queue activity
(or by the next TSN gate opening), so an idle runtime consumes no simulated
CPU — matching the paper's "threads are automatically paused when idle".
"""

from repro.simnet import Signal, Wait


class PollingThread:
    """One pinned polling thread serving a set of datapath bindings."""

    def __init__(self, runtime, name):
        self.runtime = runtime
        self.host = runtime.host
        self.sim = runtime.sim
        self.name = name
        self.bindings = []
        self.running = True
        self._signal = None
        self._pending_kick = False
        self._wake_handle = None
        self.host.pin_core()
        self.process = self.sim.process(self._loop(), name=name)

    def add_binding(self, binding):
        binding.threads.append(self)
        self.bindings.append(binding)
        self.kick()

    def kick(self):
        """Wake the thread if it is parked; remember the kick otherwise."""
        if self._signal is not None and not self._signal.fired:
            signal, self._signal = self._signal, None
            signal.succeed()
        else:
            self._pending_kick = True

    def stop(self):
        self.running = False
        self.kick()

    # -- main loop ------------------------------------------------------------

    def _loop(self):
        try:
            if getattr(self.sim, "legacy_stack", False):
                yield from self._legacy_loop()
            else:
                yield from self._fast_loop()
        finally:
            self.host.unpin_core()

    def _fast_loop(self):
        """Poll bindings, but only enter a pass that can make progress.

        ``tx_pass``/``rx_pass`` are generators: calling them allocates a
        generator object and runs the full drain scaffolding even when
        every queue is empty.  The pending checks are plain attribute
        reads, and a pass that would find nothing yields nothing — so
        skipping it is invisible to the simulation and only saves wall
        clock.  A stale positive is harmless: the pass runs, finds no
        eligible work (e.g. a closed TSN gate), and reports no progress,
        exactly as the unconditional loop would.
        """
        while self.running:
            progressed = False
            for binding in self.bindings:
                if binding.tx_pending():
                    progressed = (yield from binding.tx_pass()) or progressed
                if binding.rx_pending():
                    progressed = (yield from binding.rx_pass()) or progressed
            if progressed:
                continue
            if self._pending_kick:
                self._pending_kick = False
                continue
            yield from self._park()

    def _legacy_loop(self):
        """The pre-overhaul loop: every binding pays a full (generator)
        tx/rx pass per iteration whether or not any work is pending."""
        while self.running:
            progressed = False
            for binding in list(self.bindings):
                progressed = (yield from binding.tx_pass()) or progressed
                progressed = (yield from binding.rx_pass()) or progressed
            if progressed:
                continue
            if self._pending_kick:
                self._pending_kick = False
                continue
            yield from self._park()

    def _park(self):
        """Idle: sleep until kicked or until the next TSN gate opens."""
        self._signal = Signal(self.sim)
        wake_at = self._earliest_scheduler_wake()
        if wake_at is not None and wake_at > self.sim.now:
            self._wake_handle = self.sim.schedule_cancellable_at(wake_at, self.kick)
        yield Wait(self._signal)
        self._signal = None
        self._pending_kick = False
        if self._wake_handle is not None:
            self._wake_handle.cancel()
            self._wake_handle = None

    def _earliest_scheduler_wake(self):
        earliest = None
        for binding in self.bindings:
            ready = binding.next_scheduler_ready(self.sim.now)
            if ready is not None and (earliest is None or ready < earliest):
                earliest = ready
        return earliest
