"""Functional API mirroring the paper's Fig. 2 one-to-one.

The object-oriented :class:`~repro.core.session.Session` is the primary
Python interface; these thin wrappers exist so code can be written with the
exact vocabulary of the paper::

    session = init_session(runtime)
    stream = create_stream(session, make_options(acceleration="fast"))
    source = create_source(session, stream, channel=4)
    buffer = get_buffer(session, source, 64)
    emit_id = yield from emit_data(session, source, buffer)
    ...
    close_session(session)

Error handling is typed: every failure raises an
:class:`~repro.core.errors.InsaneError` subclass carrying the paper-style
integer ``code``, and :func:`check_emit_outcome` returns an
:class:`~repro.core.outcomes.EmitOutcome` (string-compatible with the
historical plain values).  The session object returned by
:func:`init_session` is also a context manager — ``with init_session(rt)
as session:`` — and every ``close_*`` call is idempotent.
"""

from repro.core.qos import QosPolicy
from repro.core.session import Session


def make_options(**kwargs):
    """``options_t`` — build validated stream QoS options.

    Thin alias of :meth:`QosPolicy.from_kwargs`; contradictory
    combinations raise :class:`~repro.core.errors.QosValidationError`.
    """
    return QosPolicy.from_kwargs(**kwargs)


def init_session(runtime, name=None):
    """``int init_session()`` — open a session with the local runtime."""
    return Session(runtime, name=name)


def close_session(session):
    """``int close_session()`` — close and reclaim leaked slots."""
    return session.close()


def create_stream(session, opts=None, name="default"):
    """``stream_t create_stream(options_t opts)``."""
    return session.create_stream(opts, name=name)


def close_stream(session, stream):
    """``void close_stream(stream_t stream)``."""
    session.close_stream(stream)


def create_source(session, stream, channel):
    """``source_t create_source(stream_t stream, int channel)``."""
    return session.create_source(stream, channel)


def close_source(session, source):
    """``void close_source(source_t source)``."""
    session.close_source(source)


def get_buffer(session, source, size, flags=0):
    """``buffer_t get_buffer(source_t src, size_t size, int flags)``."""
    return session.get_buffer(source, size)


def emit_data(session, source, buffer, length=None):
    """``int emit_data(source_t src, buffer_t buffer)`` (generator)."""
    return (yield from session.emit_data(source, buffer, length=length))


def check_emit_outcome(session, source, emit_id):
    """``int check_emit_outcome(source_t source, int id)``."""
    return session.check_emit_outcome(source, emit_id)


def create_sink(session, stream, channel, data_cb=None):
    """``sink_t create_sink(stream_t stream, int channel, data_cb cb)``."""
    return session.create_sink(stream, channel, callback=data_cb)


def close_sink(session, sink):
    """``void close_sink(sink_t sink)``."""
    session.close_sink(sink)


def data_available(session, sink, flags=0):
    """``int data_available(sink_t sink, int flags)``."""
    return session.data_available(sink)


def consume_data(session, sink, blocking=True):
    """``buffer_t consume_data(sink_t sink, int flags)`` (generator)."""
    return (yield from session.consume_data(sink, blocking=blocking))


def release_buffer(session, sink, delivery):
    """``void release_buffer(sink_t sink, buffer_t buffer)``."""
    session.release_buffer(sink, delivery)
