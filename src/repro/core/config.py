"""Runtime configuration knobs."""

from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass
class RuntimeConfig:
    """Tunables of one INSANE runtime instance.

    ``thread_mapping`` controls how datapath plugins map onto polling
    threads (paper §5.3): ``"per-datapath"`` pins one thread per plugin
    (the evaluation setup, best performance); ``"shared"`` multiplexes all
    plugins onto a single thread (lowest resource usage, lower
    performance).
    """

    thread_mapping: str = "per-datapath"     # or "shared"
    #: polling threads per datapath plugin (paper §8 proposes >1 to relieve
    #: the CPU-bound receive pipeline); only meaningful with "per-datapath"
    threads_per_datapath: int = 1
    tx_burst: Optional[int] = None           # override profile insane_tx_burst
    rx_burst: Optional[int] = None           # override profile dpdk_rx_burst
    opportunistic_batching: bool = True      # Fig. 8a ablation knob
    jumbo_frames: bool = True
    pool_slots: Optional[int] = None
    ipc_ring_slots: Optional[int] = None
    mapping_strategy: Optional[Callable] = None  # custom QoS mapping
    gate_control_list: object = None          # TSN GCL override
    #: scheduler for best-effort traffic: "fifo" (paper default), "drr"
    #: (per-application byte fairness), or "priority"
    best_effort_scheduler: str = "fifo"
    #: keep the kernel datapath listening on every runtime: the universal
    #: fallback for publishers on heterogeneous deployments
    always_kernel_listener: bool = True
    #: optional AccessController enforcing per-stream publish/subscribe
    #: rights at endpoint creation (paper §8, Security)
    access_controller: object = None
    trace: bool = False                       # per-packet breakdown stamps
    #: optional repro.obs.LifecycleTracer collecting span-based lifecycle
    #: traces; implies per-message records even where ``trace`` is off.
    #: Shared by every runtime of a deployment (the timeline is global).
    tracer: object = None
    warn: Optional[Callable[[str], None]] = None  # QoS fallback warnings
    #: health-monitor sampling interval: ns between a datapath binding
    #: failing and the runtime detecting it and re-mapping affected
    #: streams onto the best surviving datapath (repro.faults)
    failover_detect_ns: float = 50_000.0

    def __post_init__(self):
        if self.thread_mapping not in ("per-datapath", "shared"):
            raise ValueError(
                "thread_mapping must be 'per-datapath' or 'shared', got %r"
                % (self.thread_mapping,)
            )
        if self.threads_per_datapath < 1:
            raise ValueError("threads_per_datapath must be >= 1")
        if self.best_effort_scheduler not in ("fifo", "drr", "priority"):
            raise ValueError(
                "best_effort_scheduler must be fifo, drr, or priority; got %r"
                % (self.best_effort_scheduler,)
            )
        if self.failover_detect_ns < 0:
            raise ValueError("failover_detect_ns must be >= 0")
