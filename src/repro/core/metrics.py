"""Prometheus-style metrics export for INSANE runtimes.

Edge operators scrape text metrics; this renders a runtime's (or a whole
deployment's) :meth:`~repro.core.runtime.InsaneRuntime.stats` snapshot in
the Prometheus exposition format, one gauge family per counter.
"""


def _escape(value):
    return str(value).replace("\\", "\\\\").replace('"', '\\"')


def _line(name, labels, value):
    rendered = ",".join('%s="%s"' % (k, _escape(v)) for k, v in sorted(labels.items()))
    return "insane_%s{%s} %s" % (name, rendered, value)


def export_runtime(runtime):
    """Metric lines for one runtime."""
    stats = runtime.stats()
    host = {"host": stats["host"], "ip": stats["ip"]}
    lines = [
        _line("runtime_version", host, runtime.version),
        _line("sessions", host, len(stats["sessions"])),
        _line("sink_rings", host, stats["sink_rings"]),
        _line("warnings_total", host, len(stats["warnings"])),
        _line("pool_slots", host, stats["memory"]["slots"]),
        _line("pool_in_use", host, stats["memory"]["in_use"]),
        _line("pool_allocations_total", host, stats["memory"]["allocations"]),
        _line("pool_exhaustions_total", host, stats["memory"]["exhaustions"]),
    ]
    for name, binding in sorted(stats["bindings"].items()):
        labels = dict(host, datapath=name)
        lines.append(_line("binding_tx_packets_total", labels, binding["tx_packets"]))
        lines.append(_line("binding_rx_packets_total", labels, binding["rx_packets"]))
        lines.append(_line("binding_pool_drops_total", labels, binding["pool_drops"]))
        lines.append(_line("binding_no_sink_drops_total", labels, binding["no_sink_drops"]))
        lines.append(_line("binding_unknown_drops_total", labels, binding["unknown_drops"]))
        lines.append(_line("binding_scheduler_backlog", labels, binding["scheduler_backlog"]))
        lines.append(_line("binding_rx_queue_depth", labels, binding["rx_queue_depth"]))
        lines.append(_line("binding_polling_threads", labels, binding["polling_threads"]))
        for app_id, ring in sorted(binding["tx_rings"].items()):
            ring_labels = dict(labels, app=app_id)
            lines.append(_line("tx_ring_depth", ring_labels, ring["depth"]))
            lines.append(_line("tx_ring_enqueued_total", ring_labels, ring["enqueued"]))
            lines.append(_line("tx_ring_rejected_total", ring_labels, ring["rejected"]))
    return lines


def export_deployment(deployment):
    """The full scrape body for every runtime of a deployment."""
    lines = []
    for runtime in deployment.runtimes.values():
        lines.extend(export_runtime(runtime))
    return "\n".join(lines) + "\n"
