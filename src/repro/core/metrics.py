"""Prometheus-style metrics export for INSANE runtimes.

Edge operators scrape text metrics; this renders a runtime's (or a whole
deployment's) :meth:`~repro.core.runtime.InsaneRuntime.stats` snapshot in
the Prometheus text exposition format: samples grouped by family, each
family preceded by its ``# HELP``/``# TYPE`` header, label values escaped
per the spec (backslash, double quote, and newline).

When a :class:`repro.obs.LifecycleTracer` is passed along, the scrape
body additionally carries histogram families with the tracer's per-stage
latency distributions (see :mod:`repro.obs.prometheus`).
"""

#: Family metadata: help text, plus the type inferred from the name
#: (``*_total`` families are counters, everything else a gauge).
_HELP = {
    "runtime_version": "Runtime software version (bumped on restart).",
    "sessions": "Open client sessions.",
    "sink_rings": "Allocated sink delivery rings.",
    "warnings_total": "Runtime warnings emitted.",
    "pool_slots": "Memory-pool slots configured.",
    "pool_in_use": "Memory-pool slots currently in use.",
    "pool_allocations_total": "Memory-pool allocations served.",
    "pool_exhaustions_total": "Memory-pool exhaustion events.",
    "binding_tx_packets_total": "Packets transmitted by the datapath binding.",
    "binding_rx_packets_total": "Packets received by the datapath binding.",
    "binding_pool_drops_total": "Packets dropped for lack of pool buffers.",
    "binding_no_sink_drops_total": "Packets dropped with no registered sink.",
    "binding_unknown_drops_total": "Packets dropped for unknown reasons.",
    "binding_scheduler_backlog": "Packets queued in the QoS scheduler.",
    "binding_rx_queue_depth": "Packets waiting in the binding rx queue.",
    "binding_polling_threads": "Active polling threads for the binding.",
    "tx_ring_depth": "Entries in the per-app tx ring.",
    "tx_ring_enqueued_total": "Tokens enqueued to the per-app tx ring.",
    "tx_ring_rejected_total": "Tokens rejected by the per-app tx ring.",
}


def _escape(value):
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _line(name, labels, value):
    rendered = ",".join('%s="%s"' % (k, _escape(v)) for k, v in sorted(labels.items()))
    return "insane_%s{%s} %s" % (name, rendered, value)


def family_type(name):
    """Prometheus metric type for a family, inferred from its name."""
    return "counter" if name.endswith("_total") else "gauge"


def family_header(name):
    """The ``# HELP``/``# TYPE`` preamble lines for one family."""
    return [
        "# HELP insane_%s %s" % (name, _escape(_HELP.get(name, name.replace("_", " ")))),
        "# TYPE insane_%s %s" % (name, family_type(name)),
    ]


def runtime_samples(runtime):
    """``(family, labels, value)`` samples for one runtime."""
    stats = runtime.stats()
    host = {"host": stats["host"], "ip": stats["ip"]}
    samples = [
        ("runtime_version", host, runtime.version),
        ("sessions", host, len(stats["sessions"])),
        ("sink_rings", host, stats["sink_rings"]),
        ("warnings_total", host, len(stats["warnings"])),
        ("pool_slots", host, stats["memory"]["slots"]),
        ("pool_in_use", host, stats["memory"]["in_use"]),
        ("pool_allocations_total", host, stats["memory"]["allocations"]),
        ("pool_exhaustions_total", host, stats["memory"]["exhaustions"]),
    ]
    for name, binding in sorted(stats["bindings"].items()):
        labels = dict(host, datapath=name)
        samples.append(("binding_tx_packets_total", labels, binding["tx_packets"]))
        samples.append(("binding_rx_packets_total", labels, binding["rx_packets"]))
        samples.append(("binding_pool_drops_total", labels, binding["pool_drops"]))
        samples.append(("binding_no_sink_drops_total", labels, binding["no_sink_drops"]))
        samples.append(("binding_unknown_drops_total", labels, binding["unknown_drops"]))
        samples.append(("binding_scheduler_backlog", labels, binding["scheduler_backlog"]))
        samples.append(("binding_rx_queue_depth", labels, binding["rx_queue_depth"]))
        samples.append(("binding_polling_threads", labels, binding["polling_threads"]))
        for app_id, ring in sorted(binding["tx_rings"].items()):
            ring_labels = dict(labels, app=app_id)
            samples.append(("tx_ring_depth", ring_labels, ring["depth"]))
            samples.append(("tx_ring_enqueued_total", ring_labels, ring["enqueued"]))
            samples.append(("tx_ring_rejected_total", ring_labels, ring["rejected"]))
    return samples


def export_runtime(runtime):
    """Metric sample lines for one runtime (no family headers; use
    :func:`export_deployment` for a compliant scrape body)."""
    return [_line(name, labels, value) for name, labels, value in runtime_samples(runtime)]


def export_deployment(deployment, tracer=None):
    """The full scrape body for every runtime of a deployment.

    Samples are grouped per family (the exposition format forbids
    interleaving a family's samples), each group led by its ``# HELP`` and
    ``# TYPE`` lines.  Pass ``tracer`` to append per-stage latency
    histogram families.
    """
    families = {}
    order = []
    for runtime in deployment.runtimes.values():
        for name, labels, value in runtime_samples(runtime):
            if name not in families:
                families[name] = []
                order.append(name)
            families[name].append(_line(name, labels, value))
    lines = []
    for name in order:
        lines.extend(family_header(name))
        lines.extend(families[name])
    if tracer is not None:
        from repro.obs.prometheus import tracer_lines

        lines.extend(tracer_lines(tracer))
    return "\n".join(lines) + "\n"
