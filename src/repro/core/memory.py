"""The memory manager: pools, slots, and zero-copy buffers.

This is the paper's central abstraction (§5.3): "the memory manager reserves
a memory area (memory pools) [...] divided into memory slots, uniquely
identified within the pool by a slot id".  Applications and datapaths never
exchange payload bytes directly — they exchange slot ids, and payloads live
in one backing buffer per pool.

The implementation is *really* zero-copy inside a host: a :class:`Buffer` is
a ``memoryview`` into the pool's single ``bytearray``.  Only the simulated
NIC DMA moves bytes between the pools of different hosts.  Lifecycle bugs
(double release, use after emit) are therefore observable and tested.
"""

from repro.core.errors import BufferLifecycleError, PoolExhaustedError
from repro.simnet import Counter


class Buffer:
    """A leased slot: the unit of zero-copy data exchange.

    ``view`` is writable memory backed by the pool; ``length`` is the number
    of valid payload bytes (set by :meth:`write` or manually before emit).
    ``refcount`` supports multi-sink delivery: the slot returns to the free
    list only when every borrower has released it.
    """

    __slots__ = ("pool", "slot_id", "view", "length", "refcount", "frozen")

    def __init__(self, pool, slot_id, view):
        self.pool = pool
        self.slot_id = slot_id
        self.view = view
        self.length = 0
        self.refcount = 1
        self.frozen = False

    @property
    def capacity(self):
        return len(self.view)

    def write(self, data):
        """Copy ``data`` into the slot and set the valid length."""
        if self.frozen:
            raise BufferLifecycleError(
                "buffer slot %d was emitted; no after-write allowed" % self.slot_id
            )
        if len(data) > self.capacity:
            raise ValueError(
                "payload of %d B exceeds slot capacity %d B" % (len(data), self.capacity)
            )
        self.view[: len(data)] = data
        self.length = len(data)

    def payload(self):
        """A read-only view of the valid bytes."""
        return self.view[: self.length].toreadonly()

    def freeze(self):
        """Mark the buffer emitted: the paper's no-after-write contract."""
        self.frozen = True

    def __repr__(self):
        return "Buffer(pool=%s, slot=%d, len=%d, rc=%d)" % (
            self.pool.name,
            self.slot_id,
            self.length,
            self.refcount,
        )


class SlotPool:
    """A pool of fixed-size slots carved out of one backing buffer."""

    def __init__(self, sim, slots, slot_bytes, name="pool"):
        if slots < 1 or slot_bytes < 1:
            raise ValueError("pool needs at least one slot of at least one byte")
        self.sim = sim
        self.name = name
        self.slots = slots
        self.slot_bytes = slot_bytes
        self._backing = bytearray(slots * slot_bytes)
        self._view = memoryview(self._backing)
        # Buffer objects are built once and recycled through the free list
        # (popping from the end yields slot 0 first, as the id-based free
        # list did); allocation then never constructs objects or slices
        # views on the hot path.
        self._free = [
            Buffer(self, slot_id, self._view[slot_id * slot_bytes:(slot_id + 1) * slot_bytes])
            for slot_id in range(slots - 1, -1, -1)
        ]
        self._live = {}
        self.allocations = Counter(name + ".allocations")
        self.exhaustions = Counter(name + ".exhaustions")
        self._waiters = []
        #: pre-overhaul behaviour: construct a Buffer (and slice a view)
        #: per allocation instead of recycling pooled objects — only the
        #: perf baseline sets legacy_stack
        self._legacy = getattr(sim, "legacy_stack", False)

    @property
    def free_slots(self):
        return len(self._free)

    @property
    def in_use(self):
        return self.slots - len(self._free)

    def try_alloc(self, size=0):
        """Allocate a slot, or return ``None`` (counting the exhaustion)."""
        if size > self.slot_bytes:
            raise ValueError(
                "requested %d B but slots are %d B; fragment at the "
                "application level" % (size, self.slot_bytes)
            )
        if not self._free:
            self.exhaustions.value += 1
            return None
        buffer = self._free.pop()
        if self._legacy:
            # verbatim pre-overhaul allocation: a fresh Buffer wrapping a
            # freshly sliced view, plus increment() calls
            slot_id = buffer.slot_id
            offset = slot_id * self.slot_bytes
            buffer = Buffer(self, slot_id, self._view[offset : offset + self.slot_bytes])
            self._live[slot_id] = buffer
            self.allocations.value += 1
            return buffer
        buffer.length = 0
        buffer.refcount = 1
        buffer.frozen = False
        self._live[buffer.slot_id] = buffer
        self.allocations.value += 1
        return buffer

    def alloc(self, size=0):
        """Allocate a slot or raise :class:`PoolExhaustedError`."""
        buffer = self.try_alloc(size)
        if buffer is None:
            raise PoolExhaustedError("%s out of slots" % self.name)
        return buffer

    def add_alloc_waiter(self, callback):
        """Call ``callback(buffer, None)`` as soon as a slot frees up."""
        buffer = self.try_alloc()
        if buffer is not None:
            self.sim.schedule(0, callback, buffer, None)
        else:
            self._waiters.append(callback)

    def addref(self, buffer):
        """Take an extra reference for multi-sink delivery."""
        if buffer.pool is not self or self._live.get(buffer.slot_id) is not buffer:
            self._check_live(buffer)  # raises with the precise diagnosis
        buffer.refcount += 1

    def release(self, buffer):
        """Drop one reference; recycle the slot when it hits zero."""
        if buffer.pool is not self or self._live.get(buffer.slot_id) is not buffer:
            self._check_live(buffer)  # raises with the precise diagnosis
        buffer.refcount -= 1
        if buffer.refcount > 0:
            return
        del self._live[buffer.slot_id]
        buffer.frozen = False
        buffer.length = 0
        if self._waiters:
            # hand the slot straight to a blocked allocator
            callback = self._waiters.pop(0)
            buffer.refcount = 1
            self._live[buffer.slot_id] = buffer
            self.allocations.value += 1
            self.sim.schedule(0, callback, buffer, None)
        else:
            self._free.append(buffer)

    def lookup(self, slot_id):
        """Resolve a slot id received over an IPC ring to its buffer."""
        try:
            return self._live[slot_id]
        except KeyError:
            raise BufferLifecycleError("slot %d is not live in %s" % (slot_id, self.name))

    def _check_live(self, buffer):
        if buffer.pool is not self:
            raise BufferLifecycleError(
                "buffer from pool %s used on pool %s" % (buffer.pool.name, self.name)
            )
        if self._live.get(buffer.slot_id) is not buffer:
            raise BufferLifecycleError(
                "slot %d is not live (double release?)" % buffer.slot_id
            )


class MemoryManager:
    """Per-runtime pool registry with per-application accounting.

    When an application opens a session it *attaches*, which models mapping
    a part of the shared memory area into its own address space; detach
    releases any slots the application leaked, which keeps a long-running
    runtime healthy across misbehaving clients.
    """

    def __init__(self, sim, profile, name="memmgr", slots=None, slot_bytes=None):
        self.sim = sim
        self.name = name
        self.pool = SlotPool(
            sim,
            slots=slots or profile.scalar("pool_slots"),
            slot_bytes=slot_bytes or profile.scalar("pool_slot_bytes"),
            name=name + ".pool",
        )
        self._attached = {}
        self._quotas = {}
        if getattr(sim, "legacy_stack", False):
            self.alloc_for = self._alloc_for_legacy

    def attach(self, app_id, quota=None):
        """Attach an application; ``quota`` optionally caps how many slots
        it may hold at once (multi-tenant isolation)."""
        if app_id in self._attached:
            raise ValueError("application %r already attached" % (app_id,))
        if quota is not None and quota < 1:
            raise ValueError("quota must be >= 1")
        self._attached[app_id] = set()
        if quota is not None:
            self._quotas[app_id] = quota

    def detach(self, app_id):
        leaked = self._attached.pop(app_id, set())
        self._quotas.pop(app_id, None)
        for buffer in list(leaked):
            self.pool.release(buffer)
        return len(leaked)

    def alloc_for(self, app_id, size=0):
        """Allocate a slot on behalf of an attached application."""
        owned = self._attached.get(app_id)
        if owned is None:
            raise ValueError("application %r is not attached" % (app_id,))
        if self._quotas:
            quota = self._quotas.get(app_id)
            if quota is not None and len(owned) >= quota:
                raise PoolExhaustedError(
                    "application %r reached its slot quota (%d)" % (app_id, quota)
                )
        buffer = self.pool.try_alloc(size)
        if buffer is None:
            raise PoolExhaustedError("%s out of slots" % self.pool.name)
        owned.add(buffer)
        return buffer

    def _alloc_for_legacy(self, app_id, size=0):
        """Pre-overhaul allocation accounting, verbatim (perf baseline)."""
        if app_id not in self._attached:
            raise ValueError("application %r is not attached" % (app_id,))
        quota = self._quotas.get(app_id)
        if quota is not None and len(self._attached[app_id]) >= quota:
            raise PoolExhaustedError(
                "application %r reached its slot quota (%d)" % (app_id, quota)
            )
        buffer = self.pool.try_alloc(size)
        if buffer is None:
            raise PoolExhaustedError("%s out of slots" % self.pool.name)
        self._attached[app_id].add(buffer)
        return buffer

    def alloc_waiter_for(self, app_id, callback):
        """Allocate on behalf of ``app_id`` as soon as a slot frees up."""
        if app_id not in self._attached:
            raise ValueError("application %r is not attached" % (app_id,))

        def on_alloc(buffer, exception):
            if buffer is not None:
                owned = self._attached.get(app_id)
                if owned is not None:
                    owned.add(buffer)
            callback(buffer, exception)

        self.pool.add_alloc_waiter(on_alloc)

    def release_for(self, app_id, buffer):
        owned = self._attached.get(app_id)
        if owned is None:
            raise ValueError("application %r is not attached" % (app_id,))
        owned.discard(buffer)
        self.pool.release(buffer)

    def transfer_ownership(self, app_id, buffer):
        """The application emitted the buffer: the runtime now owns it."""
        owned = self._attached.get(app_id)
        if owned is None or buffer not in owned:
            raise BufferLifecycleError(
                "application %r does not own %r" % (app_id, buffer)
            )
        owned.discard(buffer)

    def lend_to(self, app_id, buffer):
        """The runtime hands a received buffer to a sink application."""
        owned = self._attached.get(app_id)
        if owned is None:
            raise ValueError("application %r is not attached" % (app_id,))
        owned.add(buffer)
