"""Emit outcomes: the result space of ``check_emit_outcome`` (paper Fig. 2).

The C API returns an integer; this repro returns :class:`EmitOutcome`, a
``str``-valued enum that compares equal to the historical plain-string
values (``"sent"``, ``"pending"``, ...) so existing call sites keep
working while new code gets an enumerated, exhaustive outcome space.
"""

import enum


class EmitOutcome(str, enum.Enum):
    """Outcome of one ``emit_data`` call, as reported by the runtime."""

    #: not yet drained from the client's emit ring by a polling thread.
    PENDING = "pending"
    #: routed to at least one local or remote subscriber on the stream's
    #: mapped datapath.
    SENT = "sent"
    #: routed, but over a *fallback* datapath after a runtime failover —
    #: delivery happened, QoS may be degraded (paper §5.2's fallback rule).
    DEGRADED = "degraded"
    #: nobody subscribed to the channel; the buffer was reclaimed.
    NO_SUBSCRIBERS = "no_subscribers"
    #: the emit could not be routed at all (e.g. its binding failed and no
    #: surviving datapath satisfies the stream's policy).
    FAILED = "failed"

    #: paper-style integer codes for a C binding of the API.
    def as_int(self):
        return _OUTCOME_CODES[self]

    def __str__(self):
        return self.value


_OUTCOME_CODES = {
    EmitOutcome.PENDING: -1,
    EmitOutcome.SENT: 0,
    EmitOutcome.DEGRADED: 1,
    EmitOutcome.NO_SUBSCRIBERS: 2,
    EmitOutcome.FAILED: 3,
}
