"""INSANE core: the middleware runtime and client library.

This package is the paper's primary contribution:

* :mod:`repro.core.qos` — stream QoS policies and the runtime mapping of
  policies onto datapaths (paper §5.2);
* :mod:`repro.core.memory` — the memory manager: shared pools of fixed-size
  slots enabling technology-agnostic zero-copy transfers (paper §5.3);
* :mod:`repro.core.ipc` — lock-free token rings between the client library
  and the runtime;
* :mod:`repro.core.scheduler` — FIFO and IEEE 802.1Qbv (TSN) packet
  schedulers;
* :mod:`repro.core.polling` — the pool of polling threads driving datapath
  plugins;
* :mod:`repro.core.channel` — streams, channels, sources, and sinks;
* :mod:`repro.core.runtime` — the per-host runtime process;
* :mod:`repro.core.session` — the client library exposing the paper's
  Fig. 2 API.
"""

from repro.core.errors import (
    BufferLifecycleError,
    DatapathFailedError,
    ERROR_CODES,
    FailoverError,
    FaultInjectionError,
    InsaneError,
    InteractiveLawError,
    LoadgenError,
    NoDatapathError,
    PoolExhaustedError,
    QosValidationError,
    ScenarioError,
    SessionError,
    StabilityError,
    TransferError,
    UtcpError,
)
from repro.core.outcomes import EmitOutcome
from repro.core.qos import (
    Acceleration,
    DEFAULT_STRATEGY,
    MappingDecision,
    QosPolicy,
    QosPolicyBuilder,
    ResourceBudget,
    TimeSensitivity,
)
from repro.core.control import FailoverEvent, HealthMonitor
from repro.core.memory import Buffer, MemoryManager, SlotPool
from repro.core.runtime import InsaneDeployment, InsaneRuntime
from repro.core.session import Session
from repro.core.window import OutstandingWindow

__all__ = [
    "Acceleration",
    "Buffer",
    "BufferLifecycleError",
    "DEFAULT_STRATEGY",
    "DatapathFailedError",
    "ERROR_CODES",
    "EmitOutcome",
    "FailoverError",
    "FailoverEvent",
    "FaultInjectionError",
    "HealthMonitor",
    "InsaneDeployment",
    "InsaneError",
    "InsaneRuntime",
    "InteractiveLawError",
    "LoadgenError",
    "MappingDecision",
    "MemoryManager",
    "NoDatapathError",
    "OutstandingWindow",
    "PoolExhaustedError",
    "QosPolicy",
    "QosPolicyBuilder",
    "QosValidationError",
    "Session",
    "SessionError",
    "SlotPool",
    "StabilityError",
    "TimeSensitivity",
    "TransferError",
    "UtcpError",
]
