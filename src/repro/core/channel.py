"""Streams, channels, sources, and sinks (paper §5.1, Fig. 1).

A *stream* associates QoS requirements with one or more *channels*; a
channel is a unidirectional flow between *sources* and *sinks* that share an
application-chosen channel id within the same stream.  These are client-side
handles; the runtime keeps its own registry of sink endpoints.
"""

from typing import NamedTuple

from repro.core.qos import TimeSensitivity
from repro.simnet import Counter


class ChannelKey(NamedTuple):
    """What makes endpoints rendezvous: stream name + channel id.

    A named tuple rather than a dataclass: construction, hashing, and
    equality all run at C speed, and a plain ``(stream, channel)`` tuple
    hashes equal to it — the runtime's per-packet sink lookups rely on
    both properties.
    """

    stream: str
    channel: int


class Stream:
    """A client-side stream handle (``stream_t``).

    Usable as a context manager: ``with session.create_stream(...) as s:``
    closes the stream (and its endpoints) on exit; ``close`` is idempotent.
    """

    def __init__(self, session, name, policy, decision, binding):
        self.session = session
        self.name = name
        self.policy = policy
        self.decision = decision      # MappingDecision: datapath + fallback
        self.binding = binding        # the runtime's DatapathBinding
        self.closed = False
        self.sources = []
        self.sinks = []
        #: True once a runtime failover re-mapped this stream onto a
        #: fallback datapath; emits then report DEGRADED outcomes.
        self.degraded = False
        #: True when the stream's datapath failed and *no* surviving
        #: datapath satisfies its policy: emits raise DatapathFailedError.
        self.failed = False
        #: number of failover re-maps this stream has survived.
        self.failovers = 0
        # resolved once: emit_data reads this per message
        self.time_sensitive = (
            policy.time_sensitivity is TimeSensitivity.TIME_SENSITIVE
        )

    @property
    def datapath(self):
        return self.decision.datapath

    def close(self):
        if self.closed:
            return
        for source in list(self.sources):
            source.close()
        for sink in list(self.sinks):
            sink.close()
        self.closed = True
        streams = self.session.streams
        if self in streams:
            streams.remove(self)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def _rebind(self, decision, binding):
        """Runtime-side failover re-map: move the stream (and the cached
        fast paths of its endpoints) onto a surviving binding."""
        self.decision = decision
        self.binding = binding
        self.degraded = True
        self.failovers += 1
        for source in self.sources:
            source._ring = None       # next emit resolves the new binding
        for sink in self.sinks:
            sink._ipc_half = binding.ipc_half_cost


class Source:
    """A client-side source handle (``source_t``)."""

    def __init__(self, session, stream, channel):
        self.session = session
        self.stream = stream
        self.channel = channel
        self.key = ChannelKey(stream.name, channel)
        self.closed = False
        self.emitted = Counter("source.emitted")
        self._next_emit_id = 0
        # the client-to-runtime ring, resolved lazily on first emit and
        # reused for every subsequent one (the binding never changes)
        self._ring = None

    def next_emit_id(self):
        self._next_emit_id += 1
        return self._next_emit_id

    def close(self):
        if not self.closed:
            self.closed = True
            if self in self.stream.sources:
                self.stream.sources.remove(self)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False


class Delivery:
    """What a sink hands the application: a borrowed zero-copy buffer.

    One is built per consumed message, so this is a plain ``__slots__``
    class rather than a dataclass.
    """

    __slots__ = (
        "buffer", "length", "channel", "stream", "source_ip", "recv_ns",
        "meta",
    )

    def __init__(self, buffer, length, channel, stream, source_ip=None,
                 recv_ns=0.0, meta=None):
        self.buffer = buffer
        self.length = length
        self.channel = channel
        self.stream = stream
        self.source_ip = source_ip
        self.recv_ns = recv_ns
        self.meta = {} if meta is None else meta

    def __repr__(self):
        return "Delivery(stream=%r, channel=%r, length=%r)" % (
            self.stream, self.channel, self.length
        )

    def payload(self):
        """Read-only view of the received bytes."""
        return self.buffer.view[: self.length].toreadonly()


class Sink:
    """A client-side sink handle (``sink_t``)."""

    def __init__(self, session, stream, channel, endpoint, callback=None):
        self.session = session
        self.stream = stream
        self.channel = channel
        self.key = ChannelKey(stream.name, channel)
        self.endpoint = endpoint      # the runtime-side SinkEndpoint
        self.callback = callback
        self.closed = False
        self.received = Counter("sink.received")
        # hot-path caches: the endpoint ring and the binding's IPC cost
        # helper are fixed for the sink's lifetime
        self._endpoint_ring = endpoint.ring
        self._ipc_half = stream.binding.ipc_half_cost

    @property
    def ring(self):
        return self.endpoint.ring

    def close(self):
        if not self.closed:
            self.closed = True
            self.session.runtime.unregister_sink(self.endpoint)
            if self in self.stream.sinks:
                self.stream.sinks.remove(self)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False
