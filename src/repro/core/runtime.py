"""The INSANE runtime: the per-host userspace networking service.

The runtime centralizes host networking and offers it *as a service* to
local applications (paper §5.3): it owns the memory manager, instantiates
each datapath at most once per host, runs the packet schedulers, and drives
everything with a configurable pool of polling threads.  Applications attach
over shared memory (sessions) and exchange slot-id tokens with it.
"""

from repro.core.channel import ChannelKey
from repro.core.config import RuntimeConfig
from repro.core.control import ControlPlane, HealthMonitor
from repro.core.errors import NoDatapathError
from repro.core.ipc import Token, TokenRing
from repro.core.qos import resolve_mapping
from repro.core.memory import MemoryManager
from repro.core.polling import PollingThread
from repro.core.scheduler import (
    CLASS_BEST_EFFORT,
    CLASS_TIME_SENSITIVE,
    TsnScheduler,
    scheduler_for,
)
from repro.datapaths import (
    DpdkDatapath,
    KernelUdpDatapath,
    RdmaDatapath,
    XdpDatapath,
)
from repro.datapaths.registry import available_datapaths
from repro.netstack import FramePolicy, Packet
from repro.netstack.packet import PACKET_POOL
from repro.simnet import Counter, Timeout

#: Well-known UDP port space used for runtime-to-runtime traffic,
#: one port per datapath technology.
INSANE_PORTS = {"udp": 47000, "dpdk": 47001, "xdp": 47002, "rdma": 47003}

#: Bytes of INSANE message header on the wire (stream hash, channel id,
#: length, emit id) — accounted in the payload length of every datagram.
INSANE_HEADER_BYTES = 24

#: Preference order when a publisher must pick a technology the subscriber
#: listens on (heterogeneous deployments).
TECH_PREFERENCE = ("rdma", "dpdk", "xdp", "udp")


def _trace_drop(trace, now, reason):
    """Mark a traced packet dropped.  Duck-typed so the runtime never
    imports :mod:`repro.obs`: plain-dict traces (``config.trace``) and
    ``None`` both fall through for free."""
    if trace is not None:
        mark = getattr(trace, "mark_dropped", None)
        if mark is not None:
            mark(now, reason)


def _trace_annotate(trace, now, kind, detail=""):
    """Annotate a traced packet's timeline (duck-typed, see above)."""
    if trace is not None:
        annotate = getattr(trace, "annotate", None)
        if annotate is not None:
            annotate(now, kind, detail)


class SinkEndpoint:
    """Runtime-side state for one registered sink."""

    _next_id = 0

    def __init__(self, runtime, key, app_id, ring, datapath="udp"):
        SinkEndpoint._next_id += 1
        self.endpoint_id = SinkEndpoint._next_id
        self.runtime = runtime
        self.key = key
        self.app_id = app_id
        self.ring = ring
        self.datapath = datapath
        self.dropped = Counter("sink%d.dropped" % self.endpoint_id)


class DatapathBinding:
    """Everything the runtime keeps per instantiated datapath plugin."""

    def __init__(self, runtime, name):
        self.runtime = runtime
        self.name = name
        self.host = runtime.host
        self.sim = runtime.sim
        self.profile = runtime.profile
        self.port = INSANE_PORTS[name]
        self.accelerated = name != "udp"
        self.sched_stage = "insane_sched_fast" if self.accelerated else "insane_sched_slow"
        self.dispatch_stage = (
            "insane_dispatch_fast" if self.accelerated else "insane_dispatch_slow"
        )
        self.threads = []
        config = runtime.config
        scalars = self.profile.scalars
        self.tx_burst = config.tx_burst or int(scalars["insane_tx_burst"])
        self.rx_burst = config.rx_burst or int(scalars["dpdk_rx_burst"])
        self.batching = config.opportunistic_batching
        self.fanout_ns = scalars["insane_fanout_per_sink_ns"]
        self.l2_budget = scalars["insane_l2_ring_budget"]
        self.l2_penalty_ns = scalars["insane_l2_penalty_ns"]
        #: max ns of frames the NIC may hold before the send loop throttles
        #: (keeps transmit ordering under the scheduler's control)
        self.max_nic_backlog_ns = 5_000.0
        #: pre-overhaul cost-accounting behaviour; see repro.simnet.legacy
        self._legacy = getattr(self.sim, "legacy_stack", False)
        # one SPSC ring per attached application (paper Fig. 4)
        self.tx_rings = {}
        self._ring_list = []   # stable iteration order, no dict copy per pass
        # token/packet costs are pure functions of (stage set, size, burst);
        # memoizing them skips the per-item profile lookups on the hot path
        # without perturbing any value (jitter is applied after the sum)
        self._token_cost_cache = {}
        self._rx_cost_cache = {}
        self._ipc_half_ns = self.profile.stage("insane_ipc").cost(0, burst=1) / 2.0
        self.fifo = scheduler_for(False, best_effort=config.best_effort_scheduler)
        self.tsn = None
        self.cross_tech_routes = Counter("%s.%s.cross_tech" % (self.host.name, name))
        self.pool_drops = Counter("%s.%s.pool_drops" % (self.host.name, name))
        self.no_sink_drops = Counter("%s.%s.no_sink_drops" % (self.host.name, name))
        self.unknown_drops = Counter("%s.%s.unknown_drops" % (self.host.name, name))
        self.sched_drops = Counter("%s.%s.sched_drops" % (self.host.name, name))
        # fault state (repro.faults): a failed binding accepts emits (the
        # client-side rings stay up — shared memory does not die with a
        # NIC driver) but its polling passes stop until restore(); a
        # stalled binding pauses until ``stalled_until``.
        self.failed = False
        self.failed_at = None
        self.stalled_until = 0.0
        self._failover_handled = False
        self._wire_datapath()
        self.rx_queue.on_item = self._kick
        if self._legacy:
            # the perf baseline runs the verbatim pre-overhaul passes
            self.tx_pass = self._tx_pass_legacy
            self.rx_pass = self._rx_pass_legacy

    def ring_for(self, app_id):
        """The application's private SPSC emit ring on this binding."""
        ring = self.tx_rings.get(app_id)
        if ring is None:
            ring = TokenRing(
                self.sim,
                self.host,
                self.runtime.ipc_ring_slots,
                "%s.%s.txring.%s" % (self.host.name, self.name, app_id),
            )
            ring.store.on_item = self._kick
            self.tx_rings[app_id] = ring
            self._ring_list.append(ring)
        return ring

    def ipc_half_cost(self, burst=1):
        """Per-side cost of one client<->runtime ring crossing."""
        if burst == 1 and not self._legacy:
            return Timeout(self.host.jitter(self._ipc_half_ns))
        cost = self.profile.stage("insane_ipc").cost(0, burst=burst) / 2.0
        return Timeout(self.host.jitter(cost))

    def _wire_datapath(self):
        host = self.host
        if self.name == "udp":
            self.datapath = KernelUdpDatapath.get(host)
            self.socket = self.datapath.socket(self.port, blocking=False)
            self.rx_queue = self.socket.buffer
            self.detect_ns = self.profile.scalar("udp_poll_detect_ns")
        elif self.name == "dpdk":
            # fast mode shares the runtime pool with the PMD: true
            # zero-copy between application slots and the NIC.
            self.datapath = DpdkDatapath(host, mempool=self.runtime.memory.pool)
            self.rx_queue = self.datapath.open_port(self.port)
            self.detect_ns = self.profile.scalar("dpdk_poll_detect_ns")
        elif self.name == "xdp":
            self.datapath = XdpDatapath(host)
            self.rx_queue = self.datapath.open_port(self.port)
            self.detect_ns = self.profile.scalar("xdp_poll_detect_ns")
        elif self.name == "rdma":
            self.datapath = RdmaDatapath(host)
            self.qp = self.datapath.create_qp(self.port)
            self.rx_queue = self.qp.recv_queue
            self.detect_ns = self.profile.scalar("rdma_poll_detect_ns")
        else:
            raise ValueError("unknown datapath %r" % (self.name,))

    def _kick(self):
        for thread in self.threads:
            thread.kick()

    # -- fault injection / failover ------------------------------------------

    def fail(self, reason=""):
        """Mark this binding failed (fault injection or operator action).

        In-flight frames on the dead path are lost (their TX buffers are
        reclaimed); tokens already emitted by clients stay parked in the
        shared-memory rings until the health monitor re-maps the affected
        streams.  Idempotent while failed.
        """
        if self.failed:
            return
        self.failed = True
        self.failed_at = self.sim.now
        self._failover_handled = False
        self.datapath.fail()
        self.sched_drops.value += self._drop_scheduled()
        self.runtime._on_binding_failed(self, reason)

    def restore(self):
        """Bring a failed binding back; newly created streams may map to
        it again (already re-mapped streams stay on their fallback)."""
        if not self.failed:
            return
        self.failed = False
        self.failed_at = None
        self.datapath.restore()
        self.runtime._on_binding_restored(self)
        self._kick()

    def stall(self, duration_ns):
        """Pause this binding's polling passes for ``duration_ns`` —
        models a wedged PMD/driver thread: queues back up, then drain."""
        until = self.sim.now + duration_ns
        if until > self.stalled_until:
            self.stalled_until = until
            self.sim.schedule(duration_ns, self._kick)

    def _drop_scheduled(self):
        """Release the TX buffers of packets stranded in the schedulers
        (data already past the API is lost with the datapath)."""
        dropped = 0
        for scheduler in (self.fifo, self.tsn):
            if scheduler is None:
                continue
            while len(scheduler):
                ready = scheduler.next_ready_at(self.sim.now)
                batch = scheduler.pop_ready(
                    self.sim.now if ready is None else ready, 1024
                )
                if not batch:
                    break
                for packet in batch:
                    buffer = packet.tx_buffer
                    if buffer is not None:
                        packet.tx_buffer = None
                        buffer.pool.release(buffer)
                    dropped += 1
        return dropped

    # -- cost helpers -----------------------------------------------------------

    def _token_cost(self, burst):
        """Runtime-side cost of accepting one emitted token."""
        profile = self.profile
        cost = profile.stage("insane_ipc").cost(0, burst=burst) / 2.0
        cost += profile.stage(self.sched_stage).cost(0, burst=burst)
        if self.accelerated:
            cost += profile.stage("insane_pool_fast").cost(0, burst=burst)
        return cost

    def _rx_pkt_cost(self, packet, burst):
        """Receive-side per-packet processing cost (datapath-specific)."""
        profile = self.profile
        size = packet.payload_len
        if self.name == "udp":
            cost = 0.0  # kernel already charged udp_rx
        elif self.name == "dpdk":
            cost = profile.stage("dpdk_rx").cost(size, burst=burst)
            cost += profile.stage("ustack_rx").cost(size, burst=burst)
        elif self.name == "xdp":
            cost = profile.stage("xdp_rx").cost(size, burst=burst)
            cost += profile.stage("ustack_rx").cost(size, burst=burst)
        else:  # rdma
            cost = profile.stage("rdma_poll_cq").cost(size, burst=burst)
        cost += profile.stage("insane_ipc").cost(0, burst=burst) / 2.0
        cost += profile.stage(self.dispatch_stage).cost(0, burst=burst)
        if self.accelerated:
            cost += profile.stage("insane_pool_fast").cost(0, burst=burst)
        return cost

    def _fanout_cost(self, sink_count):
        """Token fan-out to local sink rings, with the L2 pressure model."""
        if sink_count <= 0:
            return 0.0
        cost = (sink_count - 1) * self.fanout_ns
        excess = self.runtime.sink_ring_count - self.l2_budget
        if excess > 0:
            cost += excess * self.l2_penalty_ns
        return cost

    # -- TX path --------------------------------------------------------------------

    def tx_pending(self):
        """Whether a tx_pass could make progress right now.

        May report a false positive (a queued TSN packet behind a closed
        gate); the pass then simply finds nothing eligible.  Must never
        report a false negative, or the polling thread would park with
        work queued.
        """
        if self.failed or self.stalled_until > self.sim.now:
            return False
        for ring in self._ring_list:
            if ring.store._items:
                return True
        if len(self.fifo):
            return True
        tsn = self.tsn
        return tsn is not None and len(tsn) > 0

    def rx_pending(self):
        """Whether the datapath's receive queue holds anything."""
        if self.failed or self.stalled_until > self.sim.now:
            return False
        return len(self.rx_queue) > 0

    def tx_pass(self):
        """Drain emitted tokens through the scheduler into the datapath."""
        progressed = False
        cache = self._token_cost_cache
        jitter = self.host.jitter
        route = self._route_token
        for ring in self._ring_list:
            tokens = ring.drain(self.tx_burst)
            if not tokens:
                continue
            progressed = True
            burst = len(tokens)
            base = cache.get(burst)
            if base is None:
                base = cache[burst] = self._token_cost(burst)
            yield Timeout(jitter(base * burst))
            for token in tokens:
                route(token)
        max_batch = self.tx_burst if self.batching else 1
        while True:
            ready = self._pop_ready(self.sim.now, max_batch)
            if not ready:
                break
            progressed = True
            yield from self._send_batch(ready)
        return progressed

    def _tx_pass_legacy(self):
        """Pre-overhaul tx pass: per-token cost lookups, no memoization."""
        progressed = False
        for ring in list(self.tx_rings.values()):
            tokens = ring.drain(self.tx_burst)
            if not tokens:
                continue
            progressed = True
            burst = len(tokens)
            cost = sum(self._token_cost(burst) for _ in tokens)
            yield Timeout(self.host.jitter(cost))
            for token in tokens:
                self._route_token_legacy(token)
        max_batch = self.tx_burst if self.batching else 1
        while True:
            ready = self._pop_ready(self.sim.now, max_batch)
            if not ready:
                break
            progressed = True
            yield from self._send_batch(ready)
        return progressed

    def _route_token(self, token):
        """Deliver locally over shared memory, schedule remote transmissions."""
        runtime = self.runtime
        buffer = token.buffer
        key = (token.stream, token.channel)  # hashes equal to ChannelKey
        local = runtime._sinks.get(key)
        if local is None:
            local = ()
        remote = runtime.control.remote_subscribers(key, self.host.ip)
        refs_needed = len(local) + len(remote)
        if token.emit_id is not None:
            if refs_needed == 0:
                outcome = "no_subscribers"
            elif token.meta.get("degraded"):
                outcome = "degraded"
            else:
                outcome = "sent"
            runtime._outcomes[token.emit_id] = outcome
        if refs_needed == 0:
            buffer.pool.release(buffer)
            return
        pool = buffer.pool
        for _ in range(refs_needed - 1):
            pool.addref(buffer)
        for endpoint in local:
            runtime.deliver_to_sink(endpoint, token, buffer)
        traffic_class = (
            CLASS_TIME_SENSITIVE if token.meta.get("time_sensitive") else CLASS_BEST_EFFORT
        )
        for dst_ip, dst_datapaths in remote:
            egress = self if self.name in dst_datapaths else self._egress_for(dst_datapaths)
            packet = egress._build_packet(token, buffer, dst_ip)
            egress._push_scheduler(packet, traffic_class)
            if egress is not self:
                egress._kick()

    def _route_token_legacy(self, token):
        """Pre-overhaul routing: per-emit subscriber recomputation."""
        runtime = self.runtime
        buffer = token.buffer
        local = runtime.local_sinks(token.key)
        remote = runtime.control.remote_subscribers_uncached(token.key, self.host.ip)
        refs_needed = len(local) + len(remote)
        runtime.mark_outcome(token, "sent" if refs_needed else "no_subscribers")
        if refs_needed == 0:
            buffer.pool.release(buffer)
            return
        for _ in range(refs_needed - 1):
            buffer.pool.addref(buffer)
        for endpoint in local:
            runtime.deliver_to_sink(endpoint, token, buffer)
        traffic_class = (
            CLASS_TIME_SENSITIVE if token.meta.get("time_sensitive") else CLASS_BEST_EFFORT
        )
        for dst_ip, dst_datapaths in remote:
            egress = self._egress_for(dst_datapaths)
            packet = egress._build_packet(token, buffer, dst_ip)
            egress._push_scheduler(packet, traffic_class)
            if egress is not self:
                egress._kick()

    def _egress_for(self, dst_datapaths):
        """The binding to reach a subscriber bound to ``dst_datapaths``.

        Prefer this binding's own technology when the subscriber listens on
        it; otherwise pick the best mutually supported one; the kernel path
        is the universal fallback (every runtime keeps it open).
        """
        if self.name in dst_datapaths:
            return self
        available = self.runtime.available_datapaths()
        for tech in TECH_PREFERENCE:
            if tech in dst_datapaths and tech in available:
                self.cross_tech_routes.value += 1
                return self.runtime.ensure_binding(tech)
        self.cross_tech_routes.value += 1
        return self.runtime.ensure_binding("udp")

    def _build_packet(self, token, buffer, dst_ip):
        # carry whatever bytes the application actually wrote (possibly a
        # short prefix of the declared length: synthetic payload mode)
        written = buffer.length
        if written > token.length:
            written = token.length
        payload = buffer.view[:written] if written else None
        meta = token.meta
        obs = meta.get("obs")
        if obs is not None:
            # one lifecycle child record per wire packet; a MessageTrace is
            # a dict, so every stamp site downstream works unchanged
            trace = obs.tracer.fork(obs, self.sim.now, self.name, dst_ip)
        elif "emit_ns" in meta:
            trace = {"emit_ns": meta["emit_ns"]}
        else:
            trace = None
        # pooled slotted record: hot metadata lands in attributes, and the
        # record itself is recycled at the receiver's dispatch
        packet = PACKET_POOL.acquire(
            self.host.ip,
            dst_ip,
            self.port,
            self.port,
            payload=payload,
            payload_len=token.length + INSANE_HEADER_BYTES,
            trace=trace,
        )
        if trace is not None:
            trace["runtime_tx"] = self.sim.now
        packet.insane = (token.stream, token.channel, token.length)
        packet.tx_buffer = buffer
        app = meta.get("app")
        if app is not None:
            packet.flow = app
        return packet

    def _push_scheduler(self, packet, traffic_class):
        now = self.sim.now
        if traffic_class == CLASS_TIME_SENSITIVE:
            if self.tsn is None:
                self.tsn = TsnScheduler(self.runtime.config.gate_control_list)
            self.tsn.push(packet, traffic_class, now=now)
        else:
            flow = packet.flow
            if flow is None:
                flow = "default"
            self.fifo.push(packet, traffic_class, now=now, flow=flow)

    def _pop_ready(self, now, max_items):
        batch = []
        if self.tsn is not None:
            batch.extend(self.tsn.pop_ready(now, max_items))
        if len(batch) < max_items:
            batch.extend(self.fifo.pop_ready(now, max_items - len(batch)))
        return batch

    def next_scheduler_ready(self, now):
        ready = self.fifo.next_ready_at(now)
        if self.tsn is not None:
            tsn_ready = self.tsn.next_ready_at(now)
            if tsn_ready is not None and (ready is None or tsn_ready < ready):
                ready = tsn_ready
        return ready

    def _send_batch(self, packets):
        # NIC TX backpressure: keep the hardware queue shallow so packet
        # ordering stays under the (possibly TSN) scheduler's control
        nic = self.host.nic
        backlog = nic.tx_backlog_ns(self.sim.now)
        if backlog > self.max_nic_backlog_ns:
            yield Timeout(backlog - self.max_nic_backlog_ns)
        now = self.sim.now
        for packet in packets:
            if packet.trace is not None:
                packet.trace["datapath_tx"] = now
        if self.name == "udp":
            yield from self.socket.send_many(packets)
        elif self.name == "rdma":
            yield from self.qp.post_send_many(packets)
        else:
            yield from self.datapath.send_many(packets)

    # -- RX path ----------------------------------------------------------------------

    def rx_pass(self):
        """Drain received packets and dispatch them to local sinks."""
        try_get = self.rx_queue.try_get
        batch = []
        while len(batch) < self.rx_burst:
            ok, packet = try_get()
            if not ok:
                break
            batch.append(packet)
        if not batch:
            return False
        burst = len(batch)
        cost = self.detect_ns
        cache = self._rx_cost_cache
        sinks_get = self.runtime._sinks.get
        l2_excess = self.runtime.sink_ring_count > self.l2_budget
        # fluid-tier weighting: an aggregate endpoint stands for many cold
        # subscribers, so the fan-out charge uses the *effective* sink
        # count (len + modelled extras).  The dict is empty unless a fluid
        # aggregate is registered — the packet-accurate path is untouched.
        fluid_weights = self.runtime._fluid_weights
        per_packet_sinks = []
        for packet in batch:
            # pure function of (payload_len, burst): memoized, same value
            key = (packet.payload_len, burst)
            pkt_cost = cache.get(key)
            if pkt_cost is None:
                if len(cache) > 4096:
                    cache.clear()
                pkt_cost = cache[key] = self._rx_pkt_cost(packet, burst)
            cost += pkt_cost
            meta = packet.insane
            sinks = None
            if meta is not None:
                sinks = sinks_get((meta[0], meta[1]))
                if sinks is not None:
                    effective = len(sinks)
                    if fluid_weights:
                        effective += fluid_weights.get((meta[0], meta[1]), 0)
                    if effective > 1 or l2_excess:
                        cost += self._fanout_cost(effective)
            per_packet_sinks.append(sinks)
        yield Timeout(self.host.jitter(cost))
        dispatch = self._dispatch
        for packet, sinks in zip(batch, per_packet_sinks):
            dispatch(packet, sinks)
        return True

    def _rx_pass_legacy(self):
        """Pre-overhaul rx pass: per-packet cost recomputation, double
        sink lookups (cost accounting, then dispatch)."""
        batch = []
        while len(batch) < self.rx_burst:
            ok, packet = self.rx_queue.try_get()
            if not ok:
                break
            batch.append(packet)
        if not batch:
            return False
        burst = len(batch)
        cost = self.detect_ns
        for packet in batch:
            cost += self._rx_pkt_cost(packet, burst)
            meta = packet.meta.get("insane")
            if meta is not None:
                sinks = self.runtime.local_sinks_by_parts(meta[0], meta[1])
                cost += self._fanout_cost(len(sinks))
        yield Timeout(self.host.jitter(cost))
        for packet in batch:
            self._dispatch_legacy(packet)
        return True

    def _dispatch(self, packet, sinks=None):
        now = self.sim.now
        trace = packet.trace
        if trace is not None:
            trace["runtime_rx"] = now
        meta = packet.insane
        if meta is None:
            self.unknown_drops.value += 1
            _trace_drop(trace, now, "unknown stream header")
            PACKET_POOL.release(packet)
            return
        stream, channel, length = meta
        if sinks is None:
            sinks = self.runtime._sinks.get((stream, channel))
        if not sinks:
            self.no_sink_drops.value += 1
            _trace_drop(trace, now, "no local sink")
            PACKET_POOL.release(packet)
            return
        runtime = self.runtime
        memory = runtime.memory
        buffer = memory.pool.try_alloc()
        if buffer is None:
            self.pool_drops.value += 1
            _trace_drop(trace, now, "rx pool exhausted")
            PACKET_POOL.release(packet)
            return
        payload = packet.payload
        if payload is not None:
            # the NIC's DMA wrote straight into this pool slot
            buffer.write(payload[:length])
        buffer.length = length
        if len(sinks) > 1:
            addref = buffer.pool.addref
            for _ in range(len(sinks) - 1):
                addref(buffer)
        src_ip = packet.src_ip
        slot_id = buffer.slot_id
        # one delivery token per sink, built directly (no intermediate
        # token + meta-dict copy as in the pre-overhaul path)
        for endpoint in sinks:
            tmeta = (
                {"recv_ns": now} if trace is None
                else {"trace": trace, "recv_ns": now}
            )
            delivery = Token(slot_id, length, stream, channel,
                            None, src_ip, buffer, tmeta)
            memory.lend_to(endpoint.app_id, buffer)
            if not endpoint.ring.try_put(delivery):
                endpoint.dropped.value += 1
                memory.release_for(endpoint.app_id, buffer)
                _trace_annotate(trace, now, "drop",
                                "sink ring full: %s" % endpoint.app_id)
        # the packet record's last consumer is done: recycle it (the trace
        # dict and payload live on through the delivery tokens)
        PACKET_POOL.release(packet)

    def _dispatch_legacy(self, packet):
        packet.stamp("runtime_rx", self.sim.now)
        meta = packet.meta.get("insane")
        if meta is None:
            self.unknown_drops.increment()
            return
        stream, channel, length = meta
        sinks = self.runtime.local_sinks_by_parts(stream, channel)
        if not sinks:
            self.no_sink_drops.increment()
            return
        buffer = self.runtime.memory.pool.try_alloc()
        if buffer is None:
            self.pool_drops.increment()
            return
        if packet.payload is not None:
            # the NIC's DMA wrote straight into this pool slot
            buffer.write(packet.payload[:length])
        buffer.length = length
        for _ in range(len(sinks) - 1):
            buffer.pool.addref(buffer)
        token = Token(
            slot_id=buffer.slot_id,
            length=length,
            stream=stream,
            channel=channel,
            source_ip=packet.src_ip,
            buffer=buffer,
        )
        if packet.trace is not None:
            token.meta["trace"] = packet.trace
        token.meta["recv_ns"] = self.sim.now
        for endpoint in sinks:
            self.runtime.deliver_to_sink(endpoint, token, buffer)

    def shutdown(self):
        if self.name == "udp":
            self.socket.close()
        elif self.name == "rdma":
            self.datapath.close_qp(self.port)
        else:
            self.datapath.close_port(self.port)


class InsaneRuntime:
    """One INSANE runtime per participating host."""

    def __init__(self, host, control=None, config=None):
        self.host = host
        self.sim = host.sim
        self.profile = host.profile
        self.config = config or RuntimeConfig()
        #: hoisted from config: read per emit/packet on the hook paths
        self.tracer = self.config.tracer
        self.control = control or ControlPlane()
        self.control.register_runtime(self)
        self.ipc_ring_slots = self.config.ipc_ring_slots or int(
            self.profile.scalar("ipc_ring_slots")
        )
        self.memory = MemoryManager(
            self.sim,
            self.profile,
            name=host.name + ".mm",
            slots=self.config.pool_slots,
        )
        self.frame_policy = FramePolicy(
            mtu=self.profile.mtu,
            jumbo_mtu=self.profile.jumbo_mtu,
            jumbo_enabled=self.config.jumbo_frames,
        )
        self.bindings = {}
        self.threads = []
        self._shared_thread = None
        self._sinks = {}           # ChannelKey -> [SinkEndpoint]
        self.sink_ring_count = 0
        #: ChannelKey -> extra effective sink count contributed by fluid
        #: aggregates (weight - 1 each); empty unless the fluid tier is in
        #: use, and rx_pass charges fan-out as if the modelled subscribers
        #: were individually registered (L2 pressure model included)
        self._fluid_weights = {}
        self.warnings = []
        self._outcomes = {}
        self._sessions = {}
        self.version = 1
        self._failed_datapaths = set()
        self.health = HealthMonitor(self, detect_ns=self.config.failover_detect_ns)
        self.failovers = Counter(host.name + ".failovers")
        if self.config.always_kernel_listener:
            self.ensure_binding("udp")

    # -- datapath management ------------------------------------------------

    def available_datapaths(self):
        """Technologies usable for (re-)mapping streams right now: what the
        host supports, minus currently-failed bindings — failover must
        never re-pick a dead path."""
        return set(available_datapaths(self.profile)) - self._failed_datapaths

    def ensure_binding(self, name):
        """Instantiate the datapath at most once per host (paper §4)."""
        binding = self.bindings.get(name)
        if binding is None:
            binding = DatapathBinding(self, name)
            self.bindings[name] = binding
            self._assign_thread(binding)
        return binding

    def _assign_thread(self, binding):
        if self.config.thread_mapping == "per-datapath":
            # one or more dedicated threads per plugin (paper §8 suggests
            # parallelizing the CPU-bound receive pipeline)
            for index in range(self.config.threads_per_datapath):
                thread = PollingThread(
                    self, "%s.poll.%s.%d" % (self.host.name, binding.name, index)
                )
                self.threads.append(thread)
                thread.add_binding(binding)
        else:
            if self._shared_thread is None:
                self._shared_thread = PollingThread(self, self.host.name + ".poll")
                self.threads.append(self._shared_thread)
            self._shared_thread.add_binding(binding)

    # -- fault injection & failover ---------------------------------------------

    def fail_datapath(self, name, reason=""):
        """Fail a datapath binding (fault injection / operator action).

        The health monitor detects the failure ``failover_detect_ns``
        later and re-maps every affected stream onto the best surviving
        datapath its policy allows (paper §5.2's fallback rule).
        """
        binding = self.bindings.get(name)
        if binding is None:
            raise NoDatapathError(
                "no %r binding instantiated on %s" % (name, self.host.name)
            )
        binding.fail(reason)
        return binding

    def restore_datapath(self, name):
        """Bring a failed binding back into service for *new* mappings
        (already re-mapped streams stay on their fallback)."""
        binding = self.bindings.get(name)
        if binding is None:
            raise NoDatapathError(
                "no %r binding instantiated on %s" % (name, self.host.name)
            )
        binding.restore()
        return binding

    def _on_binding_failed(self, binding, reason):
        self._failed_datapaths.add(binding.name)
        self.warn(
            "datapath %s failed on %s%s"
            % (binding.name, self.host.name, (": " + reason) if reason else "")
        )
        if self.tracer is not None:
            self.tracer.datapath_failed(
                self.sim.now, self.host.name, binding.name, reason
            )
        self.health.binding_failed(binding, reason)

    def _on_binding_restored(self, binding):
        self._failed_datapaths.discard(binding.name)
        if self.tracer is not None:
            self.tracer.datapath_restored(self.sim.now, self.host.name, binding.name)
        self.health.binding_restored(binding)

    def failover_remap(self, binding):
        """Re-map every stream bound to ``binding`` onto the best surviving
        datapath satisfying its policy; exactly-once per failure epoch is
        the health monitor's job, this method just executes the re-map.

        Returns ``(remapped, stranded, migrated)``: re-map records, streams
        left with no usable datapath, and tokens migrated out of the dead
        binding's shared-memory rings.
        """
        remapped, stranded = [], []
        survivors = self.available_datapaths()
        for session in list(self._sessions.values()):
            for stream in list(session.streams):
                if stream.binding is not binding or stream.closed:
                    continue
                try:
                    decision = resolve_mapping(
                        stream.policy,
                        survivors,
                        strategy=self.config.mapping_strategy,
                    )
                except NoDatapathError:
                    stream.failed = True
                    stranded.append((session.app_id, stream.name))
                    self.warn(
                        "stream %s/%s: datapath %s failed and no surviving "
                        "datapath remains; emits on this stream now fail"
                        % (session.app_id, stream.name, binding.name)
                    )
                    continue
                if decision.warning:
                    self.warn(decision.warning)
                new_binding = self.ensure_binding(decision.datapath)
                for sink in stream.sinks:
                    self.remap_sink(sink.endpoint, decision.datapath)
                stream._rebind(decision, new_binding)
                self.failovers.value += 1
                remapped.append(
                    (session.app_id, stream.name, binding.name, decision.datapath)
                )
                self.warn(
                    "stream %s/%s re-mapped %s -> %s after datapath failure"
                    % (session.app_id, stream.name, binding.name, decision.datapath)
                )
        migrated = self._migrate_tokens(binding)
        if self.tracer is not None:
            self.tracer.failover_remapped(
                self.sim.now, self.host.name, binding.name,
                remapped, stranded, migrated,
            )
        return remapped, stranded, migrated

    def remap_sink(self, endpoint, datapath):
        """Move a sink's control-plane subscription to ``datapath``.

        The shared-memory delivery ring itself is datapath-independent;
        only the advertised technology (what remote publishers pick their
        egress from) changes.
        """
        if endpoint.datapath == datapath:
            return
        self.control.unsubscribe(endpoint.key, self, datapath=endpoint.datapath)
        endpoint.datapath = datapath
        self.control.subscribe(endpoint.key, self, datapath=datapath)

    def _migrate_tokens(self, binding):
        """Move tokens parked in a failed binding's emit rings onto their
        streams' new bindings; tokens with nowhere to go fail (and their
        buffers return to the pool)."""
        migrated = 0
        for app_id, ring in list(binding.tx_rings.items()):
            for token in ring.drain(len(ring)):
                stream = self._stream_for(app_id, token.stream)
                target = None
                if (
                    stream is not None
                    and not stream.failed
                    and stream.binding is not binding
                    and not stream.binding.failed
                ):
                    target = stream.binding
                obs = token.meta.get("obs")
                if target is None:
                    self.mark_outcome(token, "failed")
                    token.buffer.pool.release(token.buffer)
                    if obs is not None:
                        obs.mark_dropped(self.sim.now, "failover: no surviving datapath")
                    continue
                token.meta["degraded"] = True
                if obs is not None:
                    obs.annotate(self.sim.now, "migrated", target.name)
                if target.ring_for(app_id).try_enqueue(token):
                    migrated += 1
                else:
                    self.mark_outcome(token, "failed")
                    token.buffer.pool.release(token.buffer)
                    if obs is not None:
                        obs.mark_dropped(self.sim.now, "failover: fallback ring full")
        return migrated

    def _stream_for(self, app_id, stream_name):
        session = self._sessions.get(app_id)
        if session is None:
            return None
        for stream in session.streams:
            if stream.name == stream_name:
                return stream
        return None

    # -- session management ----------------------------------------------------

    def attach_session(self, session):
        self._sessions[session.app_id] = session
        self.memory.attach(session.app_id, quota=getattr(session, "slot_quota", None))

    def detach_session(self, session):
        self._sessions.pop(session.app_id, None)
        return self.memory.detach(session.app_id)

    # -- sink registry ------------------------------------------------------------

    def register_sink(self, key, app_id, datapath="udp"):
        from repro.simnet import Store  # local import to avoid cycle noise

        ring = Store(
            self.sim,
            capacity=self.ipc_ring_slots,
            name="%s.sinkring%d" % (self.host.name, self.sink_ring_count),
        )
        endpoint = SinkEndpoint(self, key, app_id, ring, datapath=datapath)
        self._sinks.setdefault(key, []).append(endpoint)
        self.sink_ring_count += 1
        self.control.subscribe(key, self, datapath=datapath)
        return endpoint

    def register_sink_key(self, stream, channel, app_id, datapath="udp"):
        return self.register_sink(ChannelKey(stream, channel), app_id, datapath=datapath)

    # -- fluid aggregate endpoints (repro.fluid) --------------------------------

    def register_fluid_sink(self, key, absorber, weight, app_id,
                            datapath="udp"):
        """Register a fluid aggregate as one weighted sink endpoint.

        ``absorber`` is a ring-duck (``try_put(delivery)`` absorbs the
        token and returns True) standing for ``weight`` cold subscribers.
        The runtime subscribes it on the control plane like any sink, and
        accounts the modelled population in :attr:`sink_ring_count` (so
        the L2 ring-pressure model sees the same state as a full-DES run
        with ``weight`` registered rings) and in the per-channel fan-out
        weight used by ``rx_pass``.
        """
        if weight < 1:
            raise ValueError("fluid sink weight must be >= 1, got %r"
                             % (weight,))
        self.memory.attach(app_id)
        endpoint = SinkEndpoint(self, key, app_id, absorber,
                                datapath=datapath)
        self._sinks.setdefault(key, []).append(endpoint)
        self.sink_ring_count += weight
        self._fluid_weights[key] = (
            self._fluid_weights.get(key, 0) + (weight - 1)
        )
        self.control.subscribe(key, self, datapath=datapath)
        return endpoint

    def set_fluid_weight(self, endpoint, old_weight, new_weight):
        """Re-weight a fluid endpoint (promotion/demotion moves
        subscribers between the fluid aggregate and real DES sinks)."""
        if new_weight < 1:
            raise ValueError("fluid sink weight must be >= 1, got %r"
                             % (new_weight,))
        delta = new_weight - old_weight
        self.sink_ring_count += delta
        self._fluid_weights[endpoint.key] = (
            self._fluid_weights.get(endpoint.key, 0) + delta
        )

    def unregister_fluid_sink(self, endpoint, weight):
        """Remove a fluid endpoint registered with ``weight``."""
        endpoints = self._sinks.get(endpoint.key)
        if endpoints and endpoint in endpoints:
            endpoints.remove(endpoint)
            self.sink_ring_count -= weight
            extra = self._fluid_weights.get(endpoint.key, 0) - (weight - 1)
            if extra:
                self._fluid_weights[endpoint.key] = extra
            else:
                self._fluid_weights.pop(endpoint.key, None)
            self.control.unsubscribe(endpoint.key, self,
                                     datapath=endpoint.datapath)
            if not endpoints:
                self._sinks.pop(endpoint.key, None)

    def unregister_sink(self, endpoint):
        endpoints = self._sinks.get(endpoint.key)
        if endpoints and endpoint in endpoints:
            endpoints.remove(endpoint)
            self.sink_ring_count -= 1
            self.control.unsubscribe(endpoint.key, self, datapath=endpoint.datapath)
            if not endpoints:
                self._sinks.pop(endpoint.key, None)

    def local_sinks(self, key):
        return self._sinks.get(key, [])

    def local_sinks_by_parts(self, stream, channel):
        return self._sinks.get(ChannelKey(stream, channel), [])

    def deliver_to_sink(self, endpoint, token, buffer):
        """Enqueue a delivery token; on ring overflow, drop and release."""
        delivery = Token(
            slot_id=buffer.slot_id,
            length=token.length,
            stream=token.stream,
            channel=token.channel,
            source_ip=token.source_ip or self.host.ip,
            buffer=buffer,
            meta=dict(token.meta),
        )
        self.memory.lend_to(endpoint.app_id, buffer)
        if not endpoint.ring.try_put(delivery):
            endpoint.dropped.value += 1
            self.memory.release_for(endpoint.app_id, buffer)

    # -- emit outcome bookkeeping ------------------------------------------------

    def mark_outcome(self, token, outcome):
        if token.emit_id is not None:
            self._outcomes[token.emit_id] = outcome

    def emit_outcome(self, emit_id):
        return self._outcomes.get(emit_id, "pending")

    # -- misc -----------------------------------------------------------------------

    def warn(self, message):
        self.warnings.append(message)
        if self.config.warn is not None:
            self.config.warn(message)

    def stats(self):
        """An operator-facing snapshot of the runtime's internal state."""
        bindings = {}
        for name, binding in self.bindings.items():
            bindings[name] = {
                "tx_rings": {
                    app_id: {
                        "depth": len(ring),
                        "enqueued": ring.enqueued.value,
                        "rejected": ring.rejected.value,
                    }
                    for app_id, ring in binding.tx_rings.items()
                },
                "scheduler_backlog": len(binding.fifo)
                + (len(binding.tsn) if binding.tsn is not None else 0),
                "rx_queue_depth": len(binding.rx_queue),
                "pool_drops": binding.pool_drops.value,
                "no_sink_drops": binding.no_sink_drops.value,
                "unknown_drops": binding.unknown_drops.value,
                "sched_drops": binding.sched_drops.value,
                "tx_packets": binding.datapath.tx_packets.value,
                "rx_packets": binding.datapath.rx_packets.value,
                "polling_threads": len(binding.threads),
                "failed": binding.failed,
            }
        return {
            "host": self.host.name,
            "ip": self.host.ip,
            "profile": self.profile.name,
            "sessions": sorted(self._sessions),
            "sink_rings": self.sink_ring_count,
            "memory": {
                "slots": self.memory.pool.slots,
                "slot_bytes": self.memory.pool.slot_bytes,
                "in_use": self.memory.pool.in_use,
                "allocations": self.memory.pool.allocations.value,
                "exhaustions": self.memory.pool.exhaustions.value,
            },
            "bindings": bindings,
            "failed_datapaths": sorted(self._failed_datapaths),
            "failovers": self.failovers.value,
            "failover_events": len(self.health.events),
            "warnings": list(self.warnings),
        }

    def upgrade(self, swap_ns=100_000.0):
        """Transparent software upgrade (generator; returns downtime ns).

        The microkernel-style design makes this possible (paper §4, citing
        Snap): polling threads stop, the runtime binary is swapped
        (``swap_ns``), and fresh threads take over the *same* bindings —
        shared-memory pools, token rings, NIC queues, and attached sessions
        all survive untouched; anything that arrived during the swap is
        drained when the new threads start.
        """
        started = self.sim.now
        old_threads, self.threads = self.threads, []
        self._shared_thread = None
        for thread in old_threads:
            thread.stop()
        for binding in self.bindings.values():
            binding.threads = []
        yield Timeout(swap_ns)
        self.version += 1
        for binding in self.bindings.values():
            self._assign_thread(binding)
        return self.sim.now - started

    def shutdown(self):
        """Stop polling threads and close every binding.  Idempotent."""
        if getattr(self, "_shut_down", False):
            return
        self._shut_down = True
        for thread in self.threads:
            thread.stop()
        for binding in self.bindings.values():
            binding.shutdown()
        self.control.unregister_runtime(self)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.shutdown()
        return False


class InsaneDeployment:
    """Convenience: one runtime per testbed host plus a shared control plane.

    Usable as a context manager; exit shuts every runtime down (idempotent,
    like all close/shutdown calls in this API).
    """

    def __init__(self, testbed, config=None, host_indices=None):
        self.testbed = testbed
        self.control = ControlPlane()
        self.runtimes = {}
        indices = host_indices if host_indices is not None else range(len(testbed.hosts))
        for index in indices:
            host = testbed.hosts[index]
            self.runtimes[host.name] = InsaneRuntime(host, self.control, config)

    def runtime(self, index):
        return self.runtimes[self.testbed.hosts[index].name]

    def shutdown(self):
        for runtime in self.runtimes.values():
            runtime.shutdown()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.shutdown()
        return False
