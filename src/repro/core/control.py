"""Out-of-band control plane: runtime discovery and channel subscriptions.

INSANE runtimes forward emitted messages "to the reachable remote INSANE
runtimes" with matching sinks (paper §7.1).  The subscription state behind
that forwarding is maintained here, modelling a DDS-like discovery service:
registration happens out of band (control traffic is not on the measured
datapath), and each runtime consults its cached view at emit time.
"""

from collections import defaultdict


class ControlPlane:
    """Shared discovery state for one deployment.

    Besides *who* subscribes to a channel, the control plane records *which
    datapath* each subscribing runtime bound the channel's stream to, so a
    publisher on a heterogeneous deployment can pick a technology the
    subscriber actually listens on (falling back to the kernel path, which
    every runtime keeps open).
    """

    def __init__(self):
        self._runtimes = {}   # ip -> runtime
        # ChannelKey -> ip -> {datapath_name: subscriber_count}
        self._subscriptions = defaultdict(lambda: defaultdict(dict))
        # (key, local_ip) -> remote subscriber list; publishers consult
        # their cached view per emitted message, while membership changes
        # (rare, out of band) invalidate it wholesale
        self._remote_cache = {}

    # -- runtime membership ----------------------------------------------

    def register_runtime(self, runtime):
        ip = runtime.host.ip
        if ip in self._runtimes:
            raise ValueError("a runtime is already registered at %s" % ip)
        self._runtimes[ip] = runtime

    def unregister_runtime(self, runtime):
        self._runtimes.pop(runtime.host.ip, None)
        for subscribers in self._subscriptions.values():
            subscribers.pop(runtime.host.ip, None)
        self._remote_cache.clear()

    def runtime_at(self, ip):
        return self._runtimes.get(ip)

    @property
    def runtimes(self):
        return list(self._runtimes.values())

    # -- channel subscriptions ---------------------------------------------

    def subscribe(self, key, runtime, datapath="udp"):
        counts = self._subscriptions[key][runtime.host.ip]
        counts[datapath] = counts.get(datapath, 0) + 1
        self._remote_cache.clear()

    def unsubscribe(self, key, runtime, datapath="udp"):
        subscribers = self._subscriptions.get(key)
        if subscribers is None:
            return
        counts = subscribers.get(runtime.host.ip)
        if counts is None:
            return
        if datapath in counts:
            counts[datapath] -= 1
            if counts[datapath] <= 0:
                del counts[datapath]
        if not counts:
            del subscribers[runtime.host.ip]
        if not subscribers:
            del self._subscriptions[key]
        self._remote_cache.clear()

    def remote_subscribers(self, key, local_ip):
        """``(ip, frozenset(datapaths))`` of remote runtimes on ``key``.

        Consulted once per emitted message, so the computed view is cached
        until the next membership change.  Callers must not mutate the
        returned list.
        """
        cache_key = (key, local_ip)
        cached = self._remote_cache.get(cache_key)
        if cached is None:
            cached = self._remote_cache[cache_key] = (
                self.remote_subscribers_uncached(key, local_ip)
            )
        return cached

    def remote_subscribers_uncached(self, key, local_ip):
        """Recompute the subscriber view (the pre-overhaul per-emit cost)."""
        subscribers = self._subscriptions.get(key, {})
        return [
            (ip, frozenset(counts))
            for ip, counts in sorted(subscribers.items())
            if ip != local_ip
        ]

    def has_subscribers(self, key):
        return bool(self._subscriptions.get(key))
