"""Out-of-band control plane: runtime discovery and channel subscriptions.

INSANE runtimes forward emitted messages "to the reachable remote INSANE
runtimes" with matching sinks (paper §7.1).  The subscription state behind
that forwarding is maintained here, modelling a DDS-like discovery service:
registration happens out of band (control traffic is not on the measured
datapath), and each runtime consults its cached view at emit time.
"""

from collections import defaultdict
from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass
class FailoverEvent:
    """Record of one detected datapath failure and the remap it triggered."""

    host: str
    datapath: str
    reason: str
    failed_at: float
    detected_at: float
    #: ``(app_id, stream, old_datapath, new_datapath)`` per re-mapped stream.
    remapped: List[Tuple[str, str, str, str]] = field(default_factory=list)
    #: ``(app_id, stream)`` per stream left with no surviving datapath.
    stranded: List[Tuple[str, str]] = field(default_factory=list)
    #: tokens moved from the dead binding's rings to the fallback's.
    migrated: int = 0

    @property
    def detection_latency_ns(self):
        return self.detected_at - self.failed_at


class HealthMonitor:
    """Detects failed datapath bindings and drives QoS-aware failover.

    Detection is event-driven rather than a periodic polling process (a
    forever-ticking process would keep the discrete-event simulation from
    ever draining): a binding failure schedules one health-check callback
    ``detect_ns`` later — modelling the monitor's sampling interval — and
    that callback re-maps every affected stream *exactly once* per failure
    epoch.  A restore before the callback fires turns it into a no-op, and
    a later re-failure starts a fresh epoch with its own callback.
    """

    def __init__(self, runtime, detect_ns=50_000.0):
        self.runtime = runtime
        self.sim = runtime.sim
        self.detect_ns = detect_ns
        self.events = []

    def binding_failed(self, binding, reason=""):
        """Schedule the detection callback for this failure epoch."""
        self.sim.schedule(
            self.detect_ns, self._detect, binding, reason, binding.failed_at
        )

    def binding_restored(self, binding):
        """Nothing to cancel: the epoch guard in :meth:`_detect` makes any
        pending detection for the restored epoch a no-op."""

    def _detect(self, binding, reason, failed_at):
        if not binding.failed or binding.failed_at != failed_at:
            return  # restored meanwhile (a re-failure has its own callback)
        if binding._failover_handled:
            return
        binding._failover_handled = True
        remapped, stranded, migrated = self.runtime.failover_remap(binding)
        self.events.append(
            FailoverEvent(
                host=self.runtime.host.name,
                datapath=binding.name,
                reason=reason,
                failed_at=failed_at,
                detected_at=self.sim.now,
                remapped=remapped,
                stranded=stranded,
                migrated=migrated,
            )
        )


class ControlPlane:
    """Shared discovery state for one deployment.

    Besides *who* subscribes to a channel, the control plane records *which
    datapath* each subscribing runtime bound the channel's stream to, so a
    publisher on a heterogeneous deployment can pick a technology the
    subscriber actually listens on (falling back to the kernel path, which
    every runtime keeps open).
    """

    def __init__(self):
        self._runtimes = {}   # ip -> runtime
        # ChannelKey -> ip -> {datapath_name: subscriber_count}
        self._subscriptions = defaultdict(lambda: defaultdict(dict))
        # (key, local_ip) -> remote subscriber list; publishers consult
        # their cached view per emitted message, while membership changes
        # (rare, out of band) invalidate it wholesale
        self._remote_cache = {}

    # -- runtime membership ----------------------------------------------

    def register_runtime(self, runtime):
        ip = runtime.host.ip
        if ip in self._runtimes:
            raise ValueError("a runtime is already registered at %s" % ip)
        self._runtimes[ip] = runtime

    def unregister_runtime(self, runtime):
        self._runtimes.pop(runtime.host.ip, None)
        for subscribers in self._subscriptions.values():
            subscribers.pop(runtime.host.ip, None)
        self._remote_cache.clear()

    def runtime_at(self, ip):
        return self._runtimes.get(ip)

    @property
    def runtimes(self):
        return list(self._runtimes.values())

    # -- channel subscriptions ---------------------------------------------

    def subscribe(self, key, runtime, datapath="udp"):
        counts = self._subscriptions[key][runtime.host.ip]
        counts[datapath] = counts.get(datapath, 0) + 1
        self._remote_cache.clear()

    def unsubscribe(self, key, runtime, datapath="udp"):
        subscribers = self._subscriptions.get(key)
        if subscribers is None:
            return
        counts = subscribers.get(runtime.host.ip)
        if counts is None:
            return
        if datapath in counts:
            counts[datapath] -= 1
            if counts[datapath] <= 0:
                del counts[datapath]
        if not counts:
            del subscribers[runtime.host.ip]
        if not subscribers:
            del self._subscriptions[key]
        self._remote_cache.clear()

    def remote_subscribers(self, key, local_ip):
        """``(ip, frozenset(datapaths))`` of remote runtimes on ``key``.

        Consulted once per emitted message, so the computed view is cached
        until the next membership change.  Callers must not mutate the
        returned list.
        """
        cache_key = (key, local_ip)
        cached = self._remote_cache.get(cache_key)
        if cached is None:
            cached = self._remote_cache[cache_key] = (
                self.remote_subscribers_uncached(key, local_ip)
            )
        return cached

    def remote_subscribers_uncached(self, key, local_ip):
        """Recompute the subscriber view (the pre-overhaul per-emit cost)."""
        subscribers = self._subscriptions.get(key, {})
        return [
            (ip, frozenset(counts))
            for ip, counts in sorted(subscribers.items())
            if ip != local_ip
        ]

    def has_subscribers(self, key):
        return bool(self._subscriptions.get(key))
