"""Stream QoS policies and the policy-to-datapath mapping (paper §5.2).

INSANE deliberately keeps the option set minimal: three per-stream policies
(datapath acceleration, tolerable resource consumption, time sensitivity).
The runtime maps them to the *most appropriate* technology available on the
host at stream-creation time; the mapping is a best-effort hint, and when
acceleration is requested but unavailable INSANE falls back to the kernel
stack and warns the user.
"""

import enum
from dataclasses import dataclass
from typing import Optional


class Acceleration(enum.Enum):
    """Does this data flow require datapath acceleration?"""

    NONE = "none"            # paper: "slow" — kernel networking suffices
    ACCELERATED = "fast"     # paper: "fast" — use a kernel-bypassing path


class ResourceBudget(enum.Enum):
    """Is resource usage a concern when choosing an accelerated path?"""

    UNCONSTRAINED = "unconstrained"   # busy-polling cores are acceptable
    CONSTRAINED = "constrained"       # avoid spinning cores (prefer XDP)


class TimeSensitivity(enum.Enum):
    """Packet scheduling strategy for the stream's packets."""

    BEST_EFFORT = "best-effort"       # FIFO scheduler
    TIME_SENSITIVE = "time-sensitive"  # IEEE 802.1Qbv time-aware scheduler


@dataclass(frozen=True)
class QosPolicy:
    """The QoS options attached to a stream (``options_t`` in Fig. 2)."""

    acceleration: Acceleration = Acceleration.NONE
    resources: ResourceBudget = ResourceBudget.UNCONSTRAINED
    time_sensitivity: TimeSensitivity = TimeSensitivity.BEST_EFFORT

    @classmethod
    def slow(cls, time_sensitive=False):
        """The paper's "slow" datapath QoS (kernel UDP)."""
        return cls(
            acceleration=Acceleration.NONE,
            time_sensitivity=(
                TimeSensitivity.TIME_SENSITIVE if time_sensitive else TimeSensitivity.BEST_EFFORT
            ),
        )

    @classmethod
    def fast(cls, constrained=False, time_sensitive=False):
        """The paper's "fast" datapath QoS (accelerated)."""
        return cls(
            acceleration=Acceleration.ACCELERATED,
            resources=(
                ResourceBudget.CONSTRAINED if constrained else ResourceBudget.UNCONSTRAINED
            ),
            time_sensitivity=(
                TimeSensitivity.TIME_SENSITIVE if time_sensitive else TimeSensitivity.BEST_EFFORT
            ),
        )

    @classmethod
    def from_kwargs(cls, **kwargs):
        """Build a validated policy from keyword options.

        Accepts enum members, their string values, or the boolean aliases
        used by :meth:`fast`/:meth:`slow`::

            QosPolicy.from_kwargs(acceleration="fast", constrained=True)
            QosPolicy.from_kwargs(acceleration=Acceleration.NONE,
                                  time_sensitive=True)

        Contradictory combinations (an alias disagreeing with its enum
        option, or a resource budget on a non-accelerated policy) raise
        :class:`~repro.core.errors.QosValidationError` — the typed
        replacement for silently assembling raw enums.
        """
        from repro.core.errors import QosValidationError

        known = {
            "acceleration", "resources", "time_sensitivity",
            "constrained", "time_sensitive",
        }
        unknown = set(kwargs) - known
        if unknown:
            raise QosValidationError(
                "unknown QoS option(s) %s; valid options: %s"
                % (sorted(unknown), sorted(known))
            )

        acceleration = _coerce(
            Acceleration, kwargs.get("acceleration"), {
                "fast": Acceleration.ACCELERATED,
                "accelerated": Acceleration.ACCELERATED,
                "slow": Acceleration.NONE,
                "none": Acceleration.NONE,
                True: Acceleration.ACCELERATED,
                False: Acceleration.NONE,
            },
        )
        resources = _coerce(
            ResourceBudget, kwargs.get("resources"), {
                "constrained": ResourceBudget.CONSTRAINED,
                "unconstrained": ResourceBudget.UNCONSTRAINED,
            },
        )
        time_sensitivity = _coerce(
            TimeSensitivity, kwargs.get("time_sensitivity"), {
                "time-sensitive": TimeSensitivity.TIME_SENSITIVE,
                "best-effort": TimeSensitivity.BEST_EFFORT,
            },
        )

        if "constrained" in kwargs:
            alias = (
                ResourceBudget.CONSTRAINED
                if kwargs["constrained"]
                else ResourceBudget.UNCONSTRAINED
            )
            if resources is not None and resources is not alias:
                raise QosValidationError(
                    "contradictory options: resources=%s but constrained=%r"
                    % (resources.value, kwargs["constrained"])
                )
            resources = alias
        if "time_sensitive" in kwargs:
            alias = (
                TimeSensitivity.TIME_SENSITIVE
                if kwargs["time_sensitive"]
                else TimeSensitivity.BEST_EFFORT
            )
            if time_sensitivity is not None and time_sensitivity is not alias:
                raise QosValidationError(
                    "contradictory options: time_sensitivity=%s but "
                    "time_sensitive=%r"
                    % (time_sensitivity.value, kwargs["time_sensitive"])
                )
            time_sensitivity = alias

        if acceleration is None:
            acceleration = Acceleration.NONE
        if acceleration is Acceleration.NONE and resources is ResourceBudget.CONSTRAINED:
            raise QosValidationError(
                "contradictory options: a constrained resource budget only "
                "applies to accelerated streams (the kernel path never spins "
                "cores); request acceleration='fast' or drop constrained"
            )
        return cls(
            acceleration=acceleration,
            resources=resources or ResourceBudget.UNCONSTRAINED,
            time_sensitivity=time_sensitivity or TimeSensitivity.BEST_EFFORT,
        )

    @classmethod
    def build(cls):
        """A fluent, validating builder: ``QosPolicy.build().accelerated()
        .constrained().time_sensitive().done()``."""
        return QosPolicyBuilder(cls)

    def to_dict(self):
        """The policy as a JSON-native dict of enum *values*.

        Round-trips through :meth:`from_dict`; the scenario DSL stores
        policies in exactly this shape.
        """
        return {
            "acceleration": self.acceleration.value,
            "resources": self.resources.value,
            "time_sensitivity": self.time_sensitivity.value,
        }

    @classmethod
    def from_dict(cls, options):
        """Build a validated policy from a JSON-native dict.

        Accepts everything :meth:`from_kwargs` accepts — enum members,
        enum *values* (``"fast"``), enum *names* in any case
        (``"ACCELERATED"``, ``"best_effort"``), and the boolean aliases —
        so a policy parsed from YAML/JSON needs no Python-side massaging.
        """
        from repro.core.errors import QosValidationError

        if not isinstance(options, dict):
            raise QosValidationError(
                "a QoS policy must be a dict of options, got %s"
                % type(options).__name__
            )
        return cls.from_kwargs(**options)


def _coerce(enum_cls, value, aliases):
    """Normalize ``value`` to an ``enum_cls`` member, or raise typed.

    Strings match, in order: an explicit alias, an enum *value*
    (``"best-effort"``), or an enum *name* in any case and with hyphens
    and underscores interchangeable (``"BEST_EFFORT"``, ``"best_effort"``)
    — the forms a YAML/JSON front end naturally produces.
    """
    from repro.core.errors import QosValidationError

    if value is None or isinstance(value, enum_cls):
        return value
    try:
        hashable = value if isinstance(value, (str, bool)) else None
        if hashable in aliases:
            return aliases[hashable]
        if isinstance(value, str):
            folded = value.strip().lower()
            if folded in aliases:
                return aliases[folded]
            for member in enum_cls:
                if folded in (
                    member.value,
                    member.name.lower(),
                    member.value.replace("-", "_"),
                    member.name.lower().replace("_", "-"),
                ):
                    return member
        return enum_cls(value)
    except (ValueError, TypeError):
        raise QosValidationError(
            "invalid %s value %r; expected one of %s"
            % (
                enum_cls.__name__,
                value,
                sorted({str(k) for k in aliases} | {m.value for m in enum_cls}),
            )
        ) from None


class QosPolicyBuilder:
    """Fluent builder for :class:`QosPolicy`.

    Each setter fixes one option; setting the *same* option to two
    different values, or assembling a contradictory combination, raises
    :class:`~repro.core.errors.QosValidationError` at the call that
    introduces the contradiction (not at :meth:`done`), so the offending
    line is in the traceback.
    """

    def __init__(self, policy_cls):
        self._policy_cls = policy_cls
        self._options = {}

    def _set(self, key, value):
        from repro.core.errors import QosValidationError

        current = self._options.get(key)
        if current is not None and current is not value:
            raise QosValidationError(
                "contradictory builder calls: %s already set to %s, "
                "refusing to override with %s" % (key, current.value, value.value)
            )
        self._options[key] = value
        return self

    def accelerated(self):
        """Request a kernel-bypassing datapath (the paper's "fast")."""
        return self._set("acceleration", Acceleration.ACCELERATED)

    def kernel(self):
        """Request the kernel stack (the paper's "slow")."""
        return self._set("acceleration", Acceleration.NONE)

    def constrained(self):
        """Avoid spinning cores (prefer XDP among accelerated paths)."""
        return self._set("resources", ResourceBudget.CONSTRAINED)

    def unconstrained(self):
        """Busy-polling cores are acceptable (prefer DPDK/RDMA)."""
        return self._set("resources", ResourceBudget.UNCONSTRAINED)

    def time_sensitive(self):
        """Schedule packets through the 802.1Qbv time-aware scheduler."""
        return self._set("time_sensitivity", TimeSensitivity.TIME_SENSITIVE)

    def best_effort(self):
        """FIFO packet scheduling (the default)."""
        return self._set("time_sensitivity", TimeSensitivity.BEST_EFFORT)

    def done(self):
        """Validate the combination and return the frozen policy."""
        return self._policy_cls.from_kwargs(**{
            key: value for key, value in self._options.items()
        })


@dataclass(frozen=True)
class MappingDecision:
    """The outcome of mapping a stream's QoS onto a datapath."""

    datapath: str
    fallback: bool = False
    warning: Optional[str] = None


def default_strategy(policy, available):
    """The paper's default mapping (§5.2).

    * no acceleration required -> kernel UDP, always;
    * otherwise RDMA when present (best performance per resource);
    * otherwise DPDK when resource usage is not a concern;
    * otherwise XDP (no spinning cores);
    * if nothing accelerated is available -> kernel UDP, with a warning.
    """
    if policy.acceleration is Acceleration.NONE:
        return MappingDecision("udp")
    preference = ["rdma"]
    if policy.resources is ResourceBudget.UNCONSTRAINED:
        preference += ["dpdk", "xdp"]
    else:
        preference += ["xdp", "dpdk"]
    for name in preference:
        if name in available:
            return MappingDecision(name)
    return MappingDecision(
        "udp",
        fallback=True,
        warning=(
            "acceleration requested but no acceleration technology is "
            "available on this host; falling back to kernel UDP"
        ),
    )


#: The strategy used when the user supplies none.
DEFAULT_STRATEGY = default_strategy


def resolve_mapping(policy, available, strategy=None):
    """Apply ``strategy`` (or the default) and validate the result.

    A custom strategy may return either a datapath name or a full
    :class:`MappingDecision`; names that are not actually available raise
    :class:`~repro.core.errors.NoDatapathError` so misconfigured strategies
    fail loudly rather than silently degrading.
    """
    from repro.core.errors import NoDatapathError

    strategy = strategy or DEFAULT_STRATEGY
    decision = strategy(policy, frozenset(available))
    if isinstance(decision, str):
        decision = MappingDecision(decision)
    if decision.datapath not in available:
        raise NoDatapathError(
            "mapping strategy chose %r, which is unavailable (available: %s)"
            % (decision.datapath, sorted(available))
        )
    return decision
